//! Differential test of the timer wheel against a reference scheduler.
//!
//! The oracle that licenses the executor's hot-path rewrite: a plain
//! `BinaryHeap` popping strict `(time, seq)` minima is obviously correct, so
//! the wheel must agree with it on *every* operation of a randomized
//! schedule/cancel/advance stream — pop order, peeked deadlines, cancel
//! results, and lengths. Streams come from `shrimp-testkit` choice sources,
//! so failures replay and shrink deterministically.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use shrimp_sim::wheel::{TimerId, TimerWheel};
use shrimp_testkit::prop::*;
use shrimp_testkit::{prop_assert, prop_assert_eq, props};

/// The obviously-correct scheduler: a binary min-heap on `(time, seq)` with
/// lazy cancellation, mirroring the executor's pre-wheel implementation.
#[derive(Default)]
struct RefSched {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    pending: BTreeSet<u64>,
    cancelled: BTreeSet<u64>,
    next_seq: u64,
}

impl RefSched {
    fn insert(&mut self, at: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.pending.insert(seq);
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        if self.pending.remove(&seq) {
            self.cancelled.insert(seq);
            true
        } else {
            false
        }
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            self.pending.remove(&seq);
            return Some((at, seq));
        }
        None
    }

    fn peek(&mut self) -> Option<u64> {
        while let Some(&Reverse((at, seq))) = self.heap.peek() {
            if self.cancelled.contains(&seq) {
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(at);
        }
        None
    }

    fn len(&self) -> usize {
        self.pending.len()
    }
}

/// Maps one `(selector, value)` choice pair to a deadline. The buckets pin
/// every wheel region: same-slot, low levels, high levels, and the overflow
/// heap (beyond the 2^36 ps horizon); small absolute deadlines late in a run
/// also land behind the cursor, exercising the `pre` path.
fn deadline(selector: u64, value: u64) -> u64 {
    match selector % 4 {
        0 => value % 64,
        1 => value % 4096,
        2 => value % (1 << 36),
        _ => value % (1 << 40),
    }
}

/// Runs one op stream through both schedulers, asserting agreement at every
/// step. Returns the number of operations executed.
fn run_differential(ops: &[(u64, u64)]) -> usize {
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    let mut oracle = RefSched::default();
    // Ids of inserted timers (wheel handle + oracle seq); deliberately kept
    // after fire/cancel so stale handles are exercised too.
    let mut ids: Vec<(TimerId, u64)> = Vec::new();

    for &(op, value) in ops {
        match op % 100 {
            // Schedule (45%)
            0..=44 => {
                let at = deadline(op / 100, value);
                let id = wheel.insert(at, oracle.next_seq);
                let seq = oracle.insert(at);
                ids.push((id, seq));
                if ids.len() > 256 {
                    ids.remove(0);
                }
            }
            // Pop / advance (25%)
            45..=69 => {
                let got = wheel.pop();
                let want = oracle.pop();
                assert_eq!(
                    got,
                    want,
                    "pop disagreed after {} live timers",
                    oracle.len()
                );
            }
            // Cancel a (possibly stale) id (15%)
            70..=84 => {
                if ids.is_empty() {
                    continue;
                }
                let (id, seq) = ids[(value as usize) % ids.len()];
                let got = wheel.cancel(id);
                let want = oracle.cancel(seq);
                assert_eq!(got, want, "cancel({seq}) disagreed");
            }
            // Peek, which may advance the wheel's internal cursor without
            // firing — the hazard the `pre` heap exists for (15%)
            _ => {
                assert_eq!(wheel.peek_deadline(), oracle.peek(), "peek disagreed");
            }
        }
        assert_eq!(wheel.len(), oracle.len(), "live-count disagreed");
    }

    // Full drain must agree to the last entry.
    loop {
        let got = wheel.pop();
        let want = oracle.pop();
        assert_eq!(got, want, "drain disagreed");
        if want.is_none() {
            break;
        }
    }
    ops.len()
}

/// The headline oracle run: 3 independent choice streams of 8192 operations
/// each (24k+ total, well past the 10k bar), covering every wheel region.
#[test]
fn wheel_matches_reference_over_24k_random_ops() {
    let mut total = 0;
    for seed in [0x5eed_0001u64, 0xdead_beef, 0x7777_1234] {
        let mut src = Source::record(seed);
        let ops: Vec<(u64, u64)> = (0..8192)
            .map(|_| (src.draw_below(400), src.draw()))
            .collect();
        total += run_differential(&ops);
    }
    assert!(total >= 10_000, "ran only {total} ops");
}

props! {
    cases = 32;

    /// Shrinkable version of the oracle: any small op stream keeps the wheel
    /// and the reference heap in lock-step.
    fn wheel_matches_reference(
        ops in vec_of(zip(u64_in(0..400), any_u64()), 1..600),
    ) {
        let n = run_differential(&ops);
        prop_assert!(n == ops.len());
    }

    /// Same-deadline bursts: heavy seq-order pressure inside single slots.
    fn same_deadline_bursts_stay_in_seq_order(
        deadlines in vec_of(u64_in(0..8), 2..200),
    ) {
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut oracle = RefSched::default();
        for &d in &deadlines {
            wheel.insert(d, oracle.next_seq);
            oracle.insert(d);
        }
        let mut last: Option<(u64, u64)> = None;
        while let Some(got) = wheel.pop() {
            prop_assert_eq!(Some(got), oracle.pop());
            if let Some(prev) = last {
                prop_assert!(prev < got, "pop order not strictly (time, seq)");
            }
            last = Some(got);
        }
        prop_assert_eq!(oracle.pop(), None);
    }
}
