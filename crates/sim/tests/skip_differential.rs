//! Differential test of the idle-skip refill fast path against the legacy
//! level-by-level cascade stepper.
//!
//! The production wheel refill jumps the cursor straight to the earliest
//! deadline of the next populated slot instead of cascading through every
//! intermediate level — the win is on long quiescent gaps, where the
//! legacy stepper walks thousands of empty slots. The optimization must be
//! invisible: this suite replays identical operation streams through one
//! wheel per stepper and demands identical `(time, seq)` pop order, peeked
//! deadlines, cancel results, and live counts at every step.
//!
//! Streams come from `shrimp-testkit` choice sources, so failures replay
//! and shrink deterministically. The deadline buckets are biased toward
//! *sparse* schedules (multi-level gaps, the 2^36 ps overflow horizon) —
//! exactly the regions where the skip path and the cascade diverge if
//! either is wrong.

use shrimp_sim::wheel::{skip, TimerId, TimerWheel};
use shrimp_testkit::prop::*;
use shrimp_testkit::{prop_assert, props};

/// Maps one `(selector, value)` choice pair to a deadline. Bucket 0 keeps
/// slot-local density; bucket 1 spreads entries ~256 K ps apart so pops
/// cross long runs of empty slots on several levels; buckets 2 and 3
/// straddle the 2^36 ps overflow horizon.
fn deadline(selector: u64, value: u64) -> u64 {
    match selector % 4 {
        0 => value % 64,
        1 => (value % 1024) << 18,
        2 => value % (1 << 36),
        _ => value % (1 << 40),
    }
}

/// Runs one op stream through an idle-skip wheel and a legacy-cascade
/// wheel, asserting agreement at every step. Returns the number of
/// operations executed.
fn run_differential(ops: &[(u64, u64)]) -> usize {
    let mut fast: TimerWheel<u64> = TimerWheel::new();
    assert!(
        !skip::legacy_stepper(),
        "stepper toggle leaked between tests"
    );
    skip::set_legacy_stepper(true);
    let mut slow: TimerWheel<u64> = TimerWheel::new();
    skip::set_legacy_stepper(false);

    let mut next_payload = 0u64;
    // Handles into both wheels; deliberately kept after fire/cancel so
    // stale ids are exercised too.
    let mut ids: Vec<(TimerId, TimerId)> = Vec::new();

    for &(op, value) in ops {
        match op % 100 {
            // Schedule (40%)
            0..=39 => {
                let at = deadline(op / 100, value);
                let payload = next_payload;
                next_payload += 1;
                let f = fast.insert(at, payload);
                let s = slow.insert(at, payload);
                ids.push((f, s));
                if ids.len() > 256 {
                    ids.remove(0);
                }
            }
            // Pop — the operation that triggers a refill and, on sparse
            // schedules, a long idle skip (35%)
            40..=74 => {
                assert_eq!(fast.pop(), slow.pop(), "pop disagreed");
            }
            // Cancel a (possibly stale) id (10%)
            75..=84 => {
                if ids.is_empty() {
                    continue;
                }
                let (f, s) = ids[(value as usize) % ids.len()];
                assert_eq!(fast.cancel(f), slow.cancel(s), "cancel disagreed");
            }
            // Peek, which may advance the cursor without firing (15%)
            _ => {
                assert_eq!(fast.peek_deadline(), slow.peek_deadline(), "peek disagreed");
            }
        }
        assert_eq!(fast.len(), slow.len(), "live-count disagreed");
    }

    // Full drain must agree to the last entry.
    loop {
        let got = fast.pop();
        assert_eq!(got, slow.pop(), "drain disagreed");
        if got.is_none() {
            break;
        }
    }
    ops.len()
}

/// The headline oracle run: 3 independent choice streams of 8192 operations
/// each (24k+ total), biased toward long quiescent gaps.
#[test]
fn skip_path_matches_legacy_stepper_over_24k_random_ops() {
    let mut total = 0;
    for seed in [0x5eed_0002u64, 0xfeed_f00d, 0x1d1e_5c1b] {
        let mut src = Source::record(seed);
        let ops: Vec<(u64, u64)> = (0..8192)
            .map(|_| (src.draw_below(400), src.draw()))
            .collect();
        total += run_differential(&ops);
    }
    assert!(total >= 24_000, "ran only {total} ops");
}

/// A deterministic worst case for the refill: lone timers separated by
/// gaps spanning every level, including the overflow horizon — each pop
/// forces the skip path to jump across the maximal number of empty slots.
#[test]
fn lone_timers_across_maximal_gaps_agree() {
    let gaps: Vec<u64> = (0..40).map(|i| 1u64 << i).collect();
    let ops: Vec<(u64, u64)> = gaps
        .iter()
        .flat_map(|&g| [(200, g), (50, 0)]) // insert at 2^i (bucket 2), then pop
        .collect();
    run_differential(&ops);
}

props! {
    cases = 32;

    /// Shrinkable version of the oracle: any small op stream keeps the
    /// idle-skip wheel and the legacy cascade in lock-step.
    fn skip_path_matches_legacy_stepper(
        ops in vec_of(zip(u64_in(0..400), any_u64()), 1..600),
    ) {
        let n = run_differential(&ops);
        prop_assert!(n == ops.len());
    }
}
