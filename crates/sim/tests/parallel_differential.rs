//! Differential test of the threaded conservative-parallel executor.
//!
//! Three executions of the same randomized workload must agree on every
//! observable: the plain single-`Sim` fast path (`shards == 1` — today's
//! executor, the obviously-correct oracle), the serial round-robin window
//! executor (`ExecMode::Serial`, compiled in via the `serial-shards`
//! feature), and the threaded conservative executor. Agreement is checked
//! at the `(time, seq)` stream level: each node's send timeline must match
//! entry for entry, and each node's delivery timeline must match as a
//! per-instant multiset (two deliveries to one node at the same picosecond
//! are unordered by construction — the workload, like the production one
//! in `shrimp_core::parallel`, treats them commutatively).
//!
//! Workloads come from `shrimp-testkit` choice sources, so failures replay
//! and shrink deterministically.

use std::cell::RefCell;
use std::rc::Rc;

use shrimp_sim::shard::{run_sharded, Builder, ExecMode, ShardConfig, ShardCtx};
use shrimp_sim::{rng::splitmix64, Time};
use shrimp_testkit::prop::*;
use shrimp_testkit::{prop_assert, prop_assert_eq, props};

/// One node's scripted schedule: per step, a sleep and a burst of sends.
#[derive(Debug, Clone)]
struct NodeOps {
    steps: Vec<StepOp>,
}

/// One compute/communicate step of a node.
#[derive(Debug, Clone)]
struct StepOp {
    /// Simulated ps slept before the step acts (at least 1).
    sleep: Time,
    /// `(dst node, extra arrival delay beyond the lookahead, tag)`.
    sends: Vec<(usize, Time, u64)>,
}

/// Contiguous node → shard assignment, as in `shrimp_core::parallel`.
fn shard_of(node: usize, nodes: usize, shards: usize) -> usize {
    node * shards / nodes
}

/// Scripts a whole workload from a choice stream: `nodes` nodes, `steps`
/// steps each, up to `fanout` sends per step.
fn script(src: &mut Source, nodes: usize, steps: usize, fanout: usize) -> Vec<NodeOps> {
    (0..nodes)
        .map(|_| NodeOps {
            steps: (0..steps)
                .map(|_| StepOp {
                    sleep: 1 + src.draw_below(5000),
                    sends: (0..src.draw_below(fanout as u64 + 1))
                        .filter(|_| nodes > 1)
                        .map(|_| {
                            (
                                src.draw_below(nodes as u64) as usize,
                                src.draw_below(3000),
                                src.draw(),
                            )
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect()
}

/// A message on the wire: `(src node, dst node, tag)`.
type Msg = (usize, usize, u64);

/// Everything one execution observed, normalized for comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Streams {
    /// Per node: `(send time, tag)` in program order.
    sends: Vec<Vec<(Time, u64)>>,
    /// Per node: `(arrival, src, tag)`, sorted (see module docs).
    deliveries: Vec<Vec<(Time, usize, u64)>>,
    elapsed: Time,
    events: u64,
}

/// Runs the scripted workload on `shards` shards in `mode` and collects
/// the per-node streams.
fn run_workload(ops: &[NodeOps], lookahead: Time, shards: usize, mode: ExecMode) -> Streams {
    let nodes = ops.len();
    type Logs = (Vec<(Time, u64)>, Vec<(Time, usize, u64)>);
    let builders: Vec<Builder<Msg, Vec<(usize, Logs)>>> = (0..shards)
        .map(|s| {
            let ops = ops.to_vec();
            Box::new(move |ctx: &ShardCtx<Msg>| {
                let owned: Vec<usize> = (0..nodes)
                    .filter(|&n| shard_of(n, nodes, ctx.shards()) == s)
                    .collect();
                let logs: Vec<Rc<RefCell<Logs>>> = owned
                    .iter()
                    .map(|_| Rc::new(RefCell::new((Vec::new(), Vec::new()))))
                    .collect();
                {
                    let logs = logs.clone();
                    let owned = owned.clone();
                    ctx.on_message(move |at, (src, dst, tag): Msg| {
                        let slot = owned.binary_search(&dst).expect("misrouted message");
                        logs[slot].borrow_mut().1.push((at, src, tag));
                    });
                }
                for (slot, &node) in owned.iter().enumerate() {
                    let script = ops[node].clone();
                    let log = Rc::clone(&logs[slot]);
                    let tx = ctx.sender();
                    let sim = ctx.sim().clone();
                    ctx.sim().spawn(async move {
                        for step in script.steps {
                            sim.sleep(step.sleep).await;
                            for (dst, delay, tag) in step.sends {
                                log.borrow_mut().0.push((sim.now(), tag));
                                let arrival = sim.now() + tx.lookahead() + delay;
                                tx.send(
                                    shard_of(dst, nodes, tx.shards()),
                                    arrival,
                                    (node, dst, tag),
                                );
                            }
                        }
                    });
                }
                let harvest: Box<dyn FnOnce() -> Vec<(usize, Logs)>> = Box::new(move || {
                    owned
                        .iter()
                        .zip(&logs)
                        .map(|(&n, l)| (n, l.borrow().clone()))
                        .collect()
                });
                harvest
            }) as Builder<Msg, Vec<(usize, Logs)>>
        })
        .collect();
    let cfg = ShardConfig {
        mode,
        ..ShardConfig::new(shards, lookahead)
    };
    let out = run_sharded(&cfg, builders);
    let mut sends = vec![Vec::new(); nodes];
    let mut deliveries = vec![Vec::new(); nodes];
    for shard in out.results {
        for (node, (s, d)) in shard {
            sends[node] = s;
            deliveries[node] = d;
        }
    }
    // Same-instant deliveries to one node are unordered; normalize.
    for d in &mut deliveries {
        d.sort_unstable();
    }
    Streams {
        sends,
        deliveries,
        elapsed: out.elapsed,
        events: out.events,
    }
}

/// The headline oracle run: 3 independent randomized workloads, each
/// executed on the single-`Sim` fast path and differentially on the serial
/// and threaded window executors at several widths. The summed event count
/// clears 24k.
#[test]
fn parallel_executors_match_the_single_sim_over_24k_events() {
    let mut total_events = 0;
    for seed in [0x5eed_0001u64, 0xdead_beef, 0x7777_1234] {
        let mut src = Source::record(seed);
        let ops = script(&mut src, 16, 170, 3);
        let lookahead = 1 + src.draw_below(500);
        let oracle = run_workload(&ops, lookahead, 1, ExecMode::Threaded);
        total_events += oracle.events;
        for shards in [2usize, 3, 4, 16] {
            let threaded = run_workload(&ops, lookahead, shards, ExecMode::Threaded);
            let serial = run_workload(&ops, lookahead, shards, ExecMode::Serial);
            assert_eq!(
                oracle, threaded,
                "threaded {shards}-shard streams diverged (seed {seed:#x})"
            );
            assert_eq!(
                oracle, serial,
                "serial {shards}-shard streams diverged (seed {seed:#x})"
            );
        }
    }
    assert!(
        total_events >= 24_000,
        "workload too small: {total_events} events"
    );
}

/// Derives a small scripted workload from a bare seed (for the shrinkable
/// properties, where the generator draws only scalars).
fn script_from_seed(seed: u64, nodes: usize, steps: usize) -> Vec<NodeOps> {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut draw = move |below: u64| splitmix64(&mut state) % below.max(1);
    (0..nodes)
        .map(|_| NodeOps {
            steps: (0..steps)
                .map(|_| StepOp {
                    sleep: 1 + draw(2000),
                    sends: (0..draw(3))
                        .filter(|_| nodes > 1)
                        .map(|_| (draw(nodes as u64) as usize, draw(1000), draw(u64::MAX)))
                        .collect(),
                })
                .collect(),
        })
        .collect()
}

props! {
    cases = 24;

    /// Shrinkable differential: any small workload keeps the threaded and
    /// serial window executors in lock-step with the single-`Sim` oracle,
    /// at any legal shard count.
    fn sharded_streams_match_the_oracle(
        cfg in zip3(usize_in(1..9), usize_in(1..12), any_u64()),
        shard_pick in any_u64(),
        lookahead in u64_in(1..400),
    ) {
        let (nodes, steps, seed) = cfg;
        let shards = 1 + (shard_pick as usize) % nodes;
        let ops = script_from_seed(seed, nodes, steps);
        let oracle = run_workload(&ops, lookahead, 1, ExecMode::Threaded);
        let threaded = run_workload(&ops, lookahead, shards, ExecMode::Threaded);
        let serial = run_workload(&ops, lookahead, shards, ExecMode::Serial);
        prop_assert_eq!(&oracle, &threaded);
        prop_assert_eq!(&oracle, &serial);
    }

    /// The conservative safety property, over random topologies, seeds and
    /// shard assignments: within every window, no shard executes at or
    /// past the safe horizon, no cross-shard message lands before the
    /// horizon (lookahead is never violated), shard clocks never run
    /// backwards, and horizons strictly advance.
    fn windows_never_breach_the_safe_horizon(
        cfg in zip3(usize_in(2..10), usize_in(1..10), any_u64()),
        shard_pick in any_u64(),
        lookahead in u64_in(1..600),
    ) {
        let (nodes, steps, seed) = cfg;
        let shards = 1 + (shard_pick as usize) % nodes;
        let ops = script_from_seed(seed, nodes, steps);
        let cfg = ShardConfig {
            observe_windows: true,
            ..ShardConfig::new(shards, lookahead)
        };
        let nodes_total = ops.len();
        let builders: Vec<Builder<Msg, ()>> = (0..shards)
            .map(|s| {
                let ops = ops.clone();
                Box::new(move |ctx: &ShardCtx<Msg>| {
                    ctx.on_message(|_, _| {});
                    for node in
                        (0..nodes_total).filter(|&n| shard_of(n, nodes_total, ctx.shards()) == s)
                    {
                        let script = ops[node].clone();
                        let tx = ctx.sender();
                        let sim = ctx.sim().clone();
                        ctx.sim().spawn(async move {
                            for step in script.steps {
                                sim.sleep(step.sleep).await;
                                for (dst, delay, tag) in step.sends {
                                    let arrival = sim.now() + tx.lookahead() + delay;
                                    tx.send(
                                        shard_of(dst, nodes_total, tx.shards()),
                                        arrival,
                                        (node, dst, tag),
                                    );
                                }
                            }
                        });
                    }
                    Box::new(|| ()) as Box<dyn FnOnce()>
                }) as Builder<Msg, ()>
            })
            .collect();
        let out = run_sharded(&cfg, builders);
        let log = out.window_log.expect("observe_windows records the log");
        prop_assert_eq!(log.len() as u64, out.windows);
        let mut prev_horizon = None;
        for record in &log {
            if let Some(prev) = prev_horizon {
                prop_assert!(record.horizon > prev, "horizon did not advance");
            }
            prev_horizon = Some(record.horizon);
            for shard in &record.shards {
                prop_assert!(shard.after >= shard.before, "a shard clock ran backwards");
                prop_assert!(
                    shard.after < record.horizon,
                    "a shard executed at or past the safe horizon"
                );
                if let Some(arrival) = shard.sent_min_arrival {
                    prop_assert!(
                        arrival >= record.horizon,
                        "a message landed inside its own window"
                    );
                }
            }
        }
    }
}
