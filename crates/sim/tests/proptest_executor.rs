//! Property tests for the simulation kernel: determinism under arbitrary
//! task graphs, timer ordering, and resource serialization.
//!
//! Ported from proptest to `shrimp-testkit` (hermetic, zero external
//! deps). Mapping: `proptest! { #![proptest_config(with_cases(32))] }` →
//! `props! { cases = 32; }`; `prop::collection::vec(g, r)` → `vec_of(g,
//! r)`; `0u64..500` → `u64_in(0..500)`. Property intent and case counts
//! unchanged.

use shrimp_sim::sync::Resource;
use shrimp_sim::{time, Sim};
use shrimp_testkit::prop::*;
use shrimp_testkit::{prop_assert, prop_assert_eq, props};
use std::cell::RefCell;
use std::rc::Rc;

props! {
    cases = 32;

    /// Any mix of sleeping tasks produces the identical event log on a
    /// second run — the determinism everything else relies on.
    fn arbitrary_task_graphs_are_deterministic(
        delays in vec_of(vec_of(u64_in(0..500), 1..6), 1..8),
    ) {
        let run = |delays: &[Vec<u64>]| -> (u64, Vec<(usize, u64)>) {
            let sim = Sim::new();
            let log: Rc<RefCell<Vec<(usize, u64)>>> = Rc::new(RefCell::new(Vec::new()));
            for (id, ds) in delays.iter().enumerate() {
                let sim2 = sim.clone();
                let ds = ds.clone();
                let log = log.clone();
                sim.spawn(async move {
                    for d in ds {
                        sim2.sleep(time::ns(d)).await;
                        log.borrow_mut().push((id, sim2.now()));
                    }
                });
            }
            let t = sim.run_to_completion();
            let l = log.borrow().clone();
            (t, l)
        };
        prop_assert_eq!(run(&delays), run(&delays));
    }

    /// Scheduled callbacks fire in nondecreasing time order, with ties in
    /// scheduling order.
    fn timers_fire_in_order(times in vec_of(u64_in(0..1000), 1..30)) {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &t) in times.iter().enumerate() {
            let log = log.clone();
            let sim2 = sim.clone();
            sim.schedule(time::ns(t), move || log.borrow_mut().push((sim2.now(), i)));
        }
        sim.run();
        let l = log.borrow();
        prop_assert_eq!(l.len(), times.len());
        for w in l.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "fired out of time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broke scheduling order");
            }
        }
    }

    /// Resource reservations never overlap and preserve request order.
    fn resource_intervals_disjoint(durations in vec_of(u64_in(1..1000), 1..25)) {
        let sim = Sim::new();
        let r = Resource::new();
        let mut prev_end = 0;
        let mut total = 0;
        for &d in &durations {
            let (start, end) = r.reserve(&sim, d);
            prop_assert!(start >= prev_end, "overlapping reservation");
            prop_assert_eq!(end - start, d);
            prev_end = end;
            total += d;
        }
        prop_assert_eq!(r.total_busy(), total);
    }

    /// Queue delivery preserves FIFO order for any send/receive schedule.
    fn queue_is_fifo_under_interleaving(
        batch_sizes in vec_of(usize_in(1..6), 1..10),
    ) {
        let sim = Sim::new();
        let (tx, rx) = shrimp_sim::queue::unbounded::<u32>();
        let total: usize = batch_sizes.iter().sum();
        {
            let sim2 = sim.clone();
            let batches = batch_sizes.clone();
            sim.spawn(async move {
                let mut next = 0u32;
                for b in batches {
                    for _ in 0..b {
                        tx.send(next);
                        next += 1;
                    }
                    sim2.sleep(time::ns(50)).await;
                }
            });
        }
        let h = sim.spawn(async move {
            let mut got = Vec::new();
            for _ in 0..total {
                got.push(rx.recv().await.unwrap());
            }
            got
        });
        sim.run_to_completion();
        prop_assert_eq!(h.try_take().unwrap(), (0..total as u32).collect::<Vec<_>>());
    }
}
