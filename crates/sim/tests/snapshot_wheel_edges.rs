//! Regression tests for timer-wheel snapshots at the structure's edges:
//! overflow-heap entries beyond the 2^36 ps horizon, pre-heap entries
//! scheduled behind the cursor after a non-firing peek, and
//! generation-tag reuse across a restore boundary.
//!
//! A quiesced `Sim` never snapshots a wheel with pending entries, but the
//! wheel codec itself supports them (cluster-level tooling and future
//! mid-run checkpoints rely on it), so each edge region must round-trip
//! and then *behave* identically — pop order, stale-handle rejection,
//! slot recycling — on both sides of the boundary.

use shrimp_sim::wheel::TimerWheel;
use shrimp_sim::{SnapshotError, SnapshotReader, SnapshotWriter};

/// 2^36 ps: deadlines further than this from the cursor sit in the
/// overflow heap (mirrors the wheel's internal `HORIZON`).
const HORIZON: u64 = 1 << 36;

fn snapshot(w: &TimerWheel<u64>) -> Vec<u8> {
    let mut sw = SnapshotWriter::new();
    w.snapshot_into(&mut sw, |v| Ok(v.to_le_bytes().to_vec()))
        .expect("u64 payloads always encode");
    sw.finish()
}

fn restore(bytes: &[u8]) -> TimerWheel<u64> {
    let mut r = SnapshotReader::new(bytes).expect("framed artifact");
    let w = TimerWheel::restore_from(&mut r, |b| {
        b.try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| SnapshotError::Corrupt("payload is not 8 bytes"))
    })
    .expect("artifact restores");
    r.finish().expect("no trailing bytes");
    w
}

fn drain(w: &mut TimerWheel<u64>) -> Vec<(u64, u64)> {
    std::iter::from_fn(|| w.pop()).collect()
}

/// Entries beyond the 2^36 ps horizon live in the overflow heap; a
/// snapshot taken while they pend must restore them into the identical
/// pop position, interleaved with wheel-resident entries.
#[test]
fn overflow_entries_beyond_the_horizon_survive_restore() {
    let mut w: TimerWheel<u64> = TimerWheel::new();
    w.insert(HORIZON + 5, 0);
    w.insert((1 << 40) + 123, 1);
    w.insert(10, 2);
    w.insert(HORIZON - 1, 3); // just inside the horizon: wheel-resident
    w.insert(HORIZON + 5, 4); // same overflow deadline: seq order must hold

    let bytes = snapshot(&w);
    let mut r = restore(&bytes);
    assert_eq!(
        snapshot(&r),
        bytes,
        "restore → snapshot is not the identity"
    );

    let popped = drain(&mut r);
    assert_eq!(
        popped,
        vec![
            (10, 2),
            (HORIZON - 1, 3),
            (HORIZON + 5, 0),
            (HORIZON + 5, 4),
            ((1 << 40) + 123, 1),
        ]
    );
    assert_eq!(drain(&mut w), popped, "original and restored disagreed");
}

/// A peek may advance the cursor without firing; an entry then scheduled
/// at an earlier deadline lands in the pre heap. A snapshot at that exact
/// point must preserve it — and it must still pop first after restore.
#[test]
fn pre_heap_inserts_behind_the_cursor_survive_restore() {
    let mut w: TimerWheel<u64> = TimerWheel::new();
    w.insert(1 << 20, 0);
    assert_eq!(w.peek_deadline(), Some(1 << 20)); // may advance the cursor
    w.insert(5, 1); // behind the cursor: the pre-heap hazard

    let bytes = snapshot(&w);
    let mut r = restore(&bytes);
    assert_eq!(snapshot(&r), bytes);

    assert_eq!(r.peek_deadline(), Some(5), "pre-heap entry lost precedence");
    let popped = drain(&mut r);
    assert_eq!(popped, vec![(5, 1), (1 << 20, 0)]);
    assert_eq!(drain(&mut w), popped);
}

/// Generation tags must survive a restore so that (a) a handle minted
/// before the snapshot is rejected as stale on the restored wheel exactly
/// when it is on the original, and (b) slot recycling after restore mints
/// the same generation-tagged ids as the original would have.
#[test]
fn generation_tags_stay_inert_and_recycle_identically_across_restore() {
    let mut w: TimerWheel<u64> = TimerWheel::new();
    let cancelled = w.insert(10, 0);
    let live = w.insert(20, 1);
    let fired = w.insert(1, 2);
    assert!(w.cancel(cancelled));
    assert_eq!(w.pop(), Some((1, 2))); // fires and releases its slot

    let bytes = snapshot(&w);
    let mut r = restore(&bytes);
    assert_eq!(snapshot(&r), bytes);

    // Stale handles from before the snapshot are no-ops on both wheels.
    assert!(!w.cancel(cancelled) && !r.cancel(cancelled));
    assert!(!w.cancel(fired) && !r.cancel(fired));

    // New inserts recycle the released slots with bumped generations —
    // identically, so the minted handles agree across the boundary.
    let w_new = w.insert(30, 3);
    let r_new = r.insert(30, 3);
    assert_eq!(w_new, r_new, "slot recycling diverged after restore");
    assert_ne!(w_new, fired, "recycled slot must carry a fresh generation");

    // Handles minted before the snapshot still act on live entries.
    assert!(r.cancel(live) && w.cancel(live));
    assert_eq!(drain(&mut w), drain(&mut r));
}

/// Cancelled residue snapshots without consulting payloads at all — the
/// property `Sim::snapshot` relies on to serialize a quiesced executor
/// whose wheel still holds unserializable cancelled wakers.
#[test]
fn cancelled_residue_snapshots_without_touching_payloads() {
    let mut w: TimerWheel<u64> = TimerWheel::new();
    let a = w.insert(50, 7);
    assert!(w.cancel(a));

    let mut sw = SnapshotWriter::new();
    w.snapshot_into(&mut sw, |_| {
        Err(SnapshotError::NotQuiesced("encode must never run"))
    })
    .expect("cancelled payloads are skipped");
    let bytes = sw.finish();

    let mut r = SnapshotReader::new(&bytes).unwrap();
    let mut restored: TimerWheel<u64> = TimerWheel::restore_from(&mut r, |_| {
        Err(SnapshotError::Corrupt("decode must never run"))
    })
    .expect("cancelled residue restores");
    r.finish().unwrap();

    assert_eq!(restored.len(), 0);
    // Popping sweeps the cancelled residue onto the free list — on both
    // wheels, so the next insert recycles the identical slot/generation.
    assert_eq!(restored.pop(), None);
    assert_eq!(w.pop(), None);
    assert_eq!(w.insert(9, 8), restored.insert(9, 8));
}
