//! Property tests for `HistogramSnapshot::quantile`: the within-bucket
//! linear interpolation must be monotone in `q`, exact at the `[min, max]`
//! edges, exact on single-valued data, and never stray outside the bucket
//! holding the target rank by more than the clamp allows.

use shrimp_sim::metrics::{bucket_of, HistogramSnapshot, MetricValue, MetricsRegistry};
use shrimp_sim::Category;
use shrimp_testkit::prop::*;
use shrimp_testkit::{prop_assert, prop_assert_eq, props};

/// Builds a snapshot histogram from raw observations.
fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let m = MetricsRegistry::new();
    m.enable();
    for &v in values {
        m.observe(Category::App, "q", v);
    }
    let snap = m.snapshot();
    match snap.get(Category::App, "q") {
        Some(MetricValue::Histogram(h)) => h.clone(),
        _ => panic!("expected a histogram"),
    }
}

props! {
    cases = 64;

    fn quantile_monotone_and_clamped(
        values in vec_of(u64_in(0..1_000_000_000), 1..40),
        qs in vec_of(u64_in(0..1001), 2..16)
    ) {
        let h = hist_of(&values);
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        let mut qs: Vec<f64> = qs.iter().map(|&q| q as f64 / 1000.0).collect();
        qs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut prev = None;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= min && v <= max, "quantile {} outside [{}, {}]", v, min, max);
            if let Some(p) = prev {
                prop_assert!(v >= p, "quantile not monotone: q={} gave {} after {}", q, v, p);
            }
            prev = Some(v);
        }
        prop_assert_eq!(h.quantile(0.0), min);
        prop_assert_eq!(h.quantile(1.0), max);
    }

    fn quantile_exact_on_single_valued_data(
        value in u64_in(0..u64::MAX),
        n in u64_in(1..100),
        q in u64_in(0..1001)
    ) {
        let values = vec![value; n as usize];
        let h = hist_of(&values);
        prop_assert_eq!(h.quantile(q as f64 / 1000.0), value);
    }

    fn quantile_lands_in_the_rank_bucket(
        values in vec_of(u64_in(1..1_000_000), 1..40)
    ) {
        // The median estimate must sit in the same power-of-two bucket as
        // the true median order statistic (or be clamped to min/max).
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let true_median = sorted[(sorted.len() - 1) / 2];
        let est = h.quantile(0.5);
        let lo_bucket = bucket_of(true_median).saturating_sub(1);
        let hi_bucket = bucket_of(true_median) + 1;
        let b = bucket_of(est);
        prop_assert!(
            (lo_bucket..=hi_bucket).contains(&b),
            "median estimate {} (bucket {}) far from true median {} (bucket {})",
            est, b, true_median, bucket_of(true_median)
        );
    }
}
