//! Seed-stability regression tests for [`shrimp_sim::rng::rng_for`].
//!
//! Every experiment's workload is a pure function of its `rng_for` stream,
//! so changing the generator or the seeding scheme silently changes every
//! experiment in the repository at once. These golden values pin the
//! streams: an RNG refactor that alters them must update this file
//! *deliberately* and note the cross-experiment impact in EXPERIMENTS.md.

use shrimp_sim::rng::{rng_for, rng_for_entity, OpenLoopArrivals, SimRng, ZipfSampler};

#[test]
fn fig3_seed1_first_draws_are_pinned() {
    let mut rng = rng_for("fig3", 1);
    let got: Vec<u64> = (0..8).map(|_| rng.gen_u64()).collect();
    assert_eq!(
        got,
        vec![
            0xd476_8a01_d53a_527e,
            0x976f_8380_b998_d3d4,
            0x4ef7_fec7_eeea_f263,
            0xd3d7_1fcb_7dea_4959,
            0xe12b_909e_e0c5_fe17,
            0x9ad0_1669_c26f_e04a,
            0xa754_0af3_18f0_f3b4,
            0x3fc3_8549_a561_5823,
        ],
        "rng_for(\"fig3\", 1) stream changed — every experiment reshuffles"
    );
}

#[test]
fn workload_streams_are_pinned() {
    // The two streams the Table 1 applications actually consume: Radix key
    // generation (node 0) and Barnes body generation.
    let mut radix = rng_for("radix", 1);
    assert_eq!(radix.gen_u64(), 0x348a_372f_9572_d317);
    assert_eq!(radix.gen_u64(), 0x8b26_6584_4956_6571);
    let mut barnes = rng_for("barnes", 3);
    assert_eq!(barnes.gen_u64(), 0x9e0e_5581_a640_558e);
    assert_eq!(barnes.gen_u64(), 0x825c_dd23_81bd_a6fa);
}

#[test]
fn streams_restart_identically_after_partial_consumption() {
    let mut a = rng_for("fig3", 1);
    let _ = (a.gen_u64(), a.gen_u64(), a.gen_u64());
    let mut b = rng_for("fig3", 1);
    assert_eq!(b.gen_u64(), 0xd476_8a01_d53a_527e);
}

#[test]
fn serialized_rng_state_is_pinned_and_resumes_byte_identically() {
    // The checkpoint plane serializes RNG streams as their raw xoshiro
    // state words; these pins freeze both the state layout after partial
    // consumption and the resume semantics of `from_state`.
    let mut a = rng_for("fig3", 1);
    for _ in 0..3 {
        a.gen_u64();
    }
    assert_eq!(
        a.state(),
        [
            0xe53c_e2ec_1c92_5de2,
            0x4610_b340_9905_6dc2,
            0x7f72_d0ed_ece6_e166,
            0xca9a_0cf1_17e7_60e0,
        ],
        "rng_for(\"fig3\", 1) state after 3 draws changed — \
         every restored checkpoint reshuffles"
    );
    let mut b = SimRng::from_state(a.state());
    for _ in 0..8 {
        assert_eq!(a.gen_u64(), b.gen_u64(), "restored stream diverged");
    }
    assert_eq!(a.state(), b.state(), "states diverged after resume");
}

#[test]
fn kv_workload_sampler_streams_are_pinned() {
    // The KV experiment group's load is a pure function of these two
    // streams: Zipf key popularity over the keyspace and the open-loop
    // arrival process. A sampler or RNG change that shifts them reshuffles
    // every kv sweep row, so the first draws are frozen here.
    let z = ZipfSampler::new(4096);
    let mut rng = rng_for("kv", 1);
    let ranks: Vec<usize> = (0..8).map(|_| z.sample(&mut rng)).collect();
    assert_eq!(
        ranks,
        vec![1492, 2522, 1, 112, 1525, 2, 0, 0],
        "ZipfSampler(4096) stream for rng_for(\"kv\", 1) changed — \
         every kv sweep row reshuffles"
    );
    let mut arr = OpenLoopArrivals::new(2_000_000, 0);
    let mut rng = rng_for("kv-load", 1);
    let times: Vec<u64> = (0..8).map(|_| arr.next(&mut rng)).collect();
    assert_eq!(
        times,
        vec![
            6_289_702, 6_398_067, 7_939_608, 8_904_379, 12_361_314, 13_385_039, 14_442_517,
            15_427_161,
        ],
        "OpenLoopArrivals(mean 2 us) stream for rng_for(\"kv-load\", 1) changed — \
         every kv sweep row reshuffles"
    );
}

#[test]
fn entity_streams_are_pinned() {
    // Per-entity streams are what the sharded fault plane re-derives on
    // restore, so both the draws and the serialized state are frozen.
    let mut e = rng_for_entity("faults", 1, 7);
    assert_eq!(e.gen_u64(), 0x9412_9c9c_e7ff_dd2d);
    assert_eq!(e.gen_u64(), 0x307d_bb8a_c915_4acf);
    assert_eq!(
        e.state(),
        [
            0x9613_9d59_033e_f59e,
            0x47ed_dbc2_1274_6f7c,
            0xc7d4_add1_4343_61f9,
            0x07a2_f3b6_b21a_b702,
        ],
        "rng_for_entity(\"faults\", 1, 7) state after 2 draws changed"
    );
    assert_eq!(
        rng_for_entity("faults", 1, 8).gen_u64(),
        0xddb4_b161_274c_68e9,
        "adjacent entity stream changed"
    );
}
