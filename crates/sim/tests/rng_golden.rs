//! Seed-stability regression tests for [`shrimp_sim::rng::rng_for`].
//!
//! Every experiment's workload is a pure function of its `rng_for` stream,
//! so changing the generator or the seeding scheme silently changes every
//! experiment in the repository at once. These golden values pin the
//! streams: an RNG refactor that alters them must update this file
//! *deliberately* and note the cross-experiment impact in EXPERIMENTS.md.

use shrimp_sim::rng::rng_for;

#[test]
fn fig3_seed1_first_draws_are_pinned() {
    let mut rng = rng_for("fig3", 1);
    let got: Vec<u64> = (0..8).map(|_| rng.gen_u64()).collect();
    assert_eq!(
        got,
        vec![
            0xd476_8a01_d53a_527e,
            0x976f_8380_b998_d3d4,
            0x4ef7_fec7_eeea_f263,
            0xd3d7_1fcb_7dea_4959,
            0xe12b_909e_e0c5_fe17,
            0x9ad0_1669_c26f_e04a,
            0xa754_0af3_18f0_f3b4,
            0x3fc3_8549_a561_5823,
        ],
        "rng_for(\"fig3\", 1) stream changed — every experiment reshuffles"
    );
}

#[test]
fn workload_streams_are_pinned() {
    // The two streams the Table 1 applications actually consume: Radix key
    // generation (node 0) and Barnes body generation.
    let mut radix = rng_for("radix", 1);
    assert_eq!(radix.gen_u64(), 0x348a_372f_9572_d317);
    assert_eq!(radix.gen_u64(), 0x8b26_6584_4956_6571);
    let mut barnes = rng_for("barnes", 3);
    assert_eq!(barnes.gen_u64(), 0x9e0e_5581_a640_558e);
    assert_eq!(barnes.gen_u64(), 0x825c_dd23_81bd_a6fa);
}

#[test]
fn streams_restart_identically_after_partial_consumption() {
    let mut a = rng_for("fig3", 1);
    let _ = (a.gen_u64(), a.gen_u64(), a.gen_u64());
    let mut b = rng_for("fig3", 1);
    assert_eq!(b.gen_u64(), 0xd476_8a01_d53a_527e);
}
