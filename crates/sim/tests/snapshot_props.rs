//! Property tests for `Sim` checkpoint/restore: a simulator snapshotted at
//! an arbitrary quiesce point and restored must execute the *remaining*
//! event stream byte-identically to the original that kept running.
//!
//! Each case draws a random task stream and a random cut point. The prefix
//! runs to quiescence, the simulator is snapshotted and restored, and then
//! the suffix runs on both the original and the restored simulator. The
//! completion logs must match event for event, and the two final snapshots
//! must be byte-identical — which pins not just observable behavior but
//! the whole structural residue (clock, event counter, timer-wheel cursor
//! and generations, task-slab free list) that future behavior depends on.
//!
//! Cases come from `shrimp-testkit` choice sources, so failures replay and
//! shrink deterministically.

use std::cell::RefCell;
use std::rc::Rc;

use shrimp_sim::{time, Sim};
use shrimp_testkit::prop::*;
use shrimp_testkit::{prop_assert, prop_assert_eq, props};

/// Spawns one task per spec (a list of sleep delays), runs the simulator
/// to quiescence, and returns the completion log of `(task id, sim time)`
/// pairs in execution order.
fn run_phase(sim: &Sim, specs: &[Vec<u64>], base: usize) -> Vec<(usize, u64)> {
    let log: Rc<RefCell<Vec<(usize, u64)>>> = Rc::new(RefCell::new(Vec::new()));
    for (i, ds) in specs.iter().enumerate() {
        let id = base + i;
        let sim2 = sim.clone();
        let ds = ds.clone();
        let log = log.clone();
        sim.spawn(async move {
            for d in ds {
                sim2.sleep(time::ns(d)).await;
                log.borrow_mut().push((id, sim2.now()));
            }
        });
    }
    sim.run_to_completion();
    let out = log.borrow().clone();
    out
}

/// The core property, shared by the shrinking and the volume tests:
/// snapshot after `prefix`, restore, run `suffix` on both, compare.
fn check_split(prefix: &[Vec<u64>], suffix: &[Vec<u64>]) {
    let sim = Sim::new();
    run_phase(&sim, prefix, 0);
    assert!(sim.is_quiesced(), "run_to_completion left pending work");

    let bytes = sim.snapshot().expect("quiesced sim must snapshot");
    let restored = Sim::restore(&bytes).expect("snapshot must restore");
    assert_eq!(restored.now(), sim.now(), "restored clock diverged");
    assert_eq!(
        restored.events(),
        sim.events(),
        "restored event count diverged"
    );
    assert_eq!(
        restored.snapshot().expect("restored sim is quiesced"),
        bytes,
        "restore → snapshot is not the identity"
    );

    let log_original = run_phase(&sim, suffix, prefix.len());
    let log_restored = run_phase(&restored, suffix, prefix.len());
    assert_eq!(
        log_original, log_restored,
        "remaining event stream diverged after restore"
    );
    assert_eq!(
        sim.snapshot().unwrap(),
        restored.snapshot().unwrap(),
        "final snapshots diverged — structural residue differs"
    );
}

/// Volume run: 3 independent choice streams, each with a random task
/// stream and a random quiesce point, including sub-slot and multi-level
/// sleep magnitudes.
#[test]
fn random_streams_with_random_quiesce_points_restore_identically() {
    for seed in [0x5eed_0003u64, 0xc4ec_4b01, 0x0b5e_55ed] {
        let mut src = Source::record(seed);
        let ntasks = 4 + src.draw_below(12) as usize;
        let tasks: Vec<Vec<u64>> = (0..ntasks)
            .map(|_| {
                let n = 1 + src.draw_below(8) as usize;
                (0..n).map(|_| src.draw_below(100_000)).collect()
            })
            .collect();
        let cut = src.draw() as usize % (tasks.len() + 1);
        let (prefix, suffix) = tasks.split_at(cut);
        check_split(prefix, suffix);
    }
}

props! {
    cases = 32;

    /// Shrinkable version: any small task stream, cut anywhere, restores
    /// and resumes byte-identically.
    fn snapshot_round_trip_resumes_byte_identically(
        tasks in vec_of(vec_of(u64_in(0..500), 1..6), 2..10),
        cut_sel in any_u64(),
    ) {
        let cut = (cut_sel as usize) % (tasks.len() + 1);
        let (prefix, suffix) = tasks.split_at(cut);
        check_split(prefix, suffix);
        prop_assert!(true);
    }

    /// A snapshot taken mid-conversation is refused: with live tasks or
    /// pending timers the state is not expressible as plain data, and the
    /// API must say so rather than emit a partial artifact.
    fn unquiesced_sims_refuse_to_snapshot(delay in u64_in(1..1000)) {
        let sim = Sim::new();
        let sim2 = sim.clone();
        sim.spawn(async move { sim2.sleep(time::ns(delay)).await });
        prop_assert!(!sim.is_quiesced());
        prop_assert!(sim.snapshot().is_err());
        sim.run_to_completion();
        prop_assert!(sim.snapshot().is_ok());
        prop_assert_eq!(sim.now(), time::ns(delay));
    }
}
