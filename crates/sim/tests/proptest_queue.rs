//! Property tests for queue waker correctness under the single-waiter-fast
//! waiter representation: no lost wakeups when a receiver is dropped
//! mid-await (its stale waker must not eat another receiver's wakeup) or
//! when two receivers contend for one queue.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use shrimp_sim::{time, unbounded, Sim};
use shrimp_testkit::prop::*;
use shrimp_testkit::{prop_assert_eq, props};

/// Polls `fut` exactly once; if it is still pending, DROPS it and yields
/// `Err(())`. This abandons a `Recv` after it parked its waker — the
/// mid-await drop the waiter set must tolerate.
struct PollOnce<F: Future + Unpin>(Option<F>);

impl<F: Future + Unpin> Future for PollOnce<F> {
    type Output = Result<F::Output, ()>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let fut = self.0.as_mut().expect("PollOnce polled after completion");
        match Pin::new(fut).poll(cx) {
            Poll::Ready(v) => Poll::Ready(Ok(v)),
            Poll::Pending => {
                // Drop the future (and its parked waker) mid-await.
                self.0 = None;
                Poll::Ready(Err(()))
            }
        }
    }
}

props! {
    cases = 32;

    /// A receiver that abandons its `recv` future whenever it would block
    /// (dropping the parked waker) and retries after a sleep still drains
    /// every item; `run_to_completion` proves no wakeup was lost (a lost
    /// wakeup deadlocks the receiver and panics).
    fn dropped_mid_await_receiver_loses_nothing(
        delays in vec_of(u64_in(0..50), 1..40),
        retry in u64_in(1..20),
    ) {
        let sim = Sim::new();
        let (tx, rx) = unbounded::<usize>();
        let n = delays.len();
        {
            let sim = sim.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                for (i, d) in delays.into_iter().enumerate() {
                    sim2.sleep(time::ns(d)).await;
                    tx.send(i);
                }
                tx.close();
            });
        }
        let got: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let got = got.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                loop {
                    match PollOnce(Some(rx.recv())).await {
                        Ok(Some(v)) => got.borrow_mut().push(v),
                        Ok(None) => break, // closed and drained
                        Err(()) => sim2.sleep(time::ns(retry)).await,
                    }
                }
            });
        }
        sim.run_to_completion();
        // FIFO order must survive the churn, too.
        prop_assert_eq!(&*got.borrow(), &(0..n).collect::<Vec<_>>());
    }

    /// Two receivers contending on one queue: every item is delivered
    /// exactly once, nobody deadlocks, and the winner of each item is
    /// deterministic (two runs assign identically).
    fn two_contending_receivers_get_everything_exactly_once(
        delays in vec_of(u64_in(0..40), 1..30),
    ) {
        let run = |delays: &[u64]| -> Vec<(u8, usize)> {
            let sim = Sim::new();
            let (tx, rx) = unbounded::<usize>();
            let rx2 = rx.clone();
            {
                let sim2 = sim.clone();
                let delays = delays.to_vec();
                sim.spawn(async move {
                    for (i, &d) in delays.iter().enumerate() {
                        sim2.sleep(time::ns(d)).await;
                        tx.send(i);
                    }
                    tx.close();
                });
            }
            let log: Rc<RefCell<Vec<(u8, usize)>>> = Rc::new(RefCell::new(Vec::new()));
            for (tag, rx) in [(0u8, rx), (1u8, rx2)] {
                let log = log.clone();
                sim.spawn(async move {
                    while let Some(v) = rx.recv().await {
                        log.borrow_mut().push((tag, v));
                    }
                });
            }
            sim.run_to_completion();
            let l = log.borrow().clone();
            l
        };
        let first = run(&delays);
        // Exactly once, nothing lost.
        let mut items: Vec<usize> = first.iter().map(|&(_, v)| v).collect();
        items.sort_unstable();
        prop_assert_eq!(items, (0..delays.len()).collect::<Vec<_>>());
        // Deterministic assignment. (Which receiver wins each item is an
        // emergent property — a burst of sends can legitimately be drained
        // entirely by the first-parked receiver — but it must be the SAME
        // emergent property on every run.)
        prop_assert_eq!(first, run(&delays));
    }
}
