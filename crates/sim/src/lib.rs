//! Deterministic discrete-event simulation kernel for the SHRIMP reproduction.
//!
//! The SHRIMP empirical study (ISCA 1998) was performed on real hardware by
//! reprogramming network-interface firmware. This crate provides the synthetic
//! substrate on which we re-run those experiments: a single-threaded,
//! picosecond-resolution, *deterministic* discrete-event simulator whose
//! processes are ordinary Rust `async` functions.
//!
//! # Model
//!
//! * Simulated time is a [`Time`] in picoseconds.
//! * A [`Sim`] owns an event queue and a set of *processes* (futures).
//! * Processes advance simulated time only by awaiting [`Sim::sleep`],
//!   [`Sim::sleep_until`], or synchronization primitives ([`Queue`],
//!   [`Event`], [`Gate`], [`Resource`]).
//! * The run loop is deterministic: ready processes run in FIFO wake order and
//!   timers fire in `(time, sequence)` order, so two runs of the same program
//!   produce bit-identical schedules.
//!
//! # Example
//!
//! ```
//! use shrimp_sim::{Sim, time};
//!
//! let sim = Sim::new();
//! let (tx, rx) = shrimp_sim::queue::unbounded();
//! sim.spawn({
//!     let sim = sim.clone();
//!     async move {
//!         sim.sleep(time::us(5)).await;
//!         tx.send(42u32);
//!     }
//! });
//! let got = sim.spawn(async move { rx.recv().await });
//! let end = sim.run();
//! assert_eq!(end, time::us(5));
//! assert_eq!(got.try_take(), Some(Some(42)));
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod snapshot;
pub mod sync;
pub mod time;
pub mod trace;
pub mod wheel;

pub use executor::{Sim, TaskHandle};
pub use metrics::{HistogramSnapshot, MetricSample, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use queue::{unbounded, Queue, QueueReceiver, QueueSender};
pub use rng::SimRng;
pub use shard::{
    run_sharded, run_sharded_phased, Builder, PhasedBuilder, ShardConfig, ShardCtx, ShardOutcome,
    ShardPlan, ShardSender, Shards,
};
pub use snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
pub use sync::{Event, Gate, Resource, Semaphore};
pub use time::Time;
pub use trace::{Category, TraceEvent, TraceSink};
