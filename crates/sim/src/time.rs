//! Simulated time: picosecond-resolution timestamps and conversion helpers.
//!
//! Picoseconds in a `u64` cover roughly 213 days of simulated time, far more
//! than any experiment in the study, while keeping every hardware latency in
//! the model (down to single memory-bus cycles at 60 MHz) exactly
//! representable.

/// A point in (or span of) simulated time, in picoseconds.
pub type Time = u64;

/// Picoseconds per nanosecond.
pub const PS_PER_NS: Time = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: Time = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: Time = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_S: Time = 1_000_000_000_000;

/// Multiplies with an overflow check: `u64` picoseconds wrap silently in
/// release builds, and a wrapped timestamp is a wrong *schedule*, not a
/// crash — far harder to debug than this panic.
const fn scale(v: u64, ps_per_unit: Time) -> Time {
    match v.checked_mul(ps_per_unit) {
        Some(t) => t,
        None => panic!("time overflow: value in this unit exceeds u64 picoseconds (~213 days)"),
    }
}

/// Converts nanoseconds to [`Time`].
///
/// Panics if the result overflows `u64` picoseconds (~213 days of
/// simulated time):
///
/// ```
/// assert_eq!(shrimp_sim::time::ns(3), 3_000);
/// // The largest representable span in each unit still converts…
/// assert_eq!(shrimp_sim::time::ns(u64::MAX / 1_000), 18_446_744_073_709_551_000);
/// ```
///
/// ```should_panic
/// shrimp_sim::time::ns(u64::MAX / 1_000 + 1); // one past the boundary
/// ```
pub const fn ns(v: u64) -> Time {
    scale(v, PS_PER_NS)
}

/// Converts microseconds to [`Time`]. Panics on `u64` overflow.
pub const fn us(v: u64) -> Time {
    scale(v, PS_PER_US)
}

/// Converts milliseconds to [`Time`]. Panics on `u64` overflow.
pub const fn ms(v: u64) -> Time {
    scale(v, PS_PER_MS)
}

/// Converts seconds to [`Time`]. Panics on `u64` overflow — the silent
/// wrap this replaces turned e.g. `s(20_000_000)` into a *small* value:
///
/// ```
/// // 18 446 744 s (~213 days) is the last representable second count…
/// assert_eq!(shrimp_sim::time::s(18_446_744), 18_446_744_000_000_000_000);
/// ```
///
/// ```should_panic
/// shrimp_sim::time::s(18_446_745); // …and one more second overflows
/// ```
pub const fn s(v: u64) -> Time {
    scale(v, PS_PER_S)
}

/// Converts a [`Time`] to fractional seconds (for reporting).
pub fn to_secs(t: Time) -> f64 {
    t as f64 / PS_PER_S as f64
}

/// Converts a [`Time`] to fractional microseconds (for reporting).
pub fn to_us(t: Time) -> f64 {
    t as f64 / PS_PER_US as f64
}

/// Duration of `n` cycles of a clock running at `hz`.
///
/// Rounds to the nearest picosecond; at the 60 MHz SHRIMP node clock one cycle
/// is 16 667 ps.
///
/// ```
/// use shrimp_sim::time::cycles;
/// assert_eq!(cycles(1, 60_000_000), 16_667);
/// ```
pub const fn cycles(n: u64, hz: u64) -> Time {
    // n * PS_PER_S / hz, with u128 to avoid overflow for large n.
    ((n as u128 * PS_PER_S as u128 + (hz / 2) as u128) / hz as u128) as Time
}

/// Time to move `bytes` at `bytes_per_sec` (rounded up to whole picoseconds).
///
/// ```
/// use shrimp_sim::time::transfer;
/// // 200 bytes at 200 MB/s takes 1 microsecond.
/// assert_eq!(transfer(200, 200_000_000), shrimp_sim::time::us(1));
/// ```
pub const fn transfer(bytes: u64, bytes_per_sec: u64) -> Time {
    ((bytes as u128 * PS_PER_S as u128).div_ceil(bytes_per_sec as u128)) as Time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_compose() {
        assert_eq!(ns(1_000), us(1));
        assert_eq!(us(1_000), ms(1));
        assert_eq!(ms(1_000), s(1));
    }

    #[test]
    fn cycles_at_60mhz() {
        // 60 cycles at 60 MHz is exactly 1 us.
        assert_eq!(cycles(60, 60_000_000), us(1));
        // One cycle rounds to 16_667 ps.
        assert_eq!(cycles(1, 60_000_000), 16_667);
    }

    #[test]
    fn transfer_rounds_up() {
        // 1 byte at 1 GB/s is 1000 ps exactly.
        assert_eq!(transfer(1, 1_000_000_000), 1_000);
        // 1 byte at 3 GB/s is 333.3.. ps, rounded up to 334.
        assert_eq!(transfer(1, 3_000_000_000), 334);
    }

    #[test]
    fn to_secs_roundtrip() {
        assert!((to_secs(s(14)) - 14.0).abs() < 1e-12);
        assert!((to_us(us(7)) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_large_values_do_not_overflow() {
        // 4 GiB at 200 MB/s: 4294967296 / 2e8 s = 21.47.. s, or 5000 ps/byte.
        let t = transfer(4 << 30, 200_000_000);
        assert_eq!(t, (4u64 << 30) * 5_000);
    }
}
