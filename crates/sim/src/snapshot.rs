//! Versioned binary snapshot codec for deterministic checkpoint/restore.
//!
//! Every checkpoint artifact in the workspace — a quiesced [`crate::Sim`],
//! a generic timer-wheel dump, or a cluster-level warm-start checkpoint —
//! is framed by this module: an 8-byte magic (`SHRIMPCK`), a `u32` format
//! version, then a flat little-endian stream of primitive fields written
//! through [`SnapshotWriter`] and read back through [`SnapshotReader`].
//!
//! The format is deliberately boring: fixed-width integers, `u64`
//! length-prefixed byte strings, no alignment, no compression. Byte
//! determinism is the contract — the same logical state must always encode
//! to the same bytes, so container iteration order is normalized by the
//! *callers* (heaps are serialized as sorted vectors, hash maps as sorted
//! entry lists) before anything reaches the writer. CI `cmp`s checkpoint
//! artifacts produced by independent runs, so any nondeterminism here is a
//! loud failure, not a latent one.
//!
//! Decoding is total: every reader method returns a typed
//! [`SnapshotError`] instead of panicking, and [`SnapshotReader::finish`]
//! rejects trailing garbage so a truncated or over-long artifact can never
//! be silently accepted.

use std::error::Error;
use std::fmt;

/// Magic bytes opening every snapshot artifact.
pub const MAGIC: [u8; 8] = *b"SHRIMPCK";

/// Current snapshot format version.
///
/// Bump this when the field layout of any serialized structure changes;
/// readers reject artifacts from other versions rather than guessing.
pub const VERSION: u32 = 1;

/// A decoding or quiescence failure on the snapshot plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The artifact does not start with [`MAGIC`].
    BadMagic,
    /// The artifact's format version is not [`VERSION`].
    UnsupportedVersion(u32),
    /// The artifact ended before a field could be read.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes left in the artifact.
        remaining: usize,
    },
    /// A field decoded to a value that violates a structural invariant.
    Corrupt(&'static str),
    /// The simulation was not at a quiesce point when a snapshot was taken.
    NotQuiesced(&'static str),
    /// The checkpoint was produced by an incompatible run configuration.
    FingerprintMismatch,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot does not start with SHRIMPCK magic"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "snapshot format version {v} (this build reads {VERSION})"
                )
            }
            SnapshotError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "snapshot truncated: field needs {needed} bytes, {remaining} remain"
                )
            }
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::NotQuiesced(what) => {
                write!(f, "simulation not quiesced for snapshot: {what}")
            }
            SnapshotError::FingerprintMismatch => {
                write!(
                    f,
                    "checkpoint fingerprint does not match this run's configuration"
                )
            }
        }
    }
}

impl Error for SnapshotError {}

/// Appends primitive fields to a framed snapshot artifact.
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a new artifact: magic plus format version.
    pub fn new() -> SnapshotWriter {
        let mut w = SnapshotWriter {
            buf: Vec::with_capacity(256),
        };
        w.buf.extend_from_slice(&MAGIC);
        w.put_u32(VERSION);
        w
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a byte string with a `u64` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a UTF-8 string with a `u64` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Finishes the artifact and returns its bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        SnapshotWriter::new()
    }
}

/// Reads primitive fields back out of a framed snapshot artifact.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Opens an artifact, validating magic and format version.
    pub fn new(buf: &'a [u8]) -> Result<SnapshotReader<'a>, SnapshotError> {
        let mut r = SnapshotReader { buf, pos: 0 };
        let magic = r.take(MAGIC.len()).map_err(|_| SnapshotError::BadMagic)?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let remaining = self.buf.len() - self.pos;
        if remaining < n {
            return Err(SnapshotError::Truncated {
                needed: n,
                remaining,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`; any byte other than 0 or 1 is corrupt.
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool byte outside {0, 1}")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` that must fit in `usize` and stay within the artifact
    /// (a cheap bound that rejects absurd length prefixes before any
    /// allocation).
    pub fn get_len(&mut self) -> Result<usize, SnapshotError> {
        let v = self.get_u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if v > remaining {
            return Err(SnapshotError::Corrupt(
                "length prefix exceeds artifact size",
            ));
        }
        Ok(v as usize)
    }

    /// Reads a `u64`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.get_len()?;
        self.take(n)
    }

    /// Reads a `u64`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SnapshotError> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|_| SnapshotError::Corrupt("string field is not UTF-8"))
    }

    /// Asserts the whole artifact was consumed.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::Corrupt("trailing bytes after final field"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut w = SnapshotWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_bytes(b"payload");
        w.put_str("name");
        let bytes = w.finish();

        let mut r = SnapshotReader::new(&bytes).unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_bytes().unwrap(), b"payload");
        assert_eq!(r.get_str().unwrap(), "name");
        r.finish().unwrap();
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert_eq!(
            SnapshotReader::new(b"NOTMAGIC____").unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            SnapshotReader::new(b"SHRI").unwrap_err(),
            SnapshotError::BadMagic
        );

        let mut bytes = SnapshotWriter::new().finish();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            SnapshotReader::new(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn rejects_truncation_and_trailing_bytes() {
        let mut w = SnapshotWriter::new();
        w.put_u64(42);
        let bytes = w.finish();

        let mut r = SnapshotReader::new(&bytes[..bytes.len() - 1]).unwrap();
        assert!(matches!(
            r.get_u64(),
            Err(SnapshotError::Truncated {
                needed: 8,
                remaining: 7
            })
        ));

        let r = SnapshotReader::new(&bytes).unwrap();
        assert_eq!(
            r.finish().unwrap_err(),
            SnapshotError::Corrupt("trailing bytes after final field")
        );
    }

    #[test]
    fn rejects_absurd_length_prefix() {
        let mut w = SnapshotWriter::new();
        w.put_u64(u64::MAX); // length prefix far beyond the artifact
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        assert_eq!(
            r.get_bytes().unwrap_err(),
            SnapshotError::Corrupt("length prefix exceeds artifact size")
        );
    }

    #[test]
    fn rejects_non_bool_byte() {
        let mut w = SnapshotWriter::new();
        w.put_u8(2);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        assert_eq!(
            r.get_bool().unwrap_err(),
            SnapshotError::Corrupt("bool byte outside {0, 1}")
        );
    }
}
