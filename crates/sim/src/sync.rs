//! Synchronization primitives for simulation processes.
//!
//! * [`Event`] — one-shot flag; waiters block until it is set.
//! * [`Gate`] — reusable notification; waiters block until the next notify.
//! * [`Semaphore`] — counted permits with FIFO wakeup.
//! * [`Resource`] — a device that serves requests one at a time for a known
//!   duration (memory buses, network links, DMA engines); models occupancy
//!   and records total busy time for utilization reports.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::Sim;
use crate::time::Time;

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

struct EventInner {
    set: bool,
    waiters: Vec<Waker>,
}

/// A one-shot event: once [`Event::set`] is called, all current and future
/// waiters proceed immediately.
#[derive(Clone)]
pub struct Event {
    inner: Rc<RefCell<EventInner>>,
}

impl Default for Event {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field("set", &self.inner.borrow().set)
            .finish()
    }
}

impl Event {
    /// Creates an unset event.
    pub fn new() -> Self {
        Event {
            inner: Rc::new(RefCell::new(EventInner {
                set: false,
                waiters: Vec::new(),
            })),
        }
    }

    /// Sets the event, waking all waiters. Idempotent.
    pub fn set(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.set = true;
        for w in inner.waiters.drain(..) {
            w.wake();
        }
    }

    /// `true` once [`Event::set`] has been called.
    pub fn is_set(&self) -> bool {
        self.inner.borrow().set
    }

    /// Waits until the event is set.
    pub fn wait(&self) -> EventWait {
        EventWait {
            inner: self.inner.clone(),
        }
    }
}

/// Future returned by [`Event::wait`].
pub struct EventWait {
    inner: Rc<RefCell<EventInner>>,
}

impl Future for EventWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.inner.borrow_mut();
        if inner.set {
            Poll::Ready(())
        } else {
            inner.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------------

struct GateInner {
    epoch: u64,
    waiters: Vec<Waker>,
}

/// A reusable notification: [`Gate::wait`] blocks until the *next*
/// [`Gate::notify`] after the wait began.
///
/// Used for "something changed, re-check your condition" patterns — e.g. a
/// receive buffer page was written by incoming DMA and pollers should re-read
/// their flag words.
#[derive(Clone)]
pub struct Gate {
    inner: Rc<RefCell<GateInner>>,
}

impl Default for Gate {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Gate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gate")
            .field("epoch", &self.inner.borrow().epoch)
            .finish()
    }
}

impl Gate {
    /// Creates a gate.
    pub fn new() -> Self {
        Gate {
            inner: Rc::new(RefCell::new(GateInner {
                epoch: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Wakes every process currently blocked in [`Gate::wait`].
    pub fn notify(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.epoch += 1;
        for w in inner.waiters.drain(..) {
            w.wake();
        }
    }

    /// Waits for the next [`Gate::notify`].
    pub fn wait(&self) -> GateWait {
        GateWait {
            inner: self.inner.clone(),
            epoch: self.inner.borrow().epoch,
        }
    }
}

/// Future returned by [`Gate::wait`].
pub struct GateWait {
    inner: Rc<RefCell<GateInner>>,
    epoch: u64,
}

impl Future for GateWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.inner.borrow_mut();
        if inner.epoch != self.epoch {
            Poll::Ready(())
        } else {
            inner.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemInner {
    permits: usize,
    waiters: Vec<Waker>,
}

/// A counted semaphore with FIFO-ish wakeup (all waiters re-check on release;
/// poll order is deterministic).
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<RefCell<SemInner>>,
}

impl std::fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Semaphore")
            .field("permits", &self.inner.borrow().permits)
            .finish()
    }
}

impl Semaphore {
    /// Creates a semaphore holding `permits` permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            inner: Rc::new(RefCell::new(SemInner {
                permits,
                waiters: Vec::new(),
            })),
        }
    }

    /// Acquires one permit, waiting if none is available.
    pub fn acquire(&self) -> SemAcquire {
        SemAcquire {
            inner: self.inner.clone(),
        }
    }

    /// Returns one permit, waking waiters.
    pub fn release(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.permits += 1;
        for w in inner.waiters.drain(..) {
            w.wake();
        }
    }

    /// Currently available permits.
    pub fn permits(&self) -> usize {
        self.inner.borrow().permits
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct SemAcquire {
    inner: Rc<RefCell<SemInner>>,
}

impl Future for SemAcquire {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.inner.borrow_mut();
        if inner.permits > 0 {
            inner.permits -= 1;
            Poll::Ready(())
        } else {
            inner.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Resource
// ---------------------------------------------------------------------------

struct ResInner {
    busy_until: Time,
    total_busy: Time,
    reservations: u64,
}

/// A serially reusable device with known service times.
///
/// [`Resource::reserve`] books the next free interval and returns its
/// `(start, end)`; [`Resource::use_for`] additionally sleeps until the
/// interval completes. Requests are served in reservation order, which (in a
/// deterministic simulator) is arrival order — this models FIFO arbitration
/// such as the SHRIMP memory bus, which never cycle-shares between masters.
#[derive(Clone)]
pub struct Resource {
    inner: Rc<RefCell<ResInner>>,
}

impl Default for Resource {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Resource")
            .field("busy_until", &inner.busy_until)
            .field("total_busy", &inner.total_busy)
            .finish()
    }
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Resource {
            inner: Rc::new(RefCell::new(ResInner {
                busy_until: 0,
                total_busy: 0,
                reservations: 0,
            })),
        }
    }

    /// Books the next free interval of length `duration` starting no earlier
    /// than now. Returns `(start, end)` of the booked interval.
    pub fn reserve(&self, sim: &Sim, duration: Time) -> (Time, Time) {
        let mut inner = self.inner.borrow_mut();
        let start = inner.busy_until.max(sim.now());
        inner.busy_until = start + duration;
        inner.total_busy += duration;
        inner.reservations += 1;
        (start, inner.busy_until)
    }

    /// Books the resource for `duration` and waits until the booked interval
    /// ends. Returns the interval `(start, end)`.
    pub async fn use_for(&self, sim: &Sim, duration: Time) -> (Time, Time) {
        let (start, end) = self.reserve(sim, duration);
        sim.sleep_until(end).await;
        (start, end)
    }

    /// Time at which the most recently booked interval ends.
    pub fn busy_until(&self) -> Time {
        self.inner.borrow().busy_until
    }

    /// Sum of all booked service time (for utilization reporting).
    pub fn total_busy(&self) -> Time {
        self.inner.borrow().total_busy
    }

    /// Number of reservations made.
    pub fn reservations(&self) -> u64 {
        self.inner.borrow().reservations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;
    use crate::Sim;

    #[test]
    fn event_wakes_all_waiters() {
        let sim = Sim::new();
        let ev = Event::new();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let ev = ev.clone();
            handles.push(sim.spawn(async move {
                ev.wait().await;
            }));
        }
        let ev2 = ev.clone();
        sim.schedule(us(1), move || ev2.set());
        assert_eq!(sim.run_to_completion(), us(1));
        assert!(ev.is_set());
    }

    #[test]
    fn event_already_set_does_not_block() {
        let sim = Sim::new();
        let ev = Event::new();
        ev.set();
        sim.spawn(async move { ev.wait().await });
        assert_eq!(sim.run_to_completion(), 0);
    }

    #[test]
    fn gate_only_wakes_waiters_present_at_notify() {
        let sim = Sim::new();
        let gate = Gate::new();
        let g = gate.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            g.wait().await; // released by first notify
            let t1 = s.now();
            g.wait().await; // released by second notify
            (t1, s.now())
        });
        let g1 = gate.clone();
        sim.schedule(us(1), move || g1.notify());
        let g2 = gate.clone();
        sim.schedule(us(5), move || g2.notify());
        sim.run_to_completion();
        assert_eq!(h.try_take(), Some((us(1), us(5))));
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let active = Rc::new(RefCell::new((0u32, 0u32))); // (current, max)
        let mut handles = Vec::new();
        for _ in 0..5 {
            let sem = sem.clone();
            let active = active.clone();
            let s = sim.clone();
            handles.push(sim.spawn(async move {
                sem.acquire().await;
                {
                    let mut a = active.borrow_mut();
                    a.0 += 1;
                    a.1 = a.1.max(a.0);
                }
                s.sleep(us(1)).await;
                active.borrow_mut().0 -= 1;
                sem.release();
            }));
        }
        sim.run_to_completion();
        assert_eq!(active.borrow().1, 2);
        assert_eq!(sem.permits(), 2);
    }

    #[test]
    fn resource_serializes_back_to_back() {
        let sim = Sim::new();
        let bus = Resource::new();
        let (s1, e1) = bus.reserve(&sim, us(3));
        let (s2, e2) = bus.reserve(&sim, us(2));
        assert_eq!((s1, e1), (0, us(3)));
        assert_eq!((s2, e2), (us(3), us(5)));
        assert_eq!(bus.total_busy(), us(5));
        assert_eq!(bus.reservations(), 2);
    }

    #[test]
    fn resource_use_for_sleeps_to_interval_end() {
        let sim = Sim::new();
        let bus = Resource::new();
        let b1 = bus.clone();
        let s1 = sim.clone();
        let h1 = sim.spawn(async move { b1.use_for(&s1, us(4)).await });
        let b2 = bus.clone();
        let s2 = sim.clone();
        let h2 = sim.spawn(async move { b2.use_for(&s2, us(1)).await });
        let t = sim.run_to_completion();
        assert_eq!(t, us(5));
        assert_eq!(h1.try_take(), Some((0, us(4))));
        assert_eq!(h2.try_take(), Some((us(4), us(5))));
    }
}
