//! Deterministic random number generation for workloads.
//!
//! Every experiment seeds a [`SimRng`] explicitly, so a given
//! (experiment, seed) pair always produces the same workload and therefore
//! the same simulated schedule — a property the determinism tests assert.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG type used across the reproduction. A thin alias today; a newtype
/// would forbid the `Rng` trait methods workloads rely on.
pub type SimRng = StdRng;

/// Creates the deterministic RNG for `(experiment, seed)`.
///
/// The experiment name is folded into the seed so different experiments using
/// the same numeric seed draw independent streams.
///
/// ```
/// use rand::Rng;
/// let mut a = shrimp_sim::rng::rng_for("fig3", 1);
/// let mut b = shrimp_sim::rng::rng_for("fig3", 1);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn rng_for(experiment: &str, seed: u64) -> SimRng {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&seed.to_le_bytes());
    // FNV-1a over the experiment name, spread across the remaining words.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in experiment.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    bytes[8..16].copy_from_slice(&h.to_le_bytes());
    bytes[16..24].copy_from_slice(&h.rotate_left(17).to_le_bytes());
    bytes[24..32].copy_from_slice(&seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
    StdRng::from_seed(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = rng_for("x", 42);
        let mut b = rng_for("x", 42);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_experiment_different_stream() {
        let mut a = rng_for("x", 42);
        let mut b = rng_for("y", 42);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = rng_for("x", 1);
        let mut b = rng_for("x", 2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
