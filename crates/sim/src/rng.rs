//! Deterministic random number generation for workloads.
//!
//! Every experiment seeds a [`SimRng`] explicitly, so a given
//! (experiment, seed) pair always produces the same workload and therefore
//! the same simulated schedule — a property the determinism tests assert.
//!
//! The generator is the in-tree [`shrimp_testkit::rng::DetRng`]
//! (SplitMix64-seeded xoshiro256++): identical streams on every platform,
//! no external crates in the loop. The first draws of well-known
//! experiment seeds are pinned by `tests/rng_golden.rs`, so a future RNG
//! change cannot silently reshuffle every experiment.

pub use shrimp_testkit::rng::{splitmix64, DetRng, RangeSample};
pub use shrimp_testkit::sample::{OpenLoopArrivals, ZipfSampler};

/// The RNG type used across the reproduction.
pub type SimRng = DetRng;

/// Creates the deterministic RNG for `(experiment, seed)`.
///
/// The experiment name is folded into the seed so different experiments
/// using the same numeric seed draw independent streams.
///
/// ```
/// let mut a = shrimp_sim::rng::rng_for("fig3", 1);
/// let mut b = shrimp_sim::rng::rng_for("fig3", 1);
/// assert_eq!(a.gen_u64(), b.gen_u64());
/// ```
///
/// Streams are independent across both coordinates:
///
/// ```
/// let mut a = shrimp_sim::rng::rng_for("fig3", 1);
/// let mut b = shrimp_sim::rng::rng_for("fig4", 1);
/// let mut c = shrimp_sim::rng::rng_for("fig3", 2);
/// let first = a.gen_u64();
/// assert_ne!(first, b.gen_u64());
/// assert_ne!(first, c.gen_u64());
/// ```
pub fn rng_for(experiment: &str, seed: u64) -> SimRng {
    // FNV-1a over the experiment name…
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in experiment.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // …diffused once, then combined with the numeric seed, expands into the
    // xoshiro state through SplitMix64.
    let mut st = h;
    let _ = splitmix64(&mut st);
    st = st.wrapping_add(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    DetRng::from_state([
        splitmix64(&mut st),
        splitmix64(&mut st),
        splitmix64(&mut st),
        splitmix64(&mut st),
    ])
}

/// Creates the deterministic RNG for one *entity* of an experiment — a
/// mesh edge, a node, a replica — as an independent stream per
/// `(experiment, seed, entity)` triple.
///
/// Unlike a single `rng_for` stream (whose draw order couples every
/// consumer into one global sequence), per-entity streams depend only on
/// how many draws *that entity* made. That is what lets a consumer like
/// the fault plane partition across shards: each shard re-derives exactly
/// the streams of the entities it owns, and the merged draw sequence is
/// invariant under the shard layout.
///
/// ```
/// use shrimp_sim::rng::rng_for_entity;
/// let mut a = rng_for_entity("faults", 1, 7);
/// let mut b = rng_for_entity("faults", 1, 7);
/// assert_eq!(a.gen_u64(), b.gen_u64());
/// let mut c = rng_for_entity("faults", 1, 8);
/// assert_ne!(rng_for_entity("faults", 1, 7).gen_u64(), c.gen_u64());
/// ```
pub fn rng_for_entity(experiment: &str, seed: u64, entity: u64) -> SimRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in experiment.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut st = h;
    let _ = splitmix64(&mut st);
    st = st.wrapping_add(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    // The entity id gets its own diffusion round so adjacent ids (edge 3,
    // edge 4) land in unrelated regions of the state space.
    let mut e = entity.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x656e_7469_7479_2121;
    st = st.wrapping_add(splitmix64(&mut e));
    DetRng::from_state([
        splitmix64(&mut st),
        splitmix64(&mut st),
        splitmix64(&mut st),
        splitmix64(&mut st),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = rng_for("x", 42);
        let mut b = rng_for("x", 42);
        let va: Vec<u64> = (0..16).map(|_| a.gen_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_experiment_different_stream() {
        let mut a = rng_for("x", 42);
        let mut b = rng_for("y", 42);
        assert_ne!(a.gen_u64(), b.gen_u64());
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = rng_for("x", 1);
        let mut b = rng_for("x", 2);
        assert_ne!(a.gen_u64(), b.gen_u64());
    }
}
