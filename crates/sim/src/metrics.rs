//! Deterministic metrics registry: typed counters, gauges, and fixed-bucket
//! latency histograms keyed by `(Category, &'static str)`.
//!
//! Like the [`TraceSink`](crate::trace::TraceSink), the registry is off by
//! default and costs one branch per call site when disabled, so the
//! deterministic sweep artifacts stay byte-identical whether or not the
//! observability plane is compiled in. Every recorded quantity is simulated
//! (picoseconds, byte counts, occupancies) — never host wall-clock — so a
//! [`MetricsSnapshot`] serializes identically on every machine.
//!
//! Instruments:
//!
//! * **Counter** — monotone sum ([`MetricsRegistry::counter_add`]).
//! * **Gauge** — last-written value plus the high-water mark
//!   ([`MetricsRegistry::gauge_set`]).
//! * **Histogram** — power-of-two buckets over `u64` with count/sum/min/max
//!   ([`MetricsRegistry::observe`]); bucket `i` holds values whose bit
//!   length is `i` (value `0` lands in bucket `0`), so the layout is fixed
//!   and host-independent.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use crate::trace::Category;

/// Number of histogram buckets: one per possible `u64` bit length (0..=64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index of a value: its bit length (`0` for `0`, `64` for values
/// with the top bit set). Fixed for all time so snapshots compare across
/// runs and commits.
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive value range `[lo, hi]` of bucket `i` — the inverse of
/// [`bucket_of`]: bucket `0` holds exactly `{0}`, bucket `i >= 1` holds the
/// values of bit length `i`, i.e. `[2^(i-1), 2^i - 1]`.
///
/// # Panics
///
/// Panics when `i >= HISTOGRAM_BUCKETS`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
    if i == 0 {
        (0, 0)
    } else {
        let hi = u64::MAX >> (64 - i);
        ((hi >> 1) + 1, hi)
    }
}

#[derive(Debug, Clone, Copy)]
struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Hist {
    fn new() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(u64),
    Gauge { last: u64, max: u64 },
    // Boxed: the inline bucket array would bloat every counter/gauge
    // entry to histogram size.
    Histogram(Box<Hist>),
}

struct RegistryInner {
    enabled: Cell<bool>,
    map: RefCell<BTreeMap<(Category, &'static str), Instrument>>,
}

/// A shared, deterministic metrics registry. Cheap to clone; disabled by
/// default ([`MetricsRegistry::enable`]).
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Rc<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.inner.enabled.get())
            .field("instruments", &self.inner.map.borrow().len())
            .finish()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates a disabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Rc::new(RegistryInner {
                enabled: Cell::new(false),
                map: RefCell::new(BTreeMap::new()),
            }),
        }
    }

    /// Enables recording. Until this is called every instrument method is
    /// a single predictable branch.
    pub fn enable(&self) {
        self.inner.enabled.set(true);
    }

    /// Disables recording (already-recorded values are kept).
    pub fn disable(&self) {
        self.inner.enabled.set(false);
    }

    /// `true` while recording.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Adds `v` to the counter `(category, name)` (no-op when disabled).
    pub fn counter_add(&self, category: Category, name: &'static str, v: u64) {
        if !self.inner.enabled.get() {
            return;
        }
        let mut map = self.inner.map.borrow_mut();
        match map
            .entry((category, name))
            .or_insert(Instrument::Counter(0))
        {
            Instrument::Counter(c) => *c = c.saturating_add(v),
            other => panic!("metric {category}/{name} is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge `(category, name)` to `v`, tracking its high-water
    /// mark (no-op when disabled).
    pub fn gauge_set(&self, category: Category, name: &'static str, v: u64) {
        if !self.inner.enabled.get() {
            return;
        }
        let mut map = self.inner.map.borrow_mut();
        match map
            .entry((category, name))
            .or_insert(Instrument::Gauge { last: 0, max: 0 })
        {
            Instrument::Gauge { last, max } => {
                *last = v;
                *max = (*max).max(v);
            }
            other => panic!("metric {category}/{name} is not a gauge: {other:?}"),
        }
    }

    /// Records `v` into the histogram `(category, name)` (no-op when
    /// disabled). Values are simulated quantities — latencies in
    /// picoseconds, depths, byte counts — never host time.
    pub fn observe(&self, category: Category, name: &'static str, v: u64) {
        if !self.inner.enabled.get() {
            return;
        }
        let mut map = self.inner.map.borrow_mut();
        match map
            .entry((category, name))
            .or_insert_with(|| Instrument::Histogram(Box::new(Hist::new())))
        {
            Instrument::Histogram(h) => h.observe(v),
            other => panic!("metric {category}/{name} is not a histogram: {other:?}"),
        }
    }

    /// Snapshots every instrument in deterministic `(Category, name)`
    /// order. The registry keeps recording afterwards.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let samples = self
            .inner
            .map
            .borrow()
            .iter()
            .map(|(&(category, name), inst)| MetricSample {
                category,
                name,
                value: match inst {
                    &Instrument::Counter(v) => MetricValue::Counter(v),
                    &Instrument::Gauge { last, max } => MetricValue::Gauge { last, max },
                    Instrument::Histogram(h) => {
                        // Trim trailing empty buckets; the index encodes the
                        // bit length, so a short vector is unambiguous.
                        let upper = h.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
                        MetricValue::Histogram(HistogramSnapshot {
                            count: h.count,
                            sum: h.sum,
                            min: if h.count == 0 { 0 } else { h.min },
                            max: h.max,
                            buckets: h.buckets[..upper].to_vec(),
                        })
                    }
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }

    /// Serializes the registry — enabled flag plus every instrument's full
    /// state (histograms untrimmed) — into a [`Sim`](crate::Sim) snapshot
    /// artifact. Instruments are written in the map's `(Category, name)`
    /// order, so equal registries always encode to equal bytes.
    pub(crate) fn snapshot_into(&self, w: &mut SnapshotWriter) {
        w.put_bool(self.inner.enabled.get());
        let map = self.inner.map.borrow();
        w.put_u64(map.len() as u64);
        for (&(category, name), inst) in map.iter() {
            w.put_u8(category_code(category));
            w.put_str(name);
            match inst {
                &Instrument::Counter(v) => {
                    w.put_u8(0);
                    w.put_u64(v);
                }
                &Instrument::Gauge { last, max } => {
                    w.put_u8(1);
                    w.put_u64(last);
                    w.put_u64(max);
                }
                Instrument::Histogram(h) => {
                    w.put_u8(2);
                    w.put_u64(h.count);
                    w.put_u64(h.sum);
                    w.put_u64(h.min);
                    w.put_u64(h.max);
                    for &b in &h.buckets {
                        w.put_u64(b);
                    }
                }
            }
        }
    }

    /// Rebuilds a registry serialized by `snapshot_into`.
    ///
    /// Instrument keys are `&'static str` at rest; restored names are
    /// interned in a process-global table (bounded by the number of
    /// distinct metric names ever restored), so repeated restores do not
    /// accumulate memory.
    pub(crate) fn restore_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let registry = MetricsRegistry::new();
        registry.inner.enabled.set(r.get_bool()?);
        let n = r.get_len()?;
        let mut map = registry.inner.map.borrow_mut();
        for _ in 0..n {
            let category = category_from_code(r.get_u8()?)?;
            let name = intern(r.get_str()?);
            let inst = match r.get_u8()? {
                0 => Instrument::Counter(r.get_u64()?),
                1 => Instrument::Gauge {
                    last: r.get_u64()?,
                    max: r.get_u64()?,
                },
                2 => {
                    let mut h = Hist::new();
                    h.count = r.get_u64()?;
                    h.sum = r.get_u64()?;
                    h.min = r.get_u64()?;
                    h.max = r.get_u64()?;
                    for b in h.buckets.iter_mut() {
                        *b = r.get_u64()?;
                    }
                    Instrument::Histogram(Box::new(h))
                }
                _ => return Err(SnapshotError::Corrupt("unknown instrument kind")),
            };
            if map.insert((category, name), inst).is_some() {
                return Err(SnapshotError::Corrupt("duplicate instrument key"));
            }
        }
        drop(map);
        Ok(registry)
    }
}

/// Stable wire code for a [`Category`]; part of the snapshot format, so it
/// must never be renumbered (append-only).
fn category_code(c: Category) -> u8 {
    match c {
        Category::Nic => 0,
        Category::Net => 1,
        Category::Mem => 2,
        Category::Svm => 3,
        Category::Core => 4,
        Category::Nx => 5,
        Category::Sockets => 6,
        Category::App => 7,
        Category::Other => 8,
    }
}

fn category_from_code(code: u8) -> Result<Category, SnapshotError> {
    Ok(match code {
        0 => Category::Nic,
        1 => Category::Net,
        2 => Category::Mem,
        3 => Category::Svm,
        4 => Category::Core,
        5 => Category::Nx,
        6 => Category::Sockets,
        7 => Category::App,
        8 => Category::Other,
        _ => return Err(SnapshotError::Corrupt("unknown metric category code")),
    })
}

/// Interns a restored metric name. The table lives for the process and is
/// bounded by the set of distinct names, matching the `&'static str` keys
/// compiled-in call sites use.
fn intern(name: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static TABLE: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut table = TABLE.lock().unwrap();
    match table.get(name) {
        Some(&s) => s,
        None => {
            let s: &'static str = Box::leak(name.to_owned().into_boxed_str());
            table.insert(s);
            s
        }
    }
}

/// A point-in-time copy of one instrument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// Component that owns the instrument.
    pub category: Category,
    /// Instrument name, unique within its category.
    pub name: &'static str,
    /// The recorded value(s).
    pub value: MetricValue,
}

/// The value of one instrument at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotone counter total.
    Counter(u64),
    /// Last-written gauge value plus its high-water mark.
    Gauge {
        /// Most recent value.
        last: u64,
        /// Largest value ever set.
        max: u64,
    },
    /// Fixed-bucket histogram summary.
    Histogram(HistogramSnapshot),
}

/// Histogram summary: totals plus per-bit-length bucket counts (trailing
/// empty buckets trimmed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Smallest observation (`0` when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// `buckets[i]` counts observations whose bit length is `i`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) by linear
    /// interpolation *within* the power-of-two bucket holding the target
    /// rank, then clamps the estimate to the observed `[min, max]`.
    ///
    /// The clamp makes the edge cases exact regardless of bucket width:
    /// `quantile(0.0) == min`, `quantile(1.0) == max`, and a histogram
    /// whose observations are all one value returns that value for every
    /// `q`. Interior quantiles are exact to within the bucket's span (a
    /// factor-of-two relative error bound, the usual price of power-of-two
    /// buckets). The estimate is monotone in `q`. Returns `0` when empty.
    ///
    /// Every arithmetic step is an IEEE-754 basic operation on exactly
    /// representable inputs, so the result is bit-identical across hosts —
    /// which is what lets sweep rows carry p50/p99/p999 fields.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut below = 0.0f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let through = below + c as f64;
            if through >= target {
                let (lo, hi) = bucket_bounds(i);
                let frac = ((target - below) / c as f64).clamp(0.0, 1.0);
                let v = lo as f64 + frac * (hi - lo) as f64;
                return (v as u64).clamp(self.min, self.max);
            }
            below = through;
        }
        self.max
    }
}

/// Everything the registry captured, in deterministic order. Plain data
/// (`Send`), so the harness can carry it across run-thread boundaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All instruments, sorted by `(Category, name)`.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Looks an instrument up by category and name.
    pub fn get(&self, category: Category, name: &str) -> Option<&MetricValue> {
        self.samples
            .iter()
            .find(|s| s.category == category && s.name == name)
            .map(|s| &s.value)
    }

    /// Folds `other` into `self`, instrument by instrument, preserving the
    /// deterministic `(Category, name)` order.
    ///
    /// Counters sum and histograms merge bucket-wise (count/sum add,
    /// min-of-mins, max-of-maxes) — both **commutative and associative**,
    /// so folding per-shard snapshots in any grouping yields the same
    /// totals: that is what keeps merged cluster metrics shard-count
    /// invariant. Gauges keep the elementwise max of `last` and `max`
    /// (there is no meaningful "last" across shards); consumers that need
    /// shard-invariant rows should derive them from counters and
    /// histograms only.
    ///
    /// # Panics
    ///
    /// Panics when the same `(Category, name)` key names different
    /// instrument kinds in the two snapshots, mirroring the registry's own
    /// kind-mismatch panic.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        let mut merged = Vec::with_capacity(self.samples.len().max(other.samples.len()));
        let (a, b) = (&self.samples, &other.samples);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let (ka, kb) = ((a[i].category, a[i].name), (b[j].category, b[j].name));
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(MetricSample {
                        category: a[i].category,
                        name: a[i].name,
                        value: merge_value(&a[i].value, &b[j].value),
                    });
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.samples = merged;
    }
}

/// Combines two snapshots of the same instrument (see
/// [`MetricsSnapshot::merge`] for the semantics per kind).
fn merge_value(a: &MetricValue, b: &MetricValue) -> MetricValue {
    match (a, b) {
        (&MetricValue::Counter(x), &MetricValue::Counter(y)) => {
            MetricValue::Counter(x.saturating_add(y))
        }
        (&MetricValue::Gauge { last: l1, max: m1 }, &MetricValue::Gauge { last: l2, max: m2 }) => {
            MetricValue::Gauge {
                last: l1.max(l2),
                max: m1.max(m2),
            }
        }
        (MetricValue::Histogram(x), MetricValue::Histogram(y)) => {
            let mut buckets = vec![0u64; x.buckets.len().max(y.buckets.len())];
            for (i, &c) in x.buckets.iter().enumerate() {
                buckets[i] = c;
            }
            for (i, &c) in y.buckets.iter().enumerate() {
                buckets[i] = buckets[i].saturating_add(c);
            }
            MetricValue::Histogram(HistogramSnapshot {
                count: x.count + y.count,
                sum: x.sum.saturating_add(y.sum),
                // `min` is 0 (not u64::MAX) on an empty snapshot, so an
                // empty side must not poison the merged minimum.
                min: match (x.count, y.count) {
                    (0, _) => y.min,
                    (_, 0) => x.min,
                    _ => x.min.min(y.min),
                },
                max: x.max.max(y.max),
                buckets,
            })
        }
        (a, b) => panic!("metric kind mismatch in merge: {a:?} vs {b:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let m = MetricsRegistry::new();
        m.counter_add(Category::Nic, "pkts", 3);
        m.gauge_set(Category::Nic, "depth", 9);
        m.observe(Category::Net, "lat_ps", 1234);
        assert!(m.snapshot().samples.is_empty());
    }

    #[test]
    fn counters_sum_and_gauges_track_high_water() {
        let m = MetricsRegistry::new();
        m.enable();
        m.counter_add(Category::Nic, "pkts", 3);
        m.counter_add(Category::Nic, "pkts", 4);
        m.gauge_set(Category::Nic, "depth", 9);
        m.gauge_set(Category::Nic, "depth", 2);
        let snap = m.snapshot();
        assert_eq!(
            snap.get(Category::Nic, "pkts"),
            Some(&MetricValue::Counter(7))
        );
        assert_eq!(
            snap.get(Category::Nic, "depth"),
            Some(&MetricValue::Gauge { last: 2, max: 9 })
        );
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(u64::MAX), 64);
        let m = MetricsRegistry::new();
        m.enable();
        for v in [0, 1, 2, 3, 1000] {
            m.observe(Category::Svm, "fault_ps", v);
        }
        let snap = m.snapshot();
        let Some(MetricValue::Histogram(h)) = snap.get(Category::Svm, "fault_ps") else {
            panic!("expected a histogram");
        };
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[10], 1); // 1000 (10 bits)
        assert_eq!(h.buckets.len(), 11, "trailing zero buckets trimmed");
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let build = || {
            let m = MetricsRegistry::new();
            m.enable();
            m.counter_add(Category::Svm, "b", 1);
            m.counter_add(Category::Nic, "z", 1);
            m.counter_add(Category::Nic, "a", 1);
            m.snapshot()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        let names: Vec<_> = a.samples.iter().map(|s| (s.category, s.name)).collect();
        assert_eq!(
            names,
            vec![
                (Category::Nic, "a"),
                (Category::Nic, "z"),
                (Category::Svm, "b"),
            ]
        );
    }

    #[test]
    fn registry_snapshot_round_trips_byte_identically() {
        let m = MetricsRegistry::new();
        m.enable();
        m.counter_add(Category::Nic, "pkts", 7);
        m.gauge_set(Category::Mem, "depth", 3);
        m.observe(Category::Svm, "lat_ps", 1000);
        m.observe(Category::Svm, "lat_ps", 2);
        let mut w = SnapshotWriter::new();
        m.snapshot_into(&mut w);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let restored = MetricsRegistry::restore_from(&mut r).unwrap();
        r.finish().unwrap();
        assert!(restored.enabled());
        assert_eq!(restored.snapshot(), m.snapshot());
        // Re-encoding the restored registry reproduces the artifact.
        let mut w2 = SnapshotWriter::new();
        restored.snapshot_into(&mut w2);
        assert_eq!(w2.finish(), bytes);
    }

    #[test]
    fn bucket_bounds_inverts_bucket_of() {
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
            if lo > 0 {
                assert_eq!(bucket_of(lo - 1), i - 1);
            }
        }
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn quantile_edges_and_interpolation() {
        let m = MetricsRegistry::new();
        m.enable();
        for v in [100u64, 200, 300, 400, 1000] {
            m.observe(Category::App, "lat", v);
        }
        let snap = m.snapshot();
        let Some(MetricValue::Histogram(h)) = snap.get(Category::App, "lat") else {
            panic!("expected a histogram");
        };
        assert_eq!(h.quantile(0.0), 100);
        assert_eq!(h.quantile(1.0), 1000);
        let p50 = h.quantile(0.5);
        assert!((100..=1000).contains(&p50));
        // Monotone across a dense sweep of q.
        let mut prev = 0;
        for i in 0..=100 {
            let v = h.quantile(i as f64 / 100.0);
            assert!(v >= prev, "quantile not monotone at q={}", i as f64 / 100.0);
            prev = v;
        }
        // Empty histogram.
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: Vec::new(),
        };
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn quantile_is_exact_on_single_valued_data() {
        let m = MetricsRegistry::new();
        m.enable();
        for _ in 0..37 {
            m.observe(Category::App, "lat", 777);
        }
        let snap = m.snapshot();
        let Some(MetricValue::Histogram(h)) = snap.get(Category::App, "lat") else {
            panic!("expected a histogram");
        };
        for q in [0.0, 0.25, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 777);
        }
    }

    #[test]
    fn merge_is_commutative_and_sums_instruments() {
        let build = |vals: &[u64], extra: bool| {
            let m = MetricsRegistry::new();
            m.enable();
            m.counter_add(Category::Net, "pkts", vals.len() as u64);
            for &v in vals {
                m.observe(Category::App, "lat", v);
            }
            if extra {
                m.gauge_set(Category::Mem, "depth", 5);
            }
            m.snapshot()
        };
        let a = build(&[1, 2, 3], true);
        let b = build(&[1000, 2000], false);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(
            ab.get(Category::Net, "pkts"),
            Some(&MetricValue::Counter(5))
        );
        assert_eq!(
            ab.get(Category::Mem, "depth"),
            Some(&MetricValue::Gauge { last: 5, max: 5 })
        );
        let Some(MetricValue::Histogram(h)) = ab.get(Category::App, "lat") else {
            panic!("expected a histogram");
        };
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 2000);
        assert_eq!(h.sum, 3006);
        // The merged histogram equals the one a single registry would have
        // produced from the union of observations.
        let union = build(&[1, 2, 3, 1000, 2000], false);
        let Some(MetricValue::Histogram(u)) = union.get(Category::App, "lat") else {
            panic!("expected a histogram");
        };
        assert_eq!(h, u);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let m = MetricsRegistry::new();
        m.enable();
        m.observe(Category::Other, "x", 1);
        m.counter_add(Category::Other, "x", 1);
    }
}
