//! The simulation executor: processes, timers, and the deterministic run loop.
//!
//! Simulation *processes* are plain `async` blocks spawned with
//! [`Sim::spawn`]. The executor is strictly single-threaded; determinism comes
//! from two rules:
//!
//! 1. Woken processes are polled in FIFO wake order.
//! 2. When no process is runnable, the earliest timer fires; ties break on a
//!    monotonically increasing sequence number assigned at scheduling time.
//!
//! # Hot path
//!
//! Timers live in an indexed hierarchical [timer wheel](crate::wheel) and
//! tasks in a slab with an intrusive free list, so steady-state scheduling
//! performs no heap allocation: timer nodes and task slots are recycled, each
//! task's [`Waker`] is created once at spawn and reused for every poll, and
//! the wake queue is a plain `VecDeque` guarded by a run-time owner-thread
//! check instead of a `Mutex` (the simulator is single-threaded; a waker that
//! crosses threads panics rather than corrupting the queue).

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::ThreadId;

use crate::metrics::MetricsRegistry;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use crate::time::Time;
use crate::trace::TraceSink;
use crate::wheel::TimerWheel;

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Identifier of a spawned simulation process.
///
/// Encodes a slab slot index plus a generation tag, so a wake aimed at a
/// completed (and since recycled) process is a detectable no-op.
pub type TaskId = u64;

/// What a timer does when it fires.
enum TimerAction {
    Wake(Waker),
    Call(Box<dyn FnOnce()>),
}

/// Pending-timer storage. The wheel is the production scheduler; the legacy
/// binary heap it replaced is kept compilable only for tests and the
/// `legacy-sched` feature, as the reference for byte-identity checks.
// The wheel's inline slot arrays dwarf the legacy heap; with one TimerStore
// per Sim, boxing the hot variant to please the lint would be backwards.
#[cfg_attr(any(test, feature = "legacy-sched"), allow(clippy::large_enum_variant))]
enum TimerStore {
    Wheel(TimerWheel<TimerAction>),
    #[cfg(any(test, feature = "legacy-sched"))]
    Legacy {
        heap: std::collections::BinaryHeap<legacy::TimerEntry>,
        next_seq: u64,
    },
}

impl TimerStore {
    fn insert(&mut self, at: Time, action: TimerAction) {
        match self {
            TimerStore::Wheel(w) => {
                w.insert(at, action);
            }
            #[cfg(any(test, feature = "legacy-sched"))]
            TimerStore::Legacy { heap, next_seq } => {
                let seq = *next_seq;
                *next_seq += 1;
                heap.push(legacy::TimerEntry { at, seq, action });
            }
        }
    }

    fn pop(&mut self) -> Option<(Time, TimerAction)> {
        match self {
            TimerStore::Wheel(w) => w.pop(),
            #[cfg(any(test, feature = "legacy-sched"))]
            TimerStore::Legacy { heap, .. } => heap.pop().map(|e| (e.at, e.action)),
        }
    }

    fn next_deadline(&mut self) -> Option<Time> {
        match self {
            TimerStore::Wheel(w) => w.peek_deadline(),
            #[cfg(any(test, feature = "legacy-sched"))]
            TimerStore::Legacy { heap, .. } => heap.peek().map(|e| e.at),
        }
    }
}

#[cfg(any(test, feature = "legacy-sched"))]
mod legacy {
    use super::{Time, TimerAction};
    use std::cmp::Ordering;

    pub(super) struct TimerEntry {
        pub at: Time,
        pub seq: u64,
        pub action: TimerAction,
    }

    impl PartialEq for TimerEntry {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl Eq for TimerEntry {}
    impl PartialOrd for TimerEntry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for TimerEntry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we want earliest (time, seq).
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }
}

/// Scheduler selection for byte-identity testing. Only compiled for tests
/// and the `legacy-sched` feature; release builds contain the wheel alone.
#[cfg(any(test, feature = "legacy-sched"))]
pub mod sched {
    use std::cell::Cell;

    thread_local! {
        static USE_LEGACY: Cell<bool> = const { Cell::new(false) };
    }

    /// Makes every [`Sim`](super::Sim) subsequently created **on this
    /// thread** use the legacy `BinaryHeap` scheduler instead of the timer
    /// wheel. Both must produce byte-identical results; tests flip this to
    /// prove it.
    pub fn set_legacy_scheduler(on: bool) {
        USE_LEGACY.with(|f| f.set(on));
    }

    /// Whether new simulators on this thread use the legacy scheduler.
    pub fn legacy_scheduler() -> bool {
        USE_LEGACY.with(|f| f.get())
    }
}

/// Wake queue shared with `Waker`s. `Waker` must be `Send + Sync`, so the
/// compiler cannot prove this stays on one thread — but the simulator *is*
/// strictly single-threaded, so instead of an always-uncontended `Mutex` the
/// queue records its owner thread and asserts it on every access.
///
/// Safety: the `UnsafeCell` is only touched after the owner check passes, so
/// all access is serialized on the owner thread; a waker that migrates to
/// another thread panics before reaching the cell. Each method holds its
/// mutable reference only for a single `VecDeque<u64>` operation, which
/// cannot re-enter user code.
struct ReadyQueue {
    owner: ThreadId,
    woken: UnsafeCell<VecDeque<TaskId>>,
}

unsafe impl Send for ReadyQueue {}
unsafe impl Sync for ReadyQueue {}

impl ReadyQueue {
    fn new() -> Self {
        ReadyQueue {
            owner: std::thread::current().id(),
            woken: UnsafeCell::new(VecDeque::new()),
        }
    }

    #[inline]
    fn assert_owner(&self) {
        assert_eq!(
            std::thread::current().id(),
            self.owner,
            "Sim waker used from a foreign thread; the simulator is strictly single-threaded"
        );
    }

    fn push(&self, id: TaskId) {
        self.assert_owner();
        unsafe { (*self.woken.get()).push_back(id) }
    }

    fn pop(&self) -> Option<TaskId> {
        self.assert_owner();
        unsafe { (*self.woken.get()).pop_front() }
    }

    fn is_empty(&self) -> bool {
        self.assert_owner();
        unsafe { (*self.woken.get()).is_empty() }
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

enum SlotState {
    Free {
        next: u32,
    },
    Live {
        fut: Option<BoxFuture>,
        waker: Waker,
    },
}

struct TaskSlot {
    gen: u32,
    state: SlotState,
}

const NO_SLOT: u32 = u32::MAX;

/// Task storage: a slab with an intrusive free list. Slots (and their cached
/// `Waker`s' slab indices) are recycled; generations keep stale wakes inert.
struct TaskSlab {
    slots: Vec<TaskSlot>,
    free: u32,
    live: usize,
}

fn task_id(idx: u32, gen: u32) -> TaskId {
    ((gen as u64) << 32) | idx as u64
}

fn split_id(id: TaskId) -> (u32, u32) {
    (id as u32, (id >> 32) as u32)
}

impl TaskSlab {
    fn new() -> Self {
        TaskSlab {
            slots: Vec::new(),
            free: NO_SLOT,
            live: 0,
        }
    }

    fn insert(&mut self, fut: BoxFuture, ready: &Arc<ReadyQueue>) -> TaskId {
        self.live += 1;
        let idx = if self.free != NO_SLOT {
            let idx = self.free;
            match self.slots[idx as usize].state {
                SlotState::Free { next } => self.free = next,
                SlotState::Live { .. } => unreachable!("live slot on free list"),
            }
            idx
        } else {
            let idx = self.slots.len() as u32;
            assert!(idx != NO_SLOT, "task slab exhausted");
            self.slots.push(TaskSlot {
                gen: 0,
                state: SlotState::Free { next: NO_SLOT },
            });
            idx
        };
        let id = task_id(idx, self.slots[idx as usize].gen);
        // The task's one Waker, cloned (refcount bump only) for every poll.
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: ready.clone(),
        }));
        self.slots[idx as usize].state = SlotState::Live {
            fut: Some(fut),
            waker,
        };
        id
    }

    /// Takes the future (and a waker clone) out of a slot for polling, so the
    /// slab is not borrowed while the process body runs (it may spawn/wake).
    /// `None` for stale or mid-poll wakes.
    fn begin_poll(&mut self, id: TaskId) -> Option<(BoxFuture, Waker)> {
        let (idx, gen) = split_id(id);
        let slot = self.slots.get_mut(idx as usize)?;
        if slot.gen != gen {
            return None; // task completed; slot recycled
        }
        match &mut slot.state {
            SlotState::Live { fut, waker } => fut.take().map(|f| (f, waker.clone())),
            SlotState::Free { .. } => None,
        }
    }

    fn finish_poll(&mut self, id: TaskId, fut: BoxFuture) {
        let (idx, gen) = split_id(id);
        let slot = &mut self.slots[idx as usize];
        debug_assert_eq!(slot.gen, gen);
        if let SlotState::Live { fut: f, .. } = &mut slot.state {
            *f = Some(fut);
        }
    }

    fn complete(&mut self, id: TaskId) {
        let (idx, _) = split_id(id);
        let slot = &mut self.slots[idx as usize];
        slot.gen = slot.gen.wrapping_add(1);
        slot.state = SlotState::Free { next: self.free };
        self.free = idx;
        self.live -= 1;
    }
}

struct SimInner {
    now: Cell<Time>,
    trace: TraceSink,
    metrics: MetricsRegistry,
    /// Executor events processed: process polls + timer fires. Purely a
    /// function of the simulated program, so deterministic across runs.
    events: Cell<u64>,
    timers: RefCell<TimerStore>,
    ready: Arc<ReadyQueue>,
    tasks: RefCell<TaskSlab>,
}

/// Handle to the simulator. Cheap to clone; every simulated component and
/// process holds one.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
///
/// `Sim` is deliberately `!Send`: the executor is single-threaded and its
/// wake path relies on that, so moving a simulator across threads must not
/// compile:
///
/// ```compile_fail
/// fn requires_send<T: Send>() {}
/// requires_send::<shrimp_sim::Sim>();
/// ```
#[derive(Clone)]
pub struct Sim {
    inner: Rc<SimInner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.inner.now.get())
            .field("live_tasks", &self.live_tasks())
            .finish()
    }
}

impl Sim {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Sim::new_at(0)
    }

    /// Creates an empty simulator whose clock starts at `start`.
    ///
    /// Restored runs use this to resume simulated time where a checkpoint
    /// left off: timers pop in `(time, seq)` order regardless of where the
    /// clock was born, so a simulator started at `start` behaves exactly
    /// like one that idled from zero to `start`.
    pub fn new_at(start: Time) -> Self {
        #[cfg(any(test, feature = "legacy-sched"))]
        let timers = if sched::legacy_scheduler() {
            TimerStore::Legacy {
                heap: std::collections::BinaryHeap::new(),
                next_seq: 0,
            }
        } else {
            TimerStore::Wheel(TimerWheel::new())
        };
        #[cfg(not(any(test, feature = "legacy-sched")))]
        let timers = TimerStore::Wheel(TimerWheel::new());

        Sim {
            inner: Rc::new(SimInner {
                now: Cell::new(start),
                trace: TraceSink::new(),
                metrics: MetricsRegistry::new(),
                events: Cell::new(0),
                timers: RefCell::new(timers),
                ready: Arc::new(ReadyQueue::new()),
                tasks: RefCell::new(TaskSlab::new()),
            }),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.inner.now.get()
    }

    /// The simulator's trace sink (disabled by default; see
    /// [`TraceSink::enable`]).
    pub fn trace(&self) -> &TraceSink {
        &self.inner.trace
    }

    /// The simulator's metrics registry (disabled by default; see
    /// [`MetricsRegistry::enable`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Number of processes that have been spawned and have not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.tasks.borrow().live
    }

    /// Number of executor events processed so far: process polls plus timer
    /// fires. A pure function of the simulated program — identical across
    /// runs and hosts — which makes it the denominator-free workload measure
    /// for events-per-second reporting.
    pub fn events(&self) -> u64 {
        self.inner.events.get()
    }

    fn bump_events(&self) {
        self.inner.events.set(self.inner.events.get() + 1);
    }

    /// Spawns a simulation process; it starts running at the current time on
    /// the next executor iteration. Returns a [`TaskHandle`] that other
    /// processes may await for the process's output.
    pub fn spawn<F>(&self, fut: F) -> TaskHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState::<F::Output> {
            value: None,
            done: false,
            waiters: Vec::new(),
        }));
        let st = state.clone();
        let wrapped: BoxFuture = Box::pin(async move {
            let out = fut.await;
            let mut s = st.borrow_mut();
            s.value = Some(out);
            s.done = true;
            for w in s.waiters.drain(..) {
                w.wake();
            }
        });
        let id = self
            .inner
            .tasks
            .borrow_mut()
            .insert(wrapped, &self.inner.ready);
        // Newly spawned tasks are immediately runnable.
        self.inner.ready.push(id);
        TaskHandle { state }
    }

    /// Schedules `f` to run at absolute simulated time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule<F: FnOnce() + 'static>(&self, at: Time, f: F) {
        assert!(at >= self.now(), "schedule() into the past");
        self.inner
            .timers
            .borrow_mut()
            .insert(at, TimerAction::Call(Box::new(f)));
    }

    /// Schedules `f` to run after `delay`.
    pub fn schedule_in<F: FnOnce() + 'static>(&self, delay: Time, f: F) {
        self.schedule(self.now() + delay, f);
    }

    /// Returns a future that completes at absolute time `at` (immediately if
    /// `at` is not in the future).
    pub fn sleep_until(&self, at: Time) -> Sleep {
        Sleep {
            sim: self.clone(),
            at,
            registered: false,
        }
    }

    /// Returns a future that completes after `duration` of simulated time.
    pub fn sleep(&self, duration: Time) -> Sleep {
        self.sleep_until(self.now() + duration)
    }

    fn register_timer_wake(&self, at: Time, waker: Waker) {
        self.inner
            .timers
            .borrow_mut()
            .insert(at, TimerAction::Wake(waker));
    }

    /// Polls every woken process in wake order. Returns `true` if any process
    /// was polled.
    fn drain_ready(&self) -> bool {
        let mut any = false;
        while let Some(id) = self.inner.ready.pop() {
            // Take the future out of its slot so the slab is not borrowed
            // while the process body runs.
            let Some((mut fut, waker)) = self.inner.tasks.borrow_mut().begin_poll(id) else {
                continue; // completed or duplicate wake
            };
            any = true;
            self.bump_events();
            let mut cx = Context::from_waker(&waker);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => self.inner.tasks.borrow_mut().complete(id),
                Poll::Pending => self.inner.tasks.borrow_mut().finish_poll(id, fut),
            }
        }
        any
    }

    fn fire(&self, at: Time, action: TimerAction) {
        debug_assert!(at >= self.inner.now.get());
        self.inner.now.set(at);
        self.bump_events();
        match action {
            TimerAction::Wake(w) => w.wake(),
            TimerAction::Call(f) => f(),
        }
    }

    /// Runs the simulation until no process is runnable and no timer is
    /// pending. Returns the final simulated time.
    ///
    /// Processes still alive when `run` returns are *blocked forever*
    /// (deadlocked or awaiting an event nobody will produce); callers that
    /// consider this a bug should use [`Sim::run_to_completion`].
    pub fn run(&self) -> Time {
        loop {
            self.drain_ready();
            let entry = self.inner.timers.borrow_mut().pop();
            match entry {
                Some((at, action)) => self.fire(at, action),
                None => break,
            }
        }
        self.inner.now.get()
    }

    /// Like [`Sim::run`], but panics if any process is still alive afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocked (processes remain but no event can
    /// wake them).
    pub fn run_to_completion(&self) -> Time {
        let t = self.run();
        let live = self.live_tasks();
        assert!(
            live == 0,
            "simulation deadlocked at t={t} ps with {live} blocked process(es)"
        );
        t
    }

    /// Earliest pending timer deadline, or `None` when no timer is
    /// scheduled. Woken-but-unpolled processes are *not* timers; see
    /// [`Sim::has_runnable`]. The sharded conservative-parallel runner
    /// ([`crate::shard`]) reads this after each window to compute the next
    /// global safe horizon.
    pub fn next_deadline(&self) -> Option<Time> {
        self.inner.timers.borrow_mut().next_deadline()
    }

    /// `true` when at least one woken process awaits the next executor
    /// iteration (it would run at the *current* time, before any timer).
    pub fn has_runnable(&self) -> bool {
        !self.inner.ready.is_empty()
    }

    /// `true` when nothing pends: no runnable process, no live process, no
    /// timer. This is the state [`Sim::snapshot`] requires.
    pub fn is_quiesced(&self) -> bool {
        !self.has_runnable() && self.live_tasks() == 0 && self.next_deadline().is_none()
    }

    /// Serializes a quiesced simulator into a versioned binary artifact.
    ///
    /// A simulator is quiesced when no process is runnable, no process is
    /// alive, and no timer pends — i.e. [`Sim::run`] has returned and every
    /// process completed. Only then is the full state expressible as plain
    /// data: pending timers hold wakers and closures, which cannot cross a
    /// serialization boundary. The artifact still captures the *structural*
    /// residue future behavior depends on — the clock, the event counter,
    /// the timer wheel's cursor, sequence counter and slab generations (so
    /// recycled timer ids stay inert after a restore), task-slot
    /// generations and free-list order, and the metrics registry — so a
    /// [`Sim::restore`]d simulator continues byte-identically to the
    /// original.
    ///
    /// The trace sink is not captured; a restored simulator starts with a
    /// fresh, disabled sink.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::NotQuiesced`] if work is still pending, or if the
    /// simulator runs on the test-only legacy heap scheduler (which has no
    /// snapshot representation).
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        if self.has_runnable() {
            return Err(SnapshotError::NotQuiesced("woken processes await polling"));
        }
        if self.live_tasks() != 0 {
            return Err(SnapshotError::NotQuiesced("processes are still alive"));
        }
        let mut w = SnapshotWriter::new();
        w.put_u64(self.now());
        w.put_u64(self.events());
        match &*self.inner.timers.borrow() {
            TimerStore::Wheel(wheel) => {
                if !wheel.is_empty() {
                    return Err(SnapshotError::NotQuiesced("timers are still pending"));
                }
                // Quiesced: only cancelled/free residue remains, so the
                // payload encoder is provably never consulted.
                wheel.snapshot_into(&mut w, |_| {
                    Err(SnapshotError::NotQuiesced(
                        "timer payloads are not serializable",
                    ))
                })?;
            }
            #[cfg(any(test, feature = "legacy-sched"))]
            TimerStore::Legacy { .. } => {
                return Err(SnapshotError::NotQuiesced(
                    "legacy heap scheduler has no snapshot form",
                ));
            }
        }
        let tasks = self.inner.tasks.borrow();
        w.put_u64(tasks.slots.len() as u64);
        w.put_u32(tasks.free);
        for slot in &tasks.slots {
            w.put_u32(slot.gen);
            match slot.state {
                SlotState::Free { next } => w.put_u32(next),
                SlotState::Live { .. } => unreachable!("live task slot while live == 0"),
            }
        }
        drop(tasks);
        self.inner.metrics.snapshot_into(&mut w);
        Ok(w.finish())
    }

    /// Rebuilds a simulator from a [`Sim::snapshot`] artifact.
    ///
    /// The restored simulator always runs on the timer wheel, regardless of
    /// any thread-local scheduler toggle.
    pub fn restore(bytes: &[u8]) -> Result<Sim, SnapshotError> {
        let mut r = SnapshotReader::new(bytes)?;
        let now = r.get_u64()?;
        let events = r.get_u64()?;
        let wheel = TimerWheel::restore_from(&mut r, |_| {
            Err(SnapshotError::Corrupt(
                "quiesced snapshot holds a live timer payload",
            ))
        })?;
        let slots_len = r.get_len()?;
        if slots_len >= NO_SLOT as usize {
            return Err(SnapshotError::Corrupt(
                "task slab length exceeds index space",
            ));
        }
        let valid = |idx: u32| idx == NO_SLOT || (idx as usize) < slots_len;
        let free = r.get_u32()?;
        if !valid(free) {
            return Err(SnapshotError::Corrupt("task free-list head out of bounds"));
        }
        let mut slots = Vec::with_capacity(slots_len);
        for _ in 0..slots_len {
            let gen = r.get_u32()?;
            let next = r.get_u32()?;
            if !valid(next) {
                return Err(SnapshotError::Corrupt("task free-list link out of bounds"));
            }
            slots.push(TaskSlot {
                gen,
                state: SlotState::Free { next },
            });
        }
        let metrics = MetricsRegistry::restore_from(&mut r)?;
        r.finish()?;
        Ok(Sim {
            inner: Rc::new(SimInner {
                now: Cell::new(now),
                trace: TraceSink::new(),
                metrics,
                events: Cell::new(events),
                timers: RefCell::new(TimerStore::Wheel(wheel)),
                ready: Arc::new(ReadyQueue::new()),
                tasks: RefCell::new(TaskSlab {
                    slots,
                    free,
                    live: 0,
                }),
            }),
        })
    }

    /// Runs until simulated time would exceed `limit`; events at exactly
    /// `limit` still fire. Returns the final time (`<= limit`).
    pub fn run_for(&self, limit: Time) -> Time {
        loop {
            self.drain_ready();
            let fire = {
                let mut timers = self.inner.timers.borrow_mut();
                matches!(timers.next_deadline(), Some(at) if at <= limit)
            };
            if !fire {
                break;
            }
            let (at, action) = self.inner.timers.borrow_mut().pop().unwrap();
            self.fire(at, action);
        }
        self.inner.now.get()
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
#[derive(Debug)]
pub struct Sleep {
    sim: Sim,
    at: Time,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.at {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            let at = self.at;
            self.sim.register_timer_wake(at, cx.waker().clone());
        }
        Poll::Pending
    }
}

struct JoinState<T> {
    value: Option<T>,
    done: bool,
    waiters: Vec<Waker>,
}

/// Handle to a spawned process; awaiting it yields the process output.
///
/// Dropping the handle detaches the process (it keeps running).
pub struct TaskHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> std::fmt::Debug for TaskHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("done", &self.state.borrow().done)
            .finish()
    }
}

impl<T> TaskHandle<T> {
    /// Returns the output if the process has completed, without blocking.
    /// Returns `None` if it is still running or the value was already taken.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().value.take()
    }

    /// `true` once the process has completed.
    pub fn is_done(&self) -> bool {
        self.state.borrow().done
    }
}

impl<T> Future for TaskHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if st.done {
            match st.value.take() {
                Some(v) => Poll::Ready(v),
                None => panic!("TaskHandle polled after output was taken"),
            }
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Awaits all handles in a vector, returning outputs in order.
///
/// This is the join-all barrier used by experiment drivers to wait for all
/// per-node processes.
pub async fn join_all<T>(handles: Vec<TaskHandle<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{ns, us};

    #[test]
    fn empty_sim_finishes_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.run(), 0);
    }

    #[test]
    fn sleep_advances_time() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(us(3)).await;
            s.sleep(us(2)).await;
        });
        assert_eq!(sim.run_to_completion(), us(5));
    }

    #[test]
    fn timers_fire_in_time_then_seq_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, t) in [(1u32, us(2)), (2, us(1)), (3, us(2)), (4, us(1))] {
            let log = log.clone();
            sim.schedule(t, move || log.borrow_mut().push(i));
        }
        sim.run();
        // Same-time entries keep scheduling order.
        assert_eq!(*log.borrow(), vec![2, 4, 1, 3]);
    }

    #[test]
    fn spawned_tasks_start_at_spawn_time() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(us(1)).await;
            let inner = s.spawn(async { 7 });
            inner.await
        });
        sim.run_to_completion();
        assert_eq!(h.try_take(), Some(7));
    }

    #[test]
    fn join_all_collects_in_order() {
        let sim = Sim::new();
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let s = sim.clone();
            handles.push(sim.spawn(async move {
                // Later-indexed tasks sleep less, so completion order is
                // reversed; join_all must still return spawn order.
                s.sleep(ns(100 - i * 10)).await;
                i
            }));
        }
        let joined = sim.spawn(async move { join_all(handles).await });
        sim.run_to_completion();
        assert_eq!(joined.try_take(), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn run_for_stops_at_limit() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(us(10)).await;
        });
        assert_eq!(sim.run_for(us(4)), 0); // nothing fired before the limit
        assert_eq!(sim.live_tasks(), 1);
        assert_eq!(sim.run(), us(10));
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn schedule_earlier_after_run_for_peek_still_fires_in_order() {
        // run_for's non-firing peek may advance the wheel cursor; an
        // earlier-deadline schedule afterwards must still fire first.
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let log = log.clone();
            sim.schedule(us(10), move || log.borrow_mut().push(1));
        }
        assert_eq!(sim.run_for(us(4)), 0);
        {
            let log = log.clone();
            sim.schedule(us(5), move || log.borrow_mut().push(2));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn deadlock_detected() {
        let sim = Sim::new();
        let (_tx, rx) = crate::queue::unbounded::<u8>();
        sim.spawn(async move {
            rx.recv().await;
        });
        sim.run_to_completion();
    }

    #[test]
    fn determinism_two_runs_identical() {
        fn run_once() -> (Time, Vec<u64>) {
            let sim = Sim::new();
            let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            for i in 0..8u64 {
                let s = sim.clone();
                let log = log.clone();
                sim.spawn(async move {
                    s.sleep(ns(i * 37 % 11)).await;
                    log.borrow_mut().push(i);
                    s.sleep(ns(i * 13 % 7)).await;
                    log.borrow_mut().push(100 + i);
                });
            }
            let t = sim.run_to_completion();
            let l = log.borrow().clone();
            (t, l)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn event_counter_is_deterministic_and_monotone() {
        fn run_once() -> u64 {
            let sim = Sim::new();
            for i in 0..8u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    s.sleep(ns(i * 31 % 13)).await;
                    s.sleep(ns(i * 7 % 5)).await;
                });
            }
            sim.run_to_completion();
            sim.events()
        }
        let e = run_once();
        assert!(e > 0, "polls and timer fires must be counted");
        assert_eq!(e, run_once(), "event count must be deterministic");
    }

    #[test]
    fn legacy_and_wheel_schedulers_agree() {
        fn scenario() -> (Time, Vec<u64>, u64) {
            let sim = Sim::new();
            let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            for i in 0..16u64 {
                let s = sim.clone();
                let log = log.clone();
                sim.spawn(async move {
                    s.sleep(ns(i * 37 % 23)).await;
                    log.borrow_mut().push(i);
                    s.sleep(us(i % 3)).await;
                    log.borrow_mut().push(100 + i);
                });
            }
            let t = sim.run_to_completion();
            let l = log.borrow().clone();
            (t, l, sim.events())
        }
        let wheel = scenario();
        sched::set_legacy_scheduler(true);
        let legacy = scenario();
        sched::set_legacy_scheduler(false);
        assert_eq!(wheel, legacy);
    }

    #[test]
    fn new_at_starts_clock_at_offset() {
        let sim = Sim::new_at(us(100));
        assert_eq!(sim.now(), us(100));
        let s = sim.clone();
        sim.spawn(async move { s.sleep(us(5)).await });
        assert_eq!(sim.run_to_completion(), us(105));
    }

    #[test]
    fn snapshot_requires_quiescence() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move { s.sleep(us(1)).await });
        assert!(matches!(sim.snapshot(), Err(SnapshotError::NotQuiesced(_))));
        sim.run_to_completion();
        assert!(sim.is_quiesced());
        sim.snapshot().unwrap();
    }

    #[test]
    fn restored_sim_continues_byte_identically() {
        fn batch(sim: &Sim, rounds: std::ops::Range<u64>, log: Rc<RefCell<Vec<(Time, u64)>>>) {
            for i in rounds {
                let s = sim.clone();
                let log = log.clone();
                sim.spawn(async move {
                    s.sleep(ns(i * 37 % 23 + 1)).await;
                    log.borrow_mut().push((s.now(), i));
                });
            }
            sim.run_to_completion();
        }
        // Uninterrupted run: two batches back to back.
        let log_a: Rc<RefCell<Vec<(Time, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let sim = Sim::new();
        batch(&sim, 0..8, log_a.clone());
        batch(&sim, 8..16, log_a.clone());
        let final_a = (sim.now(), sim.events());
        // Interrupted run: snapshot between the batches, restore, continue.
        let log_b: Rc<RefCell<Vec<(Time, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let sim = Sim::new();
        batch(&sim, 0..8, log_b.clone());
        let bytes = sim.snapshot().unwrap();
        let sim = Sim::restore(&bytes).unwrap();
        batch(&sim, 8..16, log_b.clone());
        assert_eq!((sim.now(), sim.events()), final_a);
        assert_eq!(*log_a.borrow(), *log_b.borrow());
        // The restored simulator re-snapshots to the same final state as
        // the uninterrupted one.
        let cold = {
            let sim2 = Sim::new();
            let log: Rc<RefCell<Vec<(Time, u64)>>> = Rc::new(RefCell::new(Vec::new()));
            batch(&sim2, 0..8, log.clone());
            batch(&sim2, 8..16, log.clone());
            sim2.snapshot().unwrap()
        };
        assert_eq!(sim.snapshot().unwrap(), cold);
    }

    #[test]
    fn cross_thread_wake_panics_instead_of_racing() {
        let sim = Sim::new();
        let waker = Waker::from(Arc::new(TaskWaker {
            id: 0,
            ready: sim.inner.ready.clone(),
        }));
        let joined = std::thread::spawn(move || waker.wake()).join();
        assert!(
            joined.is_err(),
            "waking from a foreign thread must panic, not touch the queue"
        );
    }

    #[test]
    fn task_slots_are_recycled_with_inert_stale_wakes() {
        let sim = Sim::new();
        for round in 0..50u64 {
            let s = sim.clone();
            let h = sim.spawn(async move {
                s.sleep(ns(round)).await;
                round
            });
            sim.run();
            assert_eq!(h.try_take(), Some(round));
        }
        // 50 sequential tasks must reuse one slot, not grow 50.
        assert!(sim.inner.tasks.borrow().slots.len() <= 2);
    }
}
