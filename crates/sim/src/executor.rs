//! The simulation executor: processes, timers, and the deterministic run loop.
//!
//! Simulation *processes* are plain `async` blocks spawned with
//! [`Sim::spawn`]. The executor is strictly single-threaded; determinism comes
//! from two rules:
//!
//! 1. Woken processes are polled in FIFO wake order.
//! 2. When no process is runnable, the earliest timer fires; ties break on a
//!    monotonically increasing sequence number assigned at scheduling time.

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::time::Time;
use crate::trace::TraceSink;

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Identifier of a spawned simulation process.
pub type TaskId = u64;

/// What a timer does when it fires.
enum TimerAction {
    Wake(Waker),
    Call(Box<dyn FnOnce()>),
}

struct TimerEntry {
    at: Time,
    seq: u64,
    action: TimerAction,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Wake queue shared with `Waker`s. `Waker` must be `Send + Sync`, so this is
/// the single place the otherwise thread-bound simulator uses a `Mutex`; it is
/// always uncontended.
#[derive(Default)]
struct ReadyQueue {
    woken: Mutex<VecDeque<TaskId>>,
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.woken.lock().unwrap().push_back(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.woken.lock().unwrap().push_back(self.id);
    }
}

struct SimInner {
    now: Cell<Time>,
    trace: TraceSink,
    next_seq: Cell<u64>,
    next_task: Cell<TaskId>,
    timers: RefCell<BinaryHeap<TimerEntry>>,
    ready: Arc<ReadyQueue>,
    tasks: RefCell<HashMap<TaskId, Option<BoxFuture>>>,
    to_spawn: RefCell<Vec<(TaskId, BoxFuture)>>,
}

/// Handle to the simulator. Cheap to clone; every simulated component and
/// process holds one.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<SimInner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.inner.now.get())
            .field("live_tasks", &self.live_tasks())
            .finish()
    }
}

impl Sim {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Sim {
            inner: Rc::new(SimInner {
                now: Cell::new(0),
                trace: TraceSink::new(),
                next_seq: Cell::new(0),
                next_task: Cell::new(0),
                timers: RefCell::new(BinaryHeap::new()),
                ready: Arc::new(ReadyQueue::default()),
                tasks: RefCell::new(HashMap::new()),
                to_spawn: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.inner.now.get()
    }

    /// The simulator's trace sink (disabled by default; see
    /// [`TraceSink::enable`]).
    pub fn trace(&self) -> &TraceSink {
        &self.inner.trace
    }

    /// Number of processes that have been spawned and have not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.tasks.borrow().len() + self.inner.to_spawn.borrow().len()
    }

    fn next_seq(&self) -> u64 {
        let s = self.inner.next_seq.get();
        self.inner.next_seq.set(s + 1);
        s
    }

    /// Spawns a simulation process; it starts running at the current time on
    /// the next executor iteration. Returns a [`TaskHandle`] that other
    /// processes may await for the process's output.
    pub fn spawn<F>(&self, fut: F) -> TaskHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let id = self.inner.next_task.get();
        self.inner.next_task.set(id + 1);
        let state = Rc::new(RefCell::new(JoinState::<F::Output> {
            value: None,
            done: false,
            waiters: Vec::new(),
        }));
        let st = state.clone();
        let wrapped: BoxFuture = Box::pin(async move {
            let out = fut.await;
            let mut s = st.borrow_mut();
            s.value = Some(out);
            s.done = true;
            for w in s.waiters.drain(..) {
                w.wake();
            }
        });
        self.inner.to_spawn.borrow_mut().push((id, wrapped));
        // Newly spawned tasks are immediately runnable.
        self.inner.ready.woken.lock().unwrap().push_back(id);
        TaskHandle { state }
    }

    /// Schedules `f` to run at absolute simulated time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule<F: FnOnce() + 'static>(&self, at: Time, f: F) {
        assert!(at >= self.now(), "schedule() into the past");
        let seq = self.next_seq();
        self.inner.timers.borrow_mut().push(TimerEntry {
            at,
            seq,
            action: TimerAction::Call(Box::new(f)),
        });
    }

    /// Schedules `f` to run after `delay`.
    pub fn schedule_in<F: FnOnce() + 'static>(&self, delay: Time, f: F) {
        self.schedule(self.now() + delay, f);
    }

    /// Returns a future that completes at absolute time `at` (immediately if
    /// `at` is not in the future).
    pub fn sleep_until(&self, at: Time) -> Sleep {
        Sleep {
            sim: self.clone(),
            at,
            registered: false,
        }
    }

    /// Returns a future that completes after `duration` of simulated time.
    pub fn sleep(&self, duration: Time) -> Sleep {
        self.sleep_until(self.now() + duration)
    }

    fn register_timer_wake(&self, at: Time, waker: Waker) {
        let seq = self.next_seq();
        self.inner.timers.borrow_mut().push(TimerEntry {
            at,
            seq,
            action: TimerAction::Wake(waker),
        });
    }

    /// Polls every woken process (in wake order), installing new spawns first.
    /// Returns `true` if any process was polled.
    fn drain_ready(&self) -> bool {
        let mut any = false;
        loop {
            // Install pending spawns.
            {
                let mut sp = self.inner.to_spawn.borrow_mut();
                if !sp.is_empty() {
                    let mut tasks = self.inner.tasks.borrow_mut();
                    for (id, fut) in sp.drain(..) {
                        tasks.insert(id, Some(fut));
                    }
                }
            }
            let next = self.inner.ready.woken.lock().unwrap().pop_front();
            let Some(id) = next else { break };
            // Take the future out of its slot so the tasks map is not
            // borrowed while the process body runs (it may spawn/wake).
            let fut = match self.inner.tasks.borrow_mut().get_mut(&id) {
                Some(slot) => slot.take(),
                None => None, // already completed; spurious wake
            };
            let Some(mut fut) = fut else { continue };
            any = true;
            let waker = Waker::from(Arc::new(TaskWaker {
                id,
                ready: self.inner.ready.clone(),
            }));
            let mut cx = Context::from_waker(&waker);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    self.inner.tasks.borrow_mut().remove(&id);
                }
                Poll::Pending => {
                    if let Some(slot) = self.inner.tasks.borrow_mut().get_mut(&id) {
                        *slot = Some(fut);
                    }
                }
            }
        }
        any
    }

    /// Runs the simulation until no process is runnable and no timer is
    /// pending. Returns the final simulated time.
    ///
    /// Processes still alive when `run` returns are *blocked forever*
    /// (deadlocked or awaiting an event nobody will produce); callers that
    /// consider this a bug should use [`Sim::run_to_completion`].
    pub fn run(&self) -> Time {
        loop {
            self.drain_ready();
            let entry = self.inner.timers.borrow_mut().pop();
            match entry {
                Some(e) => {
                    debug_assert!(e.at >= self.inner.now.get());
                    self.inner.now.set(e.at);
                    match e.action {
                        TimerAction::Wake(w) => w.wake(),
                        TimerAction::Call(f) => f(),
                    }
                }
                None => break,
            }
        }
        self.inner.now.get()
    }

    /// Like [`Sim::run`], but panics if any process is still alive afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocked (processes remain but no event can
    /// wake them).
    pub fn run_to_completion(&self) -> Time {
        let t = self.run();
        let live = self.live_tasks();
        assert!(
            live == 0,
            "simulation deadlocked at t={t} ps with {live} blocked process(es)"
        );
        t
    }

    /// Runs until simulated time would exceed `limit`; events at exactly
    /// `limit` still fire. Returns the final time (`<= limit`).
    pub fn run_for(&self, limit: Time) -> Time {
        loop {
            self.drain_ready();
            let fire = {
                let timers = self.inner.timers.borrow();
                matches!(timers.peek(), Some(e) if e.at <= limit)
            };
            if !fire {
                break;
            }
            let e = self.inner.timers.borrow_mut().pop().unwrap();
            self.inner.now.set(e.at);
            match e.action {
                TimerAction::Wake(w) => w.wake(),
                TimerAction::Call(f) => f(),
            }
        }
        self.inner.now.get()
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
#[derive(Debug)]
pub struct Sleep {
    sim: Sim,
    at: Time,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.at {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            let at = self.at;
            self.sim.register_timer_wake(at, cx.waker().clone());
        }
        Poll::Pending
    }
}

struct JoinState<T> {
    value: Option<T>,
    done: bool,
    waiters: Vec<Waker>,
}

/// Handle to a spawned process; awaiting it yields the process output.
///
/// Dropping the handle detaches the process (it keeps running).
pub struct TaskHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> std::fmt::Debug for TaskHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("done", &self.state.borrow().done)
            .finish()
    }
}

impl<T> TaskHandle<T> {
    /// Returns the output if the process has completed, without blocking.
    /// Returns `None` if it is still running or the value was already taken.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().value.take()
    }

    /// `true` once the process has completed.
    pub fn is_done(&self) -> bool {
        self.state.borrow().done
    }
}

impl<T> Future for TaskHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if st.done {
            match st.value.take() {
                Some(v) => Poll::Ready(v),
                None => panic!("TaskHandle polled after output was taken"),
            }
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Awaits all handles in a vector, returning outputs in order.
///
/// This is the join-all barrier used by experiment drivers to wait for all
/// per-node processes.
pub async fn join_all<T>(handles: Vec<TaskHandle<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{ns, us};

    #[test]
    fn empty_sim_finishes_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.run(), 0);
    }

    #[test]
    fn sleep_advances_time() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(us(3)).await;
            s.sleep(us(2)).await;
        });
        assert_eq!(sim.run_to_completion(), us(5));
    }

    #[test]
    fn timers_fire_in_time_then_seq_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, t) in [(1u32, us(2)), (2, us(1)), (3, us(2)), (4, us(1))] {
            let log = log.clone();
            sim.schedule(t, move || log.borrow_mut().push(i));
        }
        sim.run();
        // Same-time entries keep scheduling order.
        assert_eq!(*log.borrow(), vec![2, 4, 1, 3]);
    }

    #[test]
    fn spawned_tasks_start_at_spawn_time() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(us(1)).await;
            let inner = s.spawn(async { 7 });
            inner.await
        });
        sim.run_to_completion();
        assert_eq!(h.try_take(), Some(7));
    }

    #[test]
    fn join_all_collects_in_order() {
        let sim = Sim::new();
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let s = sim.clone();
            handles.push(sim.spawn(async move {
                // Later-indexed tasks sleep less, so completion order is
                // reversed; join_all must still return spawn order.
                s.sleep(ns(100 - i * 10)).await;
                i
            }));
        }
        let joined = sim.spawn(async move { join_all(handles).await });
        sim.run_to_completion();
        assert_eq!(joined.try_take(), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn run_for_stops_at_limit() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(us(10)).await;
        });
        assert_eq!(sim.run_for(us(4)), 0); // nothing fired before the limit
        assert_eq!(sim.live_tasks(), 1);
        assert_eq!(sim.run(), us(10));
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn deadlock_detected() {
        let sim = Sim::new();
        let (_tx, rx) = crate::queue::unbounded::<u8>();
        sim.spawn(async move {
            rx.recv().await;
        });
        sim.run_to_completion();
    }

    #[test]
    fn determinism_two_runs_identical() {
        fn run_once() -> (Time, Vec<u64>) {
            let sim = Sim::new();
            let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            for i in 0..8u64 {
                let s = sim.clone();
                let log = log.clone();
                sim.spawn(async move {
                    s.sleep(ns(i * 37 % 11)).await;
                    log.borrow_mut().push(i);
                    s.sleep(ns(i * 13 % 7)).await;
                    log.borrow_mut().push(100 + i);
                });
            }
            let t = sim.run_to_completion();
            let l = log.borrow().clone();
            (t, l)
        }
        assert_eq!(run_once(), run_once());
    }
}
