//! Optional event tracing: a timeline of component events for debugging
//! and for the experiment harness's trace dumps.
//!
//! Tracing is off by default and costs one branch per call site when
//! disabled. Components record `(time, category, kv, message)` rows; the
//! owner of the [`Sim`](crate::Sim) drains them with
//! [`TraceSink::take`]. Categories are a closed [`Category`] enum and
//! each event carries a structured key/value payload, so harnesses
//! filter and aggregate without string matching.

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::Time;

/// The component that recorded a trace event.
///
/// A closed enum (not a string) so experiment harnesses can filter and
/// aggregate by equality instead of string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Network-interface hardware/firmware (DU engine, AU snooper, IPT).
    Nic,
    /// Backplane routing and channels.
    Net,
    /// Node memory and memory bus.
    Mem,
    /// Shared-virtual-memory protocol layer.
    Svm,
    /// The VMMC library and cluster system software.
    Core,
    /// NX message-passing library.
    Nx,
    /// Stream sockets layer.
    Sockets,
    /// Application-level events.
    App,
    /// Tests, examples and everything else.
    Other,
}

impl Category {
    /// The lowercase label used in rendered timelines.
    pub fn as_str(&self) -> &'static str {
        match self {
            Category::Nic => "nic",
            Category::Net => "net",
            Category::Mem => "mem",
            Category::Svm => "svm",
            Category::Core => "core",
            Category::Nx => "nx",
            Category::Sockets => "sock",
            Category::App => "app",
            Category::Other => "other",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One trace row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub at: Time,
    /// Recording component.
    pub category: Category,
    /// Structured payload: named numeric fields (node ids, byte counts,
    /// page numbers) the harness aggregates over.
    pub kv: Vec<(&'static str, u64)>,
    /// Human-readable description.
    pub message: String,
}

impl TraceEvent {
    /// Looks up a structured payload field by name.
    pub fn field(&self, key: &str) -> Option<u64> {
        self.kv.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

struct SinkInner {
    enabled: bool,
    events: Vec<TraceEvent>,
    /// Bound on retained events (oldest dropped beyond it).
    capacity: usize,
    dropped: u64,
}

/// A shared trace buffer. Cheap to clone.
#[derive(Clone)]
pub struct TraceSink {
    inner: Rc<RefCell<SinkInner>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("TraceSink")
            .field("enabled", &inner.enabled)
            .field("events", &inner.events.len())
            .field("dropped", &inner.dropped)
            .finish()
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// Creates a disabled sink with the default capacity (64 K events).
    pub fn new() -> Self {
        TraceSink {
            inner: Rc::new(RefCell::new(SinkInner {
                enabled: false,
                events: Vec::new(),
                capacity: 64 * 1024,
                dropped: 0,
            })),
        }
    }

    /// Enables recording, optionally bounding the retained event count.
    pub fn enable(&self, capacity: Option<usize>) {
        let mut inner = self.inner.borrow_mut();
        inner.enabled = true;
        if let Some(c) = capacity {
            inner.capacity = c;
        }
    }

    /// Disables recording (already-recorded events are kept).
    pub fn disable(&self) {
        self.inner.borrow_mut().enabled = false;
    }

    /// `true` while recording. Call sites use this to skip formatting work.
    pub fn enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Records an event with no structured payload (no-op when disabled).
    pub fn record(&self, at: Time, category: Category, message: String) {
        self.record_kv(at, category, Vec::new(), message);
    }

    /// Records an event with a structured payload (no-op when disabled).
    ///
    /// Duplicate keys are collapsed in place, last write wins:
    /// [`TraceEvent::field`] is a first-match linear scan, so without this a
    /// repeated key would shadow its own latest value. First-occurrence
    /// order is kept so rendered timelines stay stable.
    pub fn record_kv(
        &self,
        at: Time,
        category: Category,
        mut kv: Vec<(&'static str, u64)>,
        message: String,
    ) {
        let mut inner = self.inner.borrow_mut();
        if !inner.enabled {
            return;
        }
        let mut kept = 0;
        for i in 0..kv.len() {
            let (k, v) = kv[i];
            match kv[..kept].iter_mut().find(|(dk, _)| *dk == k) {
                Some(slot) => slot.1 = v,
                None => {
                    kv[kept] = (k, v);
                    kept += 1;
                }
            }
        }
        kv.truncate(kept);
        if inner.events.len() >= inner.capacity {
            inner.events.remove(0);
            inner.dropped += 1;
        }
        inner.events.push(TraceEvent {
            at,
            category,
            kv,
            message,
        });
    }

    /// Takes all recorded events, leaving the sink empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.inner.borrow_mut().events)
    }

    /// Takes only the events of one category, leaving the rest recorded.
    pub fn take_category(&self, category: Category) -> Vec<TraceEvent> {
        let mut inner = self.inner.borrow_mut();
        let (hit, keep) = std::mem::take(&mut inner.events)
            .into_iter()
            .partition(|e| e.category == category);
        inner.events = keep;
        hit
    }

    /// Events dropped to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Renders events as a plain-text timeline.
    pub fn render(events: &[TraceEvent]) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in events {
            let _ = write!(
                out,
                "{:>14.3} us  {:<6} {}",
                crate::time::to_us(e.at),
                e.category,
                e.message
            );
            for (k, v) in &e.kv {
                let _ = write!(out, "  {k}={v}");
            }
            out.push('\n');
        }
        out
    }
}

/// Records into `sink` only if enabled, deferring message formatting.
///
/// An optional `[("key", value), ...]` payload before the format string
/// attaches structured fields:
///
/// ```
/// use shrimp_sim::{trace_event, Category, Sim};
/// let sim = Sim::new();
/// sim.trace().enable(None);
/// trace_event!(sim.trace(), sim.now(), Category::Other, "value = {}", 42);
/// trace_event!(
///     sim.trace(),
///     sim.now(),
///     Category::Nic,
///     [("len", 64u64)],
///     "packet out"
/// );
/// let events = sim.trace().take();
/// assert_eq!(events.len(), 2);
/// assert_eq!(events[1].field("len"), Some(64));
/// ```
#[macro_export]
macro_rules! trace_event {
    ($sink:expr, $at:expr, $cat:expr, [$(($k:expr, $v:expr)),* $(,)?], $($arg:tt)*) => {
        if $sink.enabled() {
            // Exact-capacity allocation: the payload length is known here at
            // the macro site, so the Vec never over- or re-allocates.
            let mut kv: ::std::vec::Vec<(&'static str, u64)> =
                ::std::vec::Vec::with_capacity(0usize $(+ { let _ = stringify!($k); 1 })*);
            $(kv.push(($k, $v as u64));)*
            $sink.record_kv($at, $cat, kv, format!($($arg)*));
        }
    };
    ($sink:expr, $at:expr, $cat:expr, $($arg:tt)*) => {
        if $sink.enabled() {
            $sink.record($at, $cat, format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::new();
        sink.record(5, Category::Other, "hello".into());
        assert!(sink.take().is_empty());
    }

    #[test]
    fn enabled_sink_records_and_drains() {
        let sink = TraceSink::new();
        sink.enable(None);
        sink.record(1, Category::Nic, "one".into());
        sink.record(2, Category::Svm, "two".into());
        let ev = sink.take();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].message, "one");
        assert!(sink.take().is_empty());
        let text = TraceSink::render(&ev);
        assert!(text.contains("one") && text.contains("two"));
        assert!(text.contains("nic") && text.contains("svm"));
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let sink = TraceSink::new();
        sink.enable(Some(3));
        for i in 0..5 {
            sink.record(i, Category::Other, format!("e{i}"));
        }
        let ev = sink.take();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].message, "e2");
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn kv_payload_is_queryable_and_rendered() {
        let sink = TraceSink::new();
        sink.enable(None);
        sink.record_kv(
            7,
            Category::Nic,
            vec![("node", 3), ("len", 4096)],
            "DU transfer".into(),
        );
        let ev = sink.take();
        assert_eq!(ev[0].field("len"), Some(4096));
        assert_eq!(ev[0].field("node"), Some(3));
        assert_eq!(ev[0].field("missing"), None);
        let text = TraceSink::render(&ev);
        assert!(text.contains("len=4096"), "{text}");
    }

    #[test]
    fn duplicate_kv_keys_collapse_last_write_wins() {
        let sink = TraceSink::new();
        sink.enable(None);
        sink.record_kv(
            1,
            Category::Nic,
            vec![
                ("node", 1),
                ("len", 10),
                ("node", 2),
                ("len", 20),
                ("dst", 3),
            ],
            "dup".into(),
        );
        let ev = sink.take();
        // One entry per key, first-occurrence order, latest value.
        assert_eq!(ev[0].kv, vec![("node", 2), ("len", 20), ("dst", 3)]);
        assert_eq!(ev[0].field("node"), Some(2));
        assert_eq!(ev[0].field("len"), Some(20));
    }

    #[test]
    fn macro_kv_payload_allocates_exact_capacity() {
        let sink = TraceSink::new();
        sink.enable(None);
        crate::trace_event!(
            &sink,
            1,
            Category::Nic,
            [("a", 1u64), ("b", 2u64), ("a", 3u64)],
            "macro dedupe"
        );
        let ev = sink.take();
        assert_eq!(ev[0].kv, vec![("a", 3), ("b", 2)]);
        // Capacity was reserved for the macro-site payload (3 pairs), and
        // dedupe only shrinks the length, never reallocates.
        assert!(ev[0].kv.capacity() <= 3);
    }

    #[test]
    fn take_category_partitions() {
        let sink = TraceSink::new();
        sink.enable(None);
        sink.record(1, Category::Nic, "a".into());
        sink.record(2, Category::Svm, "b".into());
        sink.record(3, Category::Nic, "c".into());
        let nic = sink.take_category(Category::Nic);
        assert_eq!(nic.len(), 2);
        let rest = sink.take();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].category, Category::Svm);
    }
}
