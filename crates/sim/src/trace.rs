//! Optional event tracing: a timeline of component events for debugging
//! and for the experiment harness's `SHRIMP_TRACE` dumps.
//!
//! Tracing is off by default and costs one branch per call site when
//! disabled. Components record `(time, category, message)` rows; the
//! owner of the [`Sim`](crate::Sim) drains them with
//! [`TraceSink::take`].

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::Time;

/// One trace row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub at: Time,
    /// Component category (e.g. `"nic"`, `"svm"`, `"net"`).
    pub category: &'static str,
    /// Human-readable description.
    pub message: String,
}

struct SinkInner {
    enabled: bool,
    events: Vec<TraceEvent>,
    /// Bound on retained events (oldest dropped beyond it).
    capacity: usize,
    dropped: u64,
}

/// A shared trace buffer. Cheap to clone.
#[derive(Clone)]
pub struct TraceSink {
    inner: Rc<RefCell<SinkInner>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("TraceSink")
            .field("enabled", &inner.enabled)
            .field("events", &inner.events.len())
            .field("dropped", &inner.dropped)
            .finish()
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// Creates a disabled sink with the default capacity (64 K events).
    pub fn new() -> Self {
        TraceSink {
            inner: Rc::new(RefCell::new(SinkInner {
                enabled: false,
                events: Vec::new(),
                capacity: 64 * 1024,
                dropped: 0,
            })),
        }
    }

    /// Enables recording, optionally bounding the retained event count.
    pub fn enable(&self, capacity: Option<usize>) {
        let mut inner = self.inner.borrow_mut();
        inner.enabled = true;
        if let Some(c) = capacity {
            inner.capacity = c;
        }
    }

    /// Disables recording (already-recorded events are kept).
    pub fn disable(&self) {
        self.inner.borrow_mut().enabled = false;
    }

    /// `true` while recording. Call sites use this to skip formatting work.
    pub fn enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Records an event (no-op when disabled).
    pub fn record(&self, at: Time, category: &'static str, message: String) {
        let mut inner = self.inner.borrow_mut();
        if !inner.enabled {
            return;
        }
        if inner.events.len() >= inner.capacity {
            inner.events.remove(0);
            inner.dropped += 1;
        }
        inner.events.push(TraceEvent {
            at,
            category,
            message,
        });
    }

    /// Takes all recorded events, leaving the sink empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.inner.borrow_mut().events)
    }

    /// Events dropped to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Renders events as a plain-text timeline.
    pub fn render(events: &[TraceEvent]) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in events {
            let _ = writeln!(
                out,
                "{:>14.3} us  {:<6} {}",
                crate::time::to_us(e.at),
                e.category,
                e.message
            );
        }
        out
    }
}

/// Records into `sink` only if enabled, deferring message formatting.
///
/// ```
/// use shrimp_sim::{trace_event, Sim};
/// let sim = Sim::new();
/// sim.trace().enable(None);
/// trace_event!(sim.trace(), sim.now(), "demo", "value = {}", 42);
/// assert_eq!(sim.trace().take().len(), 1);
/// ```
#[macro_export]
macro_rules! trace_event {
    ($sink:expr, $at:expr, $cat:expr, $($arg:tt)*) => {
        if $sink.enabled() {
            $sink.record($at, $cat, format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::new();
        sink.record(5, "x", "hello".into());
        assert!(sink.take().is_empty());
    }

    #[test]
    fn enabled_sink_records_and_drains() {
        let sink = TraceSink::new();
        sink.enable(None);
        sink.record(1, "a", "one".into());
        sink.record(2, "b", "two".into());
        let ev = sink.take();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].message, "one");
        assert!(sink.take().is_empty());
        let text = TraceSink::render(&ev);
        assert!(text.contains("one") && text.contains("two"));
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let sink = TraceSink::new();
        sink.enable(Some(3));
        for i in 0..5 {
            sink.record(i, "c", format!("e{i}"));
        }
        let ev = sink.take();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].message, "e2");
        assert_eq!(sink.dropped(), 2);
    }
}
