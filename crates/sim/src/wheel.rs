//! An indexed hierarchical timer wheel: the simulator's event queue.
//!
//! The DES hot path pops pending timers in exact `(time, seq)` order, where
//! `seq` is a monotonically increasing sequence number assigned at insert
//! time. A binary heap does this in `O(log n)` per operation with an
//! allocation per entry; the wheel does it in amortized `O(1)` per
//! operation with slab-recycled nodes, so steady-state scheduling performs
//! no heap allocation at all.
//!
//! # Structure
//!
//! * `LEVELS` levels of `SLOTS` slots each. A slot at level `k` spans
//!   `64^k` picoseconds; level 0 slots are exact timestamps. Deadlines
//!   further than `64^LEVELS` ps (≈ 68.7 ms) from the cursor wait in an
//!   overflow heap and are promoted once the cursor gets close.
//! * Entries live in a slab (`Vec` + intrusive free list); slots chain
//!   entries by slab index, so inserting, cascading and cancelling never
//!   allocate once the slab has warmed up.
//! * A 64-bit occupancy bitmap per level finds the next non-empty slot
//!   with one `trailing_zeros`.
//!
//! # Exact ordering
//!
//! The wheel maintains a cursor `elapsed` that never exceeds the earliest
//! pending deadline (of the wheel/overflow population). Every entry at
//! level `k` agrees with the cursor on all bits above block `k`, which
//! yields two load-bearing invariants:
//!
//! 1. All entries in one level-0 slot share *exactly* the same deadline,
//!    so popping a level-0 slot in ascending `seq` order is globally
//!    correct.
//! 2. Every entry at level `k` expires strictly before every entry at
//!    level `k+1`, so the earliest entry is always found by scanning
//!    levels bottom-up.
//!
//! Rarely, a caller peeks at the next deadline (which may advance the
//! cursor without firing anything) and then schedules an earlier event —
//! legal, since simulated time has not moved. Such entries go to a small
//! `pre` heap that always wins over the wheel; steady-state runs never
//! touch it.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use crate::time::Time;

/// Opt-in switch to the legacy level-by-level cascade stepper, compiled
/// only for tests and the `legacy-skip` feature.
///
/// The production refill path idle-skips: it jumps the cursor straight to
/// the earliest deadline of the next populated slot instead of cascading
/// through intermediate levels. The legacy stepper is kept as a
/// differential oracle (`tests/skip_differential.rs` replays identical
/// streams through both and demands identical `(time, seq)` order). This
/// mirrors the `sched` toggle for the pre-wheel heap scheduler: the choice
/// is thread-local and captured once per wheel at construction time.
#[cfg(any(test, feature = "legacy-skip"))]
pub mod skip {
    use std::cell::Cell;

    thread_local! {
        static LEGACY: Cell<bool> = const { Cell::new(false) };
    }

    /// Routes wheels subsequently created on this thread to the legacy
    /// cascade stepper (`true`) or the idle-skip fast path (`false`).
    pub fn set_legacy_stepper(on: bool) {
        LEGACY.with(|l| l.set(on));
    }

    /// The current thread-local stepper choice.
    pub fn legacy_stepper() -> bool {
        LEGACY.with(|l| l.get())
    }
}

/// Slot-index bits per level.
const BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Number of wheel levels; deadlines beyond `64^LEVELS` ps from the cursor
/// overflow to a heap.
const LEVELS: usize = 6;
/// Distance (in ps) from the cursor beyond which an entry overflows.
const HORIZON: u64 = 1 << (BITS * LEVELS as u32);

type Idx = u32;
const NIL: Idx = u32::MAX;

/// Handle to a pending timer, for [`TimerWheel::cancel`].
///
/// Ids are generation-tagged: cancelling after the timer fired (or after a
/// previous cancel) is a detectable no-op, never a misfire on a recycled
/// slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId {
    idx: Idx,
    gen: u32,
}

struct Node<T> {
    at: Time,
    seq: u64,
    gen: u32,
    /// Slot chain / free-list link.
    next: Idx,
    cancelled: bool,
    payload: Option<T>,
}

/// The timer wheel. See the [module docs](self) for the design.
pub struct TimerWheel<T> {
    /// Cursor: never exceeds the earliest deadline held by the wheel
    /// levels or the overflow heap.
    elapsed: Time,
    next_seq: u64,
    /// Pending, non-cancelled entries.
    live: usize,
    slots: [[Idx; SLOTS]; LEVELS],
    occupied: [u64; LEVELS],
    slab: Vec<Node<T>>,
    free: Idx,
    /// Drained level-0 slot, ascending `seq`; all entries share one
    /// deadline. Consumed before the levels are consulted again.
    current: VecDeque<Idx>,
    /// Entries scheduled behind the cursor after a non-firing peek.
    pre: BinaryHeap<Reverse<(Time, u64, Idx)>>,
    /// Entries beyond [`HORIZON`].
    overflow: BinaryHeap<Reverse<(Time, u64, Idx)>>,
    /// Reusable sort buffer for slot drains.
    scratch: Vec<(u64, Idx)>,
    /// Use the legacy cascade stepper instead of idle-skip (differential
    /// oracle only; captured from the thread-local toggle at construction).
    #[cfg(any(test, feature = "legacy-skip"))]
    legacy_refill: bool,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel with its cursor at time zero.
    pub fn new() -> Self {
        TimerWheel {
            elapsed: 0,
            next_seq: 0,
            live: 0,
            slots: [[NIL; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            slab: Vec::new(),
            free: NIL,
            current: VecDeque::new(),
            pre: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            scratch: Vec::new(),
            #[cfg(any(test, feature = "legacy-skip"))]
            legacy_refill: skip::legacy_stepper(),
        }
    }

    /// Number of pending (non-cancelled) timers.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no timer is pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `payload` at absolute time `at`. Entries inserted earlier
    /// fire first among equal deadlines (sequence order).
    pub fn insert(&mut self, at: Time, payload: T) -> TimerId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.alloc(at, seq, payload);
        let gen = self.slab[idx as usize].gen;
        self.place(idx);
        self.live += 1;
        TimerId { idx, gen }
    }

    /// Cancels a pending timer. Returns `false` if it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        match self.slab.get_mut(id.idx as usize) {
            Some(node) if node.gen == id.gen && !node.cancelled => {
                node.cancelled = true;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// The deadline of the earliest pending timer, without firing it.
    ///
    /// May advance the internal cursor (never past that deadline); entries
    /// scheduled earlier afterwards are still honored in order.
    pub fn peek_deadline(&mut self) -> Option<Time> {
        self.settle().map(|(at, _)| at)
    }

    /// Removes and returns the earliest pending timer as `(deadline,
    /// payload)`; ties on the deadline fire in insertion order.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.settle()?;
        // `settle` guarantees the head of `pre` or `current` is live.
        if let Some(&Reverse((at, _seq, idx))) = self.pre.peek() {
            self.pre.pop();
            let payload = self.slab[idx as usize].payload.take().expect("live node");
            self.release(idx);
            self.live -= 1;
            return Some((at, payload));
        }
        let idx = self.current.pop_front().expect("settle found an entry");
        let node = &mut self.slab[idx as usize];
        let at = node.at;
        let payload = node.payload.take().expect("live node");
        self.release(idx);
        self.live -= 1;
        Some((at, payload))
    }

    // -- internals ---------------------------------------------------------

    /// Ensures the next live entry sits at the head of `pre` or `current`
    /// and returns its `(deadline, seq)` key; `None` when nothing pends.
    fn settle(&mut self) -> Option<(Time, u64)> {
        loop {
            // Drop cancelled heads lazily.
            if let Some(&Reverse((at, seq, idx))) = self.pre.peek() {
                if self.slab[idx as usize].cancelled {
                    self.pre.pop();
                    self.release(idx);
                    continue;
                }
                // `pre` entries are strictly earlier than the cursor, and
                // the cursor bounds everything else from below.
                return Some((at, seq));
            }
            if let Some(&idx) = self.current.front() {
                let node = &self.slab[idx as usize];
                if node.cancelled {
                    self.current.pop_front();
                    self.release(idx);
                    continue;
                }
                return Some((node.at, node.seq));
            }
            if !self.refill() {
                return None;
            }
        }
    }

    /// Advances the cursor to the earliest populated level-0 slot and
    /// drains it into `current` (sorted by seq). Returns `false` when the
    /// wheel and overflow are both structurally empty.
    fn refill(&mut self) -> bool {
        self.promote();
        loop {
            let Some(level) = (0..LEVELS).find(|&k| self.occupied[k] != 0) else {
                // Only far-future entries remain: jump the cursor to the
                // earliest and let promotion pull it in.
                let Some(&Reverse((at, _, _))) = self.overflow.peek() else {
                    return false;
                };
                self.elapsed = at;
                self.promote();
                continue;
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                // All entries in a level-0 slot share one exact deadline.
                let deadline = (self.elapsed & !(SLOTS as u64 - 1)) | slot as u64;
                debug_assert!(deadline >= self.elapsed);
                self.elapsed = deadline;
                // Same-deadline stragglers in the overflow join the slot.
                self.promote();
                self.drain_slot_sorted(slot);
                return true;
            }
            #[cfg(any(test, feature = "legacy-skip"))]
            if self.legacy_refill {
                // Legacy cascade stepper (differential oracle): advance to
                // the slot's start and re-place its entries, which now land
                // at a strictly lower level.
                let shift = BITS * level as u32;
                let base = self.elapsed & !((1u64 << (shift + BITS)) - 1);
                let start = base | ((slot as u64) << shift);
                debug_assert!(start > self.elapsed);
                self.elapsed = start;
                self.promote();
                let mut head = self.take_slot(level, slot);
                while head != NIL {
                    let next = self.slab[head as usize].next;
                    if self.slab[head as usize].cancelled {
                        self.release(head);
                    } else {
                        self.place(head);
                    }
                    head = next;
                }
                continue;
            }
            // Idle-skip: this slot holds the earliest wheel entries (its
            // level-`k` population agrees with the cursor above block `k`
            // and occupies the lowest occupied slot of the lowest occupied
            // level; every overflow deadline is later still, since it
            // differs from the cursor above the horizon). Jump the cursor
            // straight to the slot's earliest live deadline in one hop
            // instead of cascading a level at a time through empty slots.
            // All chain entries share the cursor's bits at block `k` and
            // above after the jump, so re-placing them lands at level
            // `k - 1` or lower — the earliest one at level 0 exactly.
            let head = self.take_slot(level, slot);
            let mut target: Option<Time> = None;
            let mut cur = head;
            while cur != NIL {
                let node = &self.slab[cur as usize];
                if !node.cancelled {
                    target = Some(target.map_or(node.at, |t: Time| t.min(node.at)));
                }
                cur = node.next;
            }
            let Some(target) = target else {
                // The chain was entirely cancelled entries; free them and
                // rescan without moving the cursor.
                let mut cur = head;
                while cur != NIL {
                    let next = self.slab[cur as usize].next;
                    self.release(cur);
                    cur = next;
                }
                continue;
            };
            debug_assert!(target > self.elapsed);
            self.elapsed = target;
            self.promote();
            let mut cur = head;
            while cur != NIL {
                let next = self.slab[cur as usize].next;
                if self.slab[cur as usize].cancelled {
                    self.release(cur);
                } else {
                    self.place(cur);
                }
                cur = next;
            }
        }
    }

    /// Moves overflow entries that now fit under the horizon into the
    /// wheel levels.
    fn promote(&mut self) {
        while let Some(&Reverse((at, _, idx))) = self.overflow.peek() {
            if at ^ self.elapsed >= HORIZON {
                break;
            }
            self.overflow.pop();
            if self.slab[idx as usize].cancelled {
                self.release(idx);
            } else {
                self.place(idx);
            }
        }
    }

    /// Links a slab node into the structure that matches its deadline's
    /// distance from the cursor.
    fn place(&mut self, idx: Idx) {
        let (at, seq) = {
            let n = &self.slab[idx as usize];
            (n.at, n.seq)
        };
        if at < self.elapsed {
            self.pre.push(Reverse((at, seq, idx)));
            return;
        }
        let dist = at ^ self.elapsed;
        if dist >= HORIZON {
            self.overflow.push(Reverse((at, seq, idx)));
            return;
        }
        let level = ((63 - (dist | 1).leading_zeros()) / BITS) as usize;
        let slot = ((at >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let head = self.slots[level][slot];
        self.slab[idx as usize].next = head;
        self.slots[level][slot] = idx;
        self.occupied[level] |= 1 << slot;
    }

    /// Detaches and returns a slot's chain head, clearing its occupancy bit.
    fn take_slot(&mut self, level: usize, slot: usize) -> Idx {
        let head = self.slots[level][slot];
        self.slots[level][slot] = NIL;
        self.occupied[level] &= !(1u64 << slot);
        head
    }

    /// Drains a level-0 slot into `current` in ascending `seq` order,
    /// freeing cancelled entries on the way.
    fn drain_slot_sorted(&mut self, slot: usize) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let mut head = self.take_slot(0, slot);
        while head != NIL {
            let node = &self.slab[head as usize];
            let next = node.next;
            if node.cancelled {
                self.release(head);
            } else {
                scratch.push((node.seq, head));
            }
            head = next;
        }
        scratch.sort_unstable();
        self.current.extend(scratch.iter().map(|&(_, idx)| idx));
        self.scratch = scratch;
    }

    fn alloc(&mut self, at: Time, seq: u64, payload: T) -> Idx {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.slab[idx as usize];
            self.free = node.next;
            node.at = at;
            node.seq = seq;
            node.next = NIL;
            node.cancelled = false;
            node.payload = Some(payload);
            idx
        } else {
            let idx = self.slab.len() as Idx;
            assert!(idx != NIL, "timer slab exhausted");
            self.slab.push(Node {
                at,
                seq,
                gen: 0,
                next: NIL,
                cancelled: false,
                payload: Some(payload),
            });
            idx
        }
    }

    /// Returns a node to the free list, bumping its generation so stale
    /// [`TimerId`]s can never act on the recycled slot.
    fn release(&mut self, idx: Idx) {
        let free = self.free;
        let node = &mut self.slab[idx as usize];
        node.gen = node.gen.wrapping_add(1);
        node.payload = None;
        node.cancelled = false;
        node.next = free;
        self.free = idx;
    }
}

impl<T> TimerWheel<T> {
    /// Serializes the wheel's complete structure — cursor, sequence
    /// counter, generation-tagged slab (including the free list), slot
    /// chains, occupancy bitmaps, drained-slot queue, pre-heap and
    /// overflow heap — so that [`TimerWheel::restore_from`] rebuilds a
    /// wheel whose future behavior (pop order, recycled slot indices,
    /// generation tags handed to new timers) is byte-identical to the
    /// original's.
    ///
    /// `encode` turns a live payload into bytes; it is only invoked for
    /// pending, non-cancelled entries. Cancelled entries are serialized
    /// without their payload — the wheel never reads a cancelled payload,
    /// it only drops it — which lets a caller snapshot a wheel holding
    /// unserializable residue (e.g. cancelled wakers) with an `encode`
    /// that always fails.
    ///
    /// The two heaps are written as ascending-sorted vectors: their
    /// `(deadline, seq, index)` keys are unique, so heap pop order depends
    /// only on the key set and the serialized artifact is independent of
    /// the heaps' internal layout.
    pub fn snapshot_into(
        &self,
        w: &mut SnapshotWriter,
        mut encode: impl FnMut(&T) -> Result<Vec<u8>, SnapshotError>,
    ) -> Result<(), SnapshotError> {
        w.put_u64(self.elapsed);
        w.put_u64(self.next_seq);
        w.put_u64(self.live as u64);
        w.put_u32(self.free);
        w.put_u64(self.slab.len() as u64);
        for node in &self.slab {
            w.put_u64(node.at);
            w.put_u64(node.seq);
            w.put_u32(node.gen);
            w.put_u32(node.next);
            w.put_bool(node.cancelled);
            match &node.payload {
                Some(p) if !node.cancelled => {
                    w.put_bool(true);
                    w.put_bytes(&encode(p)?);
                }
                _ => w.put_bool(false),
            }
        }
        for level in 0..LEVELS {
            for slot in 0..SLOTS {
                w.put_u32(self.slots[level][slot]);
            }
        }
        for level in 0..LEVELS {
            w.put_u64(self.occupied[level]);
        }
        w.put_u64(self.current.len() as u64);
        for &idx in &self.current {
            w.put_u32(idx);
        }
        for heap in [&self.pre, &self.overflow] {
            let mut keys: Vec<(Time, u64, Idx)> = heap.iter().map(|&Reverse(k)| k).collect();
            keys.sort_unstable();
            w.put_u64(keys.len() as u64);
            for (at, seq, idx) in keys {
                w.put_u64(at);
                w.put_u64(seq);
                w.put_u32(idx);
            }
        }
        Ok(())
    }

    /// Rebuilds a wheel serialized by [`TimerWheel::snapshot_into`].
    ///
    /// `decode` inverts the snapshot's `encode`; it runs once per pending
    /// entry. Structural invariants (index bounds, live count vs. payload
    /// count) are validated and violations surface as
    /// [`SnapshotError::Corrupt`].
    pub fn restore_from(
        r: &mut SnapshotReader<'_>,
        mut decode: impl FnMut(&[u8]) -> Result<T, SnapshotError>,
    ) -> Result<TimerWheel<T>, SnapshotError> {
        let elapsed = r.get_u64()?;
        let next_seq = r.get_u64()?;
        let live = r.get_u64()? as usize;
        let free = r.get_u32()?;
        let slab_len = r.get_len()?;
        if slab_len >= NIL as usize {
            return Err(SnapshotError::Corrupt(
                "timer slab length exceeds index space",
            ));
        }
        let valid = |idx: Idx| idx == NIL || (idx as usize) < slab_len;
        if !valid(free) {
            return Err(SnapshotError::Corrupt("free-list head out of bounds"));
        }
        let mut slab = Vec::with_capacity(slab_len);
        let mut payloads = 0usize;
        for _ in 0..slab_len {
            let at = r.get_u64()?;
            let seq = r.get_u64()?;
            let gen = r.get_u32()?;
            let next = r.get_u32()?;
            if !valid(next) {
                return Err(SnapshotError::Corrupt("node link out of bounds"));
            }
            let cancelled = r.get_bool()?;
            let payload = if r.get_bool()? {
                payloads += 1;
                Some(decode(r.get_bytes()?)?)
            } else {
                None
            };
            slab.push(Node {
                at,
                seq,
                gen,
                next,
                cancelled,
                payload,
            });
        }
        if payloads != live {
            return Err(SnapshotError::Corrupt(
                "live count disagrees with payload count",
            ));
        }
        let mut slots = [[NIL; SLOTS]; LEVELS];
        for level in slots.iter_mut() {
            for slot in level.iter_mut() {
                *slot = r.get_u32()?;
                if !valid(*slot) {
                    return Err(SnapshotError::Corrupt("slot head out of bounds"));
                }
            }
        }
        let mut occupied = [0u64; LEVELS];
        for bits in occupied.iter_mut() {
            *bits = r.get_u64()?;
        }
        let current_len = r.get_len()?;
        let mut current = VecDeque::with_capacity(current_len);
        for _ in 0..current_len {
            let idx = r.get_u32()?;
            if idx == NIL || !valid(idx) {
                return Err(SnapshotError::Corrupt("current-queue index out of bounds"));
            }
            current.push_back(idx);
        }
        let mut heaps: [BinaryHeap<Reverse<(Time, u64, Idx)>>; 2] =
            [BinaryHeap::new(), BinaryHeap::new()];
        for heap in heaps.iter_mut() {
            let n = r.get_len()?;
            for _ in 0..n {
                let at = r.get_u64()?;
                let seq = r.get_u64()?;
                let idx = r.get_u32()?;
                if idx == NIL || !valid(idx) {
                    return Err(SnapshotError::Corrupt("heap index out of bounds"));
                }
                heap.push(Reverse((at, seq, idx)));
            }
        }
        let [pre, overflow] = heaps;
        Ok(TimerWheel {
            elapsed,
            next_seq,
            live,
            slots,
            occupied,
            slab,
            free,
            current,
            pre,
            overflow,
            scratch: Vec::new(),
            #[cfg(any(test, feature = "legacy-skip"))]
            legacy_refill: skip::legacy_stepper(),
        })
    }
}

impl<T> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("live", &self.live)
            .field("elapsed", &self.elapsed)
            .field("slab", &self.slab.len())
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(w: &mut TimerWheel<u32>) -> Vec<(Time, u32)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut w = TimerWheel::new();
        for (at, tag) in [(50u64, 0u32), (10, 1), (50, 2), (10, 3), (0, 4)] {
            w.insert(at, tag);
        }
        assert_eq!(w.len(), 5);
        assert_eq!(
            drain_all(&mut w),
            vec![(0, 4), (10, 1), (10, 3), (50, 0), (50, 2)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn spans_levels_and_overflow() {
        let mut w = TimerWheel::new();
        // One deadline per level plus two past the horizon.
        let deadlines = [
            3u64,
            100,
            5_000,
            300_000,
            20_000_000,
            1 << 33,
            HORIZON + 7,
            1 << 40,
        ];
        for (i, &at) in deadlines.iter().enumerate() {
            w.insert(at, i as u32);
        }
        let popped = drain_all(&mut w);
        let times: Vec<Time> = popped.iter().map(|&(t, _)| t).collect();
        assert_eq!(times, deadlines.to_vec());
    }

    #[test]
    fn same_deadline_across_containers_interleaves_by_seq() {
        let mut w = TimerWheel::new();
        let t = HORIZON + 5;
        w.insert(t, 0); // overflow at insert time
        w.insert(1, 1); // near-term
        assert_eq!(w.pop(), Some((1, 1)));
        // Cursor has advanced; a same-deadline insert now fits the wheel
        // while seq 0 still sits in the overflow. Order must be by seq.
        w.insert(t, 2);
        assert_eq!(drain_all(&mut w), vec![(t, 0), (t, 2)]);
    }

    #[test]
    fn cancel_prevents_fire_and_is_one_shot() {
        let mut w = TimerWheel::new();
        let a = w.insert(10, 0);
        let b = w.insert(10, 1);
        w.insert(20, 2);
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "double cancel must report false");
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop(), Some((10, 1)));
        assert!(!w.cancel(b), "cancel after fire must report false");
        assert_eq!(w.pop(), Some((20, 2)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stale_id_on_recycled_slot_is_inert() {
        let mut w = TimerWheel::new();
        let a = w.insert(5, 0);
        assert_eq!(w.pop(), Some((5, 0)));
        // The slab slot is recycled for a fresh timer; the stale id must
        // not cancel it.
        let _b = w.insert(6, 1);
        assert!(!w.cancel(a));
        assert_eq!(w.pop(), Some((6, 1)));
    }

    #[test]
    fn peek_then_earlier_insert_stays_ordered() {
        let mut w = TimerWheel::new();
        // Peeking a far deadline advances the cursor internally.
        w.insert(1_000_000, 0);
        assert_eq!(w.peek_deadline(), Some(1_000_000));
        // An earlier insert (legal: simulated time has not moved) must
        // still fire first.
        w.insert(10, 1);
        assert_eq!(w.peek_deadline(), Some(10));
        assert_eq!(drain_all(&mut w), vec![(10, 1), (1_000_000, 0)]);
    }

    #[test]
    fn interleaved_insert_while_draining_same_deadline() {
        let mut w = TimerWheel::new();
        w.insert(10, 0);
        w.insert(10, 1);
        assert_eq!(w.pop(), Some((10, 0)));
        // Scheduled "now" mid-drain: fires after the already-pending
        // same-deadline entry, in seq order.
        w.insert(10, 2);
        assert_eq!(w.pop(), Some((10, 1)));
        assert_eq!(w.pop(), Some((10, 2)));
    }

    fn snap(w: &TimerWheel<u32>) -> Vec<u8> {
        let mut sw = crate::snapshot::SnapshotWriter::new();
        w.snapshot_into(&mut sw, |&v| Ok(v.to_le_bytes().to_vec()))
            .unwrap();
        sw.finish()
    }

    fn restore(bytes: &[u8]) -> TimerWheel<u32> {
        let mut r = crate::snapshot::SnapshotReader::new(bytes).unwrap();
        let w = TimerWheel::restore_from(&mut r, |b| {
            let b: [u8; 4] = b
                .try_into()
                .map_err(|_| crate::snapshot::SnapshotError::Corrupt("payload width"))?;
            Ok(u32::from_le_bytes(b))
        })
        .unwrap();
        r.finish().unwrap();
        w
    }

    #[test]
    fn snapshot_mid_drain_resumes_identically() {
        let mut w = TimerWheel::new();
        for (at, tag) in [(10u64, 0u32), (10, 1), (5_000, 2), (HORIZON + 3, 3)] {
            w.insert(at, tag);
        }
        let mut reference = TimerWheel::new();
        for (at, tag) in [(10u64, 0u32), (10, 1), (5_000, 2), (HORIZON + 3, 3)] {
            reference.insert(at, tag);
        }
        // Pop one entry so the snapshot captures a half-drained `current`
        // queue and a recycled slab slot.
        assert_eq!(w.pop(), Some((10, 0)));
        assert_eq!(reference.pop(), Some((10, 0)));
        let mut restored = restore(&snap(&w));
        assert_eq!(drain_all(&mut restored), drain_all(&mut reference));
        // Fresh inserts after restore reuse the same recycled slots and
        // sequence numbers as the original would have.
        restored.insert(7, 9);
        reference.insert(7, 9);
        assert_eq!(drain_all(&mut restored), drain_all(&mut reference));
    }

    #[test]
    fn snapshot_skips_cancelled_payloads() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let id = w.insert(10, 0);
        w.cancel(id);
        assert!(w.is_empty());
        // Only cancelled residue remains, so an encoder that always fails
        // must never be consulted.
        let mut sw = crate::snapshot::SnapshotWriter::new();
        w.snapshot_into(&mut sw, |_| {
            Err(crate::snapshot::SnapshotError::NotQuiesced(
                "unserializable",
            ))
        })
        .unwrap();
        let bytes = sw.finish();
        let mut r = crate::snapshot::SnapshotReader::new(&bytes).unwrap();
        let mut restored: TimerWheel<u32> = TimerWheel::restore_from(&mut r, |_| {
            Err(crate::snapshot::SnapshotError::Corrupt(
                "no payloads expected",
            ))
        })
        .unwrap();
        r.finish().unwrap();
        assert!(restored.is_empty());
        assert_eq!(restored.pop(), None);
    }

    #[test]
    fn legacy_stepper_matches_idle_skip() {
        // Deadlines spread across every level force multi-level hops.
        let deadlines = [3u64, 100, 5_000, 300_000, 20_000_000, 1 << 33, HORIZON + 7];
        let mut fast = TimerWheel::new();
        skip::set_legacy_stepper(true);
        let mut slow = TimerWheel::new();
        skip::set_legacy_stepper(false);
        assert!(!fast.legacy_refill);
        assert!(slow.legacy_refill);
        for (i, &at) in deadlines.iter().enumerate() {
            fast.insert(at, i as u32);
            slow.insert(at, i as u32);
        }
        assert_eq!(drain_all(&mut fast), drain_all(&mut slow));
    }

    #[test]
    fn slab_recycles_nodes() {
        let mut w = TimerWheel::new();
        for round in 0..100u64 {
            for i in 0..8 {
                w.insert(round * 1000 + i, i as u32);
            }
            for _ in 0..8 {
                w.pop().unwrap();
            }
        }
        assert!(
            w.slab.len() <= 8,
            "slab grew to {} nodes for 8 concurrent timers",
            w.slab.len()
        );
    }
}
