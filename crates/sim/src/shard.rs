//! Conservative parallel discrete-event execution over sharded [`Sim`]s.
//!
//! The single-threaded executor in [`crate::executor`] is the unit of
//! determinism: one [`Sim`], one timer wheel, one ready queue, strict
//! `(time, seq)` order. This module composes *several* of those units into
//! one logical simulation, Chandy–Misra style, without giving that
//! determinism up:
//!
//! * Every **shard** owns a full `Sim` (its own wheel and ready queue) built
//!   and run on its own OS thread — `Sim` stays `!Send`; only the shard's
//!   *builder closure* and the messages cross threads.
//! * Shards interact **only** through timestamped messages pushed onto
//!   lock-free per-edge queues (`EdgeQueue`); in the SHRIMP machine the
//!   routing backplane is the one such channel, and its link + transceiver
//!   latency is the synchronization slack.
//! * Execution proceeds in **windows**: with `m` the earliest pending event
//!   anywhere (local timers or in-flight messages) and `L` the minimum
//!   cross-shard lookahead, every event strictly before the global safe
//!   horizon `H = m + L` is causally independent of anything another shard
//!   has yet to do — any message sent at `t ≥ m` arrives no earlier than
//!   `t + L ≥ H`. Each shard runs `run_for(H - 1)`, the coordinator
//!   barriers, in-flight messages are merged, and the next horizon is
//!   derived. No null messages are exchanged; the barrier *is* the
//!   conservative protocol.
//! * **Determinism**: inbound messages are merged into a shard's wheel in
//!   `(arrival, source shard, per-edge seq)` order, which is a pure function
//!   of the simulated program — never of thread scheduling — so a sharded
//!   run is bit-reproducible, and `ExecMode::Serial` (the cfg-gated
//!   single-thread oracle, compiled like `legacy-sched`) replays the exact
//!   same schedule for differential testing.
//! * `shards == 1` degenerates to today's executor: the runner builds one
//!   `Sim` and calls [`Sim::run`]; no windows, no barriers, no queues.
//!
//! What may run sharded: a model is shard-safe when every cross-shard
//! interaction honours the lookahead (`arrival ≥ now + L`) and same-time
//! message handling is order-independent (commutative state updates). The
//! SHRIMP *cluster* model shares fabric state (link reservations, the fault
//! plane's RNG stream) with zero lookahead between nodes, so a whole
//! cluster forms a single coupling class — one shard — while engine-level
//! workloads partitioned by node (see `shrimp-core`'s `parallel` module)
//! exploit the full width.

use std::cell::{Cell, RefCell};
use std::ptr;
use std::rc::Rc;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{mpsc, Arc};

use crate::executor::Sim;
use crate::time::Time;

// ---------------------------------------------------------------------------
// Lock-free per-edge message queues
// ---------------------------------------------------------------------------

/// A timestamped message in flight between two shards.
struct Envelope<M> {
    arrival: Time,
    src: usize,
    /// Per-edge sequence number assigned by the producer; the merge sorts on
    /// `(arrival, src, seq)` so insertion order is thread-schedule-free.
    seq: u64,
    msg: M,
}

struct EdgeNode<M> {
    env: Envelope<M>,
    next: *mut EdgeNode<M>,
}

/// Lock-free intrusive stack carrying one directed shard-to-shard edge.
///
/// The producer (source shard, during its window) pushes with a CAS loop;
/// the consumer (destination shard, at the barrier) takes the whole list
/// with one atomic swap and restores FIFO order by reversing. The window
/// protocol already separates the phases — producers are parked at the
/// barrier while consumers merge — but the queue is safe under full
/// concurrency regardless.
struct EdgeQueue<M> {
    head: AtomicPtr<EdgeNode<M>>,
}

unsafe impl<M: Send> Send for EdgeQueue<M> {}
unsafe impl<M: Send> Sync for EdgeQueue<M> {}

impl<M> EdgeQueue<M> {
    fn new() -> Self {
        EdgeQueue {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    fn push(&self, env: Envelope<M>) {
        let node = Box::into_raw(Box::new(EdgeNode {
            env,
            next: ptr::null_mut(),
        }));
        loop {
            let head = self.head.load(Ordering::Acquire);
            // Safety: `node` came from Box::into_raw above and is not yet
            // shared; writing its link before publication is unobservable.
            unsafe { (*node).next = head };
            if self
                .head
                .compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
    }

    /// Takes every queued envelope, oldest first.
    fn drain(&self) -> Vec<Envelope<M>> {
        let mut head = self.head.swap(ptr::null_mut(), Ordering::AcqRel);
        let mut out = Vec::new();
        while !head.is_null() {
            // Safety: nodes are only produced by `push` and ownership of the
            // whole chain transferred by the swap above.
            let node = unsafe { Box::from_raw(head) };
            head = node.next;
            out.push(node.env);
        }
        out.reverse();
        out
    }
}

impl<M> Drop for EdgeQueue<M> {
    fn drop(&mut self) {
        self.drain();
    }
}

/// The full mesh of directed edges, indexed `src * shards + dst`.
struct Fabric<M> {
    shards: usize,
    edges: Vec<EdgeQueue<M>>,
}

impl<M> Fabric<M> {
    fn new(shards: usize) -> Self {
        Fabric {
            shards,
            edges: (0..shards * shards).map(|_| EdgeQueue::new()).collect(),
        }
    }

    fn edge(&self, src: usize, dst: usize) -> &EdgeQueue<M> {
        &self.edges[src * self.shards + dst]
    }
}

// ---------------------------------------------------------------------------
// Per-shard context
// ---------------------------------------------------------------------------

type Handler<M> = Rc<dyn Fn(Time, M)>;

/// Shared state of one shard. Lives on the shard's thread behind an `Rc`
/// (deliberately `!Send` — it owns the shard's [`Sim`]); [`ShardCtx`] and
/// [`ShardSender`] are views of it.
struct ShardCore<M> {
    shard: usize,
    shards: usize,
    lookahead: Time,
    sim: Sim,
    fabric: Arc<Fabric<M>>,
    handler: RefCell<Option<Handler<M>>>,
    /// Next per-edge sequence number, one slot per destination shard.
    edge_seq: RefCell<Vec<u64>>,
    /// Earliest arrival pushed cross-shard since the last barrier report.
    sent_min: Cell<Option<Time>>,
}

impl<M: 'static> ShardCore<M> {
    fn new(
        shard: usize,
        shards: usize,
        lookahead: Time,
        start: Time,
        fabric: Arc<Fabric<M>>,
    ) -> Rc<Self> {
        Rc::new(ShardCore {
            shard,
            shards,
            lookahead,
            sim: Sim::new_at(start),
            fabric,
            handler: RefCell::new(None),
            edge_seq: RefCell::new(vec![0; shards]),
            sent_min: Cell::new(None),
        })
    }

    fn send(self: &Rc<Self>, dst: usize, arrival: Time, msg: M) {
        assert!(dst < self.shards, "send to shard {dst} of {}", self.shards);
        let now = self.sim.now();
        if dst == self.shard {
            assert!(arrival >= now, "same-shard send into the past");
            self.dispatch(arrival, msg);
            return;
        }
        assert!(
            arrival >= now + self.lookahead,
            "cross-shard send violates lookahead: arrival {arrival} < now {now} + {}",
            self.lookahead
        );
        let seq = {
            let mut seqs = self.edge_seq.borrow_mut();
            let s = seqs[dst];
            seqs[dst] += 1;
            s
        };
        self.fabric.edge(self.shard, dst).push(Envelope {
            arrival,
            src: self.shard,
            seq,
            msg,
        });
        let min = self.sent_min.get().map_or(arrival, |m| m.min(arrival));
        self.sent_min.set(Some(min));
    }

    /// Schedules the delivery handler at `arrival` on this shard's wheel.
    fn dispatch(self: &Rc<Self>, arrival: Time, msg: M) {
        let core = Rc::clone(self);
        self.sim.schedule(arrival, move || {
            let h = core
                .handler
                .borrow()
                .clone()
                .expect("shard received a message but no on_message handler is set");
            h(arrival, msg);
        });
    }

    /// Drains every inbound edge and merges the messages into the wheel in
    /// `(arrival, src shard, per-edge seq)` order — the deterministic merge
    /// that keeps `(time, seq)` event order independent of thread timing.
    fn merge_inbound(self: &Rc<Self>) {
        let mut batch: Vec<Envelope<M>> = Vec::new();
        for src in 0..self.shards {
            if src != self.shard {
                batch.extend(self.fabric.edge(src, self.shard).drain());
            }
        }
        batch.sort_unstable_by_key(|e| (e.arrival, e.src, e.seq));
        for env in batch {
            self.dispatch(env.arrival, env.msg);
        }
    }

    /// Earliest event this shard may yet produce or fire: a woken process
    /// counts as pending *now*, else the earliest timer.
    fn pending(&self) -> Option<Time> {
        if self.sim.has_runnable() {
            Some(self.sim.now())
        } else {
            self.sim.next_deadline()
        }
    }
}

/// A shard's face of the sharded run, handed to its builder on the shard's
/// own thread.
pub struct ShardCtx<M> {
    core: Rc<ShardCore<M>>,
}

impl<M: 'static> ShardCtx<M> {
    /// The shard's simulator. Build the shard's whole world on it.
    pub fn sim(&self) -> &Sim {
        &self.core.sim
    }

    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.core.shard
    }

    /// Total number of shards in the run.
    pub fn shards(&self) -> usize {
        self.core.shards
    }

    /// The run's minimum cross-shard lookahead.
    pub fn lookahead(&self) -> Time {
        self.core.lookahead
    }

    /// Registers the delivery handler invoked (at the message's arrival
    /// time, on this shard's thread) for every message addressed to this
    /// shard. Must be set during building if the shard ever receives.
    pub fn on_message(&self, f: impl Fn(Time, M) + 'static) {
        *self.core.handler.borrow_mut() = Some(Rc::new(f));
    }

    /// Sends `msg` to shard `dst`, arriving at absolute simulated time
    /// `arrival`.
    ///
    /// # Panics
    ///
    /// Cross-shard sends must respect the lookahead
    /// (`arrival >= now + lookahead`); same-shard sends only that `arrival`
    /// is not in the past. Violations panic — they would break the
    /// conservative synchronization contract.
    pub fn send(&self, dst: usize, arrival: Time, msg: M) {
        self.core.send(dst, arrival, msg)
    }

    /// A clonable sending handle for use inside spawned processes, which
    /// outlive the builder's borrow of the context.
    pub fn sender(&self) -> ShardSender<M> {
        ShardSender {
            core: Rc::clone(&self.core),
        }
    }
}

/// Clonable sending half of a [`ShardCtx`], for processes spawned on the
/// shard's [`Sim`]. `!Send`, like everything else on the shard thread.
pub struct ShardSender<M> {
    core: Rc<ShardCore<M>>,
}

impl<M> Clone for ShardSender<M> {
    fn clone(&self) -> Self {
        ShardSender {
            core: Rc::clone(&self.core),
        }
    }
}

impl<M: 'static> ShardSender<M> {
    /// Sends `msg` to shard `dst` at `arrival`; see [`ShardCtx::send`].
    pub fn send(&self, dst: usize, arrival: Time, msg: M) {
        self.core.send(dst, arrival, msg)
    }

    /// The owning shard's index.
    pub fn shard(&self) -> usize {
        self.core.shard
    }

    /// Total number of shards in the run.
    pub fn shards(&self) -> usize {
        self.core.shards
    }

    /// The run's minimum cross-shard lookahead.
    pub fn lookahead(&self) -> Time {
        self.core.lookahead
    }
}

// ---------------------------------------------------------------------------
// Run configuration and outcome
// ---------------------------------------------------------------------------

/// Shard-count selection, shared by the engine, the bench matrix, and the
/// harness CLI so there is exactly one spelling of "how many shards".
///
/// `Auto` follows the surrounding context (the harness `--shards` flag, or
/// one shard when standalone); `Fixed` pins a count regardless of context —
/// the bench matrix uses it for the pinned speedup-comparison rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Shards {
    /// Follow the context's shard count.
    #[default]
    Auto,
    /// Exactly this many shards, independent of context.
    Fixed(usize),
}

impl Shards {
    /// Resolves to a concrete shard count: `Fixed` wins, `Auto` takes the
    /// context's count; both are clamped to at least one shard.
    pub fn resolve(self, auto: usize) -> usize {
        match self {
            Shards::Auto => auto.max(1),
            Shards::Fixed(k) => k.max(1),
        }
    }
}

/// How the shards execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One OS thread per shard (the production path).
    #[default]
    Threaded,
    /// Every shard on the calling thread, windows replayed round-robin in
    /// shard order: the differential oracle proving the threaded path adds
    /// no nondeterminism. Compiled only for tests and the `serial-shards`
    /// feature, like the executor's `legacy-sched`.
    #[cfg(any(test, feature = "serial-shards"))]
    Serial,
}

/// Configuration of one sharded run.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Number of shards (`>= 1`).
    pub shards: usize,
    /// Minimum cross-shard lookahead in ps (`>= 1`); in SHRIMP, the mesh's
    /// injection + ejection transceiver crossings plus one router hop.
    pub lookahead: Time,
    /// Threaded or (cfg-gated) serial execution.
    pub mode: ExecMode,
    /// Record a [`WindowRecord`] per window (for the safety-horizon property
    /// tests). Disables the `shards == 1` fast path so windows exist.
    pub observe_windows: bool,
    /// Simulated time every shard's clock starts at (0 for a fresh run).
    ///
    /// A run restored from a checkpoint sets this to the checkpoint's
    /// quiesce time so the resumed timeline continues where the captured
    /// one stopped, at any shard count.
    pub start: Time,
}

impl ShardConfig {
    /// A threaded run with `shards` shards and `lookahead` ps of slack.
    pub fn new(shards: usize, lookahead: Time) -> Self {
        ShardConfig {
            shards,
            lookahead,
            mode: ExecMode::default(),
            observe_windows: false,
            start: 0,
        }
    }
}

/// What one shard did within one window (observability for tests).
#[derive(Debug, Clone, Copy)]
pub struct WindowShard {
    /// Simulated time before the window ran.
    pub before: Time,
    /// Simulated time after the window ran (`< horizon`).
    pub after: Time,
    /// Executor events the window processed.
    pub fired: u64,
    /// Earliest arrival among cross-shard messages sent this window
    /// (`>= horizon` when present — the lookahead guarantee).
    pub sent_min_arrival: Option<Time>,
}

/// One synchronization window of an observed run.
#[derive(Debug, Clone)]
pub struct WindowRecord {
    /// The global safe horizon: every shard ran events strictly before it.
    pub horizon: Time,
    /// Per-shard window activity, indexed by shard.
    pub shards: Vec<WindowShard>,
}

/// The result of a sharded run.
#[derive(Debug)]
pub struct ShardOutcome<R> {
    /// Each shard's harvest, indexed by shard.
    pub results: Vec<R>,
    /// Final simulated time: the maximum over shards, which equals the
    /// single-`Sim` completion time of the same program.
    pub elapsed: Time,
    /// Total executor events across shards (polls + timer fires).
    pub events: u64,
    /// Synchronization windows executed (0 on the `shards == 1` fast path).
    pub windows: u64,
    /// Per-window activity when [`ShardConfig::observe_windows`] was set.
    pub window_log: Option<Vec<WindowRecord>>,
}

/// A shard's world-building closure: runs on the shard's thread, spawns the
/// shard's processes on `ctx.sim()`, registers `ctx.on_message(..)`, and
/// returns the harvest closure invoked after the run completes.
pub type Builder<M, R> = Box<dyn FnOnce(&ShardCtx<M>) -> Box<dyn FnOnce() -> R> + Send>;

/// The end-of-run closures a [`PhasedBuilder`] returns.
///
/// Models that need an explicit teardown between "the program is done" and
/// "the simulation is quiescent" — the SHRIMP cluster closes NIC ingress
/// and notification queues so receiver loops exit — cannot express it with
/// [`Builder`] alone: on one `Sim` the classic shape is `run → shutdown →
/// run`, and under windows the shutdown must happen at a *global* barrier,
/// otherwise one shard would close its queues while another could still
/// send to it.
pub struct ShardPlan<R> {
    /// Runs on the shard's thread at the global drain boundary: the first
    /// barrier at which every shard is exhausted (no timers, nothing in
    /// flight). Close queues and stop engines here.
    pub shutdown: Box<dyn FnOnce()>,
    /// Runs after final quiescence (everything `shutdown` woke has drained);
    /// its return value is the shard's result.
    pub harvest: Box<dyn FnOnce() -> R>,
}

/// A shard builder with an explicit shutdown phase; see [`ShardPlan`].
pub type PhasedBuilder<M, R> = Box<dyn FnOnce(&ShardCtx<M>) -> ShardPlan<R> + Send>;

// ---------------------------------------------------------------------------
// The coordinator
// ---------------------------------------------------------------------------

/// What a shard reports at each barrier.
struct Reply {
    pending: Option<Time>,
    sent_min: Option<Time>,
    window: Option<WindowShard>,
}

enum Cmd {
    Window { horizon: Time },
    Drain,
    Finish,
}

/// Computes the next global safe horizon from the barrier replies. `None`
/// means the simulation is exhausted (no timers anywhere, nothing in
/// flight).
fn next_horizon(pending: &[Option<Time>], sent: &[Option<Time>], lookahead: Time) -> Option<Time> {
    pending
        .iter()
        .chain(sent.iter())
        .flatten()
        .min()
        .map(|&m| m.saturating_add(lookahead))
}

/// Runs `builders` (one per shard) to completion under the conservative
/// window protocol and returns every shard's harvest.
///
/// # Panics
///
/// Panics when `cfg.shards == 0`, `cfg.lookahead == 0`, the builder count
/// differs from the shard count, or a shard violates the send contract.
pub fn run_sharded<M, R>(cfg: &ShardConfig, builders: Vec<Builder<M, R>>) -> ShardOutcome<R>
where
    M: Send + 'static,
    R: Send + 'static,
{
    run_sharded_phased(
        cfg,
        builders
            .into_iter()
            .map(|b| {
                let phased: PhasedBuilder<M, R> = Box::new(move |ctx| ShardPlan {
                    shutdown: Box::new(|| {}),
                    harvest: b(ctx),
                });
                phased
            })
            .collect(),
    )
}

/// [`run_sharded`] with an explicit shutdown phase: runs windows until the
/// whole simulation is exhausted, executes every shard's
/// [`ShardPlan::shutdown`] at that global barrier, resumes windows until
/// whatever shutdown woke has drained, then harvests. With a no-op
/// shutdown this is exactly [`run_sharded`]; at one shard it degenerates
/// to the classic `build → run → shutdown → run → harvest` shape.
///
/// # Panics
///
/// Same contract as [`run_sharded`].
pub fn run_sharded_phased<M, R>(
    cfg: &ShardConfig,
    builders: Vec<PhasedBuilder<M, R>>,
) -> ShardOutcome<R>
where
    M: Send + 'static,
    R: Send + 'static,
{
    assert!(cfg.shards >= 1, "a sharded run needs at least one shard");
    assert!(cfg.lookahead >= 1, "lookahead must be positive");
    assert_eq!(builders.len(), cfg.shards, "one builder per shard");

    // Degenerate case: one shard is exactly today's executor — build, run,
    // shut down, drain, harvest; no windows. (Kept off under observation so
    // window-protocol properties can be probed at any width.)
    if cfg.shards == 1 && !cfg.observe_windows {
        let fabric = Arc::new(Fabric::new(1));
        let ctx = ShardCtx {
            core: ShardCore::new(0, 1, cfg.lookahead, cfg.start, fabric),
        };
        let ShardPlan { shutdown, harvest } = builders.into_iter().next().unwrap()(&ctx);
        let elapsed = ctx.core.sim.run();
        shutdown();
        ctx.core.sim.run();
        return ShardOutcome {
            results: vec![harvest()],
            elapsed,
            events: ctx.core.sim.events(),
            windows: 0,
            window_log: None,
        };
    }

    match cfg.mode {
        ExecMode::Threaded => run_threaded(cfg, builders),
        #[cfg(any(test, feature = "serial-shards"))]
        ExecMode::Serial => run_serial(cfg, builders),
    }
}

/// One shard's window step: merge inbound, run to the horizon, report.
fn shard_window<M: 'static>(core: &Rc<ShardCore<M>>, horizon: Time, observe: bool) -> Reply {
    core.merge_inbound();
    let before = core.sim.now();
    let events_before = core.sim.events();
    core.sim.run_for(horizon - 1);
    let window = observe.then(|| WindowShard {
        before,
        after: core.sim.now(),
        fired: core.sim.events() - events_before,
        sent_min_arrival: core.sent_min.get(),
    });
    Reply {
        pending: core.pending(),
        sent_min: core.sent_min.take(),
        window,
    }
}

fn run_threaded<M, R>(cfg: &ShardConfig, builders: Vec<PhasedBuilder<M, R>>) -> ShardOutcome<R>
where
    M: Send + 'static,
    R: Send + 'static,
{
    let n = cfg.shards;
    let fabric = Arc::new(Fabric::new(n));
    let observe = cfg.observe_windows;
    let lookahead = cfg.lookahead;
    let start = cfg.start;

    let mut outcome = None;
    // The first dead shard's panic payload, re-raised on the caller after
    // the scope has wound everything down (`thread::scope`'s own
    // propagation would wrap it in a generic "a scoped thread panicked").
    let died: std::sync::Mutex<Option<Box<dyn std::any::Any + Send>>> = std::sync::Mutex::new(None);
    std::thread::scope(|scope| {
        // All channel endpoints are owned by this closure, so every exit
        // path (including the early returns below) drops them, unblocks any
        // surviving shard thread, and lets the scope join.
        //
        // A `None` reply marks a shard whose simulation panicked: the
        // coordinator unwinds cleanly, and the caller re-raises the shard's
        // original panic payload once the scope has joined.
        let (reply_tx, reply_rx) = mpsc::channel::<(usize, Option<Reply>)>();
        let (final_tx, final_rx) = mpsc::channel::<(usize, R, Time, u64)>();
        let mut cmd_txs = Vec::with_capacity(n);
        let mut cmd_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel::<Cmd>();
            cmd_txs.push(tx);
            cmd_rxs.push(Some(rx));
        }

        for (shard, builder) in builders.into_iter().enumerate() {
            let fabric = Arc::clone(&fabric);
            let reply_tx = reply_tx.clone();
            let final_tx = final_tx.clone();
            let cmd_rx = cmd_rxs[shard].take().unwrap();
            let died = &died;
            scope.spawn(move || {
                let fail_tx = reply_tx.clone();
                let run = std::panic::AssertUnwindSafe(move || {
                    let core = ShardCore::new(shard, n, lookahead, start, fabric);
                    let ctx = ShardCtx {
                        core: Rc::clone(&core),
                    };
                    let ShardPlan { shutdown, harvest } = builder(&ctx);
                    let mut shutdown = Some(shutdown);
                    // Initial report: spawned processes are runnable at t = 0.
                    let _ = reply_tx.send((
                        shard,
                        Some(Reply {
                            pending: core.pending(),
                            sent_min: None,
                            window: None,
                        }),
                    ));
                    while let Ok(cmd) = cmd_rx.recv() {
                        match cmd {
                            Cmd::Window { horizon } => {
                                let reply = shard_window(&core, horizon, observe);
                                let _ = reply_tx.send((shard, Some(reply)));
                            }
                            Cmd::Drain => {
                                if let Some(f) = shutdown.take() {
                                    f();
                                }
                                let _ = reply_tx.send((
                                    shard,
                                    Some(Reply {
                                        pending: core.pending(),
                                        sent_min: core.sent_min.take(),
                                        window: None,
                                    }),
                                ));
                            }
                            Cmd::Finish => {
                                let _ = final_tx.send((
                                    shard,
                                    harvest(),
                                    core.sim.now(),
                                    core.sim.events(),
                                ));
                                break;
                            }
                        }
                    }
                });
                if let Err(payload) = std::panic::catch_unwind(run) {
                    died.lock().unwrap().get_or_insert(payload);
                    let _ = fail_tx.send((shard, None));
                }
            });
        }
        drop(reply_tx);
        drop(final_tx);

        // Coordinator (this thread): lockstep windows until exhaustion.
        // `collect` returns `None` when any shard died — the coordinator
        // then drops the command channels so the surviving shards unwind,
        // and the scope re-raises the dead shard's panic.
        let mut pending = vec![None; n];
        let mut sent = vec![None; n];
        let collect = |pending: &mut Vec<Option<Time>>, sent: &mut Vec<Option<Time>>| {
            let mut per_shard = Vec::new();
            for _ in 0..n {
                match reply_rx.recv() {
                    Ok((shard, Some(reply))) => {
                        pending[shard] = reply.pending;
                        sent[shard] = reply.sent_min;
                        if let Some(w) = reply.window {
                            per_shard.push((shard, w));
                        }
                    }
                    Ok((_, None)) | Err(_) => return None,
                }
            }
            per_shard.sort_by_key(|&(s, _)| s);
            Some(per_shard)
        };

        if collect(&mut pending, &mut sent).is_none() {
            return;
        }
        let mut windows = 0u64;
        let mut log = observe.then(Vec::new);
        let mut drained = false;
        loop {
            while let Some(horizon) = next_horizon(&pending, &sent, lookahead) {
                for tx in &cmd_txs {
                    let _ = tx.send(Cmd::Window { horizon });
                }
                let Some(per_shard) = collect(&mut pending, &mut sent) else {
                    return;
                };
                windows += 1;
                if let Some(log) = log.as_mut() {
                    log.push(WindowRecord {
                        horizon,
                        shards: per_shard.into_iter().map(|(_, w)| w).collect(),
                    });
                }
            }
            if drained {
                break;
            }
            // Global drain boundary: everything is exhausted, so no shard
            // can still send to a queue another shard is about to close.
            drained = true;
            for tx in &cmd_txs {
                let _ = tx.send(Cmd::Drain);
            }
            if collect(&mut pending, &mut sent).is_none() {
                return;
            }
        }
        for tx in &cmd_txs {
            let _ = tx.send(Cmd::Finish);
        }
        let mut finals = Vec::with_capacity(n);
        for _ in 0..n {
            match final_rx.recv() {
                Ok(f) => finals.push(f),
                Err(_) => return, // a shard died during harvest
            }
        }
        finals.sort_by_key(|&(s, ..)| s);
        let elapsed = finals.iter().map(|&(_, _, now, _)| now).max().unwrap_or(0);
        let events = finals.iter().map(|&(.., ev)| ev).sum();
        outcome = Some(ShardOutcome {
            results: finals.into_iter().map(|(_, r, ..)| r).collect(),
            elapsed,
            events,
            windows,
            window_log: log,
        });
    });
    if let Some(payload) = died.into_inner().unwrap() {
        std::panic::resume_unwind(payload);
    }
    outcome.expect("a shard exited without an outcome or a panic")
}

/// The serial oracle: identical protocol, every shard on this thread,
/// windows replayed in shard order.
#[cfg(any(test, feature = "serial-shards"))]
fn run_serial<M, R>(cfg: &ShardConfig, builders: Vec<PhasedBuilder<M, R>>) -> ShardOutcome<R>
where
    M: Send + 'static,
    R: Send + 'static,
{
    let n = cfg.shards;
    let fabric = Arc::new(Fabric::new(n));
    let mut cores = Vec::with_capacity(n);
    let mut shutdowns = Vec::with_capacity(n);
    let mut harvests = Vec::with_capacity(n);
    for (shard, builder) in builders.into_iter().enumerate() {
        let core = ShardCore::new(shard, n, cfg.lookahead, cfg.start, Arc::clone(&fabric));
        let ctx = ShardCtx {
            core: Rc::clone(&core),
        };
        let ShardPlan { shutdown, harvest } = builder(&ctx);
        shutdowns.push(shutdown);
        harvests.push(harvest);
        cores.push(core);
    }
    let mut pending: Vec<Option<Time>> = cores.iter().map(|c| c.pending()).collect();
    let mut sent: Vec<Option<Time>> = vec![None; n];
    let mut windows = 0u64;
    let mut log = cfg.observe_windows.then(Vec::new);
    let mut drained = false;
    loop {
        while let Some(horizon) = next_horizon(&pending, &sent, cfg.lookahead) {
            let mut per_shard = Vec::new();
            for (shard, core) in cores.iter().enumerate() {
                let reply = shard_window(core, horizon, cfg.observe_windows);
                pending[shard] = reply.pending;
                sent[shard] = reply.sent_min;
                if let Some(w) = reply.window {
                    per_shard.push(w);
                }
            }
            windows += 1;
            if let Some(log) = log.as_mut() {
                log.push(WindowRecord {
                    horizon,
                    shards: per_shard,
                });
            }
        }
        if drained {
            break;
        }
        drained = true;
        for (shard, shutdown) in shutdowns.drain(..).enumerate() {
            shutdown();
            pending[shard] = cores[shard].pending();
            sent[shard] = cores[shard].sent_min.take();
        }
    }
    let elapsed = cores.iter().map(|c| c.sim.now()).max().unwrap_or(0);
    let events = cores.iter().map(|c| c.sim.events()).sum();
    ShardOutcome {
        results: harvests.into_iter().map(|h| h()).collect(),
        elapsed,
        events,
        windows,
        window_log: log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Queue;
    use crate::time::ns;

    /// A token ring: shard 0 injects a hop counter; each shard forwards it
    /// to `(shard + 1) % n` one lookahead (plus a stagger) ahead, until
    /// `steps` hops have happened. Harvest = hops this shard saw.
    fn ring_builders(n: usize, lookahead: Time, steps: u32) -> Vec<Builder<u32, u64>> {
        (0..n)
            .map(|shard| {
                let b: Builder<u32, u64> = Box::new(move |ctx: &ShardCtx<u32>| {
                    let mailbox: Queue<u32> = Queue::new();
                    let inbox = mailbox.clone();
                    ctx.on_message(move |_at, hop| inbox.send(hop));
                    let tx = ctx.sender();
                    let sim = ctx.sim().clone();
                    let seen = Rc::new(Cell::new(0u64));
                    let seen2 = Rc::clone(&seen);
                    if shard == 0 {
                        tx.send(1 % n, lookahead, 0);
                    }
                    ctx.sim().spawn(async move {
                        while let Some(hop) = mailbox.recv().await {
                            seen2.set(seen2.get() + 1);
                            if hop + 1 < steps {
                                let next = (tx.shard() + 1) % n;
                                tx.send(next, sim.now() + lookahead + (hop as Time % 3), hop + 1);
                            } else {
                                break;
                            }
                        }
                    });
                    Box::new(move || seen.get())
                });
                b
            })
            .collect()
    }

    #[test]
    fn single_shard_fast_path_runs_without_windows() {
        let out = run_sharded(&ShardConfig::new(1, ns(1)), ring_builders(1, ns(1), 10));
        assert_eq!(out.windows, 0);
        assert_eq!(out.results.iter().sum::<u64>(), 10);
    }

    #[test]
    fn ring_delivers_every_hop_at_any_width() {
        let steps = 64;
        let mut elapsed = Vec::new();
        for n in [1usize, 2, 3, 4] {
            let out = run_sharded(&ShardConfig::new(n, ns(5)), ring_builders(n, ns(5), steps));
            assert_eq!(
                out.results.iter().sum::<u64>(),
                steps as u64,
                "{n} shards dropped hops"
            );
            elapsed.push(out.elapsed);
        }
        // The simulated schedule is the same program at every width.
        assert!(
            elapsed.windows(2).all(|w| w[0] == w[1]),
            "elapsed varied by shard count: {elapsed:?}"
        );
    }

    #[test]
    fn threaded_and_serial_agree_exactly() {
        let mk = |mode| {
            let mut cfg = ShardConfig::new(4, ns(3));
            cfg.mode = mode;
            cfg.observe_windows = true;
            run_sharded(&cfg, ring_builders(4, ns(3), 48))
        };
        let threaded = mk(ExecMode::Threaded);
        let serial = mk(ExecMode::Serial);
        assert_eq!(threaded.results, serial.results);
        assert_eq!(threaded.elapsed, serial.elapsed);
        assert_eq!(threaded.events, serial.events);
        assert_eq!(threaded.windows, serial.windows);
        let (tl, sl) = (
            threaded.window_log.as_ref().unwrap(),
            serial.window_log.as_ref().unwrap(),
        );
        assert_eq!(tl.len(), sl.len());
        for (t, s) in tl.iter().zip(sl) {
            assert_eq!(t.horizon, s.horizon);
            for (a, b) in t.shards.iter().zip(&s.shards) {
                assert_eq!((a.before, a.after, a.fired), (b.before, b.after, b.fired));
            }
        }
    }

    #[test]
    fn windows_respect_the_safe_horizon() {
        let mut cfg = ShardConfig::new(3, ns(7));
        cfg.observe_windows = true;
        let out = run_sharded(&cfg, ring_builders(3, ns(7), 40));
        let log = out.window_log.as_ref().unwrap();
        assert!(!log.is_empty());
        let mut prev_horizon = 0;
        for rec in log {
            assert!(rec.horizon > prev_horizon, "horizons must advance");
            prev_horizon = rec.horizon;
            for w in &rec.shards {
                assert!(w.after < rec.horizon, "shard ran past the safe horizon");
                if let Some(sent) = w.sent_min_arrival {
                    assert!(sent >= rec.horizon, "lookahead guarantee violated");
                }
            }
        }
    }

    /// Like `ring_builders`, but the receiver loops never break on their
    /// own: only the shutdown closure closing the mailbox lets them exit,
    /// so completion depends on the drain barrier firing exactly once,
    /// globally, after exhaustion.
    fn phased_ring_builders(n: usize, lookahead: Time, steps: u32) -> Vec<PhasedBuilder<u32, u64>> {
        (0..n)
            .map(|shard| {
                let b: PhasedBuilder<u32, u64> = Box::new(move |ctx: &ShardCtx<u32>| {
                    let mailbox: Queue<u32> = Queue::new();
                    let inbox = mailbox.clone();
                    ctx.on_message(move |_at, hop| inbox.send(hop));
                    let tx = ctx.sender();
                    let sim = ctx.sim().clone();
                    let seen = Rc::new(Cell::new(0u64));
                    let seen2 = Rc::clone(&seen);
                    if shard == 0 {
                        tx.send(1 % n, lookahead, 0);
                    }
                    let to_close = mailbox.clone();
                    ctx.sim().spawn(async move {
                        while let Some(hop) = mailbox.recv().await {
                            seen2.set(seen2.get() + 1);
                            if hop + 1 < steps {
                                let next = (tx.shard() + 1) % n;
                                tx.send(next, sim.now() + lookahead, hop + 1);
                            }
                        }
                    });
                    ShardPlan {
                        shutdown: Box::new(move || to_close.close()),
                        harvest: Box::new(move || seen.get()),
                    }
                });
                b
            })
            .collect()
    }

    #[test]
    fn phased_shutdown_drains_open_receivers_at_every_width() {
        let steps = 32;
        let mut elapsed = Vec::new();
        for n in [1usize, 2, 4] {
            let out = run_sharded_phased(
                &ShardConfig::new(n, ns(5)),
                phased_ring_builders(n, ns(5), steps),
            );
            assert_eq!(
                out.results.iter().sum::<u64>(),
                steps as u64,
                "{n} shards dropped hops"
            );
            elapsed.push(out.elapsed);
        }
        assert!(
            elapsed.windows(2).all(|w| w[0] == w[1]),
            "elapsed varied by shard count: {elapsed:?}"
        );
    }

    #[test]
    fn phased_threaded_and_serial_agree_exactly() {
        let mk = |mode| {
            let mut cfg = ShardConfig::new(4, ns(3));
            cfg.mode = mode;
            run_sharded_phased(&cfg, phased_ring_builders(4, ns(3), 48))
        };
        let threaded = mk(ExecMode::Threaded);
        let serial = mk(ExecMode::Serial);
        assert_eq!(threaded.results, serial.results);
        assert_eq!(threaded.elapsed, serial.elapsed);
        assert_eq!(threaded.events, serial.events);
        assert_eq!(threaded.windows, serial.windows);
    }

    #[test]
    fn shards_resolve_fixed_wins_auto_follows() {
        assert_eq!(Shards::Auto.resolve(4), 4);
        assert_eq!(Shards::Auto.resolve(0), 1);
        assert_eq!(Shards::Fixed(2).resolve(8), 2);
        assert_eq!(Shards::default(), Shards::Auto);
    }

    #[test]
    #[should_panic(expected = "violates lookahead")]
    fn short_cross_shard_send_panics() {
        let builders: Vec<Builder<u32, ()>> = (0..2)
            .map(|shard| {
                let b: Builder<u32, ()> = Box::new(move |ctx: &ShardCtx<u32>| {
                    ctx.on_message(|_, _| {});
                    if shard == 0 {
                        // Arrival below the configured ns(10) lookahead.
                        ctx.send(1, ns(2), 0);
                    }
                    Box::new(|| ())
                });
                b
            })
            .collect();
        run_sharded(&ShardConfig::new(2, ns(10)), builders);
    }
}
