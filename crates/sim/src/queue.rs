//! Asynchronous FIFO queues connecting simulation processes.
//!
//! These model the hardware and software queues of the SHRIMP system (DMA
//! request queues, packet FIFOs, notification queues). Senders are synchronous
//! for unbounded queues; receivers await.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Parked receiver wakers. Nearly every queue in the simulated system has
/// exactly one receiver, so the single-waiter case stores the `Waker` inline
/// with no heap allocation; only genuinely contended queues promote to a
/// `Vec`, whose allocation is then kept and reused across wake cycles.
/// Wake order is FIFO (registration order) in all cases.
enum Waiters {
    Empty,
    One(Waker),
    Many(Vec<Waker>),
}

impl Waiters {
    fn push(&mut self, w: Waker) {
        match self {
            Waiters::Empty => *self = Waiters::One(w),
            Waiters::One(_) => {
                let Waiters::One(first) = std::mem::replace(self, Waiters::Empty) else {
                    unreachable!()
                };
                *self = Waiters::Many(vec![first, w]);
            }
            Waiters::Many(v) => v.push(w),
        }
    }

    fn wake_all(&mut self) {
        match self {
            Waiters::Empty => {}
            Waiters::One(_) => {
                if let Waiters::One(w) = std::mem::replace(self, Waiters::Empty) {
                    w.wake();
                }
            }
            // Drain in registration order; the Vec's capacity is retained so
            // a contended queue allocates once, not per wake cycle.
            Waiters::Many(v) => {
                for w in v.drain(..) {
                    w.wake();
                }
            }
        }
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    recv_waiters: Waiters,
    closed: bool,
}

/// An unbounded FIFO channel between simulation processes.
///
/// Cloning shares the same underlying queue. This type offers both send and
/// receive; [`QueueSender`]/[`QueueReceiver`] are directional views.
pub struct Queue<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

impl<T> Clone for Queue<T> {
    fn clone(&self) -> Self {
        Queue {
            inner: self.inner.clone(),
        }
    }
}

impl<T> std::fmt::Debug for Queue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Queue")
            .field("len", &self.len())
            .field("closed", &self.inner.borrow().closed)
            .finish()
    }
}

impl<T> Default for Queue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Queue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Queue {
            inner: Rc::new(RefCell::new(Inner {
                items: VecDeque::new(),
                recv_waiters: Waiters::Empty,
                closed: false,
            })),
        }
    }

    /// Appends an item and wakes any waiting receiver.
    ///
    /// # Panics
    ///
    /// Panics if the queue is closed.
    pub fn send(&self, item: T) {
        let mut inner = self.inner.borrow_mut();
        assert!(!inner.closed, "send on closed queue");
        inner.items.push_back(item);
        inner.recv_waiters.wake_all();
    }

    /// Closes the queue: pending items may still be received, after which
    /// `recv` yields `None`.
    pub fn close(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.closed = true;
        inner.recv_waiters.wake_all();
    }

    /// Receives the next item, waiting if the queue is empty. Yields `None`
    /// once the queue is closed and drained.
    pub fn recv(&self) -> Recv<T> {
        Recv {
            inner: self.inner.clone(),
        }
    }

    /// Removes the next item if one is present, without waiting.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.borrow_mut().items.pop_front()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.borrow().items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Queue::recv`].
pub struct Recv<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

impl<T> Future for Recv<T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut inner = self.inner.borrow_mut();
        if let Some(item) = inner.items.pop_front() {
            return Poll::Ready(Some(item));
        }
        if inner.closed {
            return Poll::Ready(None);
        }
        inner.recv_waiters.push(cx.waker().clone());
        Poll::Pending
    }
}

/// Sending half of a queue created by [`unbounded`].
pub struct QueueSender<T>(Queue<T>);

impl<T> Clone for QueueSender<T> {
    fn clone(&self) -> Self {
        QueueSender(self.0.clone())
    }
}

impl<T> std::fmt::Debug for QueueSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QueueSender({:?})", self.0)
    }
}

impl<T> QueueSender<T> {
    /// Appends an item; see [`Queue::send`].
    pub fn send(&self, item: T) {
        self.0.send(item)
    }
    /// Closes the queue; see [`Queue::close`].
    pub fn close(&self) {
        self.0.close()
    }
}

/// Receiving half of a queue created by [`unbounded`].
pub struct QueueReceiver<T>(Queue<T>);

impl<T> Clone for QueueReceiver<T> {
    fn clone(&self) -> Self {
        QueueReceiver(self.0.clone())
    }
}

impl<T> std::fmt::Debug for QueueReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QueueReceiver({:?})", self.0)
    }
}

impl<T> QueueReceiver<T> {
    /// Receives the next item; see [`Queue::recv`].
    pub fn recv(&self) -> Recv<T> {
        self.0.recv()
    }
    /// Non-blocking receive; see [`Queue::try_recv`].
    pub fn try_recv(&self) -> Option<T> {
        self.0.try_recv()
    }
    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.0.len()
    }
    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Creates a connected sender/receiver pair over a fresh unbounded queue.
pub fn unbounded<T>() -> (QueueSender<T>, QueueReceiver<T>) {
    let q = Queue::new();
    (QueueSender(q.clone()), QueueReceiver(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;

    #[test]
    fn fifo_order_preserved() {
        let sim = Sim::new();
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i);
        }
        let h = sim.spawn(async move {
            let mut got = Vec::new();
            for _ in 0..10 {
                got.push(rx.recv().await.unwrap());
            }
            got
        });
        sim.run_to_completion();
        assert_eq!(h.try_take(), Some((0..10).collect()));
    }

    #[test]
    fn recv_waits_for_send() {
        let sim = Sim::new();
        let (tx, rx) = unbounded();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(crate::time::us(2)).await;
            tx.send(5u8);
        });
        let h = sim.spawn(async move { rx.recv().await });
        let t = sim.run_to_completion();
        assert_eq!(t, crate::time::us(2));
        assert_eq!(h.try_take(), Some(Some(5)));
    }

    #[test]
    fn close_drains_then_none() {
        let sim = Sim::new();
        let (tx, rx) = unbounded();
        tx.send(1u8);
        tx.close();
        let h = sim.spawn(async move {
            let a = rx.recv().await;
            let b = rx.recv().await;
            (a, b)
        });
        sim.run_to_completion();
        assert_eq!(h.try_take(), Some((Some(1), None)));
    }

    #[test]
    fn try_recv_nonblocking() {
        let q: Queue<u8> = Queue::new();
        assert_eq!(q.try_recv(), None);
        q.send(9);
        assert_eq!(q.len(), 1);
        assert_eq!(q.try_recv(), Some(9));
        assert!(q.is_empty());
    }

    #[test]
    fn two_receivers_compete_deterministically() {
        let sim = Sim::new();
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let h1 = sim.spawn(async move { rx.recv().await });
        let h2 = sim.spawn(async move { rx2.recv().await });
        sim.schedule(crate::time::us(1), move || {
            tx.send(1u8);
            tx.send(2u8);
        });
        sim.run();
        // First-spawned waiter wins the first item.
        assert_eq!(h1.try_take(), Some(Some(1)));
        assert_eq!(h2.try_take(), Some(Some(2)));
    }
}
