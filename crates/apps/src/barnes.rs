//! Barnes — hierarchical N-body simulation (Barnes-Hut octree), in NX
//! message-passing and SVM versions.
//!
//! Real physics: bodies live in a 3-D octree rebuilt every step; forces are
//! evaluated with the Barnes-Hut opening criterion and integrated with
//! leapfrog. CPU cycles are charged per tree insertion and per body-cell
//! interaction (counted during the actual traversal).
//!
//! * **Barnes-NX** statically partitions bodies; each step all-gathers
//!   positions in small per-body messages — the fine-grained communication
//!   that, past eight nodes, invades the otherwise compute-only phase and
//!   limits speedup (§3).
//! * **Barnes-SVM** keeps bodies in shared memory: every node reads all
//!   positions (page faults pull them from their homes), claims work chunks
//!   from a lock-protected counter (dynamic load balancing — the source of
//!   the heavy lock/notification traffic of Table 3), and writes results
//!   back through the coherence protocol.
//!
//! Both versions produce **bit-identical** final positions for the same
//! parameters — asserted by the tests.

use shrimp_core::Cluster;
use shrimp_mem::PAGE_SIZE;
use shrimp_nx::{Nx, NxConfig};
use shrimp_sim::rng::rng_for;
use shrimp_svm::{Protocol, RegionId, Svm, SvmConfig, SvmNode};

use crate::util::{digest, Mechanism, RunOutcome};

/// Problem parameters for Barnes.
#[derive(Debug, Clone)]
pub struct BarnesParams {
    /// Number of bodies (paper: 16 K for SVM, 4 K for NX).
    pub bodies: usize,
    /// Time steps (paper: 20 iters for Barnes-NX).
    pub steps: usize,
    /// Barnes-Hut opening angle.
    pub theta: f64,
    /// Bodies per allgather message in the NX version (1 reproduces the
    /// paper's ~1 M-message fine-grained exchange).
    pub chunk_bodies: usize,
    /// Bodies per self-scheduled work chunk in the SVM version.
    pub work_chunk: usize,
    /// Workload seed.
    pub seed: u64,
}

impl BarnesParams {
    /// Barnes-NX paper size: 4 K bodies, 20 iterations.
    pub fn paper_nx() -> Self {
        BarnesParams {
            bodies: 4096,
            steps: 20,
            theta: 0.8,
            chunk_bodies: 1,
            work_chunk: 32,
            seed: 3,
        }
    }

    /// Barnes-SVM paper size: 16 K bodies.
    pub fn paper_svm() -> Self {
        BarnesParams {
            bodies: 16384,
            steps: 6,
            theta: 0.8,
            chunk_bodies: 1,
            work_chunk: 32,
            seed: 3,
        }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        BarnesParams {
            bodies: 128,
            steps: 2,
            theta: 0.9,
            chunk_bodies: 4,
            work_chunk: 8,
            seed: 3,
        }
    }
}

const DT: f64 = 0.025;
const EPS2: f64 = 0.05 * 0.05;
const TREE_CYCLES_PER_BODY: u64 = 300;
const FORCE_CYCLES_PER_INTERACTION: u64 = 55;
const INTEGRATE_CYCLES_PER_BODY: u64 = 45;
/// Bytes per body in the shared region (7 f64 + pad).
const BODY_BYTES: usize = 64;

/// One body: position, velocity, mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Mass.
    pub mass: f64,
}

/// Generates the full deterministic body set (cold uniform cube).
pub fn generate_bodies(params: &BarnesParams) -> Vec<Body> {
    let mut rng = rng_for("barnes", params.seed);
    (0..params.bodies)
        .map(|_| Body {
            pos: [
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ],
            vel: [0.0; 3],
            mass: 1.0 / params.bodies as f64,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Octree
// ---------------------------------------------------------------------------

struct OctNode {
    center: [f64; 3],
    half: f64,
    com: [f64; 3],
    mass: f64,
    /// Index of the first of 8 children, or -1 for a leaf.
    children: i32,
    /// Body index for a singleton leaf, or -1.
    body: i32,
}

/// A Barnes-Hut octree over a body set.
pub struct Octree {
    nodes: Vec<OctNode>,
}

impl Octree {
    /// Builds the tree (deterministic: insertion in body-index order).
    pub fn build(bodies: &[Body]) -> Octree {
        let mut half = 1.0e-9f64;
        for b in bodies {
            for d in 0..3 {
                half = half.max(b.pos[d].abs());
            }
        }
        half *= 1.0001;
        let mut tree = Octree {
            nodes: vec![OctNode {
                center: [0.0; 3],
                half,
                com: [0.0; 3],
                mass: 0.0,
                children: -1,
                body: -1,
            }],
        };
        for (i, b) in bodies.iter().enumerate() {
            tree.insert(0, i as i32, b, bodies);
        }
        tree.summarize(0, bodies);
        tree
    }

    fn octant(center: &[f64; 3], p: &[f64; 3]) -> usize {
        (usize::from(p[0] >= center[0]))
            | (usize::from(p[1] >= center[1]) << 1)
            | (usize::from(p[2] >= center[2]) << 2)
    }

    fn insert(&mut self, node: usize, bi: i32, b: &Body, bodies: &[Body]) {
        if self.nodes[node].children < 0 && self.nodes[node].body < 0 {
            // Empty leaf.
            self.nodes[node].body = bi;
            return;
        }
        if self.nodes[node].children < 0 {
            // Occupied leaf: split.
            let prev = self.nodes[node].body;
            self.nodes[node].body = -1;
            let first = self.nodes.len() as i32;
            let (center, half) = (self.nodes[node].center, self.nodes[node].half);
            for o in 0..8 {
                let h = half / 2.0;
                let c = [
                    center[0] + if o & 1 != 0 { h } else { -h },
                    center[1] + if o & 2 != 0 { h } else { -h },
                    center[2] + if o & 4 != 0 { h } else { -h },
                ];
                self.nodes.push(OctNode {
                    center: c,
                    half: h,
                    com: [0.0; 3],
                    mass: 0.0,
                    children: -1,
                    body: -1,
                });
            }
            self.nodes[node].children = first;
            let pb = &bodies[prev as usize];
            let o = Self::octant(&self.nodes[node].center, &pb.pos);
            self.insert(first as usize + o, prev, pb, bodies);
        }
        let first = self.nodes[node].children as usize;
        let o = Self::octant(&self.nodes[node].center, &b.pos);
        self.insert(first + o, bi, b, bodies);
    }

    fn summarize(&mut self, node: usize, bodies: &[Body]) {
        if self.nodes[node].children < 0 {
            if self.nodes[node].body >= 0 {
                let b = &bodies[self.nodes[node].body as usize];
                self.nodes[node].mass = b.mass;
                self.nodes[node].com = b.pos;
            }
            return;
        }
        let first = self.nodes[node].children as usize;
        let mut mass = 0.0;
        let mut com = [0.0f64; 3];
        for o in 0..8 {
            self.summarize(first + o, bodies);
            let c = &self.nodes[first + o];
            mass += c.mass;
            for d in 0..3 {
                com[d] += c.com[d] * c.mass;
            }
        }
        if mass > 0.0 {
            for c in &mut com {
                *c /= mass;
            }
        }
        self.nodes[node].mass = mass;
        self.nodes[node].com = com;
    }

    /// Computes the acceleration on body `bi`; returns `(accel,
    /// interaction_count)` — the count drives the cycle charge.
    pub fn force_on(&self, bi: usize, bodies: &[Body], theta: f64) -> ([f64; 3], u64) {
        let p = bodies[bi].pos;
        let mut acc = [0.0f64; 3];
        let mut interactions = 0u64;
        let mut stack = vec![0usize];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if node.mass == 0.0 {
                continue;
            }
            let dx = node.com[0] - p[0];
            let dy = node.com[1] - p[1];
            let dz = node.com[2] - p[2];
            let d2 = dx * dx + dy * dy + dz * dz + EPS2;
            let is_leaf = node.children < 0;
            if is_leaf {
                if node.body == bi as i32 {
                    continue;
                }
            } else {
                let s = 2.0 * node.half;
                if s * s >= theta * theta * d2 {
                    let first = node.children as usize;
                    for o in 0..8 {
                        stack.push(first + o);
                    }
                    continue;
                }
            }
            let inv = 1.0 / (d2 * d2.sqrt());
            let f = node.mass * inv;
            acc[0] += f * dx;
            acc[1] += f * dy;
            acc[2] += f * dz;
            interactions += 1;
        }
        (acc, interactions)
    }
}

/// One leapfrog step for a body given its acceleration.
pub fn integrate(b: &mut Body, acc: [f64; 3]) {
    for d in 0..3 {
        b.vel[d] += acc[d] * DT;
        b.pos[d] += b.vel[d] * DT;
    }
}

fn positions_checksum(bodies: &[Body]) -> u64 {
    let mut bytes = Vec::with_capacity(bodies.len() * 24);
    for b in bodies {
        for d in 0..3 {
            bytes.extend_from_slice(&b.pos[d].to_bits().to_le_bytes());
        }
    }
    digest(&bytes)
}

fn block_of(n: usize, p: usize, node: usize) -> (usize, usize) {
    let base = n / p;
    let extra = n % p;
    let start = node * base + node.min(extra);
    (start, start + base + usize::from(node < extra))
}

// ---------------------------------------------------------------------------
// NX version
// ---------------------------------------------------------------------------

/// Runs Barnes-NX with the chosen bulk mechanism; the checksum covers the
/// final body positions.
pub fn run_barnes_nx(cluster: &Cluster, params: &BarnesParams, mech: Mechanism) -> RunOutcome {
    let p = cluster.num_nodes();
    assert!(params.bodies >= p, "fewer bodies than nodes");
    let cfg = match mech {
        Mechanism::DeliberateUpdate => NxConfig::default(),
        Mechanism::AutomaticUpdate => NxConfig::automatic(),
    };
    let endpoints = shrimp_nx::create(cluster, cfg);
    let mut handles = Vec::new();
    for nx in endpoints {
        let params = params.clone();
        handles.push(cluster.sim().spawn(barnes_nx_node(nx, params)));
    }
    let (elapsed, blocks) = cluster.run_until_complete(handles);
    let mut all = generate_bodies(params);
    for (node, block) in blocks.iter().enumerate() {
        let (s, _e) = block_of(params.bodies, p, node);
        for (i, b) in block.iter().enumerate() {
            all[s + i] = *b;
        }
    }
    RunOutcome::collect(cluster, elapsed, positions_checksum(&all))
}

const T_BODIES: u32 = 0x0B00;

async fn barnes_nx_node(nx: Nx, params: BarnesParams) -> Vec<Body> {
    let p = nx.nprocs();
    let me = nx.me();
    let vm = nx.vmmc().clone();
    let mut all = generate_bodies(&params);
    let (s, e) = block_of(params.bodies, p, me);

    for step in 0..params.steps {
        let t = T_BODIES | (step as u32 & 0xFF);
        // Allgather positions in fine-grained chunks: each message carries
        // `chunk_bodies` (index, position, mass) records. Sending runs in a
        // helper process so receives drain concurrently — with everyone
        // sending a full block before receiving, small clusters would
        // deadlock on ring flow control.
        let msgs: Vec<Vec<u8>> = (s..e)
            .step_by(params.chunk_bodies)
            .map(|chunk_start| {
                let chunk_end = (chunk_start + params.chunk_bodies).min(e);
                let mut msg = Vec::with_capacity(8 + (chunk_end - chunk_start) * 32);
                msg.extend_from_slice(&(chunk_start as u32).to_le_bytes());
                msg.extend_from_slice(&((chunk_end - chunk_start) as u32).to_le_bytes());
                for b in &all[chunk_start..chunk_end] {
                    for d in 0..3 {
                        msg.extend_from_slice(&b.pos[d].to_bits().to_le_bytes());
                    }
                    msg.extend_from_slice(&b.mass.to_bits().to_le_bytes());
                }
                msg
            })
            .collect();
        let sender = {
            let nx = nx.clone();
            vm.sim().clone().spawn(async move {
                for msg in msgs {
                    for dest in 0..p {
                        if dest != me {
                            nx.csend(t, &msg, dest).await;
                        }
                    }
                }
            })
        };
        // Receive everyone else's chunks.
        let mut expected = 0usize;
        for node in 0..p {
            if node == me {
                continue;
            }
            let (a, b) = block_of(params.bodies, p, node);
            expected += (b - a).div_ceil(params.chunk_bodies);
        }
        for _ in 0..expected {
            let m = nx.crecv(Some(t), None).await;
            let start = u32::from_le_bytes(m.data[0..4].try_into().unwrap()) as usize;
            let count = u32::from_le_bytes(m.data[4..8].try_into().unwrap()) as usize;
            for i in 0..count {
                let at = 8 + i * 32;
                let mut pos = [0.0f64; 3];
                for d in 0..3 {
                    pos[d] = f64::from_bits(u64::from_le_bytes(
                        m.data[at + d * 8..at + d * 8 + 8].try_into().unwrap(),
                    ));
                }
                all[start + i].pos = pos;
                all[start + i].mass = f64::from_bits(u64::from_le_bytes(
                    m.data[at + 24..at + 32].try_into().unwrap(),
                ));
            }
        }
        sender.await;
        // Tree build + forces for the owned block + integration.
        let tree = Octree::build(&all);
        vm.compute_cycles(params.bodies as u64 * TREE_CYCLES_PER_BODY)
            .await;
        let mut interactions = 0u64;
        let mut accs = Vec::with_capacity(e - s);
        for bi in s..e {
            let (acc, count) = tree.force_on(bi, &all, params.theta);
            interactions += count;
            accs.push(acc);
        }
        vm.compute_cycles(interactions * FORCE_CYCLES_PER_INTERACTION)
            .await;
        for (bi, acc) in (s..e).zip(accs) {
            integrate(&mut all[bi], acc);
        }
        vm.compute_cycles((e - s) as u64 * INTEGRATE_CYCLES_PER_BODY)
            .await;
    }
    all[s..e].to_vec()
}

// ---------------------------------------------------------------------------
// SVM version
// ---------------------------------------------------------------------------

/// Runs Barnes-SVM under the given protocol; the checksum matches
/// [`run_barnes_nx`] for identical parameters.
pub fn run_barnes_svm(cluster: &Cluster, protocol: Protocol, params: &BarnesParams) -> RunOutcome {
    let p = cluster.num_nodes();
    assert!(params.bodies >= p, "fewer bodies than nodes");
    let svm = Svm::create(cluster, SvmConfig::new(protocol));
    let region_bytes = params.bodies * BODY_BYTES;
    let bodies_per_page = PAGE_SIZE / BODY_BYTES;
    let nbodies = params.bodies;
    let bodies_region = svm.create_region(region_bytes, move |pg| {
        let body = (pg * bodies_per_page).min(nbodies - 1);
        // Home = static owner of that body index.
        let mut owner = p - 1;
        for node in 0..p {
            let (a, b) = block_of(nbodies, p, node);
            if body >= a && body < b {
                owner = node;
                break;
            }
        }
        owner
    });
    // Work counter page (home 0), claimed under lock 0.
    let work_region = svm.create_region(PAGE_SIZE, |_| 0);

    // Initialize bodies at their homes.
    let init = generate_bodies(params);
    for (i, b) in init.iter().enumerate() {
        svm.init_write(bodies_region, i * BODY_BYTES, &body_bytes(b));
    }

    let mut handles = Vec::new();
    for me in 0..p {
        let node = svm.node(me);
        let params = params.clone();
        handles.push(cluster.sim().spawn(barnes_svm_node(
            node,
            params,
            bodies_region,
            work_region,
        )));
    }
    let (elapsed, _) = cluster.run_until_complete(handles);

    let mut bytes = vec![0u8; region_bytes];
    svm.home_read(bodies_region, 0, &mut bytes);
    let final_bodies: Vec<Body> = (0..params.bodies)
        .map(|i| bytes_body(&bytes[i * BODY_BYTES..(i + 1) * BODY_BYTES]))
        .collect();
    RunOutcome::collect_svm(cluster, &svm, elapsed, positions_checksum(&final_bodies))
}

fn body_bytes(b: &Body) -> Vec<u8> {
    let mut out = Vec::with_capacity(BODY_BYTES);
    for d in 0..3 {
        out.extend_from_slice(&b.pos[d].to_bits().to_le_bytes());
    }
    for d in 0..3 {
        out.extend_from_slice(&b.vel[d].to_bits().to_le_bytes());
    }
    out.extend_from_slice(&b.mass.to_bits().to_le_bytes());
    out.resize(BODY_BYTES, 0);
    out
}

fn bytes_body(b: &[u8]) -> Body {
    let f = |i: usize| f64::from_bits(u64::from_le_bytes(b[i * 8..i * 8 + 8].try_into().unwrap()));
    Body {
        pos: [f(0), f(1), f(2)],
        vel: [f(3), f(4), f(5)],
        mass: f(6),
    }
}

async fn barnes_svm_node(
    node: SvmNode,
    params: BarnesParams,
    bodies_region: RegionId,
    work_region: RegionId,
) {
    let vm = node.vmmc().clone();
    let n = params.bodies;

    for step in 0..params.steps {
        // Read every body through shared memory (faults pull remote pages).
        let mut bytes = vec![0u8; n * BODY_BYTES];
        node.read_bytes(bodies_region, 0, &mut bytes).await;
        let all: Vec<Body> = (0..n)
            .map(|i| bytes_body(&bytes[i * BODY_BYTES..(i + 1) * BODY_BYTES]))
            .collect();
        let tree = Octree::build(&all);
        vm.compute_cycles(n as u64 * TREE_CYCLES_PER_BODY).await;
        // Everyone must finish snapshotting before anyone writes updates
        // (two-phase superstep, as in SPLASH-2 Barnes).
        node.barrier().await;

        // Self-scheduled chunks off the shared counter (lock-protected):
        // dynamic load balancing with the lock traffic of Table 3.
        let step_base = (step * n) as u32;
        let step_end = step_base + n as u32;
        loop {
            node.lock(0).await;
            let cur = node.read_u32(work_region, 0).await.max(step_base);
            let claim_end = (cur + params.work_chunk as u32).min(step_end);
            node.write_u32(work_region, 0, claim_end).await;
            node.unlock(0).await;
            if cur >= step_end {
                break;
            }
            let (s, e) = ((cur - step_base) as usize, (claim_end - step_base) as usize);
            let mut interactions = 0u64;
            for bi in s..e {
                let (acc, count) = tree.force_on(bi, &all, params.theta);
                interactions += count;
                let mut b = all[bi];
                integrate(&mut b, acc);
                node.write_bytes(bodies_region, bi * BODY_BYTES, &body_bytes(&b))
                    .await;
            }
            vm.compute_cycles(
                interactions * FORCE_CYCLES_PER_INTERACTION
                    + (e - s) as u64 * INTEGRATE_CYCLES_PER_BODY,
            )
            .await;
        }
        node.barrier().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_core::DesignConfig;

    #[test]
    fn octree_force_approximates_direct_sum() {
        let params = BarnesParams::small();
        let bodies = generate_bodies(&params);
        let tree = Octree::build(&bodies);
        // theta=0 degenerates to exact pairwise summation.
        let (exact, count_exact) = tree.force_on(0, &bodies, 0.0);
        assert_eq!(count_exact, bodies.len() as u64 - 1);
        let (approx, count_approx) = tree.force_on(0, &bodies, 0.5);
        assert!(count_approx < count_exact, "opening criterion never fired");
        let mag = |v: [f64; 3]| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
        let err = mag([
            exact[0] - approx[0],
            exact[1] - approx[1],
            exact[2] - approx[2],
        ]) / mag(exact).max(1e-12);
        assert!(err < 0.05, "BH approximation error {err} too large");
    }

    #[test]
    fn nx_du_au_and_partitions_agree() {
        let params = BarnesParams::small();
        let mut checksums = Vec::new();
        for (nodes, mech) in [
            (2, Mechanism::DeliberateUpdate),
            (2, Mechanism::AutomaticUpdate),
            (4, Mechanism::DeliberateUpdate),
        ] {
            let cluster = Cluster::builder(nodes)
                .config(DesignConfig::default())
                .build();
            checksums.push(run_barnes_nx(&cluster, &params, mech).checksum);
        }
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "NX variants disagree: {checksums:?}"
        );
    }

    #[test]
    fn svm_matches_nx_bit_exactly() {
        let params = BarnesParams::small();
        let nx = {
            let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
            run_barnes_nx(&cluster, &params, Mechanism::DeliberateUpdate)
        };
        for protocol in [Protocol::Hlrc, Protocol::Aurc] {
            let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
            let out = run_barnes_svm(&cluster, protocol, &params);
            assert_eq!(out.checksum, nx.checksum, "SVM {protocol} diverged");
            assert!(out.notifications > 0, "SVM Barnes must use notifications");
        }
    }

    #[test]
    fn bodies_move() {
        let params = BarnesParams::small();
        let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
        let out = run_barnes_nx(&cluster, &params, Mechanism::DeliberateUpdate);
        let initial = positions_checksum(&generate_bodies(&params));
        assert_ne!(out.checksum, initial, "gravity did nothing");
    }
}
