//! DFS — a distributed cluster file system over stream sockets (§3).
//!
//! The file system stripes file blocks across the disks of all nodes and
//! caches blocks cooperatively in their memory. The experiment's synthetic
//! workload runs client threads on half of the nodes, reading large files;
//! caches are warmed and the working set of one client exceeds a single
//! node's memory while the collective working set fits in the cluster — so
//! there are many node-to-node block transfers but no disk I/O.
//!
//! Servers use the sockets library's non-standard **block-transfer
//! extension** for the 8 KB data blocks (zero staging copies), exactly the
//! usage that makes DFS the application most sensitive to bulk-transfer
//! bandwidth: forced onto automatic update without combining it runs about
//! a factor of two slower (§4.5.1).

use shrimp_core::Cluster;
use shrimp_sim::time;
use shrimp_sockets::{Socket, SocketConfig, SocketNet};

use crate::util::{digest, RunOutcome};

/// Problem parameters for DFS.
#[derive(Debug, Clone)]
pub struct DfsParams {
    /// Number of client nodes (the paper's Table 1 workload uses 4; the
    /// experiment text runs clients on half of the 16 nodes).
    pub clients: usize,
    /// Distinct files.
    pub files: usize,
    /// Blocks per file.
    pub file_blocks: usize,
    /// Block size in bytes.
    pub block_bytes: usize,
    /// Client-local cache capacity in blocks (smaller than one file so the
    /// per-client working set exceeds a single node's memory).
    pub cache_blocks: usize,
    /// Sequential whole-file reads each client performs.
    pub reads_per_client: usize,
}

impl DfsParams {
    /// Paper-scale workload: 4 clients reading large striped files.
    pub fn paper() -> Self {
        DfsParams {
            clients: 4,
            files: 8,
            file_blocks: 128,
            block_bytes: 8192,
            cache_blocks: 64,
            reads_per_client: 64,
        }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        DfsParams {
            clients: 2,
            files: 2,
            file_blocks: 8,
            block_bytes: 2048,
            cache_blocks: 4,
            reads_per_client: 3,
        }
    }
}

/// Server-side request processing cost (directory lookup + cache lookup).
const SERVE_COST: shrimp_sim::Time = time::us(30);
/// Client-side per-block verification cost.
const VERIFY_CYCLES_PER_BLOCK: u64 = 600;
const DFS_PORT: u16 = 7001;

/// Deterministic block contents: `(file, block)` determines every byte.
fn block_content(file: u32, block: u32, bytes: usize) -> Vec<u8> {
    let mut state = (file as u64) << 32 | block as u64 | 1;
    (0..bytes)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 56) as u8
        })
        .collect()
}

/// Owner node of a block (striping across all nodes).
fn owner_of(file: u32, block: u32, n: usize) -> usize {
    (file as usize * 31 + block as usize) % n
}

/// Runs the DFS workload; the checksum covers every block each client read,
/// in read order. Returns the run summary.
pub fn run_dfs(cluster: &Cluster, params: &DfsParams, cfg: SocketConfig) -> RunOutcome {
    let n = cluster.num_nodes();
    assert!(params.clients <= n, "more clients than nodes");
    let net = SocketNet::with_config(cluster, cfg);

    // Servers: every node runs one, serving its striped blocks.
    let mut listeners = Vec::new();
    for node in 0..n {
        listeners.push(net.listen(node, DFS_PORT));
    }
    for (node, listener) in listeners.into_iter().enumerate() {
        let cluster2 = cluster.clone();
        let params2 = params.clone();
        cluster.sim().spawn(async move {
            // One service process per accepted connection.
            loop {
                let sock = listener.accept().await;
                let vm = cluster2.vmmc(node);
                let params = params2.clone();
                cluster2.sim().spawn(async move {
                    loop {
                        let mut req = [0u8; 8];
                        let got = sock.read(&mut req[..1]).await;
                        if got == 0 {
                            break; // client closed
                        }
                        sock.read_exact(&mut req[1..]).await;
                        let file = u32::from_le_bytes(req[0..4].try_into().unwrap());
                        let block = u32::from_le_bytes(req[4..8].try_into().unwrap());
                        vm.cpu().run_handler(SERVE_COST).await;
                        let data = block_content(file, block, params.block_bytes);
                        sock.write_block(&data).await;
                    }
                });
            }
        });
    }

    // Clients on the first `clients` nodes.
    let mut handles = Vec::new();
    for c in 0..params.clients {
        let params = params.clone();
        let net = net.clone();
        let cluster2 = cluster.clone();
        handles.push(cluster.sim().spawn(async move {
            let vm = cluster2.vmmc(c);
            let n = cluster2.num_nodes();
            // Connect to every server once.
            let socks: Vec<Socket> = (0..n)
                .map(|srv| net.connect_endpoints(c, srv, DFS_PORT))
                .collect();
            // LRU cache of (file, block) -> digest of content.
            let mut cache: Vec<(u32, u32)> = Vec::new();
            let mut hits = 0u64;
            let mut misses = 0u64;
            let mut read_digest: u64 = 0xcbf2_9ce4_8422_2325;
            for read in 0..params.reads_per_client {
                // Each client walks the files round-robin with an offset,
                // so the collective working set covers all files.
                let file = ((read + c) % params.files) as u32;
                for block in 0..params.file_blocks as u32 {
                    let key = (file, block);
                    let data = if let Some(at) = cache.iter().position(|k| *k == key) {
                        hits += 1;
                        // LRU touch; content re-verified from the model.
                        let k = cache.remove(at);
                        cache.push(k);
                        block_content(file, block, params.block_bytes)
                    } else {
                        misses += 1;
                        let srv = owner_of(file, block, n);
                        let mut req = Vec::with_capacity(8);
                        req.extend_from_slice(&file.to_le_bytes());
                        req.extend_from_slice(&block.to_le_bytes());
                        socks[srv].write(&req).await;
                        let data = socks[srv].read_block().await;
                        assert_eq!(
                            data,
                            block_content(file, block, params.block_bytes),
                            "block corrupted in transit"
                        );
                        cache.push(key);
                        if cache.len() > params.cache_blocks {
                            cache.remove(0);
                        }
                        data
                    };
                    vm.compute_cycles(VERIFY_CYCLES_PER_BLOCK).await;
                    read_digest ^= digest(&data).wrapping_add((file as u64) << 32 | block as u64);
                }
            }
            for s in &socks {
                s.shutdown().await;
            }
            (read_digest, hits, misses)
        }));
    }
    let (elapsed, results) = cluster.run_until_complete(handles);
    let mut checksum = 0u64;
    let mut total_misses = 0;
    for (d, _h, m) in &results {
        checksum ^= d;
        total_misses += m;
    }
    assert!(total_misses > 0, "workload never left the client caches");
    RunOutcome::collect(cluster, elapsed, checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_core::DesignConfig;
    use shrimp_core::RingBulk;

    #[test]
    fn blocks_verified_end_to_end() {
        let cluster = Cluster::builder(4).config(DesignConfig::default()).build();
        let out = run_dfs(&cluster, &DfsParams::small(), SocketConfig::default());
        assert!(out.elapsed > 0);
        assert!(out.messages > 0);
        assert_eq!(out.notifications, 0, "DFS polls, never notifies (Table 3)");
    }

    #[test]
    fn caching_reduces_traffic() {
        let mut big_cache = DfsParams::small();
        big_cache.cache_blocks = 1000;
        let small = {
            let cluster = Cluster::builder(4).config(DesignConfig::default()).build();
            run_dfs(&cluster, &DfsParams::small(), SocketConfig::default())
        };
        let big = {
            let cluster = Cluster::builder(4).config(DesignConfig::default()).build();
            run_dfs(&cluster, &big_cache, SocketConfig::default())
        };
        assert!(
            big.messages < small.messages,
            "bigger cache should reduce messages"
        );
        assert_eq!(big.checksum, small.checksum, "cache changed file contents");
    }

    #[test]
    fn forced_automatic_update_still_correct() {
        // §4.5.1 runs DFS forced onto AU bulk transfers; data must survive.
        let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
        let cfg = SocketConfig {
            bulk: RingBulk::Automatic,
            ..SocketConfig::default()
        };
        let reference = {
            let c2 = Cluster::builder(2).config(DesignConfig::default()).build();
            run_dfs(&c2, &DfsParams::small(), SocketConfig::default())
        };
        let out = run_dfs(&cluster, &DfsParams::small(), cfg);
        assert_eq!(out.checksum, reference.checksum);
    }
}
