//! The eight workloads of the SHRIMP empirical study (Table 1).
//!
//! | Application | API | Paper problem size |
//! |---|---|---|
//! | Barnes-SVM | SVM | 16 K bodies |
//! | Ocean-SVM | SVM | 514 x 514 |
//! | Radix-SVM | SVM | 2 M keys, 3 iters |
//! | Radix-VMMC | VMMC | 2 M keys, 3 iters |
//! | Barnes-NX | NX | 4 K bodies, 20 iters |
//! | Ocean-NX | NX | 258 x 258 |
//! | DFS-sockets | sockets | 4 clients |
//! | Render-sockets | sockets | 128 x 128 image |
//!
//! Every workload does *real* computation — real radix sorts, real
//! Barnes-Hut force evaluation on an octree, real red-black relaxation,
//! real ray marching — with CPU time charged through a cost model
//! calibrated to the 60 MHz Pentium nodes, while all communication flows
//! through the simulated SHRIMP stack. Each application that the paper
//! measures in both automatic-update and deliberate-update versions is
//! implemented in both (selected by [`Mechanism`] / the SVM
//! [`Protocol`](shrimp_svm::Protocol)), and versions are checked against
//! each other for bit-identical numerical results.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops mirror the papers' pseudocode

pub mod barnes;
pub mod dfs;
pub mod kv;
pub mod ocean;
pub mod radix;
pub mod render;
pub mod util;

pub use kv::{run_kv, KvParams};
pub use util::{vmmc_barrier_group, Mechanism, RunOutcome, VmmcBarrier};
