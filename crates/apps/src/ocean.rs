//! Ocean — nearest-neighbor grid relaxation (SPLASH-2-style fluid solver
//! kernel), in NX message-passing and SVM versions.
//!
//! The computational core is a red-black Gauss-Seidel relaxation over an
//! `n x n` grid of `f64`: work is assigned by statically splitting the grid
//! into contiguous row blocks, and nearest-neighbor communication occurs
//! between processors owning adjacent blocks (§3). Red-black ordering makes
//! the update sequence independent of the partitioning, so the NX and SVM
//! versions (and the AU and DU transports) produce **bit-identical** grids —
//! asserted by the tests.

use shrimp_core::Cluster;
use shrimp_mem::PAGE_SIZE;
use shrimp_nx::{Nx, NxConfig};
use shrimp_svm::{Protocol, RegionId, Svm, SvmConfig, SvmNode};

use crate::util::{digest, Mechanism, RunOutcome};

/// Problem parameters for Ocean.
#[derive(Debug, Clone)]
pub struct OceanParams {
    /// Grid side (including fixed boundary): the paper uses 514 for
    /// Ocean-SVM and 258 for Ocean-NX.
    pub n: usize,
    /// Relaxation sweeps (each = red phase + black phase).
    pub sweeps: usize,
    /// Reduce the global error every this many sweeps.
    pub reduce_every: usize,
}

impl OceanParams {
    /// Ocean-SVM paper size: 514 x 514.
    pub fn paper_svm() -> Self {
        OceanParams {
            n: 514,
            sweeps: 160,
            reduce_every: 4,
        }
    }

    /// Ocean-NX paper size: 258 x 258.
    pub fn paper_nx() -> Self {
        OceanParams {
            n: 258,
            sweeps: 160,
            reduce_every: 4,
        }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        OceanParams {
            n: 34,
            sweeps: 6,
            reduce_every: 2,
        }
    }
}

/// Cycles per 5-point stencil cell update on the 60 MHz Pentium.
const CELL_CYCLES: u64 = 30;
/// Successive over-relaxation factor.
const OMEGA: f64 = 1.1;

/// Fixed boundary value (deterministic pattern).
fn boundary(i: usize, j: usize) -> f64 {
    ((i * 31 + j * 17) % 1024) as f64 / 1024.0
}

/// Contiguous interior-row partition: rows `1..n-1` split over `p` nodes.
/// Returns `(first_row, end_row)` for `node`.
fn rows_of(n: usize, p: usize, node: usize) -> (usize, usize) {
    let interior = n - 2;
    let base = interior / p;
    let extra = interior % p;
    let start = 1 + node * base + node.min(extra);
    let len = base + usize::from(node < extra);
    (start, start + len)
}

/// Node owning (responsible for relaxing) a global row; boundary rows
/// attach to the adjacent partition.
fn owner_of_row(n: usize, p: usize, row: usize) -> usize {
    if row == 0 {
        return 0;
    }
    if row >= n - 1 {
        return p - 1;
    }
    for node in 0..p {
        let (a, b) = rows_of(n, p, node);
        if row >= a && row < b {
            return node;
        }
    }
    p - 1
}

/// One red-black phase over local rows `[r0, r1)`; `row_offset + r` is the
/// global row of local row `r`. Returns `(updates, |delta| sum)`.
fn relax_rows<G: Fn(usize, usize) -> f64>(
    n: usize,
    r0: usize,
    r1: usize,
    row_offset: usize,
    color: usize,
    get: G,
) -> (Vec<(usize, usize, f64)>, f64) {
    let mut updates = Vec::new();
    let mut err = 0.0f64;
    for r in r0..r1 {
        let gr = row_offset + r;
        let c0 = if (1 + gr) % 2 == color { 1 } else { 2 };
        let mut c = c0;
        while c < n - 1 {
            let v = get(r, c);
            let avg = 0.25 * (get(r - 1, c) + get(r + 1, c) + get(r, c - 1) + get(r, c + 1));
            let nv = v + OMEGA * (avg - v);
            err += (nv - v).abs();
            updates.push((r, c, nv));
            c += 2;
        }
    }
    (updates, err)
}

fn grid_checksum(grid: &[f64]) -> u64 {
    let mut bytes = Vec::with_capacity(grid.len() * 8);
    for v in grid {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    digest(&bytes)
}

// ---------------------------------------------------------------------------
// NX version
// ---------------------------------------------------------------------------

const T_ROW_UP: u32 = 0x0C01;
const T_ROW_DOWN: u32 = 0x0C02;

/// Runs Ocean-NX with the chosen bulk mechanism; the checksum covers the
/// final grid.
pub fn run_ocean_nx(cluster: &Cluster, params: &OceanParams, mech: Mechanism) -> RunOutcome {
    let n = params.n;
    let p = cluster.num_nodes();
    assert!(n >= 4 && n - 2 >= p, "grid too small for node count");
    let cfg = match mech {
        Mechanism::DeliberateUpdate => NxConfig::default(),
        Mechanism::AutomaticUpdate => NxConfig::automatic(),
    };
    let endpoints = shrimp_nx::create(cluster, cfg);

    let mut handles = Vec::new();
    for nx in endpoints {
        let params = params.clone();
        handles.push(cluster.sim().spawn(ocean_nx_node(nx, params)));
    }
    let (elapsed, results) = cluster.run_until_complete(handles);

    // Assemble the global grid.
    let mut grid = vec![0.0f64; n * n];
    for i in 0..n {
        grid[i] = boundary(0, i);
        grid[(n - 1) * n + i] = boundary(n - 1, i);
        grid[i * n] = boundary(i, 0);
        grid[i * n + n - 1] = boundary(i, n - 1);
    }
    for (node, rows) in results.iter().enumerate() {
        let (r0, _) = rows_of(n, p, node);
        for (i, row) in rows.iter().enumerate() {
            grid[(r0 + i) * n..(r0 + i + 1) * n].copy_from_slice(row);
        }
    }
    RunOutcome::collect(cluster, elapsed, grid_checksum(&grid))
}

async fn ocean_nx_node(nx: Nx, params: OceanParams) -> Vec<Vec<f64>> {
    let n = params.n;
    let p = nx.nprocs();
    let me = nx.me();
    let vm = nx.vmmc().clone();
    let (r0, r1) = rows_of(n, p, me);
    let local_rows = r1 - r0;
    // Local view rows r0-1 ..= r1 (ghosts at both ends).
    let mut view = vec![vec![0.0f64; n]; local_rows + 2];
    for (i, row) in view.iter_mut().enumerate() {
        let gr = r0 - 1 + i;
        for (j, v) in row.iter_mut().enumerate() {
            *v = if gr == 0 || gr == n - 1 || j == 0 || j == n - 1 {
                boundary(gr, j)
            } else {
                0.0
            };
        }
    }
    let up = (me > 0).then(|| me - 1);
    let down = (me + 1 < p).then(|| me + 1);

    let row_bytes = |row: &[f64]| -> Vec<u8> {
        let mut b = Vec::with_capacity(row.len() * 8);
        for v in row {
            b.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        b
    };
    let bytes_row = |b: &[u8]| -> Vec<f64> {
        b.chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect()
    };

    for sweep in 0..params.sweeps {
        let mut sweep_err = 0.0f64;
        for color in 0..2 {
            // Nearest-neighbor edge-row exchange before each phase.
            if let Some(u) = up {
                nx.csend(T_ROW_UP, &row_bytes(&view[1]), u).await;
            }
            if let Some(d) = down {
                nx.csend(T_ROW_DOWN, &row_bytes(&view[local_rows]), d).await;
            }
            if let Some(u) = up {
                let m = nx.crecv(Some(T_ROW_DOWN), Some(u)).await;
                view[0] = bytes_row(&m.data);
            }
            if let Some(d) = down {
                let m = nx.crecv(Some(T_ROW_UP), Some(d)).await;
                view[local_rows + 1] = bytes_row(&m.data);
            }
            let (updates, err) = relax_rows(n, 1, local_rows + 1, r0 - 1, color, |r, c| view[r][c]);
            for (r, c, v) in updates {
                view[r][c] = v;
            }
            sweep_err += err;
            vm.compute_cycles((local_rows * (n - 2) / 2) as u64 * CELL_CYCLES)
                .await;
        }
        if sweep % params.reduce_every == 0 {
            let _total = nx.gdsum(sweep_err).await;
        }
    }
    view[1..=local_rows].to_vec()
}

// ---------------------------------------------------------------------------
// SVM version
// ---------------------------------------------------------------------------

/// Runs Ocean-SVM under the given protocol; the checksum matches
/// [`run_ocean_nx`] for identical parameters.
pub fn run_ocean_svm(cluster: &Cluster, protocol: Protocol, params: &OceanParams) -> RunOutcome {
    let n = params.n;
    let p = cluster.num_nodes();
    assert!(n >= 4 && n - 2 >= p, "grid too small for node count");
    let svm = Svm::create(cluster, SvmConfig::new(protocol));

    // Grid region: page homes follow the row partition.
    let grid_region = svm.create_region(n * n * 8, move |pg| {
        let row = ((pg * PAGE_SIZE) / (n * 8)).min(n - 1);
        owner_of_row(n, p, row)
    });
    // Error-reduction page on node 0.
    let err_region = svm.create_region(PAGE_SIZE, |_| 0);

    // Initialize boundary at the homes.
    for i in 0..n {
        for (r, c) in [(0, i), (n - 1, i), (i, 0), (i, n - 1)] {
            let v = boundary(r, c);
            svm.init_write(grid_region, (r * n + c) * 8, &v.to_bits().to_le_bytes());
        }
    }

    let mut handles = Vec::new();
    for me in 0..p {
        let node = svm.node(me);
        let params = params.clone();
        handles.push(
            cluster
                .sim()
                .spawn(ocean_svm_node(node, params, grid_region, err_region)),
        );
    }
    let (elapsed, _) = cluster.run_until_complete(handles);

    let mut bytes = vec![0u8; n * n * 8];
    svm.home_read(grid_region, 0, &mut bytes);
    let grid: Vec<f64> = bytes
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
        .collect();
    RunOutcome::collect_svm(cluster, &svm, elapsed, grid_checksum(&grid))
}

async fn ocean_svm_node(node: SvmNode, params: OceanParams, grid: RegionId, err_region: RegionId) {
    let n = params.n;
    let p = node.nprocs();
    let me = node.me();
    let vm = node.vmmc().clone();
    let (r0, r1) = rows_of(n, p, me);

    for sweep in 0..params.sweeps {
        let mut sweep_err = 0.0f64;
        for color in 0..2 {
            // Load our rows plus ghost rows through shared memory; ghosts
            // fault in from the neighbors' homes after each invalidation.
            let mut rows: Vec<Vec<f64>> = Vec::with_capacity(r1 - r0 + 2);
            for r in (r0 - 1)..=r1 {
                let mut b = vec![0u8; n * 8];
                node.read_bytes(grid, r * n * 8, &mut b).await;
                rows.push(
                    b.chunks_exact(8)
                        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
                        .collect(),
                );
            }
            let (updates, err) = relax_rows(n, 1, r1 - r0 + 1, r0 - 1, color, |r, c| rows[r][c]);
            sweep_err += err;
            // Sparse stride-2 stores: the write pattern AURC carries without
            // diffing and combining cannot merge (§4.5.1).
            for (r, c, v) in &updates {
                let gr = r0 - 1 + r;
                node.write_f64(grid, (gr * n + c) * 8, *v).await;
            }
            vm.compute_cycles(((r1 - r0) * (n - 2) / 2) as u64 * CELL_CYCLES)
                .await;
            node.barrier().await;
        }
        if sweep % params.reduce_every == 0 {
            node.write_f64(err_region, me * 8, sweep_err).await;
            node.barrier().await;
            let mut total = 0.0;
            for i in 0..p {
                total += node.read_f64(err_region, i * 8).await;
            }
            let _ = total;
            node.barrier().await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_core::DesignConfig;

    #[test]
    fn nx_du_and_au_identical_grids() {
        let params = OceanParams::small();
        let du = {
            let cluster = Cluster::builder(4).config(DesignConfig::default()).build();
            run_ocean_nx(&cluster, &params, Mechanism::DeliberateUpdate)
        };
        let au = {
            let cluster = Cluster::builder(4).config(DesignConfig::default()).build();
            run_ocean_nx(&cluster, &params, Mechanism::AutomaticUpdate)
        };
        assert_eq!(du.checksum, au.checksum, "transport changed the physics");
        assert!(du.messages > 0);
    }

    #[test]
    fn nx_partition_count_does_not_change_result() {
        let params = OceanParams::small();
        let two = {
            let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
            run_ocean_nx(&cluster, &params, Mechanism::DeliberateUpdate)
        };
        let four = {
            let cluster = Cluster::builder(4).config(DesignConfig::default()).build();
            run_ocean_nx(&cluster, &params, Mechanism::DeliberateUpdate)
        };
        assert_eq!(two.checksum, four.checksum, "partitioning changed result");
    }

    #[test]
    fn svm_matches_nx_bit_exactly() {
        let params = OceanParams::small();
        let nx = {
            let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
            run_ocean_nx(&cluster, &params, Mechanism::DeliberateUpdate)
        };
        for protocol in [Protocol::Hlrc, Protocol::Aurc] {
            let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
            let svm = run_ocean_svm(&cluster, protocol, &params);
            assert_eq!(svm.checksum, nx.checksum, "SVM {protocol} diverged from NX");
        }
    }

    #[test]
    fn rows_partition_covers_interior() {
        for n in [10, 34, 258] {
            for p in [1, 2, 3, 4, 8] {
                if n - 2 < p {
                    continue;
                }
                let mut covered = Vec::new();
                for node in 0..p {
                    let (a, b) = rows_of(n, p, node);
                    covered.extend(a..b);
                }
                assert_eq!(covered, (1..n - 1).collect::<Vec<_>>(), "n={n} p={p}");
            }
        }
    }
}
