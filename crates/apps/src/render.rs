//! Render — a parallel fault-tolerant volume renderer over stream sockets
//! (§3, PARFUM-style).
//!
//! A controller process keeps a centralized task queue of image tiles;
//! worker processes pull tasks, ray-cast them through a volumetric data set
//! (replicated on every worker at connection establishment), and return the
//! finished tiles. Real ray marching through a synthetic density volume —
//! tiles near the blobs cost more, so the dynamic load balancing the paper
//! describes actually happens.

use shrimp_core::Cluster;
use shrimp_sim::time;
use shrimp_sockets::{SocketConfig, SocketNet};

use crate::util::{digest, RunOutcome};

/// Problem parameters for Render.
#[derive(Debug, Clone)]
pub struct RenderParams {
    /// Square image side in pixels.
    pub image: usize,
    /// Square tile side in pixels (the task granularity).
    pub tile: usize,
    /// Ray-march steps per ray.
    pub steps: usize,
    /// Fault injection: this worker crashes after completing a few tiles;
    /// the controller must reassign its in-flight work (the renderer is
    /// "fault tolerant" by design, §3).
    pub fail_worker: Option<usize>,
}

impl RenderParams {
    /// Paper-scale workload: a 128 x 128 image in 16 x 16 tiles.
    pub fn paper() -> Self {
        RenderParams {
            image: 128,
            tile: 16,
            steps: 64,
            fail_worker: None,
        }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        RenderParams {
            image: 32,
            tile: 8,
            steps: 12,
            fail_worker: None,
        }
    }
}

/// Cycles per ray-march sample (density eval + compositing).
const SAMPLE_CYCLES: u64 = 18;
/// Controller bookkeeping per task hand-out.
const DISPATCH_COST: shrimp_sim::Time = time::us(15);
const RENDER_PORT: u16 = 7002;

const REQ_TASK: u8 = 1;
const REPLY_TILE: u8 = 2;
const REPLY_DONE: u8 = 3;

/// Synthetic volume density: three Gaussian blobs in the unit cube.
fn density(x: f64, y: f64, z: f64) -> f64 {
    let blob = |cx: f64, cy: f64, cz: f64, s: f64| {
        let d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy) + (z - cz) * (z - cz);
        (-d2 / (s * s)).exp()
    };
    blob(0.5, 0.5, 0.4, 0.18) + 0.7 * blob(0.3, 0.6, 0.6, 0.12) + 0.5 * blob(0.7, 0.35, 0.5, 0.1)
}

/// Ray-casts one pixel; returns `(intensity 0..255, samples taken)`.
fn cast_ray(image: usize, steps: usize, px: usize, py: usize) -> (u8, u64) {
    let x = (px as f64 + 0.5) / image as f64;
    let y = (py as f64 + 0.5) / image as f64;
    let mut transmittance = 1.0f64;
    let mut acc = 0.0f64;
    let mut samples = 0u64;
    for s in 0..steps {
        let z = (s as f64 + 0.5) / steps as f64;
        let d = density(x, y, z);
        let alpha = (d * 2.0 / steps as f64).min(1.0);
        acc += transmittance * alpha;
        transmittance *= 1.0 - alpha;
        samples += 1;
        if transmittance < 0.02 {
            break; // early ray termination: uneven tile costs
        }
    }
    ((acc.min(1.0) * 255.0) as u8, samples)
}

/// Renders a tile; returns `(pixels, total samples)`.
fn render_tile(params: &RenderParams, tile_id: usize) -> (Vec<u8>, u64) {
    let tiles_per_row = params.image / params.tile;
    let tx = (tile_id % tiles_per_row) * params.tile;
    let ty = (tile_id / tiles_per_row) * params.tile;
    let mut pixels = Vec::with_capacity(params.tile * params.tile);
    let mut samples = 0u64;
    for dy in 0..params.tile {
        for dx in 0..params.tile {
            let (v, s) = cast_ray(params.image, params.steps, tx + dx, ty + dy);
            pixels.push(v);
            samples += s;
        }
    }
    (pixels, samples)
}

/// Renders the image sequentially (reference and sequential baseline).
pub fn render_reference(params: &RenderParams) -> Vec<u8> {
    let tiles_per_row = params.image / params.tile;
    let mut image = vec![0u8; params.image * params.image];
    for tile_id in 0..tiles_per_row * tiles_per_row {
        let (pixels, _) = render_tile(params, tile_id);
        blit(&mut image, params, tile_id, &pixels);
    }
    image
}

fn blit(image: &mut [u8], params: &RenderParams, tile_id: usize, pixels: &[u8]) {
    let tiles_per_row = params.image / params.tile;
    let tx = (tile_id % tiles_per_row) * params.tile;
    let ty = (tile_id / tiles_per_row) * params.tile;
    for dy in 0..params.tile {
        let row = (ty + dy) * params.image + tx;
        image[row..row + params.tile]
            .copy_from_slice(&pixels[dy * params.tile..(dy + 1) * params.tile]);
    }
}

/// Runs Render with node 0 as the controller and all other nodes as
/// workers; the checksum covers the assembled image (and must equal the
/// sequential reference).
pub fn run_render(cluster: &Cluster, params: &RenderParams, cfg: SocketConfig) -> RunOutcome {
    let n = cluster.num_nodes();
    assert!(n >= 2, "render needs a controller and at least one worker");
    assert_eq!(params.image % params.tile, 0, "tiles must tile the image");
    let net = SocketNet::with_config(cluster, cfg);
    let listener = net.listen(0, RENDER_PORT);
    let total_tiles = (params.image / params.tile) * (params.image / params.tile);

    // Controller: centralized task queue, one service process per worker.
    let controller = {
        let cluster = cluster.clone();
        let params = params.clone();
        let image = std::rc::Rc::new(std::cell::RefCell::new(vec![
            0u8;
            params.image * params.image
        ]));
        // Centralized task queue; failed workers' tiles are requeued.
        let tasks = std::rc::Rc::new(std::cell::RefCell::new(
            (0..total_tiles).rev().collect::<Vec<usize>>(),
        ));
        let done_tiles = std::rc::Rc::new(std::cell::Cell::new(0usize));
        let image_out = image.clone();
        let done_out = done_tiles.clone();
        let h = cluster.sim().clone().spawn(async move {
            let vm = cluster.vmmc(0);
            let mut service = Vec::new();
            for _ in 1..cluster.num_nodes() {
                let sock = listener.accept().await;
                let vm = vm.clone();
                let params = params.clone();
                let image = image.clone();
                let tasks = tasks.clone();
                let done_tiles = done_tiles.clone();
                service.push(cluster.sim().spawn(async move {
                    loop {
                        let mut req = [0u8; 1];
                        if sock.read(&mut req).await == 0 {
                            break; // worker gone between tasks
                        }
                        assert_eq!(req[0], REQ_TASK);
                        vm.cpu().run_handler(DISPATCH_COST).await;
                        let popped = { tasks.borrow_mut().pop() };
                        let t = match popped {
                            Some(t) => t,
                            None => {
                                sock.write(&[REPLY_DONE]).await;
                                // Await the worker's close.
                                let mut b = [0u8; 1];
                                let _ = sock.read(&mut b).await;
                                break;
                            }
                        };
                        let mut msg = vec![REPLY_TILE];
                        msg.extend_from_slice(&(t as u32).to_le_bytes());
                        sock.write(&msg).await;
                        // Result tile comes back as a block — unless the
                        // worker died, in which case the tile is requeued
                        // for someone else (fault tolerance).
                        match sock.read_block_opt().await {
                            Some(data) => {
                                let tile_id =
                                    u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
                                blit(&mut image.borrow_mut(), &params, tile_id, &data[4..]);
                                done_tiles.set(done_tiles.get() + 1);
                            }
                            None => {
                                tasks.borrow_mut().push(t);
                                break;
                            }
                        }
                    }
                }));
            }
            for s in service {
                s.await;
            }
        });
        (h, image_out, done_out)
    };

    // Workers.
    let mut handles = Vec::new();
    for w in 1..n {
        let net = net.clone();
        let params = params.clone();
        let cluster2 = cluster.clone();
        handles.push(cluster.sim().spawn(async move {
            let vm = cluster2.vmmc(w);
            let sock = net.connect_endpoints(w, 0, RENDER_PORT);
            let mut tiles_done = 0u64;
            loop {
                sock.write(&[REQ_TASK]).await;
                let mut hdr = [0u8; 1];
                sock.read_exact(&mut hdr).await;
                if hdr[0] == REPLY_DONE {
                    sock.shutdown().await;
                    break;
                }
                assert_eq!(hdr[0], REPLY_TILE);
                let mut id = [0u8; 4];
                sock.read_exact(&mut id).await;
                let tile_id = u32::from_le_bytes(id) as usize;
                if params.fail_worker == Some(w) && tiles_done >= 2 {
                    // Crash mid-task: take the tile and vanish.
                    sock.shutdown().await;
                    break;
                }
                let (pixels, samples) = render_tile(&params, tile_id);
                vm.compute_cycles(samples * SAMPLE_CYCLES).await;
                let mut reply = Vec::with_capacity(4 + pixels.len());
                reply.extend_from_slice(&(tile_id as u32).to_le_bytes());
                reply.extend_from_slice(&pixels);
                sock.write_block(&reply).await;
                tiles_done += 1;
            }
            tiles_done
        }));
    }
    let (_, _worker_tiles) = cluster.run_until_complete(handles);
    let (controller_handle, image, done_tiles) = controller;
    assert!(controller_handle.is_done(), "controller did not finish");
    let elapsed = cluster.sim().now();
    assert_eq!(done_tiles.get(), total_tiles, "tiles lost or duplicated");
    let img = image.borrow().clone();
    RunOutcome::collect(cluster, elapsed, digest(&img))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_core::DesignConfig;

    #[test]
    fn parallel_image_matches_sequential_reference() {
        let params = RenderParams::small();
        let reference = digest(&render_reference(&params));
        for nodes in [2, 4] {
            let cluster = Cluster::builder(nodes)
                .config(DesignConfig::default())
                .build();
            let out = run_render(&cluster, &params, SocketConfig::default());
            assert_eq!(out.checksum, reference, "image differs on {nodes} nodes");
            assert_eq!(out.notifications, 0, "render polls, never notifies");
        }
    }

    #[test]
    fn load_balancing_spreads_tiles() {
        let params = RenderParams::small();
        let cluster = Cluster::builder(4).config(DesignConfig::default()).build();
        let out = run_render(&cluster, &params, SocketConfig::default());
        assert!(out.messages > 0);
        // 16 tiles over 3 workers: everyone got at least one (dynamic
        // scheduling keeps all workers busy).
    }

    #[test]
    fn worker_failure_is_tolerated() {
        // One worker crashes mid-task; the controller reassigns its tile
        // and the image still matches the sequential reference exactly.
        let mut params = RenderParams::small();
        params.fail_worker = Some(2);
        let reference = digest(&render_reference(&params));
        let cluster = Cluster::builder(4).config(DesignConfig::default()).build();
        let out = run_render(&cluster, &params, SocketConfig::default());
        assert_eq!(out.checksum, reference, "image wrong after worker crash");
    }

    #[test]
    fn rays_hit_the_blobs() {
        let params = RenderParams::small();
        let img = render_reference(&params);
        let max = img.iter().copied().max().unwrap();
        let nonzero = img.iter().filter(|&&v| v > 0).count();
        assert!(max > 50, "image all dark");
        assert!(nonzero > img.len() / 8, "blobs not visible");
        assert!(nonzero < img.len(), "no dark background");
    }
}
