//! Shared application utilities: outcome summary, bulk-mechanism choice,
//! and a flag-based VMMC barrier (polling, no interrupts).

use shrimp_core::{Cluster, ProxyBuffer, Vmmc};
use shrimp_mem::{Vaddr, PAGE_SIZE};
use shrimp_sim::Time;

/// Which SHRIMP transfer mechanism an application version uses for bulk
/// data (the AU-vs-DU comparison of §4.2 / Figure 4 right).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Automatic update: stores through AU bindings.
    AutomaticUpdate,
    /// Deliberate update: explicit user-level DMA transfers.
    DeliberateUpdate,
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Mechanism::AutomaticUpdate => "AU",
            Mechanism::DeliberateUpdate => "DU",
        })
    }
}

/// Per-category SVM time breakdown summed over all nodes (Figure 4's
/// stacked-bar categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SvmBreakdown {
    /// Time blocked acquiring locks.
    pub lock: Time,
    /// Time in barriers.
    pub barrier: Time,
    /// Time in releases (diff scans/sends, AU fences).
    pub release: Time,
    /// Time in faults (traps, twins, remote fetches).
    pub fault: Time,
}

/// Summary of one application run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Simulated completion time of the application processes.
    pub elapsed: Time,
    /// Deterministic digest of the application's numerical output, used to
    /// cross-check AU/DU and protocol variants against each other.
    pub checksum: u64,
    /// Total VMMC messages sent (Table 3's "total messages").
    pub messages: u64,
    /// User-level notifications delivered (Table 3's "notifications").
    pub notifications: u64,
    /// SVM category breakdown (SVM applications only).
    pub svm: Option<SvmBreakdown>,
}

impl RunOutcome {
    /// Collects message counters from a cluster after a run.
    pub fn collect(cluster: &Cluster, elapsed: Time, checksum: u64) -> Self {
        RunOutcome {
            elapsed,
            checksum,
            messages: cluster.total(|s| s.messages_sent.get()),
            notifications: cluster.total(|s| s.notifications.get()),
            svm: None,
        }
    }

    /// Like [`RunOutcome::collect`], adding the SVM category breakdown.
    pub fn collect_svm(
        cluster: &Cluster,
        svm: &shrimp_svm::Svm,
        elapsed: Time,
        checksum: u64,
    ) -> Self {
        let mut breakdown = SvmBreakdown::default();
        for i in 0..cluster.num_nodes() {
            let s = svm.node(i).stats();
            breakdown.lock += s.lock_wait.get();
            breakdown.barrier += s.barrier_wait.get();
            breakdown.release += s.release_time.get();
            breakdown.fault += s.fault_time.get();
        }
        RunOutcome {
            svm: Some(breakdown),
            ..RunOutcome::collect(cluster, elapsed, checksum)
        }
    }
}

/// FNV-1a digest helper for output checksums.
pub fn digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A sense-reversing barrier built from raw VMMC primitives: arrivals are
/// deliberate-update writes into the master's flag array, releases are
/// writes into each node's release word, and everyone *polls* — zero
/// interrupts, the receive style of the paper's VMMC applications (§4.4).
pub struct VmmcBarrier {
    vm: Vmmc,
    me: usize,
    n: usize,
    epoch: std::cell::Cell<u32>,
    /// Local staging word for outgoing flag writes.
    staging: Vaddr,
    /// Master only: local arrival array (slot per node).
    arrivals: Vaddr,
    /// Master only: proxies to each node's release word.
    release_proxies: Vec<Option<ProxyBuffer>>,
    /// Non-master: proxy to the master's arrival array.
    arrival_proxy: Option<ProxyBuffer>,
    /// Local release word.
    release: Vaddr,
}

/// Builds a barrier group across all nodes of the cluster (master: node 0).
pub fn vmmc_barrier_group(cluster: &Cluster) -> Vec<VmmcBarrier> {
    let n = cluster.num_nodes();
    let vmmcs: Vec<Vmmc> = (0..n).map(|i| cluster.vmmc(i)).collect();
    // Master's arrival array.
    let arrivals = vmmcs[0].space().alloc(1);
    let arrivals_export = vmmcs[0].export(arrivals, PAGE_SIZE);
    // Each node's release word.
    let mut releases = Vec::with_capacity(n);
    let mut release_exports = Vec::with_capacity(n);
    for vm in &vmmcs {
        let r = vm.space().alloc(1);
        release_exports.push(vm.export(r, PAGE_SIZE));
        releases.push(r);
    }
    (0..n)
        .map(|me| VmmcBarrier {
            vm: vmmcs[me].clone(),
            me,
            n,
            epoch: std::cell::Cell::new(0),
            staging: vmmcs[me].space().alloc(1),
            arrivals,
            release_proxies: if me == 0 {
                (0..n)
                    .map(|i| {
                        if i == 0 {
                            None
                        } else {
                            Some(vmmcs[0].import(release_exports[i]))
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            },
            arrival_proxy: if me == 0 {
                None
            } else {
                Some(vmmcs[me].import(arrivals_export))
            },
            release: releases[me],
        })
        .collect()
}

impl VmmcBarrier {
    /// Enters the barrier; returns when all nodes have entered.
    pub async fn wait(&self) {
        let epoch = self.epoch.get() + 1;
        self.epoch.set(epoch);
        if self.me == 0 {
            // Wait for everyone's arrival flag, then release them.
            for i in 1..self.n {
                let slot = self.arrivals.add(i as u64 * 4);
                self.vm.poll_u32(slot, |v| v >= epoch).await;
            }
            for i in 1..self.n {
                self.vm
                    .space()
                    .write_raw(self.staging, &epoch.to_le_bytes());
                let proxy = self.release_proxies[i].as_ref().unwrap();
                self.vm.send(self.staging, proxy, 0, 4).await;
            }
        } else {
            self.vm
                .space()
                .write_raw(self.staging, &epoch.to_le_bytes());
            let proxy = self.arrival_proxy.as_ref().unwrap();
            self.vm.send(self.staging, proxy, self.me * 4, 4).await;
            self.vm.poll_u32(self.release, |v| v >= epoch).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_core::DesignConfig;
    use shrimp_sim::time;

    #[test]
    fn vmmc_barrier_synchronizes() {
        let cluster = Cluster::builder(4).config(DesignConfig::default()).build();
        let barriers = vmmc_barrier_group(&cluster);
        let mut handles = Vec::new();
        for (i, b) in barriers.into_iter().enumerate() {
            let vm = cluster.vmmc(i);
            handles.push(cluster.sim().spawn(async move {
                let mut exits = Vec::new();
                for round in 0..3u64 {
                    vm.compute(time::us(10 * (i as u64 + 1) * (round + 1)))
                        .await;
                    let before = vm.sim().now();
                    b.wait().await;
                    exits.push((before, vm.sim().now()));
                }
                exits
            }));
        }
        let (_t, out) = cluster.run_until_complete(handles);
        for round in 0..3 {
            let last_arrival = out.iter().map(|v| v[round].0).max().unwrap();
            for v in &out {
                assert!(v[round].1 >= last_arrival, "left barrier early");
            }
        }
    }

    #[test]
    fn barrier_uses_no_notifications() {
        let cluster = Cluster::builder(3).config(DesignConfig::default()).build();
        let barriers = vmmc_barrier_group(&cluster);
        let handles = barriers
            .into_iter()
            .map(|b| cluster.sim().spawn(async move { b.wait().await }))
            .collect();
        cluster.run_until_complete(handles);
        assert_eq!(cluster.total(|s| s.notifications.get()), 0);
        assert!(cluster.total(|s| s.messages_sent.get()) > 0);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        assert_eq!(digest(b"abc"), digest(b"abc"));
        assert_ne!(digest(b"abc"), digest(b"abd"));
    }
}
