//! A sharded, primary/backup-replicated key-value service running on the
//! full SHRIMP stack, driven by a deterministic open-loop load generator.
//!
//! # Shape
//!
//! The first `groups * replication` nodes are **servers**: `groups`
//! replication groups of `replication` contiguous nodes each, where the
//! lowest *live* rank of a group is its primary. The remaining nodes are
//! **clients**. Keys hash to groups; clients route each request to their
//! current view of the group's primary and fall back (`NOT_LEADER`
//! redirects plus timeout retries with target rotation) until they find
//! it. The primary assigns each write a monotone version, ships the log
//! entry to every live backup over the deliberate-update path, and
//! acknowledges the client only once all live backups have acknowledged
//! the entry — so an acked write survives any primary crash. Backups
//! batch their acknowledgements on a timer ([`KvParams::ack_flush`]).
//! Reads are served from the primary's *committed* store, which makes
//! them read-your-writes for every acknowledged request.
//!
//! # Load and measurement
//!
//! Each client draws keys from a [`ZipfSampler`] and request instants
//! from an [`OpenLoopArrivals`] process, both on per-entity RNG streams
//! (`rng_for_entity("kv" | "kv-load", seed, node)`), so the offered load
//! is open-loop: latency is measured from the *scheduled* arrival to the
//! acknowledgement, which keeps the tail honest when the service falls
//! behind (no coordinated omission). Latencies land in the
//! `(App, "kv_req_ps")` metrics histogram; failover times (promotion
//! instant minus the old primary's last heartbeat) land in
//! `(App, "kv_failover_ps")`. Sweep rows surface p50/p99/p999 and
//! saturation throughput from the merged [`LaunchOutcome::metrics`].
//!
//! # Failover
//!
//! Group peers gossip heartbeats ([`HeartbeatConfig`]) and run the
//! lease-plus-backoff failure detector of the chaos workload. A backup
//! whose lower ranks are all declared dead promotes itself: it marks its
//! applied log committed and re-ships it (the ordinary shipping pump,
//! restarted from index zero) to the surviving peers, which deduplicate
//! by origin. Retried writes deduplicate by `(client, request)` at every
//! replica, so a client retry of an already-replicated write returns the
//! original version instead of double-applying. After the load phase each
//! client re-reads every key it successfully wrote and checks the
//! returned version has not regressed — the "no acked write lost" bit of
//! its program result.
//!
//! # Invariance
//!
//! Every decision on every node is a pure function of its own per-entity
//! RNG streams, local sim-time timers, and the `(arrival, source)`-ordered
//! notification sequence, and all shared iteration uses ordered
//! containers — so node results, message counts, and the merged metrics
//! (histogram sums) are byte-identical at every shard count.
//!
//! Packet-fault scenarios (drop/corrupt/duplicate) require
//! `cfg.reliability` on: the workload's record framing asserts per-pair
//! delivery, which only the retransmission layer restores.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use shrimp_core::{
    Cluster, DesignConfig, HeartbeatConfig, LaunchOutcome, NodeId, NodeProgram, NodeStats,
    Notification, ProxyBuffer, Vmmc,
};
use shrimp_mem::{Vaddr, PAGE_SIZE};
use shrimp_sim::rng::{rng_for_entity, splitmix64, OpenLoopArrivals, ZipfSampler};
use shrimp_sim::shard::Shards;
use shrimp_sim::{time, Category, Queue, Time};

/// Fixed wire size of one protocol record: an eight-word header plus the
/// value payload, power-of-two so a ring of records never straddles a
/// page (one deliberate-update DMA, one notification, per record).
const REC: usize = 128;
/// Ring entries per (sender, receiver) pair; also the per-pair window cap
/// on unacknowledged in-flight records, which is what makes slot reuse
/// safe (entry `k + RING_W` is only sent after entry `k` was consumed).
const RING_W: u64 = 16;
/// Bytes of one sender's region in every receiver's ring buffer.
const REGION: usize = RING_W as usize * REC;
/// Maximum value payload carried by one record.
const VAL_MAX: usize = 64;
/// Bytes of one node's slot in the heartbeat control buffer:
/// `[counter: u64][done flag: u64]`, little-endian.
const CTRL_SLOT: usize = 16;

/// How long a client waits on an unanswered request before rotating its
/// primary hint and resending (retries are idempotent: replicas
/// deduplicate by `(client, request)`). Sized to the machine: a notified
/// record costs its receiver ~35 µs of interrupt + notification delivery,
/// so a request RTT under transient queueing is hundreds of microseconds.
const RETRY_TIMEOUT: Time = time::us(1000);
/// Scan period of the client retry task.
const RETRY_TICK: Time = time::us(200);

// Record kinds.
const K_PUT: u64 = 1;
const K_GET: u64 = 2;
const K_REPLY: u64 = 3;
const K_REP: u64 = 4;
const K_ACK: u64 = 5;
const K_DONE: u64 = 6;

/// `d`-word status of a reply: the receiver is not the group's primary.
const ST_NOT_LEADER: u64 = 1;

/// Workload shape for one replicated KV run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvParams {
    /// Total nodes: `groups * replication` servers, the rest clients.
    pub nodes: usize,
    /// Replication groups (shards of the keyspace).
    pub groups: usize,
    /// Replicas per group; the lowest live rank is the primary.
    pub replication: usize,
    /// Keyspace size; keys hash to groups.
    pub keys: usize,
    /// Load-phase requests issued per client (excluding verify reads).
    pub requests: u32,
    /// Percentage of load requests that are writes.
    pub write_pct: u8,
    /// Mean inter-arrival gap of each client's open-loop process.
    pub mean_gap: Time,
    /// Value bytes carried by each write (at most `VAL_MAX` = 64).
    pub payload: usize,
    /// Backup acknowledgement batching interval: applied-but-unacked log
    /// entries are acked at most once per this period.
    pub ack_flush: Time,
    /// Workload seed; all per-client streams derive from it.
    pub seed: u64,
}

impl KvParams {
    /// The default 16-node shape: two groups of three replicas plus ten
    /// clients, a 4096-key Zipf keyspace, 400 µs mean gap. A primary's
    /// per-request service cost is ~55 µs (a notified record costs its
    /// receiver ~35 µs, plus ship + reply sends), so five clients per
    /// group must stay above a 275 µs gap — tighter gaps starve the
    /// primary's own heartbeat task of CPU until its backups falsely
    /// declare it dead and split the group.
    pub fn smoke() -> Self {
        KvParams {
            nodes: 16,
            groups: 2,
            replication: 3,
            keys: 4096,
            requests: 40,
            write_pct: 50,
            mean_gap: time::us(400),
            payload: 32,
            ack_flush: time::us(50),
            seed: 1,
        }
    }

    /// The same per-client load on a different node count; extra nodes
    /// become clients (server count is `groups * replication`).
    pub fn scaled_to(self, nodes: usize) -> Self {
        KvParams { nodes, ..self }
    }

    /// Number of server (replica) nodes.
    pub fn servers(&self) -> usize {
        self.groups * self.replication
    }

    /// Number of client nodes.
    pub fn clients(&self) -> usize {
        self.nodes - self.servers()
    }

    /// The group a key belongs to (seeded hash partition).
    pub fn group_of_key(&self, key: u64) -> usize {
        let mut st = key
            .wrapping_add(self.seed)
            .wrapping_mul(0x6b76_6861_7368_2131);
        (splitmix64(&mut st) % self.groups as u64) as usize
    }

    /// Node id of a group member by rank.
    pub fn node_of(&self, group: usize, rank: usize) -> usize {
        group * self.replication + rank
    }

    /// The initial primary of a group (rank 0) — the node a chaos
    /// scenario crashes to exercise failover.
    pub fn primary_node(&self, group: usize) -> usize {
        self.node_of(group, 0)
    }

    fn validate(&self) {
        assert!(
            self.groups >= 1 && self.replication >= 1,
            "kv needs servers"
        );
        assert!(self.clients() >= 1, "kv needs at least one client");
        assert!(self.keys >= 1, "kv needs a non-empty keyspace");
        assert!(self.requests >= 1, "kv needs at least one request");
        assert!(self.payload <= VAL_MAX, "kv values cap at {VAL_MAX} bytes");
        assert!(
            self.mean_gap > 0 && self.ack_flush > 0,
            "kv timers must advance"
        );
    }
}

/// Runs the KV service on a sharded cluster with metrics enabled and
/// returns the merged, shard-count-invariant outcome (latency quantiles
/// live in [`LaunchOutcome::metrics`] under `(App, "kv_req_ps")`).
///
/// # Panics
///
/// Panics on degenerate shapes (no clients, no keys, zero timers) and on
/// launch failure.
pub fn run_kv(params: &KvParams, cfg: DesignConfig, shards: Shards) -> LaunchOutcome {
    params.validate();
    Cluster::builder(params.nodes)
        .config(cfg)
        .shards(shards)
        .metrics(true)
        .launch(kv_node_program(*params, kv_detector(params.replication)))
}

/// The failure-detector schedule for KV replicas, scaled to the machine:
/// a notified record costs its receiver ~35 µs (interrupt plus user-level
/// notification delivery), so a loaded primary's heartbeat task can lag
/// many service times behind. The lease tolerates that lag; the default
/// chaos-workload schedule ([`HeartbeatConfig::for_nodes`], 1 µs period)
/// would falsely declare a merely-busy primary dead and split the group.
pub fn kv_detector(replication: usize) -> HeartbeatConfig {
    let period = time::us(100);
    HeartbeatConfig {
        period,
        lease: 3 * period * replication.saturating_sub(1).max(1) as Time,
        backoff_base: time::us(100),
        backoff_cap: time::us(400),
        max_probes: 3,
    }
}

/// The per-node program of the KV service, reusable under a caller-built
/// [`ClusterBuilder`](shrimp_core::ClusterBuilder). Node ids below
/// [`KvParams::servers`] run replicas; the rest run load clients.
pub fn kv_node_program(p: KvParams, det: HeartbeatConfig) -> NodeProgram {
    Arc::new(move |vmmc: Vmmc| Box::pin(run_kv_node(vmmc, p, det)))
}

/// Sums client acks out of [`LaunchOutcome::node_results`] (clients pack
/// `(verify_failures << 32) | acked` — see [`run_kv`]'s module docs).
pub fn total_acked(p: &KvParams, out: &LaunchOutcome) -> u64 {
    out.node_results[p.servers()..]
        .iter()
        .map(|r| r & 0xffff_ffff)
        .sum()
}

/// Sums client verify failures (acked writes whose re-read regressed)
/// out of [`LaunchOutcome::node_results`].
pub fn total_verify_failures(p: &KvParams, out: &LaunchOutcome) -> u64 {
    out.node_results[p.servers()..]
        .iter()
        .map(|r| r >> 32)
        .sum()
}

/// One wire record. `a..d` are kind-specific:
///
/// | kind      | a            | b   | c       | d                      |
/// |-----------|--------------|-----|---------|------------------------|
/// | `PUT/GET` | request id   | key | —       | —                      |
/// | `REPLY`   | request id   | key | version | status                 |
/// | `REP`     | ship index   | key | version | origin `(client, req)` |
/// | `ACK`     | applied upto | —   | —       | —                      |
#[derive(Debug, Clone, Copy)]
struct Rec {
    kind: u64,
    src: u64,
    a: u64,
    b: u64,
    c: u64,
    d: u64,
    /// Per-(sender, receiver) sequence number; assigned by the sender
    /// task, asserted contiguous by the receiver, and the ring slot index
    /// modulo [`RING_W`].
    pair: u64,
    val: [u8; VAL_MAX],
}

impl Rec {
    fn new(kind: u64, src: usize) -> Rec {
        Rec {
            kind,
            src: src as u64,
            a: 0,
            b: 0,
            c: 0,
            d: 0,
            pair: 0,
            val: [0; VAL_MAX],
        }
    }

    fn encode(&self) -> [u8; REC] {
        let mut b = [0u8; REC];
        for (i, w) in [
            self.kind, self.src, self.a, self.b, self.c, self.d, self.pair, 0,
        ]
        .into_iter()
        .enumerate()
        {
            b[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        b[64..].copy_from_slice(&self.val);
        b
    }

    fn decode(b: &[u8; REC]) -> Rec {
        let w = |i: usize| u64::from_le_bytes(b[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        let mut val = [0u8; VAL_MAX];
        val.copy_from_slice(&b[64..]);
        Rec {
            kind: w(0),
            src: w(1),
            a: w(2),
            b: w(3),
            c: w(4),
            d: w(5),
            pair: w(6),
            val,
        }
    }
}

/// The deterministic value a client writes for its request `req_id`.
fn val_bytes(me: usize, req_id: u64, payload: usize) -> [u8; VAL_MAX] {
    let mut v = [0u8; VAL_MAX];
    let mut st = ((me as u64) << 32) ^ req_id ^ 0x6b76_7661_6c75_6573;
    for chunk in v[..payload].chunks_mut(8) {
        let w = splitmix64(&mut st).to_le_bytes();
        chunk.copy_from_slice(&w[..chunk.len()]);
    }
    v
}

/// Byte offset of sender `src`'s ring slot for pair-sequence `pair` in
/// every receiver's ring buffer.
fn slot_off(src: usize, pair: u64) -> usize {
    src * REGION + (pair % RING_W) as usize * REC
}

/// Everything the node's tasks share about the wire: the ring buffer, the
/// notification inbox, and the outbox draining into the single sender
/// task (which serializes pair-sequence assignment with DMA issue order).
struct Wire {
    recv: Vaddr,
    inbox: Queue<Notification>,
    outbox: Queue<(usize, Rec)>,
}

impl Wire {
    /// Receives and validates the next record. Returns `None` when the
    /// notification queue closes.
    async fn next(&self, vmmc: &Vmmc, expect: &mut [u64]) -> Option<Rec> {
        let note = self.inbox.recv().await?;
        assert_eq!(note.len, REC, "foreign write landed in the kv ring");
        let mut buf = [0u8; REC];
        vmmc.space()
            .read(self.recv.add(note.offset as u64), &mut buf);
        let rec = Rec::decode(&buf);
        let src = note.src.0;
        assert_eq!(rec.src as usize, src, "kv record forged its source");
        assert_eq!(
            rec.pair, expect[src],
            "kv pair sequence broke from node {src} (per-pair FIFO violated)"
        );
        expect[src] += 1;
        assert_eq!(
            note.offset,
            slot_off(src, rec.pair),
            "kv record landed off its ring slot"
        );
        Some(rec)
    }

    /// Ends the sender task once every queued record has been sent.
    fn shutdown(&self, me: usize) {
        self.outbox.send((usize::MAX, Rec::new(0, me)));
    }
}

async fn run_kv_node(vmmc: Vmmc, p: KvParams, det: HeartbeatConfig) -> u64 {
    let me = vmmc.node_id().0;
    let n = p.nodes;
    let sim = vmmc.sim().clone();

    // A node scheduled to crash aborts its subtasks at the onset (the
    // engine tombstones the program itself).
    let abort_at = vmmc
        .cluster()
        .fault_plane()
        .and_then(|plane| plane.crash_of(me))
        .map(|c| c.onset())
        .filter(|&t| t > sim.now())
        .unwrap_or(Time::MAX);

    // Allocation order is the node-map contract: every node performs the
    // identical sequence on a fresh address space, so peers compute each
    // other's physical pages from their own layout. Ring buffer first,
    // heartbeat control buffer second, then the two staging pages.
    let ring_len = n * REGION;
    let recv = vmmc.space().alloc(ring_len.div_ceil(PAGE_SIZE));
    let export = vmmc.export(recv, ring_len);
    let inbox = vmmc.enable_notifications(export);
    let ctrl_len = n * CTRL_SLOT;
    let ctrl = vmmc.space().alloc(ctrl_len.div_ceil(PAGE_SIZE));
    let _ = vmmc.export(ctrl, ctrl_len);
    let stage = vmmc.space().alloc(1);
    let hb_stage = vmmc.space().alloc(1);

    let ring_pages: Vec<u64> = (0..ring_len.div_ceil(PAGE_SIZE) as u64)
        .map(|i| vmmc.space().phys_page(recv.page() + i))
        .collect();
    let ctrl_pages: Vec<u64> = (0..ctrl_len.div_ceil(PAGE_SIZE) as u64)
        .map(|i| vmmc.space().phys_page(ctrl.page() + i))
        .collect();
    let ring_proxies: Vec<Option<ProxyBuffer>> = (0..n)
        .map(|peer| (peer != me).then(|| vmmc.import_remote(NodeId(peer), &ring_pages, ring_len)))
        .collect();
    let ctrl_proxies: Vec<Option<ProxyBuffer>> = (0..n)
        .map(|peer| (peer != me).then(|| vmmc.import_remote(NodeId(peer), &ctrl_pages, ctrl_len)))
        .collect();

    let wire = Rc::new(Wire {
        recv,
        inbox,
        outbox: Queue::new(),
    });

    // The sender task: the only issuer of ring DMA, so pair-sequence
    // assignment order *is* wire order (per-pair FIFO then preserves it
    // end to end).
    {
        let (vmmc, w) = (vmmc.clone(), Rc::clone(&wire));
        sim.spawn(async move {
            let mut sent = vec![0u64; n];
            while let Some((dst, mut rec)) = w.outbox.recv().await {
                // Past the crash onset the node's NIC is powered off and
                // its page tables are gone; stop issuing DMA.
                if dst >= n || vmmc.sim().now() >= abort_at {
                    break;
                }
                let Some(proxy) = ring_proxies[dst].as_ref() else {
                    continue;
                };
                rec.pair = sent[dst];
                sent[dst] += 1;
                vmmc.space().write_raw(stage, &rec.encode());
                vmmc.send_notify(stage, proxy, slot_off(me, rec.pair), REC)
                    .await;
            }
        });
    }

    if me < p.servers() {
        run_server(vmmc, p, det, wire, ctrl, hb_stage, ctrl_proxies, abort_at).await
    } else {
        run_client(vmmc, p, wire, abort_at).await
    }
}

/// What one replica's detector believes about one group peer.
#[derive(Default)]
struct PeerView {
    dead: Cell<bool>,
    done: Cell<bool>,
}

/// State shared between a replica's main loop, detector, and ack-flush.
struct SrvShared {
    halt: Cell<bool>,
    my_done: Cell<bool>,
    /// Set once every rank below this node's is declared dead.
    is_leader: Cell<bool>,
    /// Indexed by group rank (this node's own slot unused).
    peers: Vec<PeerView>,
    /// Replicated records processed, per sending rank — what the
    /// ack-flush task reports to the current primary.
    applied_from: Vec<Cell<u64>>,
}

#[allow(clippy::too_many_arguments)]
async fn run_server(
    vmmc: Vmmc,
    p: KvParams,
    det: HeartbeatConfig,
    wire: Rc<Wire>,
    ctrl: Vaddr,
    hb_stage: Vaddr,
    ctrl_proxies: Vec<Option<ProxyBuffer>>,
    abort_at: Time,
) -> u64 {
    let me = vmmc.node_id().0;
    let sim = vmmc.sim().clone();
    let r = p.replication;
    let group = me / r;
    let my_rank = me % r;
    let ctrl_proxies = Rc::new(ctrl_proxies);

    let shared = Rc::new(SrvShared {
        halt: Cell::new(false),
        my_done: Cell::new(false),
        is_leader: Cell::new(my_rank == 0),
        peers: (0..r).map(|_| PeerView::default()).collect(),
        applied_from: (0..r).map(|_| Cell::new(0)).collect(),
    });

    // Heartbeat sender: one group peer per period, round-robin, carrying
    // the counter and this node's done flag.
    if r > 1 {
        let (sim, vmmc, sh, proxies) = (
            sim.clone(),
            vmmc.clone(),
            Rc::clone(&shared),
            Rc::clone(&ctrl_proxies),
        );
        sim.clone().spawn(async move {
            let mut counter = 0u64;
            let mut target = (my_rank + 1) % r;
            loop {
                sim.sleep(det.period).await;
                if sim.now() >= abort_at {
                    break;
                }
                counter += 1;
                let halting = sh.halt.get();
                let mut bytes = [0u8; CTRL_SLOT];
                bytes[..8].copy_from_slice(&counter.to_le_bytes());
                bytes[8..].copy_from_slice(&u64::from(sh.my_done.get()).to_le_bytes());
                vmmc.space().write_raw(hb_stage, &bytes);
                if halting {
                    // Farewell round: a peer still settling must observe
                    // this node's done flag, or it waits out a false dead
                    // declaration before it can halt — so the last
                    // heartbeat broadcasts to every peer, then stops.
                    for q in 0..r {
                        if q == my_rank {
                            continue;
                        }
                        let peer = p.node_of(group, q);
                        if let Some(proxy) = ctrl_proxies_at(&proxies, peer) {
                            vmmc.send(hb_stage, proxy, me * CTRL_SLOT, CTRL_SLOT).await;
                        }
                    }
                    break;
                }
                let peer = p.node_of(group, target);
                if let Some(proxy) = ctrl_proxies_at(&proxies, peer) {
                    vmmc.send(hb_stage, proxy, me * CTRL_SLOT, CTRL_SLOT).await;
                }
                target = (target + 1) % r;
                if target == my_rank {
                    target = (target + 1) % r;
                }
            }
        });
    }

    // Failure detector over group peers: lease plus seeded-backoff probe
    // extensions, as in the chaos cluster workload. Declaring the last
    // live lower rank dead promotes this node; the failover time
    // (promotion minus the dead primary's last heartbeat) is recorded.
    if r > 1 {
        let (sim, vmmc, sh) = (sim.clone(), vmmc.clone(), Rc::clone(&shared));
        let stats = vmmc.stats();
        sim.clone().spawn(async move {
            let start = sim.now();
            let mut last_val = vec![0u64; r];
            let mut last_heard = vec![start; r];
            let mut deadline = vec![start + det.lease; r];
            let mut attempt = vec![0u32; r];
            loop {
                sim.sleep(det.period).await;
                let now = sim.now();
                if sh.halt.get() || now >= abort_at {
                    break;
                }
                for q in 0..r {
                    if q == my_rank {
                        continue;
                    }
                    let peer = p.node_of(group, q);
                    let mut b = [0u8; CTRL_SLOT];
                    vmmc.space()
                        .read(ctrl.add((peer * CTRL_SLOT) as u64), &mut b);
                    let hb = u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
                    let done = u64::from_le_bytes(b[8..].try_into().expect("8 bytes"));
                    let view = &sh.peers[q];
                    if hb != last_val[q] {
                        last_val[q] = hb;
                        last_heard[q] = now;
                        attempt[q] = 0;
                        deadline[q] = now + det.lease;
                        if done != 0 {
                            view.done.set(true);
                        }
                    } else if !view.dead.get() && now >= deadline[q] {
                        if attempt[q] >= det.max_probes {
                            view.dead.set(true);
                            let lat = now - last_heard[q];
                            NodeStats::add(&stats.detection_latency, lat);
                            sim.metrics()
                                .observe(Category::Core, "detection_latency_ps", lat);
                            let lower_all_dead = (0..my_rank).all(|lr| sh.peers[lr].dead.get());
                            if lower_all_dead && !sh.is_leader.get() {
                                sh.is_leader.set(true);
                                sim.metrics().observe(Category::App, "kv_failover_ps", lat);
                            }
                        } else {
                            deadline[q] = now
                                + shrimp_core::node_backoff(
                                    p.seed,
                                    p.node_of(group, q),
                                    attempt[q],
                                    det.backoff_base,
                                    det.backoff_cap,
                                );
                            attempt[q] += 1;
                        }
                    }
                }
            }
        });
    }

    // Ack-flush: batches replication acknowledgements to the current
    // primary, at most one ack record per flush period.
    if r > 1 {
        let (sim, sh, w) = (sim.clone(), Rc::clone(&shared), Rc::clone(&wire));
        sim.clone().spawn(async move {
            let mut last_acked = vec![0u64; r];
            loop {
                sim.sleep(p.ack_flush).await;
                if sh.halt.get() || sim.now() >= abort_at {
                    break;
                }
                let lead = (0..r)
                    .find(|&q| q == my_rank || !sh.peers[q].dead.get())
                    .unwrap_or(my_rank);
                if lead == my_rank {
                    continue; // this node is the primary; nothing to ack
                }
                let applied = sh.applied_from[lead].get();
                if applied > last_acked[lead] {
                    last_acked[lead] = applied;
                    let mut rec = Rec::new(K_ACK, me);
                    rec.a = applied;
                    w.outbox.send((p.node_of(group, lead), rec));
                }
            }
        });
    }

    // Replica state. The store holds *committed* data on the primary and
    // *applied* data on backups (which converge at promotion, when the
    // new primary marks its applied log committed).
    let mut store: BTreeMap<u64, (u64, [u8; VAL_MAX])> = BTreeMap::new();
    let mut log: Vec<(u64, u64, u64, [u8; VAL_MAX])> = Vec::new(); // (key, version, origin, val)
    let mut dedup: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // origin -> (log idx, version)
    let mut pending: VecDeque<(u64, usize, u64, u64, u64)> = VecDeque::new(); // (idx, client, req, key, ver)
    let mut shipped = vec![0u64; r];
    let mut acked = vec![0u64; r];
    let mut committed = 0usize;
    let mut i_lead = my_rank == 0;
    let mut done_clients: BTreeSet<usize> = BTreeSet::new();
    let mut expect = vec![0u64; p.nodes];

    while done_clients.len() < p.clients() {
        let Some(rec) = wire.next(&vmmc, &mut expect).await else {
            break;
        };
        // Promotion handoff: the detector flipped the flag; adopt the
        // applied log as the committed base. Shipping restarts from index
        // zero per peer (`shipped` was never advanced as a backup), which
        // re-ships the inherited log to survivors — they dedup by origin.
        if shared.is_leader.get() && !i_lead {
            i_lead = true;
            for (key, version, _, val) in &log[committed..] {
                store.insert(*key, (*version, *val));
            }
            committed = log.len();
        }
        let src = rec.src as usize;
        match rec.kind {
            K_PUT | K_GET if !i_lead => {
                let mut reply = Rec::new(K_REPLY, me);
                reply.a = rec.a;
                reply.b = rec.b;
                reply.d = ST_NOT_LEADER;
                wire.outbox.send((src, reply));
            }
            K_PUT => {
                let origin = ((src as u64) << 32) | rec.a;
                match dedup.get(&origin) {
                    Some(&(idx, version)) => {
                        if idx as usize <= committed {
                            let mut reply = Rec::new(K_REPLY, me);
                            reply.a = rec.a;
                            reply.b = rec.b;
                            reply.c = version;
                            wire.outbox.send((src, reply));
                        } else {
                            pending.push_back((idx, src, rec.a, rec.b, version));
                        }
                    }
                    None => {
                        let version = log.len() as u64 + 1;
                        log.push((rec.b, version, origin, rec.val));
                        dedup.insert(origin, (log.len() as u64, version));
                        pending.push_back((log.len() as u64, src, rec.a, rec.b, version));
                    }
                }
            }
            K_GET => {
                let mut reply = Rec::new(K_REPLY, me);
                reply.a = rec.a;
                reply.b = rec.b;
                if let Some((version, val)) = store.get(&rec.b) {
                    reply.c = *version;
                    reply.val = *val;
                }
                wire.outbox.send((src, reply));
            }
            K_REP => {
                let srank = src % r;
                assert_eq!(
                    rec.a,
                    shared.applied_from[srank].get() + 1,
                    "kv replication stream from rank {srank} skipped an entry"
                );
                shared.applied_from[srank].set(rec.a);
                let origin = rec.d;
                if !i_lead && !dedup.contains_key(&origin) {
                    log.push((rec.b, rec.c, origin, rec.val));
                    dedup.insert(origin, (log.len() as u64, rec.c));
                    let newer = store.get(&rec.b).is_none_or(|&(v, _)| rec.c > v);
                    if newer {
                        store.insert(rec.b, (rec.c, rec.val));
                    }
                }
            }
            K_ACK => {
                let srank = src % r;
                acked[srank] = acked[srank].max(rec.a);
            }
            K_DONE => {
                done_clients.insert(src);
            }
            _ => {}
        }
        if i_lead {
            // Ship the log tail to every live peer, window-capped.
            for q in 0..r {
                if q == my_rank || shared.peers[q].dead.get() {
                    continue;
                }
                while shipped[q] < log.len() as u64 && shipped[q] - acked[q] < RING_W {
                    let (key, version, origin, val) = log[shipped[q] as usize];
                    let mut rep = Rec::new(K_REP, me);
                    rep.a = shipped[q] + 1;
                    rep.b = key;
                    rep.c = version;
                    rep.d = origin;
                    rep.val = val;
                    wire.outbox.send((p.node_of(group, q), rep));
                    shipped[q] += 1;
                }
            }
            // Commit = every live backup acknowledged the prefix; with no
            // live backups the whole log commits.
            let target = (0..r)
                .filter(|&q| q != my_rank && !shared.peers[q].dead.get())
                .map(|q| acked[q])
                .min()
                .unwrap_or(log.len() as u64) as usize;
            if target > committed {
                for (key, version, _, val) in &log[committed..target] {
                    store.insert(*key, (*version, *val));
                }
                committed = target;
                let mut keep = VecDeque::new();
                for entry in pending.drain(..) {
                    let (idx, client, req, key, version) = entry;
                    if idx as usize <= committed {
                        let mut reply = Rec::new(K_REPLY, me);
                        reply.a = req;
                        reply.b = key;
                        reply.c = version;
                        wire.outbox.send((client, reply));
                    } else {
                        keep.push_back(entry);
                    }
                }
                pending = keep;
            }
        }
    }
    shared.my_done.set(true);

    // Settle: every group peer is done or declared dead (heartbeat done
    // flags ride the same detector samples).
    loop {
        let settled = (0..r)
            .filter(|&q| q != my_rank)
            .all(|q| shared.peers[q].done.get() || shared.peers[q].dead.get());
        if settled {
            break;
        }
        sim.sleep(det.period).await;
        if sim.now() >= abort_at {
            break;
        }
    }
    shared.halt.set(true);
    wire.shutdown(me);

    // Program result: a deterministic digest of the final store.
    let mut st = p.seed ^ ((me as u64) << 32) ^ 0x4b56_5354_4f52_4544;
    let mut h = 0u64;
    for (key, (version, val)) in &store {
        st ^= key ^ version.rotate_left(17);
        h = h.wrapping_add(splitmix64(&mut st));
        for &b in &val[..p.payload] {
            st ^= u64::from(b);
            h = h.wrapping_add(splitmix64(&mut st));
        }
    }
    h
}

fn ctrl_proxies_at(proxies: &[Option<ProxyBuffer>], peer: usize) -> Option<&ProxyBuffer> {
    proxies.get(peer).and_then(|p| p.as_ref())
}

/// Client phases: issue the load, then re-read every acked write.
#[derive(PartialEq)]
enum Phase {
    Load,
    Verify,
}

/// One in-flight client request.
struct OutReq {
    kind: u64,
    verify: bool,
    key: u64,
    scheduled_at: Time,
    last_sent: Time,
    target: usize,
    needs_send: bool,
    expect_version: u64,
    val: [u8; VAL_MAX],
}

/// Client state shared by the generator, retry, and reply tasks.
struct CliState {
    reqs: BTreeMap<u64, OutReq>,
    send_q: Vec<VecDeque<u64>>,
    inflight: BTreeSet<(usize, u64)>,
    outstanding: Vec<u64>,
    hint: Vec<usize>,
    acked_keys: BTreeMap<u64, u64>,
    next_id: u64,
    acked: u64,
    retries: u64,
    not_leader: u64,
    verify_failures: u64,
    gen_done: bool,
    phase: Phase,
}

/// Sends every queued request whose pair window has room. Purely
/// synchronous (the sender task does the DMA), so callers hold the state
/// borrow across the whole pump.
fn pump(s: &mut CliState, wire: &Wire, p: &KvParams, me: usize, now: Time) {
    for srv in 0..p.servers() {
        while s.outstanding[srv] < RING_W {
            let Some(&id) = s.send_q[srv].front() else {
                break;
            };
            s.send_q[srv].pop_front();
            let Some(req) = s.reqs.get_mut(&id) else {
                continue; // completed while queued
            };
            if req.target != srv || !req.needs_send {
                continue; // retargeted by a retry; stale queue entry
            }
            req.needs_send = false;
            req.last_sent = now;
            s.inflight.insert((srv, id));
            s.outstanding[srv] += 1;
            let mut rec = Rec::new(req.kind, me);
            rec.a = id;
            rec.b = req.key;
            rec.val = req.val;
            wire.outbox.send((srv, rec));
        }
    }
}

/// Retargets a request to the next rank of its key's group and queues it.
fn rotate(s: &mut CliState, p: &KvParams, id: u64, now: Time) {
    let Some(req) = s.reqs.get_mut(&id) else {
        return;
    };
    let g = p.group_of_key(req.key);
    let next = (req.target % p.replication + 1) % p.replication;
    s.hint[g] = next;
    req.target = p.node_of(g, next);
    req.needs_send = true;
    req.last_sent = now;
    let target = req.target;
    s.send_q[target].push_back(id);
}

async fn run_client(vmmc: Vmmc, p: KvParams, wire: Rc<Wire>, abort_at: Time) -> u64 {
    let me = vmmc.node_id().0;
    let sim = vmmc.sim().clone();
    let halt = Rc::new(Cell::new(false));

    let state = Rc::new(RefCell::new(CliState {
        reqs: BTreeMap::new(),
        send_q: (0..p.servers()).map(|_| VecDeque::new()).collect(),
        inflight: BTreeSet::new(),
        outstanding: vec![0; p.servers()],
        hint: vec![0; p.groups],
        acked_keys: BTreeMap::new(),
        next_id: 1,
        acked: 0,
        retries: 0,
        not_leader: 0,
        verify_failures: 0,
        gen_done: false,
        phase: Phase::Load,
    }));

    // Generator: the open-loop arrival process. `gen_done` is set *before*
    // the final request is queued, so the final completion (whichever
    // request it is) always observes it — the liveness hinge of the
    // reply loop's phase transition.
    {
        let (sim, sh, st, w) = (
            sim.clone(),
            Rc::clone(&halt),
            Rc::clone(&state),
            Rc::clone(&wire),
        );
        sim.clone().spawn(async move {
            let mut ops = rng_for_entity("kv", p.seed, me as u64);
            let mut load = rng_for_entity("kv-load", p.seed, me as u64);
            let zipf = ZipfSampler::new(p.keys);
            let mut arrivals = OpenLoopArrivals::new(p.mean_gap, 0);
            for i in 0..p.requests {
                let at = arrivals.next(&mut load);
                let now = sim.now();
                if at > now {
                    sim.sleep(at - now).await;
                }
                if sh.get() || sim.now() >= abort_at {
                    break;
                }
                let key = zipf.sample(&mut ops) as u64;
                let is_put = ops.gen_range(0..100u64) < u64::from(p.write_pct);
                let mut s = st.borrow_mut();
                if i + 1 == p.requests {
                    s.gen_done = true;
                }
                let id = s.next_id;
                s.next_id += 1;
                let g = p.group_of_key(key);
                let target = p.node_of(g, s.hint[g]);
                s.reqs.insert(
                    id,
                    OutReq {
                        kind: if is_put { K_PUT } else { K_GET },
                        verify: false,
                        key,
                        scheduled_at: at,
                        last_sent: sim.now(),
                        target,
                        needs_send: true,
                        expect_version: 0,
                        val: if is_put {
                            val_bytes(me, id, p.payload)
                        } else {
                            [0; VAL_MAX]
                        },
                    },
                );
                s.send_q[target].push_back(id);
                pump(&mut s, &w, &p, me, sim.now());
            }
            st.borrow_mut().gen_done = true;
        });
    }

    // Retry: rotates the target of any request silent past the timeout.
    // Retries are idempotent (server-side dedup), so a spurious timeout
    // under load costs bandwidth, never correctness.
    {
        let (sim, sh, st, w) = (
            sim.clone(),
            Rc::clone(&halt),
            Rc::clone(&state),
            Rc::clone(&wire),
        );
        sim.clone().spawn(async move {
            loop {
                sim.sleep(RETRY_TICK).await;
                if sh.get() || sim.now() >= abort_at {
                    break;
                }
                let now = sim.now();
                let mut s = st.borrow_mut();
                let stale: Vec<u64> = s
                    .reqs
                    .iter()
                    .filter(|(_, r)| now.saturating_sub(r.last_sent) >= RETRY_TIMEOUT)
                    .map(|(&id, _)| id)
                    .collect();
                for id in stale {
                    rotate(&mut s, &p, id, now);
                    s.retries += 1;
                }
                pump(&mut s, &w, &p, me, now);
            }
        });
    }

    // Reply loop: completes requests, measures open-loop latency, and
    // drives the load -> verify -> done phase machine.
    let mut expect = vec![0u64; p.nodes];
    loop {
        let Some(rec) = wire.next(&vmmc, &mut expect).await else {
            break;
        };
        assert_eq!(rec.kind, K_REPLY, "client received a non-reply record");
        let now = sim.now();
        let mut finished = false;
        {
            let mut s = state.borrow_mut();
            let srv = rec.src as usize;
            if s.inflight.remove(&(srv, rec.a)) {
                s.outstanding[srv] -= 1;
            }
            let info = s.reqs.get(&rec.a).map(|r| {
                (
                    r.needs_send,
                    r.verify,
                    r.kind,
                    r.scheduled_at,
                    r.expect_version,
                )
            });
            if let Some((needs_send, verify, kind, scheduled_at, expect_version)) = info {
                if rec.d == ST_NOT_LEADER {
                    if !needs_send {
                        s.not_leader += 1;
                        rotate(&mut s, &p, rec.a, now);
                    }
                } else {
                    if verify {
                        if rec.c < expect_version {
                            s.verify_failures += 1;
                        }
                    } else {
                        sim.metrics()
                            .observe(Category::App, "kv_req_ps", now - scheduled_at);
                        s.acked += 1;
                        if kind == K_PUT {
                            let slot = s.acked_keys.entry(rec.b).or_insert(0);
                            *slot = (*slot).max(rec.c);
                        }
                    }
                    s.reqs.remove(&rec.a);
                }
            }
            match s.phase {
                Phase::Load if s.gen_done && s.reqs.is_empty() => {
                    // Verify phase: re-read every key this client wrote
                    // and got acked; the version must not have regressed.
                    let keys: Vec<(u64, u64)> =
                        s.acked_keys.iter().map(|(&k, &v)| (k, v)).collect();
                    for (key, version) in keys {
                        let id = s.next_id;
                        s.next_id += 1;
                        let g = p.group_of_key(key);
                        let target = p.node_of(g, s.hint[g]);
                        s.reqs.insert(
                            id,
                            OutReq {
                                kind: K_GET,
                                verify: true,
                                key,
                                scheduled_at: now,
                                last_sent: now,
                                target,
                                needs_send: true,
                                expect_version: version,
                                val: [0; VAL_MAX],
                            },
                        );
                        s.send_q[target].push_back(id);
                    }
                    s.phase = Phase::Verify;
                    finished = s.reqs.is_empty();
                }
                Phase::Verify if s.reqs.is_empty() => finished = true,
                _ => {}
            }
            pump(&mut s, &wire, &p, me, now);
        }
        if finished {
            break;
        }
    }

    halt.set(true);
    let s = state.borrow();
    let m = sim.metrics();
    m.counter_add(Category::App, "kv_acked", s.acked);
    m.counter_add(Category::App, "kv_retries", s.retries);
    m.counter_add(Category::App, "kv_not_leader", s.not_leader);
    for srv in 0..p.servers() {
        wire.outbox.send((srv, Rec::new(K_DONE, me)));
    }
    wire.shutdown(me);
    (s.verify_failures << 32) | (s.acked & 0xffff_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_core::{FaultScenario, NodeCrash, Reliability};
    use shrimp_sim::metrics::MetricValue;

    fn small() -> KvParams {
        KvParams {
            nodes: 10,
            groups: 2,
            replication: 2,
            keys: 64,
            requests: 12,
            write_pct: 60,
            mean_gap: time::us(200),
            payload: 16,
            ack_flush: time::us(50),
            seed: 7,
        }
    }

    fn hist(out: &LaunchOutcome, name: &'static str) -> Option<(u64, u64, u64)> {
        match out.metrics.get(Category::App, name) {
            Some(MetricValue::Histogram(h)) => Some((h.count, h.quantile(0.5), h.quantile(0.99))),
            _ => None,
        }
    }

    fn fields(o: &LaunchOutcome) -> (Time, Vec<u64>, u64, u64, u64, u64) {
        (
            o.elapsed,
            o.node_results.clone(),
            o.messages,
            o.notifications,
            o.net_packets,
            o.net_bytes,
        )
    }

    #[test]
    fn kv_completes_with_no_losses_and_is_shard_invariant() {
        let p = small();
        let base = run_kv(&p, DesignConfig::as_built(), Shards::Fixed(1));
        assert_eq!(base.node_results.len(), p.nodes);
        assert_eq!(
            total_acked(&p, &base),
            u64::from(p.requests) * p.clients() as u64,
            "every load request must be acknowledged"
        );
        assert_eq!(total_verify_failures(&p, &base), 0, "acked write regressed");
        let (count, p50, p99) = hist(&base, "kv_req_ps").expect("latency histogram");
        assert_eq!(count, total_acked(&p, &base), "every ack must be measured");
        assert!(p50 > 0 && p99 >= p50, "latency quantiles degenerate");
        // No fault was injected, so a promotion here would mean the
        // detector falsely declared a busy (or cleanly finished) peer
        // dead — the load must stay under the primaries' service
        // capacity and shutdown must not read as death.
        assert_eq!(
            hist(&base, "kv_failover_ps"),
            None,
            "fault-free run observed a promotion"
        );
        for shards in [2, 5] {
            let out = run_kv(&p, DesignConfig::as_built(), Shards::Fixed(shards));
            assert_eq!(
                fields(&out),
                fields(&base),
                "kv diverged at {shards} shards"
            );
            assert_eq!(
                hist(&out, "kv_req_ps"),
                hist(&base, "kv_req_ps"),
                "kv latency metrics diverged at {shards} shards"
            );
        }
    }

    /// Log shipping rides the PR-3 reliability layer: with mesh packet
    /// drops and retransmission on, every request still completes, every
    /// acked write survives, and the run stays shard-invariant.
    #[test]
    fn kv_survives_packet_drops_under_reliability() {
        let p = small();
        let mut cfg = DesignConfig::as_built();
        // The ack timeout must sit well inside the detector lease: a
        // dropped heartbeat stalls its stop-and-wait sender for one
        // retransmit timeout, and that silence must not read as a death.
        cfg.reliability = Reliability {
            ack_timeout: time::us(100),
            backoff_cap: time::us(800),
            ..Reliability::on()
        };
        cfg.faults = FaultScenario {
            seed: 3,
            drop_pct: 5,
            ..Default::default()
        };
        let base = run_kv(&p, cfg.clone(), Shards::Fixed(1));
        assert!(
            base.retransmits > 0,
            "drops never exercised the retransmit path"
        );
        assert_eq!(
            total_acked(&p, &base),
            u64::from(p.requests) * p.clients() as u64,
            "requests lost despite reliable delivery"
        );
        assert_eq!(total_verify_failures(&p, &base), 0, "acked write regressed");
        let out = run_kv(&p, cfg, Shards::Fixed(2));
        assert_eq!(
            fields(&out),
            fields(&base),
            "kv drop run diverged at 2 shards"
        );
    }

    #[test]
    fn kv_different_seeds_differ() {
        let a = run_kv(&small(), DesignConfig::as_built(), Shards::Fixed(2));
        let b = run_kv(
            &KvParams { seed: 8, ..small() },
            DesignConfig::as_built(),
            Shards::Fixed(2),
        );
        assert_ne!(a.node_results, b.node_results);
    }

    /// The failover guarantee: crash the primary of group 0 mid-load; a
    /// backup promotes, clients re-route, and no acknowledged write is
    /// lost — at every shard count.
    #[test]
    fn kv_primary_crash_promotes_backup_and_loses_no_acked_write() {
        let p = KvParams {
            replication: 3,
            nodes: 12, // 6 servers, 6 clients
            requests: 30,
            ..small()
        };
        // Reliability stays off: an unreliable send to the dead board is
        // absorbed (the semantics a crashed receiver should have), while a
        // reliable send would stall its sender through the whole
        // retransmit budget before failing — client retries and log
        // re-shipping are the recovery mechanism here.
        let mut cfg = DesignConfig::as_built();
        cfg.faults = FaultScenario {
            crash: Some(NodeCrash {
                node: p.primary_node(0) as u8,
                at_us: 400,
                down_us: 0,
            }),
            ..Default::default()
        };
        let base = run_kv(&p, cfg.clone(), Shards::Fixed(1));
        assert_eq!(
            total_verify_failures(&p, &base),
            0,
            "acked write lost in failover"
        );
        assert_eq!(
            total_acked(&p, &base),
            u64::from(p.requests) * p.clients() as u64,
            "load did not complete through the failover"
        );
        let (fo_count, fo_p50, _) = hist(&base, "kv_failover_ps").expect("failover histogram");
        assert!(fo_count >= 1, "no backup recorded a promotion");
        assert!(fo_p50 > 0, "failover time must be positive");
        assert!(base.detection_latency_ps > 0, "crash went undetected");
        for shards in [2, 4] {
            let out = run_kv(&p, cfg.clone(), Shards::Fixed(shards));
            assert_eq!(
                fields(&out),
                fields(&base),
                "kv failover run diverged at {shards} shards"
            );
            assert_eq!(hist(&out, "kv_failover_ps"), hist(&base, "kv_failover_ps"));
        }
    }
}
