//! Parallel radix sort — the paper's Radix-VMMC (native VMMC API, AU and DU
//! versions) and Radix-SVM (SPLASH-2 kernel on shared virtual memory).
//!
//! The sort is a real LSD radix sort: each pass histograms the keys by the
//! current digit, computes global rank offsets, and permutes keys to their
//! destinations. The permutation's "highly scattered and irregular" write
//! pattern (§3) is what makes Radix the showcase for automatic update:
//!
//! * **Radix-VMMC (AU)** writes keys *directly into remote destination
//!   arrays through automatic-update mappings* — no gather, no scatter, no
//!   explicit messages for the data (§3, §4.2).
//! * **Radix-VMMC (DU)** gathers each destination's keys into one large
//!   message per pair and scatters at the receiver.
//! * **Radix-SVM** writes through shared memory; at page granularity the
//!   scattered writes induce heavy write-write false sharing, which is why
//!   AURC beats HLRC by the paper's largest margin (Figure 4).

use shrimp_core::{Cluster, ProxyBuffer, Vmmc};
use shrimp_mem::{Vaddr, PAGE_SIZE};
use shrimp_sim::rng::rng_for;
use shrimp_svm::{Protocol, RegionId, Svm, SvmConfig, SvmNode};

use crate::util::{digest, vmmc_barrier_group, Mechanism, RunOutcome, VmmcBarrier};

/// Problem parameters for the radix sorts.
#[derive(Debug, Clone)]
pub struct RadixParams {
    /// Total keys across all nodes (must divide evenly by the node count).
    pub total_keys: usize,
    /// Number of sort passes ("iters" in Table 1); keys carry
    /// `iters * radix_bits` significant bits.
    pub iters: usize,
    /// log2 of the radix (SPLASH-2 default: 1024 buckets).
    pub radix_bits: u32,
    /// Workload seed.
    pub seed: u64,
}

impl RadixParams {
    /// The paper's problem size: 2 M keys, 3 iterations, radix 1024.
    pub fn paper() -> Self {
        RadixParams {
            total_keys: 2 * 1024 * 1024,
            iters: 3,
            radix_bits: 10,
            seed: 1,
        }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        RadixParams {
            total_keys: 4096,
            iters: 2,
            radix_bits: 6,
            seed: 7,
        }
    }

    fn radix(&self) -> usize {
        1 << self.radix_bits
    }

    fn key_mask(&self) -> u32 {
        let bits = (self.radix_bits as usize * self.iters).min(31) as u32;
        (1u32 << bits) - 1
    }
}

// Cost model (60 MHz Pentium): cycles per key for each phase, calibrated so
// the sequential run of the paper size lands near Table 1's 10.9 s (VMMC)
// and 14.3 s (SVM, which adds shared-memory access checks).
const HIST_CYCLES_PER_KEY: u64 = 35;
const PERM_CYCLES_PER_KEY: u64 = 70;
const GATHER_CYCLES_PER_KEY: u64 = 45;
const SCATTER_CYCLES_PER_KEY: u64 = 75;
const SVM_EXTRA_CYCLES_PER_KEY: u64 = 35;
const OFFSET_CYCLES_PER_ENTRY: u64 = 4;
/// Charge compute in batches of this many keys to bound event counts.
const CHARGE_BATCH: usize = 512;

fn generate_keys(params: &RadixParams, node: usize, k: usize) -> Vec<u32> {
    let mut rng = rng_for("radix", params.seed.wrapping_add(node as u64));
    let mask = params.key_mask();
    (0..k).map(|_| rng.gen_u32() & mask).collect()
}

fn checksum_sorted(all: &[u32]) -> u64 {
    let mut bytes = Vec::with_capacity(all.len() * 4);
    for k in all {
        bytes.extend_from_slice(&k.to_le_bytes());
    }
    digest(&bytes)
}

fn page_round(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

// ---------------------------------------------------------------------------
// VMMC version
// ---------------------------------------------------------------------------

struct VmmcNodeCtx {
    vm: Vmmc,
    barrier: VmmcBarrier,
    me: usize,
    n: usize,
    params: RadixParams,
    mech: Mechanism,
    k: usize,
    // Local regions.
    dst_base: Vaddr,
    counter_base: Vaddr,
    hist_inbox: Option<Vaddr>, // node 0 only
    du_inbox: Option<Vaddr>,
    du_slot_bytes: usize,
    du_cap_pairs: usize,
    staging: Vaddr,
    // Remote handles.
    hist_proxy: Option<ProxyBuffer>,
    offsets_base: Vaddr,
    offsets_proxies: Vec<Option<ProxyBuffer>>, // node 0 only
    au_images: Vec<Option<Vaddr>>,
    au_counter_images: Vec<Option<Vaddr>>,
    du_inbox_proxies: Vec<Option<ProxyBuffer>>,
}

/// Runs Radix-VMMC on the cluster with the chosen bulk mechanism and
/// verifies the result is globally sorted. Returns the run summary.
///
/// # Panics
///
/// Panics if the keys do not divide evenly among nodes, or if the sort is
/// incorrect (a bug in the communication stack).
pub fn run_radix_vmmc(cluster: &Cluster, params: &RadixParams, mech: Mechanism) -> RunOutcome {
    let n = cluster.num_nodes();
    assert_eq!(params.total_keys % n, 0, "keys must divide by node count");
    let k = params.total_keys / n;
    let radix = params.radix();
    let vmmcs: Vec<Vmmc> = (0..n).map(|i| cluster.vmmc(i)).collect();
    let barriers = vmmc_barrier_group(cluster);

    // Exports.
    let seg_bytes = page_round(k * 4);
    let hist_slot = page_round(radix * 4 + 8);
    let offs_bytes = page_round(n * radix * 4 + 8);
    let du_cap_pairs = 2 * k / n + 128;
    let du_slot_bytes = page_round(16 + du_cap_pairs * 8 + 8);

    let mut dst_bases = Vec::new();
    let mut dst_exports = Vec::new();
    let mut counter_bases = Vec::new();
    let mut counter_exports = Vec::new();
    let mut offsets_bases = Vec::new();
    let mut offsets_exports = Vec::new();
    let mut du_inboxes = Vec::new();
    let mut du_inbox_exports = Vec::new();
    for vm in &vmmcs {
        let dst = vm.space().alloc(seg_bytes / PAGE_SIZE);
        dst_exports.push(vm.export(dst, seg_bytes));
        dst_bases.push(dst);
        let c = vm.space().alloc(1);
        counter_exports.push(vm.export(c, PAGE_SIZE));
        counter_bases.push(c);
        let o = vm.space().alloc(offs_bytes / PAGE_SIZE);
        offsets_exports.push(vm.export(o, offs_bytes));
        offsets_bases.push(o);
        if mech == Mechanism::DeliberateUpdate {
            let inbox = vm.space().alloc(n * du_slot_bytes / PAGE_SIZE);
            du_inbox_exports.push(Some(vm.export(inbox, n * du_slot_bytes)));
            du_inboxes.push(Some(inbox));
        } else {
            du_inbox_exports.push(None);
            du_inboxes.push(None);
        }
    }
    let hist_inbox = vmmcs[0].space().alloc(n * hist_slot / PAGE_SIZE);
    let hist_export = vmmcs[0].export(hist_inbox, n * hist_slot);

    let mut handles = Vec::new();
    for (me, barrier) in barriers.into_iter().enumerate() {
        let vm = vmmcs[me].clone();
        let mut au_images = vec![None; n];
        let mut au_counter_images = vec![None; n];
        let mut du_inbox_proxies = vec![None; n];
        for dest in 0..n {
            if dest == me {
                continue;
            }
            match mech {
                Mechanism::AutomaticUpdate => {
                    let proxy = vm.import(dst_exports[dest]);
                    let img = vm.space().alloc(seg_bytes / PAGE_SIZE);
                    vm.bind(img, &proxy, 0, seg_bytes, true, false);
                    au_images[dest] = Some(img);
                    let cproxy = vm.import(counter_exports[dest]);
                    let cimg = vm.space().alloc(1);
                    vm.bind(cimg, &cproxy, 0, PAGE_SIZE, false, false);
                    au_counter_images[dest] = Some(cimg);
                }
                Mechanism::DeliberateUpdate => {
                    du_inbox_proxies[dest] = Some(vm.import(du_inbox_exports[dest].unwrap()));
                }
            }
        }
        let ctx = VmmcNodeCtx {
            barrier,
            me,
            n,
            params: params.clone(),
            mech,
            k,
            dst_base: dst_bases[me],
            counter_base: counter_bases[me],
            hist_inbox: if me == 0 { Some(hist_inbox) } else { None },
            du_inbox: du_inboxes[me],
            du_slot_bytes,
            du_cap_pairs,
            staging: vm
                .space()
                .alloc(page_round((n * radix * 4 + 8).max(du_slot_bytes)) / PAGE_SIZE),
            hist_proxy: if me == 0 {
                None
            } else {
                Some(vm.import(hist_export))
            },
            offsets_base: offsets_bases[me],
            offsets_proxies: if me == 0 {
                (0..n)
                    .map(|i| {
                        if i == 0 {
                            None
                        } else {
                            Some(vm.import(offsets_exports[i]))
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            },
            au_images,
            au_counter_images,
            du_inbox_proxies,
            vm,
        };
        handles.push(cluster.sim().spawn(radix_vmmc_node(ctx)));
    }
    let (elapsed, _) = cluster.run_until_complete(handles);

    // Verification: assemble the final array and check it.
    let mut all = Vec::with_capacity(params.total_keys);
    for (me, vm) in vmmcs.iter().enumerate() {
        let mut seg = vec![0u8; k * 4];
        vm.space().read(dst_bases[me], &mut seg);
        for c in seg.chunks_exact(4) {
            all.push(u32::from_le_bytes(c.try_into().unwrap()));
        }
    }
    assert!(
        all.windows(2).all(|w| w[0] <= w[1]),
        "radix output not sorted"
    );
    let mut expected: Vec<u32> = (0..n).flat_map(|i| generate_keys(params, i, k)).collect();
    expected.sort_unstable();
    assert_eq!(all, expected, "radix output is not a permutation of input");
    RunOutcome::collect(cluster, elapsed, checksum_sorted(&all))
}

async fn radix_vmmc_node(ctx: VmmcNodeCtx) {
    let radix = ctx.params.radix();
    let bits = ctx.params.radix_bits;
    let k = ctx.k;
    let n = ctx.n;
    let vm = &ctx.vm;
    let mut src = generate_keys(&ctx.params, ctx.me, k);

    for pass in 0..ctx.params.iters {
        let epoch = pass as u32 + 1;
        let shift = bits * pass as u32;
        let mask = (radix - 1) as u32;
        ctx.barrier.wait().await;

        // Phase 1: local histogram (real counts + charged cycles).
        let mut hist = vec![0u32; radix];
        for key in &src {
            hist[((key >> shift) & mask) as usize] += 1;
        }
        vm.compute_cycles(k as u64 * HIST_CYCLES_PER_KEY).await;

        // Phase 2: histograms to node 0; offsets table back.
        let mut hist_bytes = Vec::with_capacity(radix * 4 + 8);
        for h in &hist {
            hist_bytes.extend_from_slice(&h.to_le_bytes());
        }
        hist_bytes.extend_from_slice(&(epoch as u64).to_le_bytes());
        if ctx.me == 0 {
            vm.space().write_raw(ctx.hist_inbox.unwrap(), &hist_bytes);
        } else {
            vm.space().write_raw(ctx.staging, &hist_bytes);
            let slot = ctx.me * page_round(radix * 4 + 8);
            vm.send(
                ctx.staging,
                ctx.hist_proxy.as_ref().unwrap(),
                slot,
                hist_bytes.len(),
            )
            .await;
        }
        if ctx.me == 0 {
            // Gather all histograms, compute per-node digit offsets.
            let inbox = ctx.hist_inbox.unwrap();
            let slot_bytes = page_round(radix * 4 + 8);
            let mut hists = vec![vec![0u32; radix]; n];
            for node in 0..n {
                let slot = inbox.add((node * slot_bytes) as u64);
                vm.poll_u64(slot.add(radix as u64 * 4), |v| v >= epoch as u64)
                    .await;
                let mut b = vec![0u8; radix * 4];
                vm.read(slot, &mut b);
                for (d, c) in b.chunks_exact(4).enumerate() {
                    hists[node][d] = u32::from_le_bytes(c.try_into().unwrap());
                }
            }
            // offs[node][digit] = digit base + sum of earlier nodes' counts.
            let mut offs = vec![0u32; n * radix];
            let mut base = 0u32;
            for d in 0..radix {
                let mut cum = base;
                for (node, h) in hists.iter().enumerate() {
                    offs[node * radix + d] = cum;
                    cum += h[d];
                }
                base = cum;
            }
            vm.compute_cycles((n * radix) as u64 * OFFSET_CYCLES_PER_ENTRY)
                .await;
            let mut table = Vec::with_capacity(n * radix * 4 + 8);
            for o in &offs {
                table.extend_from_slice(&o.to_le_bytes());
            }
            table.extend_from_slice(&(epoch as u64).to_le_bytes());
            vm.space().write_raw(ctx.offsets_base, &table);
            for dest in 1..n {
                vm.space().write_raw(ctx.staging, &table);
                vm.send(
                    ctx.staging,
                    ctx.offsets_proxies[dest].as_ref().unwrap(),
                    0,
                    table.len(),
                )
                .await;
            }
        }
        // Everyone: wait for the offsets table.
        vm.poll_u64(ctx.offsets_base.add((n * radix) as u64 * 4), |v| {
            v >= epoch as u64
        })
        .await;
        let mut offs = vec![0u32; radix];
        {
            let mut b = vec![0u8; radix * 4];
            vm.read(ctx.offsets_base.add((ctx.me * radix) as u64 * 4), &mut b);
            for (d, c) in b.chunks_exact(4).enumerate() {
                offs[d] = u32::from_le_bytes(c.try_into().unwrap());
            }
        }

        // Phase 3: permutation.
        match ctx.mech {
            Mechanism::AutomaticUpdate => {
                let mut since_charge = 0usize;
                for key in &src {
                    let d = ((key >> shift) & mask) as usize;
                    let g = offs[d] as usize;
                    offs[d] += 1;
                    let dest = g / k;
                    let off = ((g % k) * 4) as u64;
                    if dest == ctx.me {
                        vm.space()
                            .write_raw(ctx.dst_base.add(off), &key.to_le_bytes());
                    } else {
                        // The automatic-update write: local store propagates
                        // to the remote destination array as a side effect.
                        vm.store_u32(ctx.au_images[dest].as_ref().unwrap().add(off), *key)
                            .await;
                    }
                    since_charge += 1;
                    if since_charge == CHARGE_BATCH {
                        vm.compute_cycles(CHARGE_BATCH as u64 * PERM_CYCLES_PER_KEY)
                            .await;
                        since_charge = 0;
                    }
                }
                vm.compute_cycles(since_charge as u64 * PERM_CYCLES_PER_KEY)
                    .await;
                vm.flush_au();
                // AU completion: the counter word travels the ordered AU
                // stream behind the data.
                for dest in 0..n {
                    if dest == ctx.me {
                        continue;
                    }
                    let cimg = ctx.au_counter_images[dest].as_ref().unwrap();
                    vm.store_u32(cimg.add(ctx.me as u64 * 4), epoch).await;
                    vm.flush_au();
                }
                for sender in 0..n {
                    if sender == ctx.me {
                        continue;
                    }
                    vm.poll_u32(ctx.counter_base.add(sender as u64 * 4), |v| v >= epoch)
                        .await;
                }
            }
            Mechanism::DeliberateUpdate => {
                // Gather pairs per destination.
                let mut gather: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
                for key in &src {
                    let d = ((key >> shift) & mask) as usize;
                    let g = offs[d] as usize;
                    offs[d] += 1;
                    gather[g / k].push(((g % k) as u32, *key));
                }
                // Gather copies are only needed for keys leaving the node;
                // own keys are written in place.
                let remote_keys = (k - gather[ctx.me].len()) as u64;
                vm.compute_cycles(
                    k as u64 * PERM_CYCLES_PER_KEY + remote_keys * GATHER_CYCLES_PER_KEY,
                )
                .await;
                for (off, key) in &gather[ctx.me] {
                    vm.space()
                        .write_raw(ctx.dst_base.add(*off as u64 * 4), &key.to_le_bytes());
                }
                // One large message (pairs) + completion flag per peer.
                for dest in 0..n {
                    if dest == ctx.me {
                        continue;
                    }
                    let pairs = &gather[dest];
                    assert!(
                        pairs.len() <= ctx.du_cap_pairs,
                        "radix skew overflowed the DU inbox slot"
                    );
                    let mut msg = Vec::with_capacity(16 + pairs.len() * 8);
                    msg.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
                    msg.extend_from_slice(&[0u8; 4]);
                    for (off, key) in pairs {
                        msg.extend_from_slice(&off.to_le_bytes());
                        msg.extend_from_slice(&key.to_le_bytes());
                    }
                    vm.space().write_raw(ctx.staging, &msg);
                    let proxy = ctx.du_inbox_proxies[dest].as_ref().unwrap();
                    let slot = ctx.me * ctx.du_slot_bytes;
                    vm.send(ctx.staging, proxy, slot, msg.len()).await;
                    // Completion flag at the slot end (arrives after the
                    // data: deliberate-update packets stay ordered).
                    vm.space()
                        .write_raw(ctx.staging, &(epoch as u64).to_le_bytes());
                    vm.send(ctx.staging, proxy, slot + ctx.du_slot_bytes - 8, 8)
                        .await;
                }
                // Receive + scatter.
                let inbox = ctx.du_inbox.unwrap();
                for sender in 0..n {
                    if sender == ctx.me {
                        continue;
                    }
                    let slot = inbox.add((sender * ctx.du_slot_bytes) as u64);
                    vm.poll_u64(slot.add(ctx.du_slot_bytes as u64 - 8), |v| {
                        v >= epoch as u64
                    })
                    .await;
                    let count = vm.read_u32(slot) as usize;
                    let mut pairs = vec![0u8; count * 8];
                    vm.read(slot.add(8), &mut pairs);
                    vm.local_copy(count * 8).await;
                    for p in pairs.chunks_exact(8) {
                        let off = u32::from_le_bytes(p[0..4].try_into().unwrap());
                        let key = u32::from_le_bytes(p[4..8].try_into().unwrap());
                        vm.space()
                            .write_raw(ctx.dst_base.add(off as u64 * 4), &key.to_le_bytes());
                    }
                    vm.compute_cycles(count as u64 * SCATTER_CYCLES_PER_KEY)
                        .await;
                }
            }
        }
        ctx.barrier.wait().await;

        // Next pass sorts the destination segment this node now owns.
        if pass + 1 < ctx.params.iters {
            let mut seg = vec![0u8; k * 4];
            vm.read(ctx.dst_base, &mut seg);
            vm.local_copy(k * 4).await;
            for (i, c) in seg.chunks_exact(4).enumerate() {
                src[i] = u32::from_le_bytes(c.try_into().unwrap());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SVM version
// ---------------------------------------------------------------------------

/// Runs Radix-SVM under the given protocol; verifies the sort and returns
/// the run summary. The returned checksum equals [`run_radix_vmmc`]'s for
/// the same parameters (same keys, same sort).
pub fn run_radix_svm(cluster: &Cluster, protocol: Protocol, params: &RadixParams) -> RunOutcome {
    let n = cluster.num_nodes();
    assert_eq!(params.total_keys % n, 0, "keys must divide by node count");
    let k = params.total_keys / n;
    let radix = params.radix();
    let svm = Svm::create(cluster, SvmConfig::new(protocol));

    let seg_pages = page_round(k * 4) / PAGE_SIZE;
    let home_of_seg = move |p: usize| (p / seg_pages).min(n - 1);
    let array_a = svm.create_region(page_round(k * 4) * n, home_of_seg);
    let array_b = svm.create_region(page_round(k * 4) * n, home_of_seg);
    // One histogram page per node, homed there.
    assert!(radix * 4 <= PAGE_SIZE, "histogram must fit one page");
    let hist_region = svm.create_region(n * PAGE_SIZE, |p| p);

    // Initialize the source keys at their homes.
    for node in 0..n {
        let keys = generate_keys(params, node, k);
        let mut bytes = Vec::with_capacity(k * 4);
        for key in &keys {
            bytes.extend_from_slice(&key.to_le_bytes());
        }
        svm.init_write(array_a, node * page_round(k * 4), &bytes);
    }

    let mut handles = Vec::new();
    for me in 0..n {
        let node = svm.node(me);
        let params = params.clone();
        handles.push(cluster.sim().spawn(radix_svm_node(
            node,
            me,
            n,
            k,
            params,
            array_a,
            array_b,
            hist_region,
        )));
    }
    let (elapsed, _) = cluster.run_until_complete(handles);

    // Verify from the home copies.
    let final_region = if params.iters % 2 == 1 {
        array_b
    } else {
        array_a
    };
    let mut all = Vec::with_capacity(params.total_keys);
    for node in 0..n {
        let mut seg = vec![0u8; k * 4];
        svm.home_read(final_region, node * page_round(k * 4), &mut seg);
        for c in seg.chunks_exact(4) {
            all.push(u32::from_le_bytes(c.try_into().unwrap()));
        }
    }
    assert!(
        all.windows(2).all(|w| w[0] <= w[1]),
        "radix output not sorted"
    );
    let mut expected: Vec<u32> = (0..n).flat_map(|i| generate_keys(params, i, k)).collect();
    expected.sort_unstable();
    assert_eq!(all, expected, "radix output is not a permutation of input");
    RunOutcome::collect_svm(cluster, &svm, elapsed, checksum_sorted(&all))
}

#[allow(clippy::too_many_arguments)]
async fn radix_svm_node(
    node: SvmNode,
    me: usize,
    n: usize,
    k: usize,
    params: RadixParams,
    array_a: RegionId,
    array_b: RegionId,
    hist_region: RegionId,
) {
    let radix = params.radix();
    let bits = params.radix_bits;
    let mask = (radix - 1) as u32;
    let seg_bytes = page_round(k * 4);
    let vm = node.vmmc().clone();

    for pass in 0..params.iters {
        let (src_r, dst_r) = if pass % 2 == 0 {
            (array_a, array_b)
        } else {
            (array_b, array_a)
        };
        let shift = bits * pass as u32;
        node.barrier().await;

        // Read own source segment (home-local after the first pass).
        let mut seg = vec![0u8; k * 4];
        node.read_bytes(src_r, me * seg_bytes, &mut seg).await;
        let src: Vec<u32> = seg
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();

        // Histogram, written to this node's page of the shared hist region.
        let mut hist = vec![0u32; radix];
        for key in &src {
            hist[((key >> shift) & mask) as usize] += 1;
        }
        vm.compute_cycles(k as u64 * (HIST_CYCLES_PER_KEY + SVM_EXTRA_CYCLES_PER_KEY / 2))
            .await;
        let mut hist_bytes = Vec::with_capacity(radix * 4);
        for h in &hist {
            hist_bytes.extend_from_slice(&h.to_le_bytes());
        }
        node.write_bytes(hist_region, me * PAGE_SIZE, &hist_bytes)
            .await;
        node.barrier().await;

        // Read everyone's histogram, compute own rank offsets.
        let mut offs = vec![0u32; radix];
        {
            let mut hists = vec![vec![0u32; radix]; n];
            for peer in 0..n {
                let mut b = vec![0u8; radix * 4];
                node.read_bytes(hist_region, peer * PAGE_SIZE, &mut b).await;
                for (d, c) in b.chunks_exact(4).enumerate() {
                    hists[peer][d] = u32::from_le_bytes(c.try_into().unwrap());
                }
            }
            let mut base = 0u32;
            for d in 0..radix {
                let mut cum = base;
                for (peer, h) in hists.iter().enumerate() {
                    if peer == me {
                        offs[d] = cum;
                    }
                    cum += h[d];
                }
                base = cum;
            }
            vm.compute_cycles((n * radix) as u64 * OFFSET_CYCLES_PER_ENTRY)
                .await;
        }
        node.barrier().await;

        // Permutation: scattered writes through shared memory — the
        // page-granularity false-sharing storm of §3.
        let mut since_charge = 0usize;
        for key in &src {
            let d = ((key >> shift) & mask) as usize;
            let g = offs[d] as usize;
            offs[d] += 1;
            let dest_node = g / k;
            let off = dest_node * seg_bytes + (g % k) * 4;
            node.write_u32(dst_r, off, *key).await;
            since_charge += 1;
            if since_charge == CHARGE_BATCH {
                vm.compute_cycles(
                    CHARGE_BATCH as u64 * (PERM_CYCLES_PER_KEY + SVM_EXTRA_CYCLES_PER_KEY),
                )
                .await;
                since_charge = 0;
            }
        }
        vm.compute_cycles(since_charge as u64 * (PERM_CYCLES_PER_KEY + SVM_EXTRA_CYCLES_PER_KEY))
            .await;
        node.barrier().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_core::DesignConfig;

    #[test]
    fn vmmc_au_sorts_on_four_nodes() {
        let cluster = Cluster::builder(4).config(DesignConfig::default()).build();
        let out = run_radix_vmmc(&cluster, &RadixParams::small(), Mechanism::AutomaticUpdate);
        assert!(out.elapsed > 0);
        assert_eq!(out.notifications, 0, "VMMC radix polls, never notifies");
    }

    #[test]
    fn vmmc_du_sorts_and_matches_au_checksum() {
        let params = RadixParams::small();
        let au = {
            let cluster = Cluster::builder(4).config(DesignConfig::default()).build();
            run_radix_vmmc(&cluster, &params, Mechanism::AutomaticUpdate)
        };
        let du = {
            let cluster = Cluster::builder(4).config(DesignConfig::default()).build();
            run_radix_vmmc(&cluster, &params, Mechanism::DeliberateUpdate)
        };
        assert_eq!(au.checksum, du.checksum, "AU and DU sorted different data");
    }

    #[test]
    fn svm_sorts_under_all_protocols_and_matches_vmmc() {
        let params = RadixParams::small();
        let reference = {
            let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
            run_radix_vmmc(&cluster, &params, Mechanism::DeliberateUpdate)
        };
        for protocol in [Protocol::Hlrc, Protocol::HlrcAu, Protocol::Aurc] {
            let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
            let out = run_radix_svm(&cluster, protocol, &params);
            assert_eq!(
                out.checksum, reference.checksum,
                "protocol {protocol} sorted different data"
            );
            assert!(out.notifications > 0, "SVM must use notifications");
        }
    }

    #[test]
    fn single_node_runs_give_sequential_baseline() {
        let cluster = Cluster::builder(1).config(DesignConfig::default()).build();
        let out = run_radix_vmmc(&cluster, &RadixParams::small(), Mechanism::DeliberateUpdate);
        assert_eq!(out.messages, 0, "sequential run must not communicate");
        assert!(out.elapsed > 0);
    }
}
