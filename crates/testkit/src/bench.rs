//! A tiny statistics-reporting benchmark harness (the workspace's
//! criterion replacement).
//!
//! Bench targets are plain `harness = false` binaries: build a
//! [`Harness`], register closures with [`Harness::bench`], and call
//! [`Harness::finish`]. Each benchmark runs a configurable warmup followed
//! by timed iterations; the harness reports min/median/p95/max wall-clock
//! nanoseconds as a table and writes the same numbers as JSON into the
//! repository's `results/` directory (next to the captured experiment
//! tables), so runs can be diffed and tracked by machines as well as
//! humans.
//!
//! Knobs come from a [`HarnessConfig`](crate::HarnessConfig) — explicit
//! via [`Harness::with_config`], or the process-wide config (and its
//! `SHRIMP_BENCH_ITERS` / `SHRIMP_BENCH_WARMUP` / `SHRIMP_BENCH_DIR` /
//! `SHRIMP_BENCH_JSON=0` env shim) via [`Harness::new`].

use std::path::PathBuf;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] for keeping benchmark results
/// alive past the optimizer.
pub use std::hint::black_box;

/// Summary statistics of one benchmark, in nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Benchmark name.
    pub name: String,
    /// Number of timed iterations.
    pub iters: u32,
    /// Fastest sample.
    pub min_ns: u128,
    /// Median sample (mean of the middle two for even counts).
    pub median_ns: u128,
    /// 95th-percentile sample (nearest-rank).
    pub p95_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Arithmetic mean.
    pub mean_ns: u128,
}

/// Computes summary statistics over raw samples.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn summarize(name: &str, samples: &[u128]) -> Summary {
    assert!(!samples.is_empty(), "summarize on no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    };
    // Nearest-rank p95: smallest sample with at least 95 % of the mass at
    // or below it.
    let rank = (n * 95).div_ceil(100).max(1);
    Summary {
        name: name.to_string(),
        iters: n as u32,
        min_ns: sorted[0],
        median_ns: median,
        p95_ns: sorted[rank - 1],
        max_ns: sorted[n - 1],
        mean_ns: sorted.iter().sum::<u128>() / n as u128,
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A benchmark suite runner.
pub struct Harness {
    suite: String,
    warmup: u32,
    iters: u32,
    json: bool,
    dir: Option<PathBuf>,
    results: Vec<Summary>,
}

impl Harness {
    /// Creates a harness for the named suite, taking iteration knobs from
    /// the process-wide [`HarnessConfig`](crate::HarnessConfig) (the
    /// `SHRIMP_BENCH_*` env shim).
    pub fn new(suite: &str) -> Harness {
        Self::with_config(suite, crate::HarnessConfig::global())
    }

    /// Creates a harness for the named suite with an explicit
    /// configuration (no environment involved).
    pub fn with_config(suite: &str, cfg: &crate::HarnessConfig) -> Harness {
        let warmup = cfg.bench_warmup;
        let iters = cfg.bench_iters.max(1);
        println!("[shrimp-testkit] suite '{suite}': {warmup} warmup + {iters} timed iterations");
        Harness {
            suite: suite.to_string(),
            warmup,
            iters,
            json: cfg.bench_json,
            dir: cfg.bench_dir.clone(),
            results: Vec::new(),
        }
    }

    /// Runs one benchmark: warmup iterations, then timed iterations of
    /// `f`, recording wall-clock time per call.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed().as_nanos());
        }
        let s = summarize(name, &samples);
        println!(
            "  {name:<28} median {:>12}  p95 {:>12}  min {:>12}  max {:>12}",
            fmt_ns(s.median_ns),
            fmt_ns(s.p95_ns),
            fmt_ns(s.min_ns),
            fmt_ns(s.max_ns),
        );
        self.results.push(s);
    }

    /// Renders the suite's JSON artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"suite\": \"{}\",\n", self.suite));
        out.push_str(&format!("  \"warmup_iters\": {},\n", self.warmup));
        out.push_str(&format!("  \"measured_iters\": {},\n", self.iters));
        out.push_str("  \"benchmarks\": [\n");
        for (i, s) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters\": {}, \"min_ns\": {}, \"median_ns\": {}, \
                 \"p95_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}}}{}\n",
                s.name,
                s.iters,
                s.min_ns,
                s.median_ns,
                s.p95_ns,
                s.max_ns,
                s.mean_ns,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Finishes the suite: writes `results/<suite>.json` (unless the
    /// configuration disabled the JSON artifact) and returns the summaries.
    pub fn finish(self) -> Vec<Summary> {
        if self.json {
            let dir = self.dir.clone().unwrap_or_else(results_dir);
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("[shrimp-testkit] cannot create {}: {e}", dir.display());
            } else {
                let path = dir.join(format!("{}.json", self.suite));
                match std::fs::write(&path, self.to_json()) {
                    Ok(()) => println!("[shrimp-testkit] wrote {}", path.display()),
                    Err(e) => eprintln!("[shrimp-testkit] cannot write {}: {e}", path.display()),
                }
            }
        }
        self.results
    }
}

/// The default JSON output directory: the nearest `results/` directory
/// walking up from the working directory (bench binaries run from the
/// package root, two levels below the workspace's `results/`), else
/// `results/` in the working directory.
fn results_dir() -> PathBuf {
    let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        let cand = cur.join("results");
        if cand.is_dir() {
            return cand;
        }
        if !cur.pop() {
            break;
        }
    }
    PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics_are_correct() {
        let s = summarize("x", &[50, 10, 40, 20, 30]);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 50);
        assert_eq!(s.median_ns, 30);
        assert_eq!(s.mean_ns, 30);
        assert_eq!(s.p95_ns, 50);
        assert_eq!(s.iters, 5);
    }

    #[test]
    fn even_count_median_averages() {
        let s = summarize("x", &[10, 20, 30, 40]);
        assert_eq!(s.median_ns, 25);
    }

    #[test]
    fn p95_nearest_rank() {
        let samples: Vec<u128> = (1..=100).collect();
        let s = summarize("x", &samples);
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.median_ns, 50);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut h = Harness::with_config(
            "demo",
            &crate::HarnessConfig::new()
                .with_bench_warmup(0)
                .with_bench_iters(3)
                .with_bench_json(false),
        );
        h.bench("noop", || 1 + 1);
        let json = h.to_json();
        assert!(json.contains("\"suite\": \"demo\""));
        assert!(json.contains("\"name\": \"noop\""));
        assert!(json.contains("\"median_ns\""));
        // Trailing-comma hygiene: single entry, no comma before ].
        assert!(!json.contains("},\n  ]"));
    }
}
