//! Hermetic, deterministic test infrastructure for the SHRIMP reproduction.
//!
//! The whole methodology of the reproduction is deterministic what-if
//! replay: rerun the same workload with one design knob changed and compare
//! schedules. That only holds if the repository is self-contained — every
//! byte of randomness, every property-test case, and every benchmark number
//! must be derivable from `(experiment, seed)` with no external crates in
//! the loop. This crate is the workspace's only test/bench substrate and
//! has **zero dependencies**:
//!
//! * [`config`] — the typed [`HarnessConfig`]: every knob the
//!   infrastructure once read from `SHRIMP_*` environment variables,
//!   parsed once at entry (the env vars remain a compatibility shim).
//! * [`rng`] — a SplitMix64-seeded xoshiro256++ generator ([`rng::DetRng`])
//!   used as `shrimp_sim::SimRng` by every workload.
//! * [`prop`] — a minimal property-testing engine: generator combinators,
//!   a seeded case runner, and iterative choice-stream shrinking, driven by
//!   the [`props!`] macro. Case counts are tunable via `SHRIMP_PROP_CASES`.
//! * [`mod@bench`] — a statistics-reporting benchmark harness (`harness =
//!   false` targets): warmup, min/median/p95/max over wall-clock samples,
//!   and machine-readable JSON written next to the human tables in
//!   `results/`.
//! * [`sample`] — deterministic workload samplers (Zipf key popularity,
//!   open-loop Poisson arrivals) built on [`rng::DetRng`] with no libm in
//!   the loop, for bit-reproducible load generation.

#![warn(missing_docs)]

pub mod bench;
pub mod config;
pub mod prop;
pub mod rng;
pub mod sample;

pub use config::HarnessConfig;
pub use rng::DetRng;
pub use sample::{OpenLoopArrivals, ZipfSampler};
