//! The typed harness configuration.
//!
//! Every knob the test and experiment infrastructure used to read from
//! `SHRIMP_*` environment variables lives here as a plain field on
//! [`HarnessConfig`]. Code paths take a `&HarnessConfig` (or fall back to
//! [`HarnessConfig::global`]), so a driver — notably the `shrimp-harness`
//! sweep runner, whose worker threads must not mutate the process
//! environment — can configure runs programmatically with a builder:
//!
//! ```
//! use shrimp_testkit::HarnessConfig;
//! let cfg = HarnessConfig::new().with_full_scale(true).with_nodes(8);
//! assert!(cfg.full_scale);
//! assert_eq!(cfg.nodes, 8);
//! ```
//!
//! The environment variables remain supported as a thin compatibility
//! shim: [`HarnessConfig::from_env`] parses them all, and
//! [`HarnessConfig::global`] does so exactly once per process.

use std::path::PathBuf;
use std::sync::OnceLock;

/// All harness knobs, parsed once at entry.
///
/// | Field | Env shim | Default |
/// |---|---|---|
/// | `full_scale` | `SHRIMP_FULL=1` | `false` |
/// | `nodes` | `SHRIMP_NODES` | 16 |
/// | `trace` | `SHRIMP_TRACE=1` | `false` |
/// | `trace_capacity` | — | 512 |
/// | `report` | `SHRIMP_REPORT=1` | `false` |
/// | `prop_cases` | `SHRIMP_PROP_CASES` | `None` (use declared count) |
/// | `prop_seed` | `SHRIMP_PROP_SEED` | `None` (0) |
/// | `bench_iters` | `SHRIMP_BENCH_ITERS` | 10 |
/// | `bench_warmup` | `SHRIMP_BENCH_WARMUP` | 3 |
/// | `bench_json` | `SHRIMP_BENCH_JSON=0` disables | `true` |
/// | `bench_dir` | `SHRIMP_BENCH_DIR` | `None` (nearest `results/`) |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Run experiments at the paper's problem sizes.
    pub full_scale: bool,
    /// Cluster size for the headline experiments (paper: 16).
    pub nodes: usize,
    /// Enable the simulator trace and dump it after each run.
    pub trace: bool,
    /// Retained-event bound for the trace ring when `trace` is set.
    pub trace_capacity: usize,
    /// Print the machine-wide utilization report after each run.
    pub report: bool,
    /// Property-test case count override (`None`: each suite's declared count).
    pub prop_cases: Option<u32>,
    /// Extra seed perturbation for property tests.
    pub prop_seed: Option<u64>,
    /// Timed iterations per benchmark.
    pub bench_iters: u32,
    /// Warmup iterations per benchmark.
    pub bench_warmup: u32,
    /// Write the per-suite JSON artifact from bench harnesses.
    pub bench_json: bool,
    /// Bench JSON output directory (`None`: nearest `results/`).
    pub bench_dir: Option<PathBuf>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl HarnessConfig {
    /// The defaults, with no environment involved.
    pub fn new() -> Self {
        HarnessConfig {
            full_scale: false,
            nodes: 16,
            trace: false,
            trace_capacity: 512,
            report: false,
            prop_cases: None,
            prop_seed: None,
            bench_iters: 10,
            bench_warmup: 3,
            bench_json: true,
            bench_dir: None,
        }
    }

    /// The environment-variable compatibility shim: the defaults overlaid
    /// with every `SHRIMP_*` knob present in the process environment
    /// (unparsable values fall back to the default, as before).
    pub fn from_env() -> Self {
        let flag = |name: &str| std::env::var(name).map(|v| v == "1").unwrap_or(false);
        HarnessConfig {
            full_scale: flag("SHRIMP_FULL"),
            nodes: env_parse("SHRIMP_NODES").unwrap_or(16),
            trace: flag("SHRIMP_TRACE"),
            report: flag("SHRIMP_REPORT"),
            prop_cases: env_parse("SHRIMP_PROP_CASES"),
            prop_seed: env_parse("SHRIMP_PROP_SEED"),
            bench_iters: env_parse("SHRIMP_BENCH_ITERS").unwrap_or(10),
            bench_warmup: env_parse("SHRIMP_BENCH_WARMUP").unwrap_or(3),
            bench_json: std::env::var("SHRIMP_BENCH_JSON")
                .map(|v| v != "0")
                .unwrap_or(true),
            bench_dir: std::env::var("SHRIMP_BENCH_DIR").ok().map(PathBuf::from),
            ..Self::new()
        }
    }

    /// The process-wide configuration, parsed from the environment exactly
    /// once (entry points that take no explicit config use this).
    pub fn global() -> &'static HarnessConfig {
        static GLOBAL: OnceLock<HarnessConfig> = OnceLock::new();
        GLOBAL.get_or_init(HarnessConfig::from_env)
    }

    /// Resolves the property-test case count for a suite declaring
    /// `declared` cases.
    pub fn prop_case_count(&self, declared: u32) -> u32 {
        self.prop_cases.unwrap_or(declared)
    }

    /// Builder: paper-scale problem sizes.
    pub fn with_full_scale(mut self, full: bool) -> Self {
        self.full_scale = full;
        self
    }

    /// Builder: cluster size.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Builder: trace dumps (with the default capacity).
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Builder: trace ring capacity.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Builder: post-run utilization report.
    pub fn with_report(mut self, report: bool) -> Self {
        self.report = report;
        self
    }

    /// Builder: property-test case count override.
    pub fn with_prop_cases(mut self, cases: u32) -> Self {
        self.prop_cases = Some(cases);
        self
    }

    /// Builder: property-test seed perturbation.
    pub fn with_prop_seed(mut self, seed: u64) -> Self {
        self.prop_seed = Some(seed);
        self
    }

    /// Builder: timed bench iterations.
    pub fn with_bench_iters(mut self, iters: u32) -> Self {
        self.bench_iters = iters.max(1);
        self
    }

    /// Builder: bench warmup iterations.
    pub fn with_bench_warmup(mut self, warmup: u32) -> Self {
        self.bench_warmup = warmup;
        self
    }

    /// Builder: bench JSON artifact on/off.
    pub fn with_bench_json(mut self, json: bool) -> Self {
        self.bench_json = json;
        self
    }

    /// Builder: bench JSON output directory.
    pub fn with_bench_dir(mut self, dir: PathBuf) -> Self {
        self.bench_dir = Some(dir);
        self
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_documented_values() {
        let c = HarnessConfig::new();
        assert!(!c.full_scale);
        assert_eq!(c.nodes, 16);
        assert_eq!(c.bench_iters, 10);
        assert_eq!(c.bench_warmup, 3);
        assert!(c.bench_json);
        assert_eq!(c.prop_case_count(48), 48);
    }

    #[test]
    fn builder_overrides_compose() {
        let c = HarnessConfig::new()
            .with_full_scale(true)
            .with_nodes(4)
            .with_trace(true)
            .with_trace_capacity(64)
            .with_report(true)
            .with_prop_cases(7)
            .with_prop_seed(99)
            .with_bench_iters(0) // clamps to 1
            .with_bench_warmup(0)
            .with_bench_json(false);
        assert!(c.full_scale && c.trace && c.report);
        assert_eq!(c.nodes, 4);
        assert_eq!(c.trace_capacity, 64);
        assert_eq!(c.prop_case_count(48), 7);
        assert_eq!(c.prop_seed, Some(99));
        assert_eq!(c.bench_iters, 1);
        assert_eq!(c.bench_warmup, 0);
        assert!(!c.bench_json);
    }

    #[test]
    fn env_shim_matches_defaults_when_unset() {
        // CI never exports SHRIMP_* for unit tests; when some are set by a
        // user we only check the ones that are not.
        let env = HarnessConfig::from_env();
        if std::env::var("SHRIMP_FULL").is_err() {
            assert!(!env.full_scale);
        }
        if std::env::var("SHRIMP_NODES").is_err() {
            assert_eq!(env.nodes, 16);
        }
        if std::env::var("SHRIMP_PROP_CASES").is_err() {
            assert_eq!(env.prop_cases, None);
        }
    }
}
