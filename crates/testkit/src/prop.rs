//! A minimal property-testing engine (the workspace's proptest
//! replacement).
//!
//! # Model
//!
//! Generation is driven by a recorded **choice stream** ([`Source`]): every
//! primitive generator draws 64-bit words from the stream, and the stream
//! is filled from a seeded [`DetRng`] on first use. A failing case is
//! shrunk by editing the *recorded stream* — truncating it, zeroing words,
//! halving words — and re-running the generators on the edited stream.
//! Because shrunk values are always re-generated through the same
//! combinators, they respect every generator constraint (ranges, lengths,
//! variant choices) by construction, and `map`/`one_of` compositions shrink
//! for free. Primitive generators map word 0 to their minimal value, so
//! shrinking the stream toward zeros shrinks values toward range starts,
//! shorter vectors, and earlier `one_of` variants.
//!
//! # Determinism
//!
//! Case streams are seeded from the property name and case index — no
//! OS entropy — so `cargo test` is bit-reproducible and hermetic. Knobs:
//!
//! * `SHRIMP_PROP_CASES=<n>` overrides every suite's case count.
//! * `SHRIMP_PROP_SEED=<n>` perturbs the base seed to explore fresh cases.
//!
//! # Usage
//!
//! ```
//! use shrimp_testkit::prop::*;
//! use shrimp_testkit::{prop_assert, prop_assert_eq, props};
//!
//! props! {
//!     cases = 32;
//!
//!     fn addition_commutes(a in any_u32(), b in any_u32()) {
//!         prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
//!     }
//!
//!     fn vec_reverse_involutes(v in vec_of(any_u8(), 0..50)) {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         prop_assert_eq!(w, v);
//!     }
//! }
//! ```
//!
//! (The declared properties become ordinary `#[test]` functions; the
//! engine's own behavior is exercised by this crate's unit tests.)

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use crate::rng::DetRng;

/// The outcome of one property case: `Err` carries the failure message.
pub type CaseResult = Result<(), String>;

/// Budget of extra property executions spent minimizing a failure.
const SHRINK_BUDGET: usize = 512;

// ---------------------------------------------------------------------------
// Choice stream
// ---------------------------------------------------------------------------

/// The choice stream generators draw from.
///
/// In *record* mode, draws past the recorded prefix come from the seeded
/// RNG and are appended to the stream. In *replay* mode (shrinking), draws
/// past the end return 0 — the minimal choice — so truncated streams still
/// generate complete values.
///
/// Bounded draws record the *reduced* value, so a stream word is the
/// sampled value itself (minus the range offset): shrinking edits that
/// lower a word lower the generated value monotonically.
pub struct Source {
    data: Vec<u64>,
    pos: usize,
    rng: Option<DetRng>,
}

impl Source {
    /// A recording source seeded with `seed`.
    pub fn record(seed: u64) -> Source {
        Source {
            data: Vec::new(),
            pos: 0,
            rng: Some(DetRng::from_seed(seed)),
        }
    }

    /// A replaying source over an edited choice stream.
    pub fn replay(data: Vec<u64>) -> Source {
        Source {
            data,
            pos: 0,
            rng: None,
        }
    }

    /// Draws the next raw choice word (full `u64` range).
    pub fn draw(&mut self) -> u64 {
        self.next(None)
    }

    /// Draws the next choice word reduced to `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn draw_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "draw_below(0)");
        self.next(Some(bound))
    }

    fn next(&mut self, bound: Option<u64>) -> u64 {
        let reduce = |v: u64| match bound {
            Some(b) => v % b,
            None => v,
        };
        if self.pos < self.data.len() {
            // Normalize in place so edited replay words stay in range and
            // `consumed()` reflects the values actually used.
            let v = reduce(self.data[self.pos]);
            self.data[self.pos] = v;
            self.pos += 1;
            return v;
        }
        self.pos += 1;
        match &mut self.rng {
            Some(rng) => {
                let v = reduce(rng.gen_u64());
                self.data.push(v);
                v
            }
            None => 0,
        }
    }

    /// The choice words actually consumed (for shrinking).
    fn consumed(&self) -> Vec<u64> {
        let n = self.pos.min(self.data.len());
        self.data[..n].to_vec()
    }
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A value generator: a reusable function of the choice stream.
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Source) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { f: self.f.clone() }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a raw generation function.
    pub fn new(f: impl Fn(&mut Source) -> T + 'static) -> Gen<T> {
        Gen { f: Rc::new(f) }
    }

    /// Generates one value from the stream.
    pub fn generate(&self, src: &mut Source) -> T {
        (self.f)(src)
    }

    /// Maps generated values through `f` (shrinks via the source values).
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |src| f(self.generate(src)))
    }
}

/// Uniform `u64` in a half-open range; shrinks toward `range.start`.
pub fn u64_in(range: Range<u64>) -> Gen<u64> {
    assert!(range.start < range.end, "u64_in on empty range");
    let (lo, span) = (range.start, range.end - range.start);
    Gen::new(move |src| lo + src.draw_below(span))
}

/// Uniform `u32` in a half-open range; shrinks toward `range.start`.
pub fn u32_in(range: Range<u32>) -> Gen<u32> {
    u64_in(range.start as u64..range.end as u64).map(|v| v as u32)
}

/// Uniform `u16` in a half-open range; shrinks toward `range.start`.
pub fn u16_in(range: Range<u16>) -> Gen<u16> {
    u64_in(range.start as u64..range.end as u64).map(|v| v as u16)
}

/// Uniform `u8` in a half-open range; shrinks toward `range.start`.
pub fn u8_in(range: Range<u8>) -> Gen<u8> {
    u64_in(range.start as u64..range.end as u64).map(|v| v as u8)
}

/// Uniform `usize` in a half-open range; shrinks toward `range.start`.
pub fn usize_in(range: Range<usize>) -> Gen<usize> {
    u64_in(range.start as u64..range.end as u64).map(|v| v as usize)
}

/// Uniform `f64` in a half-open range; shrinks toward `range.start`.
pub fn f64_in(range: Range<f64>) -> Gen<f64> {
    assert!(range.start < range.end, "f64_in on empty range");
    let (lo, width) = (range.start, range.end - range.start);
    Gen::new(move |src| {
        let unit = src.draw_below(1 << 53) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * width
    })
}

/// Any `u8`; shrinks toward 0.
pub fn any_u8() -> Gen<u8> {
    Gen::new(|src| src.draw_below(1 << 8) as u8)
}

/// Any `u16`; shrinks toward 0.
pub fn any_u16() -> Gen<u16> {
    Gen::new(|src| src.draw_below(1 << 16) as u16)
}

/// Any `u32`; shrinks toward 0.
pub fn any_u32() -> Gen<u32> {
    Gen::new(|src| src.draw_below(1 << 32) as u32)
}

/// Any `u64`; shrinks toward 0.
pub fn any_u64() -> Gen<u64> {
    Gen::new(|src| src.draw())
}

/// Any `bool`; shrinks toward `false`.
pub fn any_bool() -> Gen<bool> {
    Gen::new(|src| src.draw_below(2) == 1)
}

/// A vector whose length is drawn from `len` and whose elements come from
/// `g`. Shrinks toward shorter vectors of smaller elements.
pub fn vec_of<T: 'static>(g: Gen<T>, len: Range<usize>) -> Gen<Vec<T>> {
    let len_gen = usize_in(len);
    Gen::new(move |src| {
        let n = len_gen.generate(src);
        (0..n).map(|_| g.generate(src)).collect()
    })
}

/// One of the listed values, uniformly; shrinks toward the first.
pub fn select<T: Clone + 'static>(items: Vec<T>) -> Gen<T> {
    assert!(!items.is_empty(), "select on empty list");
    let idx = usize_in(0..items.len());
    Gen::new(move |src| items[idx.generate(src)].clone())
}

/// Always the given value.
pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| value.clone())
}

/// Picks one of the generators uniformly, then generates from it; shrinks
/// toward the first variant (list order = shrink order, as in
/// `prop_oneof!`).
pub fn one_of<T: 'static>(options: Vec<Gen<T>>) -> Gen<T> {
    assert!(!options.is_empty(), "one_of on empty list");
    let idx = usize_in(0..options.len());
    Gen::new(move |src| options[idx.generate(src)].generate(src))
}

/// A pair of independent generators.
pub fn zip<A: 'static, B: 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    Gen::new(move |src| (a.generate(src), b.generate(src)))
}

/// A triple of independent generators.
pub fn zip3<A: 'static, B: 'static, C: 'static>(a: Gen<A>, b: Gen<B>, c: Gen<C>) -> Gen<(A, B, C)> {
    Gen::new(move |src| (a.generate(src), b.generate(src), c.generate(src)))
}

// ---------------------------------------------------------------------------
// Runner + shrinking
// ---------------------------------------------------------------------------

/// Resolves the case count for a suite: the process-wide
/// [`HarnessConfig`](crate::HarnessConfig) (and therefore the
/// `SHRIMP_PROP_CASES` env shim) overrides the declared count.
pub fn case_count(declared: u32) -> u32 {
    crate::HarnessConfig::global().prop_case_count(declared)
}

fn base_seed(name: &str) -> u64 {
    // FNV-1a over the property name, perturbed by the configured seed
    // (`SHRIMP_PROP_SEED` via the env shim).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let user = crate::HarnessConfig::global().prop_seed.unwrap_or(0);
    h ^ user.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Runs one property: `cases` generated cases, shrinking on the first
/// failure. `f` generates its arguments from the [`Source`] and returns
/// `Err(message)` (usually via [`prop_assert!`](crate::prop_assert)) on
/// violation; panics inside `f` are caught and treated as failures so
/// model-code assertions shrink too.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) with the minimized
/// counterexample if any case fails.
pub fn run<F>(name: &str, cases: u32, mut f: F)
where
    F: FnMut(&mut Source) -> CaseResult,
{
    let cases = case_count(cases);
    let seed0 = base_seed(name);
    for case in 0..cases {
        let seed = seed0.wrapping_add((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut src = Source::record(seed);
        if let Err(msg) = run_case(&mut f, &mut src) {
            let data = src.consumed();
            let (min_msg, runs) = shrink(&mut f, data, msg);
            panic!(
                "property '{name}' failed (case {case} of {cases}, seed {seed:#x}, \
                 minimized over {runs} shrink runs):\n{min_msg}\n\
                 (rerun knobs: SHRIMP_PROP_CASES, SHRIMP_PROP_SEED)"
            );
        }
    }
}

fn run_case<F>(f: &mut F, src: &mut Source) -> CaseResult
where
    F: FnMut(&mut Source) -> CaseResult,
{
    match catch_unwind(AssertUnwindSafe(|| f(src))) {
        Ok(r) => r,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic".into());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Minimizes a failing choice stream: repeatedly applies the first
/// shrinking edit that still fails, until no edit fails or the budget is
/// exhausted. Returns the minimal failure message and the number of
/// property executions spent.
fn shrink<F>(f: &mut F, data: Vec<u64>, msg: String) -> (String, usize)
where
    F: FnMut(&mut Source) -> CaseResult,
{
    let mut best_data = data;
    let mut best_msg = msg;
    let mut runs = 0usize;
    'improve: loop {
        for cand in candidates(&best_data) {
            if runs >= SHRINK_BUDGET {
                break 'improve;
            }
            runs += 1;
            let mut src = Source::replay(cand);
            if let Err(m) = run_case(f, &mut src) {
                best_data = src.consumed();
                best_msg = m;
                continue 'improve;
            }
        }
        break;
    }
    (best_msg, runs)
}

/// Shrinking edits of a choice stream, in decreasing order of
/// aggressiveness: drop the tail, delete single words (which shortens
/// generated vectors and shifts later choices left), zero words, then
/// lower each word along a geometric ladder (`v - v/2`, `v - v/4`, …,
/// `v - 1`) so boundary values are found in logarithmically many adoptions
/// instead of by unit decrements.
fn candidates(data: &[u64]) -> Vec<Vec<u64>> {
    let n = data.len();
    let mut out = Vec::new();
    if n > 0 {
        out.push(data[..n / 2].to_vec());
        out.push(data[..n - 1].to_vec());
    }
    for i in 0..n {
        let mut d = data.to_vec();
        d.remove(i);
        out.push(d);
    }
    for i in 0..n {
        if data[i] != 0 {
            let mut d = data.to_vec();
            d[i] = 0;
            out.push(d);
        }
    }
    for i in 0..n {
        let v = data[i];
        let mut step = v / 2;
        while step > 0 {
            let mut d = data.to_vec();
            d[i] = v - step;
            out.push(d);
            step /= 2;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests (the `proptest! { ... }` replacement).
///
/// Each `fn name(arg in generator, ...) { body }` becomes a `#[test]` that
/// runs `cases` generated cases through [`run`]. The body uses
/// [`prop_assert!`](crate::prop_assert) /
/// [`prop_assert_eq!`](crate::prop_assert_eq) /
/// [`prop_assert_ne!`](crate::prop_assert_ne); on failure the generated
/// arguments are appended to the message and the case is shrunk.
#[macro_export]
macro_rules! props {
    (
        cases = $cases:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $gen:expr ),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::prop::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    $cases,
                    |__src| {
                        $( let $arg = ($gen).generate(__src); )+
                        let __args = format!(
                            concat!($("\n    ", stringify!($arg), " = {:?}"),+),
                            $( &$arg ),+
                        );
                        let __case = || -> $crate::prop::CaseResult {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        __case().map_err(|e| format!("{e}\n  with:{__args}"))
                    },
                );
            }
        )+
    };
}

/// Asserts a condition inside a [`props!`] body, failing the case (and
/// triggering shrinking) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`props!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Asserts inequality inside a [`props!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_respect_ranges() {
        let mut src = Source::record(42);
        let g = vec_of(zip(usize_in(3..10), f64_in(-2.0..2.0)), 1..20);
        for _ in 0..200 {
            let v = g.generate(&mut src);
            assert!((1..20).contains(&v.len()));
            for (n, f) in v {
                assert!((3..10).contains(&n));
                assert!((-2.0..2.0).contains(&f));
            }
        }
    }

    #[test]
    fn recorded_streams_replay_identically() {
        let g = vec_of(any_u64(), 0..30);
        let mut rec = Source::record(7);
        let v1 = g.generate(&mut rec);
        let mut rep = Source::replay(rec.consumed());
        let v2 = g.generate(&mut rep);
        assert_eq!(v1, v2);
    }

    #[test]
    fn replay_past_end_yields_minimal_choices() {
        let g = vec_of(u64_in(5..100), 2..40);
        let mut src = Source::replay(vec![10]); // length draw only
        let v = g.generate(&mut src);
        assert_eq!(v, vec![5; 12]); // 2 + 10 % 38 elements, all minimal
    }

    #[test]
    fn shrinking_finds_the_boundary() {
        // Property: all values < 500. Failing cases contain some v >= 500;
        // the shrinker must walk the witness down to exactly 500 and the
        // vector down to a single element.
        let g = vec_of(u64_in(0..1000), 1..50);
        let mut minimal: Option<Vec<u64>> = None;
        let mut f = |src: &mut Source| -> CaseResult {
            let v = g.generate(src);
            if v.iter().any(|&x| x >= 500) {
                minimal = Some(v.clone());
                Err(format!("{v:?} has an element >= 500"))
            } else {
                Ok(())
            }
        };
        // Find a failing stream first.
        let mut case = 0u64;
        let data = loop {
            let mut src = Source::record(case);
            if f(&mut src).is_err() {
                break src.consumed();
            }
            case += 1;
        };
        let (_, runs) = shrink(&mut f, data, "seed failure".into());
        assert!(runs > 0, "shrinker never ran");
        let min = minimal.expect("no failing value recorded");
        assert_eq!(min, vec![500], "did not minimize: {min:?}");
    }

    #[test]
    fn panics_are_failures_not_aborts() {
        let mut f = |src: &mut Source| -> CaseResult {
            let v = any_u64().generate(src);
            if v > 10 {
                panic!("model code exploded on {v}");
            }
            Ok(())
        };
        let mut src = Source::replay(vec![11]);
        let r = run_case(&mut f, &mut src);
        assert!(r.unwrap_err().contains("exploded"));
    }

    #[test]
    fn one_of_shrinks_toward_first_variant() {
        #[derive(Debug, Clone, PartialEq)]
        enum E {
            A,
            B(u64),
        }
        let g = one_of(vec![just(E::A), any_u64().map(E::B)]);
        // Stream of zeros selects the first variant.
        let mut src = Source::replay(Vec::new());
        assert_eq!(g.generate(&mut src), E::A);
    }

    #[test]
    fn env_override_wins() {
        // Not set in the test environment unless the user exports it; the
        // declared count must pass through unchanged then.
        if std::env::var("SHRIMP_PROP_CASES").is_err() {
            assert_eq!(case_count(48), 48);
        }
    }

    props! {
        cases = 64;

        /// The engine tests itself: encode/decode round-trip.
        fn self_test_roundtrip(v in vec_of(any_u8(), 0..100)) {
            let mut enc = Vec::with_capacity(v.len() * 2);
            for b in &v {
                enc.push(b >> 4);
                enc.push(b & 0xF);
            }
            let dec: Vec<u8> = enc.chunks(2).map(|c| (c[0] << 4) | c[1]).collect();
            prop_assert_eq!(dec, v);
        }

        fn self_test_sort_idempotent(v in vec_of(u32_in(0..1000), 0..40)) {
            let mut a = v.clone();
            a.sort_unstable();
            let mut b = a.clone();
            b.sort_unstable();
            prop_assert_eq!(a, b);
            prop_assert!(b.windows(2).all(|w| w[0] <= w[1]), "not sorted");
        }
    }
}
