//! Deterministic workload samplers: Zipf key popularity and open-loop
//! (Poisson) arrival processes, both driven by a caller-owned [`DetRng`].
//!
//! # Determinism
//!
//! Simulated workloads must be bit-reproducible across hosts, so these
//! samplers avoid every libm entry point (`ln`, `powf`, …) whose results
//! are not pinned by IEEE 754. The Zipf sampler is pure integer arithmetic
//! (fixed-point harmonic weights + binary search); the exponential
//! inter-arrival sampler uses a hand-written natural log built only from
//! IEEE-exact basic operations (+, −, ×, ÷), which are bit-identical on
//! every conforming platform. Golden-value pins in `rng_golden.rs`
//! (shrimp-sim) lock both streams.

use crate::rng::DetRng;

/// Zipf(s = 1) sampler over ranks `0..n`: rank `k` is drawn with
/// probability proportional to `1 / (k + 1)` — the classic heavy-tailed
/// key-popularity model (a few hot keys take most of the traffic).
///
/// Weights are `floor(2^32 / (k + 1))` accumulated into a cumulative `u64`
/// table (the harmonic sum keeps the total well under `2^64` for any
/// realistic `n`), and a draw is one bounded RNG word plus a binary
/// search — fully integer, so identical on every host.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// `cum[k]` = total fixed-point weight of ranks `0..=k`.
    cum: Vec<u64>,
}

/// Fixed-point scale of one unit of probability weight.
const ZIPF_SCALE: u64 = 1 << 32;

impl ZipfSampler {
    /// Builds the sampler for `n` ranks.
    ///
    /// # Panics
    ///
    /// Panics when `n` is 0.
    pub fn new(n: usize) -> ZipfSampler {
        assert!(n > 0, "Zipf over an empty domain");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0u64;
        for k in 0..n as u64 {
            total += ZIPF_SCALE / (k + 1);
            cum.push(total);
        }
        ZipfSampler { cum }
    }

    /// Number of ranks in the domain.
    pub fn n(&self) -> usize {
        self.cum.len()
    }

    /// Draws one rank in `0..n` (rank 0 is the hottest).
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let total = *self.cum.last().expect("non-empty domain");
        let r = rng.gen_range(0..total);
        // First rank whose cumulative weight exceeds the draw.
        self.cum.partition_point(|&c| c <= r)
    }
}

/// Open-loop arrival process with exponentially distributed inter-arrival
/// gaps (a Poisson process): arrivals fire at their scheduled instants
/// regardless of how the system under test is keeping up, which is what
/// makes measured latencies honest under saturation (no coordinated
/// omission).
///
/// Times are in the caller's unit (the cluster uses picoseconds).
#[derive(Debug, Clone)]
pub struct OpenLoopArrivals {
    mean_gap: u64,
    next_at: u64,
}

impl OpenLoopArrivals {
    /// A process whose gaps average `mean_gap`, with the first arrival one
    /// gap after `start`.
    ///
    /// # Panics
    ///
    /// Panics when `mean_gap` is 0 (the process would not advance).
    pub fn new(mean_gap: u64, start: u64) -> OpenLoopArrivals {
        assert!(mean_gap > 0, "open-loop arrivals need a positive mean gap");
        OpenLoopArrivals {
            mean_gap,
            next_at: start,
        }
    }

    /// Draws the next absolute arrival instant (strictly increasing).
    pub fn next(&mut self, rng: &mut DetRng) -> u64 {
        let gap = exponential(self.mean_gap, rng).max(1);
        self.next_at += gap;
        self.next_at
    }
}

/// One exponential draw with the given mean, by inversion:
/// `-mean * ln(u)` for uniform `u` in `(0, 1]`.
fn exponential(mean: u64, rng: &mut DetRng) -> u64 {
    // 53 uniform bits, offset so u is never 0 (ln(0) = -inf).
    let u = ((rng.gen_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
    let gap = -(mean as f64) * det_ln(u);
    // The draw is theoretically unbounded; cap it at something huge but
    // finite so the cast below is defined.
    if gap >= u64::MAX as f64 {
        u64::MAX
    } else {
        gap as u64
    }
}

/// Natural log over positive finite inputs using only IEEE-exact basic
/// operations, so the result is bit-identical on every conforming host
/// (libm's `f64::ln` is not).
///
/// Range-reduce via the exponent bits (`x = m * 2^e`, `m` in `[1, 2)`),
/// then evaluate `ln(m) = 2 * atanh((m - 1) / (m + 1))` by its odd power
/// series. With `m` in `[1, 2)` the series argument is at most `1/3`, so
/// 27 fixed terms are far below one ulp.
fn det_ln(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite(), "det_ln domain");
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64;
    let (e, m) = if exp == 0 {
        // Subnormal: renormalize by scaling up 2^54 (exact).
        let scaled = x * (1u64 << 54) as f64;
        let sb = scaled.to_bits();
        let se = ((sb >> 52) & 0x7ff) as i64;
        (
            se - 1023 - 54,
            f64::from_bits((sb & !(0x7ffu64 << 52)) | (1023u64 << 52)),
        )
    } else {
        (
            exp - 1023,
            f64::from_bits((bits & !(0x7ffu64 << 52)) | (1023u64 << 52)),
        )
    };
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    // Horner evaluation of 1 + s^2/3 + s^4/5 + ... + s^52/53.
    let mut poly = 0.0f64;
    let mut k = 53u32;
    while k >= 3 {
        poly = (poly + 1.0 / k as f64) * s2;
        k -= 2;
    }
    poly += 1.0;
    // ln 2 to full f64 precision; a compile-time constant, not a libm call.
    e as f64 * std::f64::consts::LN_2 + 2.0 * s * poly
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_heavy_tailed_and_in_range() {
        let z = ZipfSampler::new(100);
        let mut rng = DetRng::from_seed(7);
        let mut counts = [0u32; 100];
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!(k < 100);
            counts[k] += 1;
        }
        // Rank 0 carries ~1/H_100 ≈ 19% of the mass; rank 99 ~0.2%.
        assert!(counts[0] > counts[9], "head not hotter than rank 9");
        assert!(counts[0] > 10 * counts[99], "tail not light enough");
        // Every *hot* rank is exercised.
        assert!(counts[..10].iter().all(|&c| c > 0));
    }

    #[test]
    fn zipf_single_rank_always_zero() {
        let z = ZipfSampler::new(1);
        let mut rng = DetRng::from_seed(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn arrivals_are_strictly_increasing_with_the_right_mean() {
        let mut a = OpenLoopArrivals::new(1_000, 0);
        let mut rng = DetRng::from_seed(11);
        let mut prev = 0u64;
        let n = 20_000u64;
        let mut last = 0u64;
        for _ in 0..n {
            let t = a.next(&mut rng);
            assert!(t > prev, "arrivals must advance");
            prev = t;
            last = t;
        }
        let mean = last / n;
        assert!(
            (900..=1100).contains(&mean),
            "empirical mean gap {mean} far from 1000"
        );
    }

    #[test]
    fn det_ln_matches_libm_to_a_few_ulps() {
        for &x in &[
            1e-300, 1e-12, 0.001, 0.5, 0.9999, 1.0, 1.5, 2.0, 3.0, 1e6, 1e300,
        ] {
            let got = det_ln(x);
            let want = f64::ln(x);
            let err = (got - want).abs();
            let tol = want.abs().max(1.0) * 1e-14;
            assert!(err <= tol, "det_ln({x}) = {got}, libm says {want}");
        }
        assert_eq!(det_ln(1.0), 0.0);
    }
}
