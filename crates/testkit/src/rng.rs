//! Deterministic pseudo-random number generation.
//!
//! [`DetRng`] is a xoshiro256++ generator seeded through SplitMix64 — the
//! standard pairing recommended by the xoshiro authors. It replaces the
//! external `rand` crate throughout the workspace: workloads reach it as
//! `shrimp_sim::SimRng`, the property engine ([`crate::prop`]) draws its
//! choice streams from it, and its output for a given seed is pinned by
//! golden tests so an RNG change can never silently reshuffle every
//! experiment.

use std::ops::Range;

/// Advances a SplitMix64 state and returns the next output word.
///
/// SplitMix64 passes through every 64-bit state exactly once, which makes
/// it the canonical seed expander: any `u64` seed — including 0 — yields a
/// full-entropy xoshiro state.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// The full sequence is a pure function of the seed; equal seeds give
/// bit-identical streams on every platform. All methods are inherent (no
/// trait import needed at call sites).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a single seed word via SplitMix64.
    pub fn from_seed(seed: u64) -> DetRng {
        let mut st = seed;
        DetRng::from_state([
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
        ])
    }

    /// Creates a generator from a raw xoshiro state.
    ///
    /// The all-zero state is a fixed point of xoshiro; it is remapped to a
    /// SplitMix64-expanded constant so every input is usable.
    pub fn from_state(s: [u64; 4]) -> DetRng {
        if s == [0; 4] {
            return DetRng::from_seed(0x5348_5249_4d50_2131); // "SHRIMP!1"
        }
        DetRng { s }
    }

    /// Returns the raw xoshiro state.
    ///
    /// Feeding the returned words back through [`DetRng::from_state`]
    /// resumes the stream exactly where it left off — the property the
    /// simulation checkpoint plane relies on (and `rng_golden.rs` pins), so
    /// the state layout is part of the serialized-snapshot format.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Returns the next word of the stream (xoshiro256++ step).
    pub fn gen_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 bits (upper half of the next word).
    pub fn gen_u32(&mut self) -> u32 {
        (self.gen_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Samples uniformly from a half-open range, e.g.
    /// `rng.gen_range(0u64..100)` or `rng.gen_range(-1.0..1.0)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: RangeSample>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = bounded(self.gen_u64(), (i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Fills a byte slice with stream output.
    pub fn fill_bytes(&mut self, bytes: &mut [u8]) {
        for chunk in bytes.chunks_mut(8) {
            let w = self.gen_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Maps a raw word into `[0, span)` by fixed-point multiplication
/// (Lemire's method without the rejection step; the bias is below 2^-32
/// for every span the workspace uses).
fn bounded(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

/// A half-open range [`DetRng::gen_range`] can sample from.
pub trait RangeSample {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut DetRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl RangeSample for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = bounded(rng.gen_u64(), span);
                ((self.start as i128) + off as i128) as $t
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeSample for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut DetRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = DetRng::from_seed(7);
        let mut b = DetRng::from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::from_seed(1);
        let mut b = DetRng::from_seed(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut st = 1234567u64;
        assert_eq!(splitmix64(&mut st), 6457827717110365317);
        assert_eq!(splitmix64(&mut st), 3203168211198807973);
        assert_eq!(splitmix64(&mut st), 9817491932198370423);
    }

    #[test]
    fn zero_state_is_remapped() {
        let mut z = DetRng::from_state([0; 4]);
        assert_ne!(z.gen_u64(), 0, "all-zero state must not be a fixed point");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = DetRng::from_seed(99);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn range_covers_every_value() {
        let mut rng = DetRng::from_seed(3);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never drawn: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::from_seed(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = DetRng::from_seed(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = DetRng::from_seed(21);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
