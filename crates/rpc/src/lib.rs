//! Remote procedure call over SHRIMP virtual memory-mapped communication.
//!
//! §3 of the paper lists two RPC systems built on VMMC (reference \[7\],
//! "Fast RPC on the SHRIMP Virtual Memory Mapped Network Interface"):
//! a Sun-RPC-compatible library and a *specialized* RPC path. This crate
//! reproduces both styles:
//!
//! * [`RpcClient::call`] — the compatible path: arguments are marshaled
//!   into a staging buffer (a charged user-level copy), sent by deliberate
//!   update into the server's request ring, and the reply is polled the
//!   same way. The server dispatches registered procedures by number.
//! * [`RpcClient::call_fast`] — the specialized path: no marshaling copy;
//!   the caller's bytes go straight from its buffer into the request ring
//!   frame (and the reply frame is handed back without a copy), the
//!   optimization the SHRIMP RPC paper uses VMMC's direct data transfer
//!   for.
//!
//! Servers poll (no interrupts, like the paper's VMMC applications); a
//! server's dispatch loop serves many clients, each over its own ring
//! pair.
//!
//! # Example
//!
//! ```
//! use shrimp_core::{Cluster, DesignConfig};
//! use shrimp_rpc::RpcSystem;
//!
//! let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
//! let rpc = RpcSystem::new(&cluster);
//! // Node 1 serves procedure 7: add one to each byte.
//! let server = rpc.serve(1);
//! server.register(7, |args| args.iter().map(|b| b + 1).collect());
//! server.start();
//! let client = rpc.connect(0, 1);
//! let h = cluster.sim().spawn(async move {
//!     client.call(7, b"\x01\x02\x03").await
//! });
//! let (_, out) = cluster.run_until_complete(vec![h]);
//! assert_eq!(out[0], vec![2, 3, 4]);
//! ```

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use shrimp_core::ring::{connect_ring, RingBulk, RingReceiver, RingSender};
use shrimp_core::{Cluster, Vmmc};

/// A registered procedure: bytes in, bytes out.
pub type Procedure = Box<dyn Fn(&[u8]) -> Vec<u8>>;

/// RPC transport configuration.
#[derive(Debug, Clone)]
pub struct RpcConfig {
    /// Ring capacity per direction per connection.
    pub ring_bytes: usize,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            ring_bytes: 32 * 1024,
        }
    }
}

struct ServerInner {
    vm: Vmmc,
    procedures: RefCell<HashMap<u32, Procedure>>,
    pending_conns: RefCell<Vec<(RingReceiver, RingSender)>>,
    started: std::cell::Cell<bool>,
    calls_served: std::cell::Cell<u64>,
}

/// An RPC server endpoint on one node. Cheap to clone.
#[derive(Clone)]
pub struct RpcServer {
    inner: Rc<ServerInner>,
}

impl std::fmt::Debug for RpcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcServer")
            .field("calls_served", &self.inner.calls_served.get())
            .finish()
    }
}

struct SystemInner {
    cluster: Cluster,
    cfg: RpcConfig,
    servers: RefCell<HashMap<usize, RpcServer>>,
}

/// The cluster-wide RPC service registry. Cheap to clone.
#[derive(Clone)]
pub struct RpcSystem {
    inner: Rc<SystemInner>,
}

impl std::fmt::Debug for RpcSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcSystem").finish_non_exhaustive()
    }
}

/// A connected RPC client (one connection to one server).
pub struct RpcClient {
    vm: Vmmc,
    tx: RingSender,
    rx: RingReceiver,
    next_xid: std::cell::Cell<u32>,
}

impl std::fmt::Debug for RpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcClient").finish_non_exhaustive()
    }
}

impl RpcSystem {
    /// Creates the RPC service with default transport configuration.
    pub fn new(cluster: &Cluster) -> Self {
        Self::with_config(cluster, RpcConfig::default())
    }

    /// Creates the RPC service.
    pub fn with_config(cluster: &Cluster, cfg: RpcConfig) -> Self {
        RpcSystem {
            inner: Rc::new(SystemInner {
                cluster: cluster.clone(),
                cfg,
                servers: RefCell::new(HashMap::new()),
            }),
        }
    }

    /// Creates (or returns) the server endpoint for `node`. Register
    /// procedures, then [`RpcServer::start`] it.
    pub fn serve(&self, node: usize) -> RpcServer {
        self.inner
            .servers
            .borrow_mut()
            .entry(node)
            .or_insert_with(|| RpcServer {
                inner: Rc::new(ServerInner {
                    vm: self.inner.cluster.vmmc(node),
                    procedures: RefCell::new(HashMap::new()),
                    pending_conns: RefCell::new(Vec::new()),
                    started: std::cell::Cell::new(false),
                    calls_served: std::cell::Cell::new(0),
                }),
            })
            .clone()
    }

    /// Connects `client_node` to the server on `server_node`, building the
    /// request/reply rings (out-of-band setup, as with the other
    /// libraries).
    ///
    /// # Panics
    ///
    /// Panics if no server endpoint exists on `server_node`.
    pub fn connect(&self, client_node: usize, server_node: usize) -> RpcClient {
        let server = self
            .inner
            .servers
            .borrow()
            .get(&server_node)
            .expect("no RPC server on that node")
            .clone();
        let cvm = self.inner.cluster.vmmc(client_node);
        let svm = self.inner.cluster.vmmc(server_node);
        let (req_tx, req_rx) =
            connect_ring(&cvm, &svm, self.inner.cfg.ring_bytes, RingBulk::Deliberate);
        let (rep_tx, rep_rx) =
            connect_ring(&svm, &cvm, self.inner.cfg.ring_bytes, RingBulk::Deliberate);
        server.attach(req_rx, rep_tx);
        RpcClient {
            vm: cvm,
            tx: req_tx,
            rx: rep_rx,
            next_xid: std::cell::Cell::new(1),
        }
    }
}

impl RpcServer {
    /// Registers `proc_num` with its handler.
    pub fn register(&self, proc_num: u32, f: impl Fn(&[u8]) -> Vec<u8> + 'static) {
        self.inner
            .procedures
            .borrow_mut()
            .insert(proc_num, Box::new(f));
    }

    /// Total calls served so far.
    pub fn calls_served(&self) -> u64 {
        self.inner.calls_served.get()
    }

    fn attach(&self, rx: RingReceiver, tx: RingSender) {
        if self.inner.started.get() {
            self.spawn_dispatch(rx, tx);
        } else {
            self.inner.pending_conns.borrow_mut().push((rx, tx));
        }
    }

    /// Starts the dispatch processes (one per connection; later
    /// connections start their own).
    pub fn start(&self) {
        self.inner.started.set(true);
        let conns: Vec<_> = self.inner.pending_conns.borrow_mut().drain(..).collect();
        for (rx, tx) in conns {
            self.spawn_dispatch(rx, tx);
        }
    }

    fn spawn_dispatch(&self, rx: RingReceiver, tx: RingSender) {
        let inner = self.inner.clone();
        self.inner.vm.sim().clone().spawn(async move {
            loop {
                let frame = rx.recv().await;
                // Frame tag carries the procedure number; payload is
                // [xid u32][args...].
                let xid = u32::from_le_bytes(frame.data[0..4].try_into().unwrap());
                let args = &frame.data[4..];
                let reply = {
                    let procedures = inner.procedures.borrow();
                    match procedures.get(&frame.tag) {
                        Some(p) => p(args),
                        None => {
                            // Unknown procedure: error reply (empty, tag 0
                            // at the client means fault).
                            Vec::new()
                        }
                    }
                };
                inner.calls_served.set(inner.calls_served.get() + 1);
                // Dispatch cost: decode + table lookup + reply setup.
                inner.vm.compute(shrimp_sim::time::us(5)).await;
                let mut out = Vec::with_capacity(4 + reply.len());
                out.extend_from_slice(&xid.to_le_bytes());
                out.extend_from_slice(&reply);
                tx.send_frame(frame.tag, &out).await;
            }
        });
    }
}

impl RpcClient {
    /// The underlying VMMC handle (timing helpers, compute charging).
    pub fn vmmc(&self) -> &Vmmc {
        &self.vm
    }

    async fn call_inner(&self, proc_num: u32, args: &[u8], zero_copy: bool) -> Vec<u8> {
        let xid = self.next_xid.get();
        self.next_xid.set(xid + 1);
        let mut req = Vec::with_capacity(4 + args.len());
        req.extend_from_slice(&xid.to_le_bytes());
        req.extend_from_slice(args);
        if zero_copy {
            self.tx.send_frame_zero_copy(proc_num, &req).await;
        } else {
            // Sun-RPC-style marshaling copy.
            self.vm.local_copy(args.len()).await;
            self.tx.send_frame(proc_num, &req).await;
        }
        let frame = self.rx.recv().await;
        assert_eq!(frame.tag, proc_num, "reply for a different procedure");
        let rxid = u32::from_le_bytes(frame.data[0..4].try_into().unwrap());
        assert_eq!(rxid, xid, "reply transaction id mismatch");
        if !zero_copy {
            self.vm.local_copy(frame.data.len() - 4).await;
        }
        frame.data[4..].to_vec()
    }

    /// A synchronous RPC through the Sun-RPC-compatible path (marshaling
    /// copies on both ends).
    pub async fn call(&self, proc_num: u32, args: &[u8]) -> Vec<u8> {
        self.call_inner(proc_num, args, false).await
    }

    /// A synchronous RPC through the specialized fast path: no marshaling
    /// copies — arguments move directly via deliberate update.
    pub async fn call_fast(&self, proc_num: u32, args: &[u8]) -> Vec<u8> {
        self.call_inner(proc_num, args, true).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_core::DesignConfig;
    use shrimp_sim::Time;

    fn setup() -> (Cluster, RpcSystem) {
        let cluster = Cluster::builder(3).config(DesignConfig::default()).build();
        let rpc = RpcSystem::new(&cluster);
        (cluster, rpc)
    }

    #[test]
    fn call_roundtrip_and_dispatch_by_number() {
        let (cluster, rpc) = setup();
        let server = rpc.serve(1);
        server.register(1, |a| a.to_vec());
        server.register(2, |a| a.iter().rev().copied().collect());
        server.start();
        let client = rpc.connect(0, 1);
        let h = cluster.sim().spawn(async move {
            let echo = client.call(1, b"abc").await;
            let rev = client.call(2, b"abc").await;
            (echo, rev)
        });
        let (_, out) = cluster.run_until_complete(vec![h]);
        assert_eq!(out[0].0, b"abc");
        assert_eq!(out[0].1, b"cba");
        assert_eq!(server.calls_served(), 2);
    }

    #[test]
    fn multiple_clients_one_server() {
        let (cluster, rpc) = setup();
        let server = rpc.serve(0);
        server.register(9, |a| vec![a[0] * 2]);
        server.start();
        let mut handles = Vec::new();
        for c in 1..3 {
            let client = rpc.connect(c, 0);
            handles.push(cluster.sim().spawn(async move {
                let mut sum = 0u32;
                for i in 0..10u8 {
                    sum += client.call(9, &[i]).await[0] as u32;
                }
                sum
            }));
        }
        let (_, out) = cluster.run_until_complete(handles);
        assert_eq!(out, vec![90, 90]);
        assert_eq!(server.calls_served(), 20);
    }

    #[test]
    fn connect_after_start_also_serves() {
        let (cluster, rpc) = setup();
        let server = rpc.serve(2);
        server.register(5, |_| b"late".to_vec());
        server.start();
        let client = rpc.connect(0, 2); // after start
        let h = cluster
            .sim()
            .spawn(async move { client.call(5, &[]).await });
        let (_, out) = cluster.run_until_complete(vec![h]);
        assert_eq!(out[0], b"late");
    }

    #[test]
    fn fast_path_is_faster_and_equivalent() {
        let run = |fast: bool| -> (Time, Vec<u8>) {
            let (cluster, rpc) = setup();
            let server = rpc.serve(1);
            server.register(3, |a| a.to_vec());
            server.start();
            let client = rpc.connect(0, 1);
            let h = cluster.sim().spawn(async move {
                let args = vec![7u8; 8000];
                let mut last = Vec::new();
                for _ in 0..8 {
                    last = if fast {
                        client.call_fast(3, &args).await
                    } else {
                        client.call(3, &args).await
                    };
                }
                last
            });
            let (t, mut out) = cluster.run_until_complete(vec![h]);
            (t, out.remove(0))
        };
        let (t_std, r_std) = run(false);
        let (t_fast, r_fast) = run(true);
        assert_eq!(r_std, r_fast);
        assert!(
            t_fast < t_std,
            "specialized RPC ({t_fast}) not faster than compatible ({t_std})"
        );
    }

    #[test]
    fn unknown_procedure_yields_empty_fault_reply() {
        let (cluster, rpc) = setup();
        let server = rpc.serve(1);
        server.start();
        let client = rpc.connect(0, 1);
        let h = cluster
            .sim()
            .spawn(async move { client.call(99, b"x").await });
        let (_, out) = cluster.run_until_complete(vec![h]);
        assert!(out[0].is_empty());
    }

    #[test]
    fn rpc_latency_is_tens_of_microseconds() {
        // The SHRIMP fast-RPC paper reports null-RPC round trips in the
        // ~10-20 us range on this hardware class.
        let (cluster, rpc) = setup();
        let server = rpc.serve(1);
        server.register(1, |_| Vec::new());
        server.start();
        let client = rpc.connect(0, 1);
        let h = cluster.sim().spawn(async move {
            let t0 = client.vm.sim().now();
            for _ in 0..10 {
                client.call_fast(1, &[]).await;
            }
            (client.vm.sim().now() - t0) / 10
        });
        let (_, out) = cluster.run_until_complete(vec![h]);
        let rtt = out[0];
        assert!(
            rtt > shrimp_sim::time::us(10) && rtt < shrimp_sim::time::us(80),
            "null RPC rtt {} us out of range",
            shrimp_sim::time::to_us(rtt)
        );
    }
}
