//! Minimal JSON reader for sweep artifacts — no external dependencies.
//!
//! The harness writes `sweep.json` and the committed baselines itself
//! (flat, hand-formatted), and this parser reads them back for the
//! regression gate. Numbers keep their source text so `u64` metrics
//! (checksums!) round-trip exactly instead of passing through `f64`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text for lossless `u64` access.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is irrelevant to the gate, so a map
    /// keyed by name keeps lookups simple.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as an exact `u64`, if this is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }
}

/// Parses one JSON document. Returns a human-readable error on malformed
/// input (byte offset plus what was expected).
pub fn parse(text: &str) -> Result<Json, String> {
    parse_bytes(text.as_bytes())
}

/// Parses one JSON document from raw bytes — the artifact files arrive as
/// bytes off disk, and nothing guarantees they are valid UTF-8. Malformed
/// input of any kind (including invalid UTF-8 inside strings or numbers)
/// is an `Err`, never a panic.
pub fn parse_bytes(bytes: &[u8]) -> Result<Json, String> {
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(format!("expected a value at byte {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected '{lit}' at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected a number at byte {start}"));
    }
    // The scan above admits ASCII only, but propagate the error rather
    // than unwrap: a parser must never panic on input bytes.
    let text = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| format!("invalid UTF-8 in number at byte {start}"))?;
    Ok(Json::Num(text.to_string()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let ch_len = utf8_len(c);
                let chunk = b
                    .get(*pos..*pos + ch_len)
                    .ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_sweep_row_shape() {
        let doc = parse(
            r#"{"schema": "shrimp-sweep-v1", "rows": [
                {"id": "fig3/a/p4", "status": "ok",
                 "metrics": {"elapsed_ns": 12345678901234567890, "checksum": 42}}
            ]}"#,
        )
        .unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("shrimp-sweep-v1"));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        let metrics = rows[0].get("metrics").unwrap();
        // Exact u64 round-trip beyond f64's 2^53 mantissa.
        assert_eq!(
            metrics.get("elapsed_ns").unwrap().as_u64(),
            Some(12345678901234567890)
        );
        assert_eq!(metrics.get("checksum").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn non_utf8_bytes_are_an_error_not_a_panic() {
        // Invalid UTF-8 inside a quoted string.
        assert!(parse_bytes(b"\"\xff\xfe\"").is_err());
        // A lone continuation byte where a value is expected.
        assert!(parse_bytes(b"\x80").is_err());
        // Truncated multi-byte sequence at end of string.
        assert!(parse_bytes(b"\"\xe2\x82\"").is_err());
        // Valid UTF-8 through the bytes entry point still parses.
        assert_eq!(
            parse_bytes("\"caf\u{e9}\"".as_bytes()).unwrap().as_str(),
            Some("café")
        );
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let s = "a \"quoted\"\nline\\with\tescapes";
        let doc = parse(&format!("\"{}\"", escape(s))).unwrap();
        assert_eq!(doc.as_str(), Some(s));
    }
}
