//! Chrome `trace_event` export: renders one run's [`Observation`] as a
//! JSON file loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! Layout follows the trace-viewer convention for a simulated cluster:
//! one **pid per node** (from the event's structured `"node"` field; events
//! without one land on pid 0) and one **tid per [`Category`]**, so the
//! viewer shows a per-node process group with NIC / network / SVM / VMMC
//! timelines stacked inside it. Timestamps are the simulator's picoseconds
//! rendered as microseconds with six fractional digits via integer math —
//! no float formatting — so the file is byte-identical across hosts.
//!
//! The metrics snapshot is embedded under a top-level `"metrics"` key
//! (trace viewers ignore unknown keys), making each trace file a
//! self-contained record of the run.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use shrimp_bench::Observation;
use shrimp_sim::metrics::MetricValue;
use shrimp_sim::{Category, Time, TraceEvent};

use crate::json::escape;

/// The fixed thread id of a category. Stable across runs and releases so
/// saved traces stay comparable.
pub fn category_tid(category: Category) -> u64 {
    match category {
        Category::Nic => 1,
        Category::Net => 2,
        Category::Mem => 3,
        Category::Svm => 4,
        Category::Core => 5,
        Category::Nx => 6,
        Category::Sockets => 7,
        Category::App => 8,
        Category::Other => 9,
    }
}

/// Picoseconds as a Chrome `ts` literal: microseconds with a six-digit
/// fraction, formatted with integer arithmetic for cross-host stability.
fn ts_us(at: Time) -> String {
    format!("{}.{:06}", at / 1_000_000, at % 1_000_000)
}

fn event_pid(e: &TraceEvent) -> u64 {
    e.field("node").unwrap_or(0)
}

/// Renders an observation as a Chrome trace document.
pub fn to_chrome_json(run_id: &str, obs: &Observation) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"displayTimeUnit\": \"ms\",");
    let _ = writeln!(out, "  \"runId\": \"{}\",", escape(run_id));
    let _ = writeln!(out, "  \"traceDropped\": {},", obs.trace_dropped);
    out.push_str("  \"traceEvents\": [\n");

    // Metadata first: name every process (node) and thread (category)
    // that appears, in deterministic order.
    let pids: BTreeSet<u64> = obs.events.iter().map(event_pid).collect();
    let threads: BTreeSet<(u64, Category)> = obs
        .events
        .iter()
        .map(|e| (event_pid(e), e.category))
        .collect();
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
    };
    for pid in &pids {
        sep(&mut out);
        let _ = write!(
            out,
            "    {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
             \"args\": {{\"name\": \"node {pid}\"}}}}"
        );
    }
    for (pid, cat) in &threads {
        sep(&mut out);
        let _ = write!(
            out,
            "    {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            category_tid(*cat),
            cat.as_str()
        );
    }

    // The timeline: one instant event per trace row, thread-scoped.
    for e in &obs.events {
        sep(&mut out);
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \
             \"ts\": {}, \"pid\": {}, \"tid\": {}, \"args\": {{",
            escape(&e.message),
            e.category.as_str(),
            ts_us(e.at),
            event_pid(e),
            category_tid(e.category),
        );
        for (j, (k, v)) in e.kv.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{k}\": {v}");
        }
        out.push_str("}}");
    }
    out.push_str("\n  ],\n");

    // The metrics snapshot, same shape as the sweep row entries.
    out.push_str("  \"metrics\": {");
    for (i, s) in obs.metrics.samples.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}/{}\": ", s.category.as_str(), s.name);
        match &s.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Gauge { last, max } => {
                let _ = write!(
                    out,
                    "{{\"kind\": \"gauge\", \"last\": {last}, \"max\": {max}}}"
                );
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "{{\"kind\": \"histogram\", \"count\": {}, \"sum\": {}, \"min\": {}, \
                     \"max\": {}, \"buckets\": {:?}}}",
                    h.count, h.sum, h.min, h.max, h.buckets
                );
            }
        }
    }
    out.push_str("}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use shrimp_sim::{MetricsRegistry, TraceSink};

    fn sample_observation() -> Observation {
        let sink = TraceSink::new();
        sink.enable(None);
        sink.record_kv(
            1_500_000,
            Category::Nic,
            vec![("node", 0), ("len", 64)],
            "DU out".into(),
        );
        sink.record_kv(
            2_750_001,
            Category::Net,
            vec![("node", 1), ("hops", 2)],
            "packet".into(),
        );
        let m = MetricsRegistry::new();
        m.enable();
        m.counter_add(Category::Net, "packets", 2);
        m.observe(Category::Core, "send_latency_ps", 1_000_000);
        Observation {
            events: sink.take(),
            trace_dropped: 0,
            metrics: m.snapshot(),
        }
    }

    #[test]
    fn chrome_document_is_valid_and_shaped() {
        let text = to_chrome_json("fig3/test/p2", &sample_observation());
        let doc = json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 process_name + 2 thread_name + 2 instants.
        assert_eq!(events.len(), 6);
        let meta: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .collect();
        assert_eq!(meta.len(), 4);
        let instants: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
            .collect();
        assert_eq!(instants.len(), 2);
        // pid routes by the "node" kv; tid by category.
        assert_eq!(instants[0].get("pid").unwrap().as_u64(), Some(0));
        assert_eq!(instants[0].get("tid").unwrap().as_u64(), Some(1)); // nic
        assert_eq!(instants[1].get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(instants[1].get("tid").unwrap().as_u64(), Some(2)); // net
                                                                       // ts is integer-formatted microseconds: 1_500_000 ps = 1.5 us.
        assert!(text.contains("\"ts\": 1.500000"), "{text}");
        assert!(text.contains("\"ts\": 2.750001"), "{text}");
        // The metrics snapshot rides along.
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(metrics.get("net/packets").unwrap().as_u64(), Some(2));
        let hist = metrics.get("core/send_latency_ps").unwrap();
        assert_eq!(hist.get("kind").unwrap().as_str(), Some("histogram"));
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn export_is_deterministic() {
        let a = to_chrome_json("id", &sample_observation());
        let b = to_chrome_json("id", &sample_observation());
        assert_eq!(a, b);
    }
}
