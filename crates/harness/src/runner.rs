//! Parallel sweep execution: work-stealing across `std::thread` workers,
//! with per-run wall-clock timeouts and panic isolation.
//!
//! Each run is an independent, deterministic single-threaded DES — the
//! matrix is embarrassingly parallel, so the runner only has to hand out
//! indices. Every run executes on its own freshly spawned thread so a
//! wedged simulation can be timed out (the worker abandons the thread and
//! moves on) and a panicking one is contained by `catch_unwind` and
//! reported as a failed row instead of killing the sweep.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, Once};
use std::thread;
use std::time::Duration;

use shrimp_bench::{App, Observation, PerfSample, RunRecord, RunSpec};

/// How one run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    /// Completed; metrics captured.
    Ok(RunRecord),
    /// The simulation panicked (message attached).
    Panicked(String),
    /// The run exceeded the wall-clock timeout and was abandoned.
    TimedOut,
}

impl RunStatus {
    /// Short machine-readable label (`"ok"`, `"panic"`, `"timeout"`).
    pub fn label(&self) -> &'static str {
        match self {
            RunStatus::Ok(_) => "ok",
            RunStatus::Panicked(_) => "panic",
            RunStatus::TimedOut => "timeout",
        }
    }

    /// The metrics, when the run completed.
    pub fn record(&self) -> Option<&RunRecord> {
        match self {
            RunStatus::Ok(r) => Some(r),
            _ => None,
        }
    }
}

/// One completed (or failed) run of the sweep.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Index of the spec in the input slice (rows are sorted by this, so
    /// output order is independent of worker interleaving).
    pub index: usize,
    /// The spec that ran.
    pub spec: RunSpec,
    /// How it ended.
    pub status: RunStatus,
    /// Host-side wall-clock/events sample for completed runs. Kept outside
    /// [`RunStatus`] (and outside `sweep.json`) so the deterministic artifact
    /// never sees host timing; `--perf` renders it into `results/perf.json`.
    pub perf: Option<PerfSample>,
    /// Trace timeline + metrics snapshot, present only when the sweep ran
    /// with [`RunnerOptions::observe`] (`--trace-out`). Deterministic
    /// simulated data; `sweep.json` embeds the metrics per row and the
    /// Chrome-trace exporter renders the timeline.
    pub obs: Option<Observation>,
    /// The encoded [`ClusterCheckpoint`](shrimp_core::ClusterCheckpoint)
    /// this run produced (or echoed), present only on warm-start rows when
    /// the sweep ran with [`RunnerOptions::checkpoint_out`]
    /// (`--checkpoint-out`). Kept beside — never inside — `sweep.json`.
    pub checkpoint: Option<Vec<u8>>,
}

/// Runner knobs.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Per-run wall-clock timeout.
    pub timeout: Duration,
    /// Record each run's trace timeline and metrics snapshot
    /// ([`RunResult::obs`]). Off by default: the unobserved path leaves the
    /// simulator's trace sink and metrics registry disabled, keeping
    /// `sweep.json` byte-identical to the committed baselines.
    pub observe: bool,
    /// Sweep-wide shard count for engine-parallel runs whose spec says
    /// [`Shards::Auto`](shrimp_bench::Shards::Auto). Pinned rows ignore it,
    /// cluster runs are unaffected, and every [`RunRecord`] is
    /// byte-identical at any setting — only wall-clock can change.
    pub shards: usize,
    /// A serialized [`ClusterCheckpoint`](shrimp_core::ClusterCheckpoint)
    /// for warm-start rows to resume from (`--checkpoint-in`). Warm rows
    /// skip their warmup phase and fork from this image; a fingerprint
    /// mismatch fails the row loudly. Non-warm rows ignore it.
    pub checkpoint_in: Option<Arc<Vec<u8>>>,
    /// Capture each warm-start row's checkpoint bytes into
    /// [`RunResult::checkpoint`] (`--checkpoint-out`). Every warm row in a
    /// sweep shares one warmup fingerprint, so all captured artifacts are
    /// byte-identical; the CLI asserts that before writing the file.
    pub checkpoint_out: bool,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            workers: thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            timeout: Duration::from_secs(600),
            observe: false,
            shards: 1,
            checkpoint_in: None,
            checkpoint_out: false,
        }
    }
}

/// Executes every spec and returns results sorted by spec index.
///
/// Work is sharded round-robin into one deque per worker; an idle worker
/// pops from its own deque front and steals from the back of the longest
/// other deque. Per-run wall-clock (used only for timeouts) never enters
/// the results, so the row set is identical for any worker count.
pub fn run_sweep(specs: &[RunSpec], opts: &RunnerOptions) -> Vec<RunResult> {
    run_sweep_with_progress(specs, opts, |_| {})
}

/// [`run_sweep`] with a per-completion callback (progress reporting).
/// The callback runs on worker threads and must not assume ordering.
pub fn run_sweep_with_progress<F>(
    specs: &[RunSpec],
    opts: &RunnerOptions,
    on_done: F,
) -> Vec<RunResult>
where
    F: Fn(&RunResult) + Send + Sync,
{
    if specs.is_empty() {
        return Vec::new();
    }
    let workers = opts.workers.clamp(1, specs.len());
    let deques: Arc<Vec<Mutex<VecDeque<usize>>>> =
        Arc::new((0..workers).map(|_| Mutex::new(VecDeque::new())).collect());
    for (i, _) in specs.iter().enumerate() {
        deques[i % workers].lock().unwrap().push_back(i);
    }

    let results: Mutex<Vec<RunResult>> = Mutex::new(Vec::with_capacity(specs.len()));
    let on_done = &on_done;
    let results_ref = &results;
    thread::scope(|scope| {
        for w in 0..workers {
            let deques = Arc::clone(&deques);
            let timeout = opts.timeout;
            let observe = opts.observe;
            let shards = opts.shards;
            let checkpoint_in = opts.checkpoint_in.clone();
            let checkpoint_out = opts.checkpoint_out;
            scope.spawn(move || {
                while let Some(index) = next_index(&deques, w) {
                    let spec = specs[index].clone();
                    let (status, perf, obs, checkpoint) = execute_isolated(
                        spec.clone(),
                        timeout,
                        observe,
                        shards,
                        checkpoint_in.clone(),
                        checkpoint_out,
                    );
                    let result = RunResult {
                        index,
                        spec,
                        status,
                        perf,
                        obs,
                        checkpoint,
                    };
                    on_done(&result);
                    results_ref.lock().unwrap().push(result);
                }
            });
        }
    });

    let mut rows = results.into_inner().unwrap();
    rows.sort_by_key(|r| r.index);
    rows
}

/// Pops work for worker `w`: own deque first, then steal from the back of
/// the fullest other deque.
fn next_index(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = deques[w].lock().unwrap().pop_front() {
        return Some(i);
    }
    // Steal from whichever victim currently has the most queued work.
    let victim = (0..deques.len())
        .filter(|&v| v != w)
        .max_by_key(|&v| deques[v].lock().unwrap().len())?;
    deques[victim].lock().unwrap().pop_back()
}

/// Runs one spec on a dedicated thread, converting panics into
/// [`RunStatus::Panicked`] and over-long runs into [`RunStatus::TimedOut`]
/// (the run thread is abandoned; a detached thread cannot corrupt other
/// runs since every run owns its whole simulation).
fn execute_isolated(
    spec: RunSpec,
    timeout: Duration,
    observe: bool,
    shards: usize,
    checkpoint_in: Option<Arc<Vec<u8>>>,
    checkpoint_out: bool,
) -> (
    RunStatus,
    Option<PerfSample>,
    Option<Observation>,
    Option<Vec<u8>>,
) {
    let (tx, rx) = mpsc::channel();
    let id = spec.id();
    let handle = thread::Builder::new()
        .name(format!("run-{id}"))
        .spawn(move || {
            install_panic_location_hook();
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                // Warm-start rows route through the checkpoint-aware path
                // whenever a checkpoint flows in or out; without either
                // flag they take the ordinary dispatch below, which runs
                // the identical cold pipeline.
                let route = spec.app == App::WarmClusterNodes
                    && (checkpoint_in.is_some() || checkpoint_out);
                if route {
                    let bytes_in = checkpoint_in.as_ref().map(|b| b.as_slice());
                    let (record, perf, bytes) = spec
                        .execute_warm_at(shards, bytes_in)
                        .unwrap_or_else(|e| panic!("checkpoint rejected: {e}"));
                    (
                        record,
                        perf,
                        observe.then(Observation::default),
                        checkpoint_out.then_some(bytes),
                    )
                } else if observe {
                    let (record, perf, obs) = spec.execute_observed_at(shards);
                    (record, perf, Some(obs), None)
                } else {
                    let (record, perf) = spec.execute_timed_at(shards);
                    (record, perf, None, None)
                }
            }));
            // The receiver may have given up (timeout); ignore send errors.
            let _ = tx.send(outcome.map_err(|payload| {
                let msg = panic_message(&*payload);
                match LAST_PANIC_LOCATION.with(|l| l.borrow_mut().take()) {
                    Some(loc) => format!("{msg} (at {loc})"),
                    None => msg,
                }
            }));
        })
        .expect("spawn run thread");
    match rx.recv_timeout(timeout) {
        Ok(Ok((record, perf, obs, checkpoint))) => {
            let _ = handle.join();
            (RunStatus::Ok(record), Some(perf), obs, checkpoint)
        }
        Ok(Err(msg)) => {
            let _ = handle.join();
            (RunStatus::Panicked(msg), None, None, None)
        }
        Err(_) => (RunStatus::TimedOut, None, None, None),
    }
}

thread_local! {
    /// `file:line` of the most recent panic on this thread; taken by the
    /// run thread to annotate its [`RunStatus::Panicked`] row.
    static LAST_PANIC_LOCATION: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Installs (once, process-wide) a panic hook that records the panic
/// location into [`LAST_PANIC_LOCATION`] before delegating to the previous
/// hook. Run threads are one-per-run, so a recorded location can only
/// belong to that thread's own run.
fn install_panic_location_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(loc) = info.location() {
                let s = format!("{}:{}", loc.file(), loc.line());
                LAST_PANIC_LOCATION.with(|l| *l.borrow_mut() = Some(s));
            }
            prev(info);
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_bench::{App, Scale, Variant};

    fn quick_specs(n: usize) -> Vec<RunSpec> {
        (0..n)
            .map(|i| RunSpec::new("test", App::DfsSockets, 2, Scale::Smoke).with_seed(i as u64 + 1))
            .collect()
    }

    #[test]
    fn all_specs_run_exactly_once_in_index_order() {
        let specs = quick_specs(5);
        let results = run_sweep(
            &specs,
            &RunnerOptions {
                workers: 3,
                ..RunnerOptions::default()
            },
        );
        assert_eq!(results.len(), 5);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.status.label(), "ok");
        }
    }

    #[test]
    fn a_panicking_run_is_reported_not_fatal() {
        // Variant::ForcedAu on an SVM app panics in RunSpec dispatch —
        // exactly the class of bug the isolation must contain.
        let mut specs = quick_specs(2);
        specs.insert(
            1,
            RunSpec::new("test", App::OceanSvm, 2, Scale::Smoke).with_variant(Variant::ForcedAu),
        );
        let results = run_sweep(
            &specs,
            &RunnerOptions {
                workers: 2,
                ..RunnerOptions::default()
            },
        );
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].status.label(), "ok");
        assert_eq!(results[1].status.label(), "panic");
        match &results[1].status {
            RunStatus::Panicked(msg) => {
                assert!(msg.contains("does not apply"), "got: {msg}");
                assert!(msg.contains("(at "), "panic location missing: {msg}");
            }
            s => panic!("expected panic status, got {s:?}"),
        }
        assert_eq!(results[2].status.label(), "ok");
    }

    #[test]
    fn an_overlong_run_times_out() {
        let specs = vec![RunSpec::new("test", App::OceanSvm, 2, Scale::Smoke)];
        let results = run_sweep(
            &specs,
            &RunnerOptions {
                workers: 1,
                timeout: Duration::from_millis(1),
                ..RunnerOptions::default()
            },
        );
        assert_eq!(results[0].status.label(), "timeout");
        assert!(results[0].status.record().is_none());
    }
}
