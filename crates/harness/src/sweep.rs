//! Sweep artifact: the flat row schema written to `results/sweep.json`
//! and the committed baselines, plus the human-readable comparison table.
//!
//! Rows contain **simulated, deterministic quantities only** — no
//! wall-clock, no dates, no host information — so the file is
//! byte-identical whether the sweep ran on 1 worker or 16, today or next
//! year. Rows appear in matrix order (spec index), not completion order.

use std::fmt::Write as _;

use shrimp_bench::Observation;
use shrimp_sim::metrics::{HistogramSnapshot, MetricValue};
use shrimp_sim::time;

use crate::json::escape;
use crate::runner::{RunResult, RunStatus};

/// Schema tag written into every sweep document. `v2` added the optional
/// observed-metrics entries (histograms/gauges as nested objects under
/// `"<category>/<name>"` keys) to the per-row `metrics` block; rows from
/// unobserved sweeps are byte-identical to `v1` rows.
pub const SCHEMA: &str = "shrimp-sweep-v2";

/// The previous schema tag; the regression gate reads both.
pub const SCHEMA_V1: &str = "shrimp-sweep-v1";

/// Serializes results as the sweep document.
pub fn to_json(scale: &str, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"scale\": \"{}\",", escape(scale));
    out.push_str("  \"rows\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"id\": \"{}\", \"experiment\": \"{}\", \"app\": \"{}\", \
             \"variant\": \"{}\", \"nodes\": {}, \"seed\": {}, \"knobs\": \"{}\", \
             \"status\": \"{}\"",
            escape(&r.spec.id()),
            escape(r.spec.experiment),
            escape(r.spec.app.name()),
            escape(r.spec.variant.label()),
            r.spec.nodes,
            r.spec.seed,
            escape(&r.spec.design_config().knob_summary()),
            r.status.label(),
        );
        match &r.status {
            RunStatus::Ok(record) => {
                out.push_str(", \"metrics\": {");
                for (j, (k, v)) in record.fields().iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{k}\": {v}");
                }
                if let Some(obs) = &r.obs {
                    write_observed_metrics(&mut out, obs);
                }
                out.push('}');
            }
            RunStatus::Panicked(msg) => {
                let _ = write!(out, ", \"error\": \"{}\"", escape(msg));
            }
            RunStatus::TimedOut => {}
        }
        out.push('}');
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Appends the observed-metrics entries to an open per-row `metrics`
/// object: one `"<category>/<name>"` key per registry instrument, in
/// snapshot (deterministic) order. Counters serialize as plain numbers
/// like the flat record fields; gauges and histograms as nested objects
/// with a `"kind"` discriminator. The slash in the key keeps the observed
/// namespace disjoint from the gated flat fields, and the regression gate
/// skips nested objects anyway (`as_u64` on an object is `None`).
fn write_observed_metrics(out: &mut String, obs: &Observation) {
    for s in &obs.metrics.samples {
        let _ = write!(out, ", \"{}/{}\": ", s.category.as_str(), s.name);
        match &s.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Gauge { last, max } => {
                let _ = write!(
                    out,
                    "{{\"kind\": \"gauge\", \"last\": {last}, \"max\": {max}}}"
                );
            }
            MetricValue::Histogram(h) => write_histogram(out, h),
        }
    }
}

fn write_histogram(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"kind\": \"histogram\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
         \"buckets\": [",
        h.count, h.sum, h.min, h.max
    );
    for (i, b) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{b}");
    }
    out.push_str("]}");
}

/// Renders the human-readable comparison table: one section per
/// experiment group, one line per run, simulated time plus headline
/// counters.
pub fn render_table(results: &[RunResult]) -> String {
    let mut out = String::new();
    let mut current = "";
    for r in results {
        if r.spec.experiment != current {
            current = r.spec.experiment;
            let _ = writeln!(out, "\n== {current} ==");
            let _ = writeln!(
                out,
                "{:<44} {:>10} {:>10} {:>8} {:>10} {:>8}",
                "run", "sim(s)", "messages", "intr", "net-pkts", "status"
            );
        }
        match &r.status {
            RunStatus::Ok(m) => {
                let _ = writeln!(
                    out,
                    "{:<44} {:>10.3} {:>10} {:>8} {:>10} {:>8}",
                    r.spec.id(),
                    time::to_secs(m.elapsed),
                    m.messages,
                    m.interrupts,
                    m.net_packets,
                    "ok"
                );
            }
            status => {
                let _ = writeln!(
                    out,
                    "{:<44} {:>10} {:>10} {:>8} {:>10} {:>8}",
                    r.spec.id(),
                    "-",
                    "-",
                    "-",
                    "-",
                    status.label()
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use shrimp_bench::{App, RunSpec, Scale};

    fn fake_results() -> Vec<RunResult> {
        let spec = RunSpec::new("test", App::DfsSockets, 2, Scale::Smoke);
        let record = spec.execute();
        vec![
            RunResult {
                index: 0,
                spec: spec.clone(),
                status: RunStatus::Ok(record),
                perf: None,
                obs: None,
                checkpoint: None,
            },
            RunResult {
                index: 1,
                spec,
                status: RunStatus::Panicked("boom".to_string()),
                perf: None,
                obs: None,
                checkpoint: None,
            },
        ]
    }

    #[test]
    fn json_round_trips_and_has_no_wall_clock() {
        let results = fake_results();
        let text = to_json("smoke", &results);
        let doc = json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("status").unwrap().as_str(), Some("ok"));
        assert!(rows[0].get("metrics").unwrap().get("elapsed_ns").is_some());
        assert_eq!(rows[1].get("status").unwrap().as_str(), Some("panic"));
        assert_eq!(rows[1].get("error").unwrap().as_str(), Some("boom"));
        // Determinism guard: nothing date- or host-shaped in the artifact.
        for needle in ["wall", "date", "host"] {
            assert!(!text.contains(needle), "artifact leaks '{needle}'");
        }
    }

    #[test]
    fn table_groups_by_experiment() {
        let text = render_table(&fake_results());
        assert!(text.contains("== test =="));
        assert!(text.contains("panic"));
    }
}
