//! Baseline regression gate: diff a fresh sweep against committed golden
//! metrics with per-metric tolerance bands.
//!
//! The simulation is deterministic, so at a fixed code revision every
//! metric matches its baseline exactly; the tolerance bands absorb small
//! *intentional* model refinements without forcing a baseline refresh for
//! every timing tweak. Checksums and syscall counts are exact: a changed
//! answer is never tolerable drift. A baseline row whose run is missing
//! from the fresh sweep (or no longer completes) is a regression; fresh
//! rows with no baseline counterpart are reported but pass — they gate
//! once a refreshed baseline commits them.

use std::fmt;

use crate::json::Json;
use crate::runner::RunResult;

/// Per-metric relative tolerance bands (fraction of the baseline value).
/// Metrics absent from this table use [`DEFAULT_TOLERANCE`].
pub const TOLERANCES: &[(&str, f64)] = &[
    ("elapsed_ns", 0.15),
    ("checksum", 0.0),
    ("messages", 0.05),
    ("notifications", 0.05),
    ("interrupts", 0.10),
    ("syscalls", 0.0),
    ("net_packets", 0.05),
    ("net_bytes", 0.05),
];

/// Band applied to metrics not named in [`TOLERANCES`].
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// The tolerance band for one metric.
pub fn tolerance_for(metric: &str) -> f64 {
    TOLERANCES
        .iter()
        .find(|(name, _)| *name == metric)
        .map(|&(_, tol)| tol)
        .unwrap_or(DEFAULT_TOLERANCE)
}

/// One detected regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Run id the regression is in.
    pub id: String,
    /// What regressed.
    pub kind: RegressionKind,
}

/// The ways a run can regress against its baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum RegressionKind {
    /// The run is in the baseline but absent from the fresh sweep.
    MissingRun,
    /// The run no longer completes (panic/timeout); label attached.
    Failed(String),
    /// A metric moved outside its tolerance band.
    Metric {
        /// Metric name.
        name: String,
        /// Committed value.
        baseline: u64,
        /// Fresh value.
        fresh: u64,
        /// Observed relative drift.
        drift: f64,
        /// Allowed band.
        tolerance: f64,
    },
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            RegressionKind::MissingRun => {
                write!(f, "{}: in baseline but missing from this sweep", self.id)
            }
            RegressionKind::Failed(label) => {
                write!(f, "{}: run no longer completes ({label})", self.id)
            }
            RegressionKind::Metric {
                name,
                baseline,
                fresh,
                drift,
                tolerance,
            } => write!(
                f,
                "{}: {} drifted {:+.1}% (baseline {}, now {}, band ±{:.0}%)",
                self.id,
                name,
                drift * 100.0,
                baseline,
                fresh,
                tolerance * 100.0
            ),
        }
    }
}

/// Outcome of gating one sweep against one baseline.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Every regression found (empty: gate passes).
    pub regressions: Vec<Regression>,
    /// Baseline rows compared.
    pub compared: usize,
    /// Fresh run ids with no baseline counterpart (informational).
    pub uncovered: Vec<String>,
}

impl GateOutcome {
    /// `true` when nothing regressed.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the gate verdict for humans.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.passed() {
            out.push_str(&format!(
                "gate PASSED: {} baseline rows within tolerance",
                self.compared
            ));
        } else {
            out.push_str(&format!(
                "gate FAILED: {} regression(s) across {} compared rows\n",
                self.regressions.len(),
                self.compared
            ));
            for r in &self.regressions {
                out.push_str(&format!("  REGRESSION {r}\n"));
            }
        }
        if !self.uncovered.is_empty() {
            out.push_str(&format!(
                "\nnote: {} run(s) have no baseline yet (run --write-baseline to cover them)",
                self.uncovered.len()
            ));
        }
        out
    }
}

/// Diffs fresh `results` against a parsed `baseline` document.
///
/// Accepts both the current sweep schema and `v1` baselines: `v2` only
/// added optional nested observed-metrics entries, which the comparison
/// below skips anyway (`as_u64` on an object is `None`).
pub fn check(baseline: &Json, results: &[RunResult]) -> Result<GateOutcome, String> {
    if let Some(schema) = baseline.get("schema").and_then(|v| v.as_str()) {
        if schema != crate::sweep::SCHEMA && schema != crate::sweep::SCHEMA_V1 {
            return Err(format!(
                "unsupported baseline schema \"{schema}\" (expected \"{}\" or \"{}\")",
                crate::sweep::SCHEMA,
                crate::sweep::SCHEMA_V1
            ));
        }
    }
    let rows = baseline
        .get("rows")
        .and_then(|r| r.as_arr())
        .ok_or("baseline has no \"rows\" array")?;
    let mut outcome = GateOutcome::default();
    let mut covered: Vec<&str> = Vec::new();

    for row in rows {
        let id = row
            .get("id")
            .and_then(|v| v.as_str())
            .ok_or("baseline row missing \"id\"")?;
        covered.push(id);
        outcome.compared += 1;
        let Some(fresh) = results.iter().find(|r| r.spec.id() == id) else {
            outcome.regressions.push(Regression {
                id: id.to_string(),
                kind: RegressionKind::MissingRun,
            });
            continue;
        };
        let Some(record) = fresh.status.record() else {
            outcome.regressions.push(Regression {
                id: id.to_string(),
                kind: RegressionKind::Failed(fresh.status.label().to_string()),
            });
            continue;
        };
        let Some(metrics) = row.get("metrics") else {
            // Baseline recorded a failed run; completing now is an upgrade.
            continue;
        };
        for (name, fresh_value) in record.fields() {
            let Some(base_value) = metrics.get(name).and_then(|v| v.as_u64()) else {
                continue; // metric added since the baseline was written
            };
            let tolerance = tolerance_for(name);
            let drift = if base_value == fresh_value {
                0.0
            } else {
                (fresh_value as f64 - base_value as f64) / (base_value.max(1) as f64)
            };
            if drift.abs() > tolerance {
                outcome.regressions.push(Regression {
                    id: id.to_string(),
                    kind: RegressionKind::Metric {
                        name: name.to_string(),
                        baseline: base_value,
                        fresh: fresh_value,
                        drift,
                        tolerance,
                    },
                });
            }
        }
    }

    for r in results {
        let id = r.spec.id();
        if !covered.iter().any(|c| *c == id) {
            outcome.uncovered.push(id);
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::runner::RunStatus;
    use crate::sweep;
    use shrimp_bench::{App, RunSpec, Scale};

    fn one_result() -> Vec<RunResult> {
        let spec = RunSpec::new("test", App::DfsSockets, 2, Scale::Smoke);
        let record = spec.execute();
        vec![RunResult {
            index: 0,
            spec,
            status: RunStatus::Ok(record),
            perf: None,
            obs: None,
            checkpoint: None,
        }]
    }

    fn baseline_of(results: &[RunResult]) -> Json {
        json::parse(&sweep::to_json("smoke", results)).unwrap()
    }

    #[test]
    fn identical_metrics_pass() {
        let results = one_result();
        let outcome = check(&baseline_of(&results), &results).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.regressions);
        assert_eq!(outcome.compared, 1);
        assert!(outcome.uncovered.is_empty());
    }

    #[test]
    fn drift_within_tolerance_passes_outside_fails() {
        let results = one_result();
        let baseline = baseline_of(&results);
        // Nudge elapsed within its ±15% band: passes.
        let mut inside = results.clone();
        if let RunStatus::Ok(r) = &mut inside[0].status {
            r.elapsed += r.elapsed / 10; // +10%
        }
        assert!(check(&baseline, &inside).unwrap().passed());
        // Push it past the band: fails with a metric regression.
        let mut outside = results.clone();
        if let RunStatus::Ok(r) = &mut outside[0].status {
            r.elapsed *= 2; // +100%
        }
        let outcome = check(&baseline, &outside).unwrap();
        assert!(!outcome.passed());
        assert!(matches!(
            &outcome.regressions[0].kind,
            RegressionKind::Metric { name, .. } if name == "elapsed_ns"
        ));
    }

    #[test]
    fn checksum_tolerance_is_exact() {
        let results = one_result();
        let baseline = baseline_of(&results);
        let mut wrong = results.clone();
        if let RunStatus::Ok(r) = &mut wrong[0].status {
            r.checksum ^= 1;
        }
        let outcome = check(&baseline, &wrong).unwrap();
        assert!(!outcome.passed(), "a changed answer must always gate");
    }

    #[test]
    fn missing_and_failed_runs_are_regressions() {
        let results = one_result();
        let baseline = baseline_of(&results);
        let outcome = check(&baseline, &[]).unwrap();
        assert!(matches!(
            outcome.regressions[0].kind,
            RegressionKind::MissingRun
        ));
        let mut failed = results.clone();
        failed[0].status = RunStatus::TimedOut;
        let outcome = check(&baseline, &failed).unwrap();
        assert!(matches!(
            &outcome.regressions[0].kind,
            RegressionKind::Failed(label) if label == "timeout"
        ));
    }

    #[test]
    fn gate_reads_v1_and_v2_schemas_but_rejects_unknown() {
        let results = one_result();
        let v2 = baseline_of(&results);
        assert!(check(&v2, &results).unwrap().passed());
        // A v1 baseline (pre-observability rows are shaped identically).
        let v1 = json::parse(
            &sweep::to_json("smoke", &results).replace(sweep::SCHEMA, sweep::SCHEMA_V1),
        )
        .unwrap();
        assert_eq!(
            v1.get("schema").unwrap().as_str(),
            Some(sweep::SCHEMA_V1),
            "replace missed the schema tag"
        );
        assert!(check(&v1, &results).unwrap().passed());
        // Anything else is an explicit error, not silent mis-comparison.
        let v9 = json::parse("{\"schema\": \"shrimp-sweep-v9\", \"rows\": []}").unwrap();
        let err = check(&v9, &results).unwrap_err();
        assert!(err.contains("shrimp-sweep-v9"), "{err}");
    }

    #[test]
    fn uncovered_fresh_rows_pass_but_are_reported() {
        let results = one_result();
        let baseline = json::parse(&format!(
            "{{\"schema\": \"{}\", \"rows\": []}}",
            sweep::SCHEMA
        ))
        .unwrap();
        let outcome = check(&baseline, &results).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.uncovered.len(), 1);
    }
}
