//! Parallel experiment-sweep harness with baseline regression gating.
//!
//! `shrimp-harness` enumerates the EXPERIMENTS.md matrix as typed
//! [`shrimp_bench::RunSpec`]s — experiment × config knobs × seed — and
//! shards the runs across `std::thread` workers with a work-stealing
//! queue ([`runner`]). Each run is a deterministic single-threaded DES
//! executed under a wall-clock timeout with panic isolation, so one
//! wedged or crashing configuration costs a row, not the sweep.
//!
//! Results aggregate into `results/sweep.json` ([`sweep`], simulated
//! metrics only — byte-identical across worker counts) plus a
//! human-readable comparison table, and the [`gate`] diffs fresh runs
//! against committed golden metrics in `results/baselines/*.json` with
//! per-metric tolerance bands, exiting non-zero on regression. With
//! `--perf`, host wall-clock and simulator events/sec samples land in
//! `results/perf.json` ([`perf`]) — strictly apart from the deterministic
//! artifact — with their own generous throughput gate.
//!
//! ```text
//! cargo run --release -p shrimp-harness -- --smoke --workers 4
//! cargo run --release -p shrimp-harness -- --smoke --write-baseline
//! cargo run --release -p shrimp-harness -- --list
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod gate;
pub mod json;
pub mod perf;
pub mod runner;
pub mod sweep;

pub use gate::{check, GateOutcome, Regression, RegressionKind};
pub use runner::{run_sweep, RunResult, RunStatus, RunnerOptions};

#[cfg(test)]
mod determinism_tests {
    use crate::runner::{run_sweep, RunnerOptions};
    use crate::sweep;
    use shrimp_bench::{matrix, Scale};

    #[test]
    fn sweep_rows_are_identical_for_1_and_4_workers() {
        // A cheap slice of the real smoke matrix: every sockets-app row
        // (DFS and Render are the fastest smoke workloads) across all
        // experiment groups they appear in.
        let specs: Vec<_> = matrix(Scale::Smoke, 2)
            .into_iter()
            .filter(|s| s.id().contains("dfs"))
            .collect();
        assert!(specs.len() >= 3, "expected several DFS rows in the matrix");
        let serial = run_sweep(
            &specs,
            &RunnerOptions {
                workers: 1,
                ..RunnerOptions::default()
            },
        );
        let parallel = run_sweep(
            &specs,
            &RunnerOptions {
                workers: 4,
                ..RunnerOptions::default()
            },
        );
        let a = sweep::to_json("smoke", &serial);
        let b = sweep::to_json("smoke", &parallel);
        assert_eq!(a, b, "worker count leaked into the sweep artifact");
    }
}
