//! The `shrimp-harness` CLI: run the experiment sweep, write
//! `results/sweep.json`, and gate against committed baselines.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use shrimp_bench::{matrix, Scale};
use shrimp_harness::runner::{run_sweep_with_progress, RunnerOptions};
use shrimp_harness::{chrome, gate, json, perf, sweep};

const USAGE: &str = "\
shrimp-harness — parallel experiment sweep with baseline regression gating

USAGE:
  cargo run --release -p shrimp-harness -- [FLAGS]

FLAGS:
  --smoke             smallest problem sizes, 4 nodes (CI gate scale)
  --full              the paper's problem sizes, 16 nodes
                      (default without either flag: reduced bench sizes)
  --nodes <N>         override the matrix's maximum node count
  --workers <N>       worker threads (default: available parallelism)
  --shards <N>        shard count for engine-parallel runs without a pinned
                      /shK id segment (default 1). Artifacts and baselines
                      are byte-identical at every setting; only wall-clock
                      changes
  --require-speedup <X>
                      fail unless the widest pinned engine-parallel row ran
                      at >= X times the events/sec of its single-shard twin
                      (measure with --workers 1); reported and skipped when
                      the host has fewer hardware threads than shards
  --filter <SUBSTR>   only run specs whose id contains SUBSTR
  --experiment <GRP>  only run specs of one experiment group (e.g. chaos)
  --timeout-secs <N>  per-run wall-clock timeout (default 600)
  --out <PATH>        sweep artifact path (default results/sweep.json)
  --baseline <PATH>   baseline to gate against
                      (default results/baselines/<scale>.json, if present)
  --write-baseline    write the baseline file(s) instead of gating
  --no-gate           skip the regression gate
  --perf              also write host wall-clock/events-per-sec samples to
                      results/perf.json and gate them (generous ±40% band)
                      against results/baselines/perf-<scale>.json if present
  --perf-out <PATH>   perf artifact path (default results/perf.json)
  --perf-baseline <PATH>
                      perf baseline to gate against
                      (default results/baselines/perf-<scale>.json)
  --checkpoint-out <PATH>
                      capture the warm-start rows' post-warmup checkpoint
                      and write the (byte-identical, shard-count-invariant)
                      artifact to PATH after the sweep
  --checkpoint-in <PATH>
                      warm-start rows resume from the checkpoint at PATH
                      instead of re-running their warmup phase; a
                      fingerprint mismatch fails the row. Other rows are
                      unaffected, and sweep.json stays byte-identical
  --trace-out <PATH>  run with tracing + metrics enabled and export each
                      run's timeline as Chrome trace_event JSON (open in
                      chrome://tracing or ui.perfetto.dev); with several
                      runs, PATH gains a per-run id suffix. Also embeds
                      observed metrics in the sweep rows, so combine with
                      --filter and don't gate the output against a
                      baseline recorded without it
  --list              print the matrix's run ids and exit

EXIT STATUS:
  0  sweep completed, gate passed (or not applicable)
  1  a run failed (panic/timeout) or the gate found a regression
  2  usage error";

struct Cli {
    scale: Scale,
    nodes: Option<usize>,
    workers: Option<usize>,
    shards: usize,
    require_speedup: Option<f64>,
    filter: Option<String>,
    experiment: Option<String>,
    timeout: Duration,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    no_gate: bool,
    perf: bool,
    perf_out: Option<PathBuf>,
    perf_baseline: Option<PathBuf>,
    checkpoint_out: Option<PathBuf>,
    checkpoint_in: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    list: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        scale: Scale::Reduced,
        nodes: None,
        workers: None,
        shards: 1,
        require_speedup: None,
        filter: None,
        experiment: None,
        timeout: Duration::from_secs(600),
        out: None,
        baseline: None,
        write_baseline: false,
        no_gate: false,
        perf: false,
        perf_out: None,
        perf_baseline: None,
        checkpoint_out: None,
        checkpoint_in: None,
        trace_out: None,
        list: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(|v| v.to_string())
                .ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--smoke" => cli.scale = Scale::Smoke,
            "--full" => cli.scale = Scale::Full,
            "--nodes" => cli.nodes = Some(parse_num(&value("--nodes")?)?),
            "--workers" => cli.workers = Some(parse_num(&value("--workers")?)?),
            "--shards" => {
                cli.shards = parse_num(&value("--shards")?)?;
                if cli.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--require-speedup" => {
                let v = value("--require-speedup")?;
                cli.require_speedup =
                    Some(v.parse().map_err(|_| format!("'{v}' is not a number"))?);
            }
            "--filter" => cli.filter = Some(value("--filter")?),
            "--experiment" => cli.experiment = Some(value("--experiment")?),
            "--timeout-secs" => {
                cli.timeout = Duration::from_secs(parse_num(&value("--timeout-secs")?)? as u64)
            }
            "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
            "--baseline" => cli.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => cli.write_baseline = true,
            "--no-gate" => cli.no_gate = true,
            "--perf" => cli.perf = true,
            "--perf-out" => cli.perf_out = Some(PathBuf::from(value("--perf-out")?)),
            "--perf-baseline" => cli.perf_baseline = Some(PathBuf::from(value("--perf-baseline")?)),
            "--checkpoint-out" => {
                cli.checkpoint_out = Some(PathBuf::from(value("--checkpoint-out")?))
            }
            "--checkpoint-in" => cli.checkpoint_in = Some(PathBuf::from(value("--checkpoint-in")?)),
            "--trace-out" => cli.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--list" => cli.list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(cli)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("'{s}' is not a number"))
}

/// With several observed runs, `--trace-out results/trace.json` fans out to
/// `results/trace-<id>.json` per run, with the id's slashes flattened.
fn per_run_trace_path(base: &Path, id: &str) -> PathBuf {
    let sanitized = id.replace('/', "-");
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("json");
    base.with_file_name(format!("{stem}-{sanitized}.{ext}"))
}

/// `results/` next to the workspace root when run under cargo, else CWD.
fn results_dir() -> PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| {
            Path::new(&d)
                .ancestors()
                .nth(2)
                .unwrap_or(Path::new(&d))
                .to_path_buf()
        })
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("results")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let nodes = cli.nodes.unwrap_or_else(|| cli.scale.default_nodes());
    let mut specs = matrix(cli.scale, nodes);
    if let Some(group) = &cli.experiment {
        specs.retain(|s| s.experiment == group.as_str());
    }
    if let Some(filter) = &cli.filter {
        specs.retain(|s| s.id().contains(filter.as_str()));
    }
    if cli.list {
        for s in &specs {
            println!("{}", s.id());
        }
        return ExitCode::SUCCESS;
    }
    if specs.is_empty() {
        eprintln!("error: no runs match");
        return ExitCode::from(2);
    }

    let checkpoint_in = match &cli.checkpoint_in {
        Some(path) => match std::fs::read(path) {
            Ok(bytes) => Some(std::sync::Arc::new(bytes)),
            Err(e) => {
                eprintln!("error: reading checkpoint {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let opts = RunnerOptions {
        workers: cli.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }),
        timeout: cli.timeout,
        observe: cli.trace_out.is_some(),
        shards: cli.shards,
        checkpoint_in,
        checkpoint_out: cli.checkpoint_out.is_some(),
    };
    println!(
        "[shrimp-harness] {} runs at {} scale (max {} nodes) on {} workers, {}s timeout/run",
        specs.len(),
        cli.scale.label(),
        nodes,
        opts.workers.clamp(1, specs.len()),
        cli.timeout.as_secs(),
    );

    let total = specs.len();
    let done = std::sync::atomic::AtomicUsize::new(0);
    let results = run_sweep_with_progress(&specs, &opts, |r| {
        let n = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        println!("[{n:>3}/{total}] {:<8} {}", r.status.label(), r.spec.id());
    });

    let artifact = sweep::to_json(cli.scale.label(), &results);
    let out_path = cli
        .out
        .clone()
        .unwrap_or_else(|| results_dir().join("sweep.json"));
    if let Some(parent) = out_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&out_path, &artifact) {
        eprintln!("error: writing {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    print!("{}", sweep::render_table(&results));
    println!("\nwrote {}", out_path.display());

    // Every warm row forks from the same warmup fingerprint, so their
    // captured artifacts must be byte-identical — write one, refuse many.
    if let Some(ck_path) = &cli.checkpoint_out {
        let captured: Vec<&Vec<u8>> = results
            .iter()
            .filter_map(|r| r.checkpoint.as_ref())
            .collect();
        match captured.first() {
            None => {
                eprintln!(
                    "error: --checkpoint-out: no warm-start row completed \
                     (run the `warm` experiment group)"
                );
                return ExitCode::from(2);
            }
            Some(first) => {
                if captured.iter().any(|b| b != first) {
                    eprintln!("error: --checkpoint-out: warm rows captured diverging checkpoints");
                    return ExitCode::FAILURE;
                }
                if let Some(parent) = ck_path.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                if let Err(e) = std::fs::write(ck_path, first) {
                    eprintln!("error: writing {}: {e}", ck_path.display());
                    return ExitCode::from(2);
                }
                println!(
                    "wrote checkpoint {} ({} bytes)",
                    ck_path.display(),
                    first.len()
                );
            }
        }
    }

    if let Some(trace_path) = &cli.trace_out {
        let observed: Vec<_> = results.iter().filter(|r| r.obs.is_some()).collect();
        for r in &observed {
            let id = r.spec.id();
            let path = if observed.len() == 1 {
                trace_path.clone()
            } else {
                per_run_trace_path(trace_path, &id)
            };
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let doc = chrome::to_chrome_json(&id, r.obs.as_ref().expect("observed run"));
            if let Err(e) = std::fs::write(&path, doc) {
                eprintln!("error: writing {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("wrote trace {}", path.display());
        }
        if observed.is_empty() {
            println!("no completed runs to trace");
        }
    }

    // The perf artifact is written beside — never inside — the sweep: it
    // holds host wall-clock, which must not contaminate the deterministic
    // file or its baselines.
    let perf_artifact = cli.perf.then(|| perf::to_json(cli.scale.label(), &results));
    if let Some(text) = &perf_artifact {
        let perf_path = cli
            .perf_out
            .clone()
            .unwrap_or_else(|| results_dir().join("perf.json"));
        if let Some(parent) = perf_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&perf_path, text) {
            eprintln!("error: writing {}: {e}", perf_path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", perf_path.display());
    }

    let failed = results
        .iter()
        .filter(|r| r.status.record().is_none())
        .count();
    if failed > 0 {
        println!("{failed} run(s) failed (panic/timeout)");
    }

    let baseline_path = cli.baseline.clone().unwrap_or_else(|| {
        results_dir()
            .join("baselines")
            .join(format!("{}.json", cli.scale.label()))
    });
    let perf_baseline_path = cli.perf_baseline.clone().unwrap_or_else(|| {
        results_dir()
            .join("baselines")
            .join(format!("perf-{}.json", cli.scale.label()))
    });

    if cli.write_baseline {
        if let Some(parent) = baseline_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&baseline_path, &artifact) {
            eprintln!("error: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!("wrote baseline {}", baseline_path.display());
        if let Some(text) = &perf_artifact {
            if let Err(e) = std::fs::write(&perf_baseline_path, text) {
                eprintln!("error: writing {}: {e}", perf_baseline_path.display());
                return ExitCode::from(2);
            }
            println!("wrote perf baseline {}", perf_baseline_path.display());
        }
        return if failed > 0 {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let mut gate_failed = false;
    if !cli.no_gate {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match json::parse(&text).and_then(|doc| gate::check(&doc, &results)) {
                Ok(outcome) => {
                    println!("\n{}", outcome.render());
                    gate_failed = !outcome.passed();
                }
                Err(e) => {
                    eprintln!("error: baseline {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(_) if cli.baseline.is_none() => {
                println!(
                    "\nno baseline at {} — skipping gate (--write-baseline to create one)",
                    baseline_path.display()
                );
            }
            Err(e) => {
                eprintln!("error: reading {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    }

    if cli.perf && !cli.no_gate {
        match std::fs::read_to_string(&perf_baseline_path) {
            Ok(text) => match json::parse(&text).and_then(|doc| perf::check(&doc, &results)) {
                Ok(outcome) => {
                    println!("\n{}", outcome.render());
                    gate_failed = gate_failed || !outcome.passed();
                }
                Err(e) => {
                    eprintln!("error: perf baseline {}: {e}", perf_baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(_) if cli.perf_baseline.is_none() => {
                println!(
                    "\nno perf baseline at {} — skipping perf gate (--write-baseline to create one)",
                    perf_baseline_path.display()
                );
            }
            Err(e) => {
                eprintln!("error: reading {}: {e}", perf_baseline_path.display());
                return ExitCode::from(2);
            }
        }
    }

    // Explicitly requested, so it gates even under --no-gate (there is no
    // baseline involved — the comparison is within this very sweep).
    if let Some(required) = cli.require_speedup {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        match perf::check_speedup(&results, required, host) {
            Ok(outcome) => {
                println!("\n{}", outcome.render());
                gate_failed = gate_failed || !outcome.passed();
            }
            Err(e) => {
                eprintln!("error: --require-speedup: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if gate_failed || failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
