//! Host-side performance artifact (`results/perf.json`) and its generous
//! regression gate.
//!
//! Wall-clock is everything `sweep.json` must never contain: it varies by
//! machine, load, and build. So perf samples live in their own artifact
//! with their own baseline (`results/baselines/perf-<scale>.json`).
//!
//! The gate compares the **aggregate** sweep throughput (total simulator
//! events over total wall-clock) against the baseline with a deliberately
//! wide ±40% band. Per-run rows are recorded for trend-reading but never
//! gated: a smoke run lasts well under a millisecond, so its individual
//! wall-clock is dominated by scheduler noise and worker contention, while
//! the whole-sweep aggregate is stable run-to-run. The band exists to catch
//! order-of-magnitude hot-path regressions (an accidental `Mutex`, a
//! per-event allocation storm), not single-digit drift, which would flake
//! across CI hosts. Sweeps *faster* than the band never fail the gate; they
//! are reported so the baseline can be refreshed to raise the floor.

use std::fmt::Write as _;

use shrimp_bench::Shards;

use crate::json::{escape, Json};
use crate::runner::RunResult;

/// Schema tag written into every perf document. v2 adds the effective
/// `shards` count to every row and generalizes the single
/// `parallel_speedup` block into a `speedups` array with one entry per
/// shard-engine experiment group (`parallel`, `cluster`).
pub const SCHEMA: &str = "shrimp-perf-v2";

/// Relative band around the baseline's aggregate `events_per_sec`.
/// Only drops below the band fail; see the module docs for the rationale.
pub const TOLERANCE: f64 = 0.40;

/// Events per second as an integer, computed in 128-bit so huge runs
/// cannot overflow.
pub fn events_per_sec(events: u64, wall_ns: u64) -> u64 {
    if wall_ns == 0 {
        return 0;
    }
    ((events as u128 * 1_000_000_000) / wall_ns as u128) as u64
}

/// Sums the samples of completed runs into `(events, wall_ns)`.
fn totals(results: &[RunResult]) -> (u64, u64) {
    results
        .iter()
        .filter_map(|r| r.perf)
        .fold((0, 0), |(events, wall), p| {
            (events + p.events, wall + p.wall_ns)
        })
}

/// Serializes the perf samples of completed runs as the perf document.
/// Failed runs (panic/timeout) have no sample and are omitted — the sweep
/// gate already fails them. The `totals` object is what the gate reads.
pub fn to_json(scale: &str, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"scale\": \"{}\",", escape(scale));
    let (events, wall_ns) = totals(results);
    let _ = writeln!(
        out,
        "  \"totals\": {{\"wall_ns\": {}, \"events\": {}, \"events_per_sec\": {}}},",
        wall_ns,
        events,
        events_per_sec(events, wall_ns),
    );
    let speedups = pinned_speedups(results);
    if !speedups.is_empty() {
        out.push_str("  \"speedups\": [\n");
        for (i, sp) in speedups.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"experiment\": \"{}\", \"base_id\": \"{}\", \"wide_id\": \"{}\", \
                 \"shards\": {}, \"base_events_per_sec\": {}, \"wide_events_per_sec\": {}, \
                 \"ratio\": {:.3}}}",
                escape(&sp.experiment),
                escape(&sp.base_id),
                escape(&sp.wide_id),
                sp.shards,
                sp.base,
                sp.wide,
                sp.ratio(),
            );
            out.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
    }
    out.push_str("  \"rows\": [\n");
    let rows: Vec<_> = results.iter().filter_map(|r| Some((r, r.perf?))).collect();
    for (i, (r, p)) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"id\": \"{}\", \"wall_ns\": {}, \"events\": {}, \
             \"events_per_sec\": {}, \"peak_rss_bytes\": {}, \"shards\": {}}}",
            escape(&r.spec.id()),
            p.wall_ns,
            p.events,
            events_per_sec(p.events, p.wall_ns),
            p.peak_rss_bytes,
            p.shards,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// A pinned shard-engine scaling comparison within one experiment group:
/// the 1-shard row against the widest `Shards::Fixed` row, by per-row
/// events/sec.
#[derive(Debug, Clone)]
pub struct Speedup {
    /// Experiment group the pair belongs to (`parallel`, `cluster`).
    pub experiment: String,
    /// Id of the single-shard row.
    pub base_id: String,
    /// Id of the widest pinned row.
    pub wide_id: String,
    /// Shard count of the widest pinned row.
    pub shards: usize,
    /// Events/sec of the single-shard row.
    pub base: u64,
    /// Events/sec of the widest pinned row.
    pub wide: u64,
}

impl Speedup {
    /// Throughput of the widest row relative to the single-shard row.
    pub fn ratio(&self) -> f64 {
        if self.base == 0 {
            return 0.0;
        }
        self.wide as f64 / self.base as f64
    }
}

/// The experiment groups whose matrices carry pinned `Shards::Fixed`
/// scaling pairs, in the order their speedups are reported.
const SHARD_ENGINE_EXPERIMENTS: [&str; 2] = ["parallel", "cluster"];

/// Extracts every [`Speedup`] comparison from completed pinned
/// shard-engine rows — one per experiment group (`parallel`, `cluster`)
/// that carried both a `Fixed(1)` row and a wider `Fixed(k)` row. In each pair the two rows execute the
/// byte-identical simulation (the workloads are shard-count invariant),
/// so their events/sec ratio isolates the conservative executor's
/// parallel efficiency — meaningful only when the sweep ran with
/// `--workers 1`, which CI's perf job does.
pub fn pinned_speedups(results: &[RunResult]) -> Vec<Speedup> {
    SHARD_ENGINE_EXPERIMENTS
        .iter()
        .filter_map(|&experiment| {
            let rows: Vec<(&RunResult, usize)> = results
                .iter()
                .filter_map(|r| match (r.spec.experiment, r.spec.shards, r.perf) {
                    (e, Shards::Fixed(k), Some(_)) if e == experiment => Some((r, k)),
                    _ => None,
                })
                .collect();
            let (base, _) = rows.iter().find(|&&(_, k)| k == 1)?;
            let (wide, shards) = rows
                .iter()
                .filter(|&&(_, k)| k > 1)
                .max_by_key(|&&(_, k)| k)?;
            let eps = |r: &RunResult| {
                let p = r.perf.expect("pinned rows were filtered on perf presence");
                events_per_sec(p.events, p.wall_ns)
            };
            Some(Speedup {
                experiment: experiment.to_string(),
                base_id: base.spec.id(),
                wide_id: wide.spec.id(),
                shards: *shards,
                base: eps(base),
                wide: eps(wide),
            })
        })
        .collect()
}

/// Outcome of the `--require-speedup` gate across every measured pair.
#[derive(Debug, Clone)]
pub struct SpeedupOutcome {
    /// The measured comparisons, one per shard-engine experiment group
    /// present in the sweep.
    pub speedups: Vec<Speedup>,
    /// Minimum acceptable ratio, applied to each pair.
    pub required: f64,
    /// Hardware threads available to this process.
    pub host_threads: usize,
}

impl SpeedupOutcome {
    /// `true` when the host cannot run this pair's shards in parallel,
    /// making a wall-clock speedup physically unmeasurable; the gate
    /// reports and passes that pair rather than failing on machine shape.
    fn pair_skipped(&self, s: &Speedup) -> bool {
        self.host_threads < s.shards
    }

    /// `true` when every measured pair was skipped for host shape.
    pub fn skipped(&self) -> bool {
        self.speedups.iter().all(|s| self.pair_skipped(s))
    }

    /// `true` when every non-skipped pair met the required ratio.
    pub fn passed(&self) -> bool {
        self.speedups
            .iter()
            .all(|s| self.pair_skipped(s) || s.ratio() >= self.required)
    }

    /// Renders the per-pair speedup-gate verdicts for humans.
    pub fn render(&self) -> String {
        let mut lines = Vec::with_capacity(self.speedups.len());
        for s in &self.speedups {
            if self.pair_skipped(s) {
                lines.push(format!(
                    "{} speedup gate SKIPPED: host has {} hardware thread(s) but \
                     {} uses {} shards — wall-clock speedup is not measurable here \
                     (measured {:.2}x, required \u{2265}{:.2}x)",
                    s.experiment,
                    self.host_threads,
                    s.wide_id,
                    s.shards,
                    s.ratio(),
                    self.required
                ));
                continue;
            }
            lines.push(format!(
                "{} speedup gate {}: {} at {} events/sec vs {} at {} events/sec \
                 — {:.2}x (required \u{2265}{:.2}x)",
                s.experiment,
                if s.ratio() >= self.required {
                    "PASSED"
                } else {
                    "FAILED"
                },
                s.wide_id,
                s.wide,
                s.base_id,
                s.base,
                s.ratio(),
                self.required
            ));
        }
        lines.join("\n")
    }
}

/// Gates every pinned shard-engine speedup pair the sweep carried: `Err`
/// when it carried none (the gate was requested but cannot measure).
pub fn check_speedup(
    results: &[RunResult],
    required: f64,
    host_threads: usize,
) -> Result<SpeedupOutcome, String> {
    let speedups = pinned_speedups(results);
    if speedups.is_empty() {
        return Err(
            "no completed pinned shard-engine rows (need a Fixed(1) and a wider Fixed(N) \
             row in the parallel or cluster group — run with --experiment parallel or \
             --experiment cluster)"
                .to_string(),
        );
    }
    Ok(SpeedupOutcome {
        speedups,
        required,
        host_threads,
    })
}

/// Outcome of gating fresh perf samples against a perf baseline.
#[derive(Debug, Clone)]
pub struct PerfOutcome {
    /// Baseline aggregate events/sec.
    pub baseline: u64,
    /// Fresh aggregate events/sec.
    pub fresh: u64,
    /// Rows carried by the baseline document (informational).
    pub baseline_rows: usize,
    /// Rows sampled by this sweep.
    pub fresh_rows: usize,
}

impl PerfOutcome {
    /// The lowest aggregate throughput the gate accepts.
    pub fn floor(&self) -> u64 {
        (self.baseline as f64 * (1.0 - TOLERANCE)) as u64
    }

    /// `true` when aggregate throughput stayed above the floor.
    pub fn passed(&self) -> bool {
        self.fresh >= self.floor()
    }

    /// `true` when the sweep beat the baseline by more than the band —
    /// never a failure, but a sign the committed floor is stale.
    pub fn stale_floor(&self) -> bool {
        self.fresh as f64 > self.baseline as f64 * (1.0 + TOLERANCE)
    }

    /// Renders the perf-gate verdict for humans.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.passed() {
            let _ = write!(
                out,
                "perf gate PASSED: {} events/sec aggregate over {} run(s) \
                 (baseline {}, floor {} at \u{2212}{:.0}%)",
                self.fresh,
                self.fresh_rows,
                self.baseline,
                self.floor(),
                TOLERANCE * 100.0
            );
        } else {
            let _ = write!(
                out,
                "perf gate FAILED: {} events/sec aggregate over {} run(s) \
                 fell below the floor of {} (baseline {} \u{2212} {:.0}%)",
                self.fresh,
                self.fresh_rows,
                self.floor(),
                self.baseline,
                TOLERANCE * 100.0
            );
        }
        if self.stale_floor() {
            let _ = write!(
                out,
                "\nnote: aggregate beat the baseline by >{:.0}% — refresh \
                 results/baselines/perf-*.json to raise the floor",
                TOLERANCE * 100.0
            );
        }
        out
    }
}

/// Diffs fresh results against a parsed perf-baseline document. Only the
/// aggregate `events_per_sec` gates; per-row figures and `peak_rss_bytes`
/// are recorded for trend-reading, not gating.
pub fn check(baseline: &Json, results: &[RunResult]) -> Result<PerfOutcome, String> {
    let base_totals = baseline
        .get("totals")
        .ok_or("perf baseline has no \"totals\" object")?;
    let base = base_totals
        .get("events_per_sec")
        .and_then(|v| v.as_u64())
        .ok_or("perf baseline totals missing \"events_per_sec\"")?;
    let baseline_rows = baseline
        .get("rows")
        .and_then(|r| r.as_arr())
        .map(<[Json]>::len)
        .unwrap_or(0);
    let (events, wall_ns) = totals(results);
    Ok(PerfOutcome {
        baseline: base,
        fresh: events_per_sec(events, wall_ns),
        baseline_rows,
        fresh_rows: results.iter().filter(|r| r.perf.is_some()).count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::runner::RunStatus;
    use shrimp_bench::{App, PerfSample, RunSpec, Scale};

    fn result_with(events: u64, wall_ns: u64) -> RunResult {
        let spec = RunSpec::new("test", App::DfsSockets, 2, Scale::Smoke);
        let record = spec.execute();
        RunResult {
            index: 0,
            spec,
            status: RunStatus::Ok(record),
            perf: Some(PerfSample {
                wall_ns,
                events,
                peak_rss_bytes: 1 << 20,
                shards: 1,
            }),
            obs: None,
            checkpoint: None,
        }
    }

    #[test]
    fn document_has_the_promised_schema() {
        let results = vec![result_with(2_000, 1_000_000)];
        let text = to_json("smoke", &results);
        let doc = json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        for field in [
            "id",
            "wall_ns",
            "events",
            "events_per_sec",
            "peak_rss_bytes",
            "shards",
        ] {
            assert!(rows[0].get(field).is_some(), "row missing {field}");
        }
        assert_eq!(rows[0].get("shards").unwrap().as_u64(), Some(1));
        // 2000 events in 1ms = 2M events/sec, in the row and the totals.
        assert_eq!(
            rows[0].get("events_per_sec").unwrap().as_u64(),
            Some(2_000_000)
        );
        let totals = doc.get("totals").unwrap();
        assert_eq!(totals.get("events").unwrap().as_u64(), Some(2_000));
        assert_eq!(
            totals.get("events_per_sec").unwrap().as_u64(),
            Some(2_000_000)
        );
    }

    #[test]
    fn failed_runs_are_omitted_from_rows_and_totals() {
        let mut failed = result_with(1_000, 1_000);
        failed.status = RunStatus::TimedOut;
        failed.perf = None;
        let text = to_json("smoke", &[failed, result_with(2_000, 1_000_000)]);
        let doc = json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("rows").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(
            doc.get("totals").unwrap().get("events").unwrap().as_u64(),
            Some(2_000)
        );
    }

    #[test]
    fn gate_tolerates_the_band_and_fails_beyond_it() {
        let baseline = json::parse(&to_json("smoke", &[result_with(1_000_000, 1_000_000_000)]))
            .expect("valid JSON");
        // 30% slower in aggregate: inside the band.
        let ok = check(&baseline, &[result_with(700_000, 1_000_000_000)]).unwrap();
        assert!(ok.passed(), "{}", ok.render());
        assert!(!ok.stale_floor());
        // 50% slower: regression.
        let slow = check(&baseline, &[result_with(500_000, 1_000_000_000)]).unwrap();
        assert!(!slow.passed());
        assert!(slow.render().contains("FAILED"));
        // 2x faster: passes, reported as a stale floor.
        let fast = check(&baseline, &[result_with(2_000_000, 1_000_000_000)]).unwrap();
        assert!(fast.passed());
        assert!(fast.stale_floor());
    }

    fn pinned_result(
        experiment: &'static str,
        app: App,
        index: usize,
        shards: Shards,
        events: u64,
        wall_ns: u64,
    ) -> RunResult {
        let spec = RunSpec::new(experiment, app, 16, Scale::Smoke).with_shards(shards);
        // A synthetic record is fine here: the speedup path reads only the
        // spec and the perf sample.
        let record = shrimp_bench::RunRecord {
            elapsed: 1,
            checksum: 1,
            messages: 0,
            notifications: 0,
            interrupts: 0,
            syscalls: 0,
            net_packets: 0,
            net_bytes: 0,
            recovery: None,
            kv: None,
        };
        RunResult {
            index,
            spec,
            status: RunStatus::Ok(record),
            perf: Some(PerfSample {
                wall_ns,
                events,
                peak_rss_bytes: 0,
                shards: match shards {
                    Shards::Fixed(k) => k,
                    Shards::Auto => 1,
                },
            }),
            obs: None,
            checkpoint: None,
        }
    }

    fn parallel_result(index: usize, shards: Shards, events: u64, wall_ns: u64) -> RunResult {
        pinned_result(
            "parallel",
            App::ParallelNodes,
            index,
            shards,
            events,
            wall_ns,
        )
    }

    fn cluster_result(index: usize, shards: Shards, events: u64, wall_ns: u64) -> RunResult {
        pinned_result("cluster", App::ClusterNodes, index, shards, events, wall_ns)
    }

    #[test]
    fn speedup_compares_the_pinned_extremes() {
        let results = vec![
            parallel_result(0, Shards::Fixed(1), 1_000, 1_000_000),
            parallel_result(1, Shards::Fixed(2), 1_000, 700_000),
            parallel_result(2, Shards::Fixed(4), 1_000, 500_000),
            // Auto rows and other experiments never enter the comparison.
            parallel_result(3, Shards::Auto, 1_000, 1),
            result_with(9_999, 1),
        ];
        let speedups = pinned_speedups(&results);
        assert_eq!(speedups.len(), 1, "only the parallel group has a pair");
        let sp = &speedups[0];
        assert_eq!(sp.experiment, "parallel");
        assert_eq!(sp.shards, 4);
        assert!(sp.base_id.ends_with("/sh1") && sp.wide_id.ends_with("/sh4"));
        assert!((sp.ratio() - 2.0).abs() < 0.01, "ratio {}", sp.ratio());

        let ok = check_speedup(&results, 1.5, 4).unwrap();
        assert!(ok.passed() && !ok.skipped());
        assert!(ok.render().contains("PASSED"));
        let fail = check_speedup(&results, 2.5, 4).unwrap();
        assert!(!fail.passed());
        assert!(fail.render().contains("FAILED"));
        // One hardware thread cannot exhibit a 4-shard wall-clock speedup:
        // the gate reports and passes instead of failing on machine shape.
        let skip = check_speedup(&results, 2.5, 1).unwrap();
        assert!(skip.skipped() && skip.passed());
        assert!(skip.render().contains("SKIPPED"));

        // The perf document records the comparison.
        let text = to_json("smoke", &results);
        let doc = json::parse(&text).expect("valid JSON");
        let block = doc.get("speedups").expect("speedups array");
        let arr = block.as_arr().expect("array");
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("experiment").unwrap().as_str(), Some("parallel"));
        assert_eq!(arr[0].get("shards").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn speedup_gates_every_shard_engine_group() {
        // parallel scales 2.0x, cluster only 1.2x: the weakest pair fails
        // the gate, so a cluster regression cannot hide behind parallel.
        let results = vec![
            parallel_result(0, Shards::Fixed(1), 1_000, 1_000_000),
            parallel_result(1, Shards::Fixed(4), 1_000, 500_000),
            cluster_result(2, Shards::Fixed(1), 1_200, 1_000_000),
            cluster_result(3, Shards::Fixed(4), 1_200, 833_000),
        ];
        let speedups = pinned_speedups(&results);
        assert_eq!(speedups.len(), 2);
        assert_eq!(speedups[0].experiment, "parallel");
        assert_eq!(speedups[1].experiment, "cluster");

        let ok = check_speedup(&results, 1.1, 4).unwrap();
        assert!(ok.passed());
        let fail = check_speedup(&results, 1.5, 4).unwrap();
        assert!(!fail.passed(), "the 1.2x cluster pair must fail a 1.5x bar");
        let render = fail.render();
        assert!(render.contains("parallel speedup gate PASSED"), "{render}");
        assert!(render.contains("cluster speedup gate FAILED"), "{render}");
        // A 2-thread host skips both 4-shard pairs and passes.
        let skip = check_speedup(&results, 1.5, 2).unwrap();
        assert!(skip.skipped() && skip.passed());

        let text = to_json("smoke", &results);
        let doc = json::parse(&text).expect("valid JSON");
        let arr = doc.get("speedups").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].get("experiment").unwrap().as_str(), Some("cluster"));
    }

    #[test]
    fn speedup_needs_both_pinned_rows() {
        let only_base = vec![parallel_result(0, Shards::Fixed(1), 1_000, 1_000)];
        assert!(pinned_speedups(&only_base).is_empty());
        assert!(check_speedup(&only_base, 1.5, 4).is_err());
        let text = to_json("smoke", &only_base);
        assert!(!text.contains("speedups"));
    }

    #[test]
    fn a_sweep_with_no_samples_fails_the_gate() {
        let baseline =
            json::parse(&to_json("smoke", &[result_with(1_000_000, 1_000)])).expect("valid JSON");
        let mut failed = result_with(0, 0);
        failed.status = RunStatus::TimedOut;
        failed.perf = None;
        let outcome = check(&baseline, &[failed]).unwrap();
        assert!(!outcome.passed(), "zero throughput must never pass");
        assert_eq!(outcome.fresh, 0);
    }
}
