//! Host-side performance artifact (`results/perf.json`) and its generous
//! regression gate.
//!
//! Wall-clock is everything `sweep.json` must never contain: it varies by
//! machine, load, and build. So perf samples live in their own artifact
//! with their own baseline (`results/baselines/perf-<scale>.json`).
//!
//! The gate compares the **aggregate** sweep throughput (total simulator
//! events over total wall-clock) against the baseline with a deliberately
//! wide ±40% band. Per-run rows are recorded for trend-reading but never
//! gated: a smoke run lasts well under a millisecond, so its individual
//! wall-clock is dominated by scheduler noise and worker contention, while
//! the whole-sweep aggregate is stable run-to-run. The band exists to catch
//! order-of-magnitude hot-path regressions (an accidental `Mutex`, a
//! per-event allocation storm), not single-digit drift, which would flake
//! across CI hosts. Sweeps *faster* than the band never fail the gate; they
//! are reported so the baseline can be refreshed to raise the floor.

use std::fmt::Write as _;

use shrimp_bench::Shards;

use crate::json::{escape, Json};
use crate::runner::RunResult;

/// Schema tag written into every perf document.
pub const SCHEMA: &str = "shrimp-perf-v1";

/// Relative band around the baseline's aggregate `events_per_sec`.
/// Only drops below the band fail; see the module docs for the rationale.
pub const TOLERANCE: f64 = 0.40;

/// Events per second as an integer, computed in 128-bit so huge runs
/// cannot overflow.
pub fn events_per_sec(events: u64, wall_ns: u64) -> u64 {
    if wall_ns == 0 {
        return 0;
    }
    ((events as u128 * 1_000_000_000) / wall_ns as u128) as u64
}

/// Sums the samples of completed runs into `(events, wall_ns)`.
fn totals(results: &[RunResult]) -> (u64, u64) {
    results
        .iter()
        .filter_map(|r| r.perf)
        .fold((0, 0), |(events, wall), p| {
            (events + p.events, wall + p.wall_ns)
        })
}

/// Serializes the perf samples of completed runs as the perf document.
/// Failed runs (panic/timeout) have no sample and are omitted — the sweep
/// gate already fails them. The `totals` object is what the gate reads.
pub fn to_json(scale: &str, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"scale\": \"{}\",", escape(scale));
    let (events, wall_ns) = totals(results);
    let _ = writeln!(
        out,
        "  \"totals\": {{\"wall_ns\": {}, \"events\": {}, \"events_per_sec\": {}}},",
        wall_ns,
        events,
        events_per_sec(events, wall_ns),
    );
    if let Some(sp) = pinned_speedup(results) {
        let _ = writeln!(
            out,
            "  \"parallel_speedup\": {{\"base_id\": \"{}\", \"wide_id\": \"{}\", \
             \"shards\": {}, \"base_events_per_sec\": {}, \"wide_events_per_sec\": {}, \
             \"ratio\": {:.3}}},",
            escape(&sp.base_id),
            escape(&sp.wide_id),
            sp.shards,
            sp.base,
            sp.wide,
            sp.ratio(),
        );
    }
    out.push_str("  \"rows\": [\n");
    let rows: Vec<_> = results.iter().filter_map(|r| Some((r, r.perf?))).collect();
    for (i, (r, p)) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"id\": \"{}\", \"wall_ns\": {}, \"events\": {}, \
             \"events_per_sec\": {}, \"peak_rss_bytes\": {}}}",
            escape(&r.spec.id()),
            p.wall_ns,
            p.events,
            events_per_sec(p.events, p.wall_ns),
            p.peak_rss_bytes,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The pinned engine-parallel scaling comparison: the 1-shard row against
/// the widest `Shards::Fixed` row, by per-row events/sec.
#[derive(Debug, Clone)]
pub struct Speedup {
    /// Id of the single-shard row.
    pub base_id: String,
    /// Id of the widest pinned row.
    pub wide_id: String,
    /// Shard count of the widest pinned row.
    pub shards: usize,
    /// Events/sec of the single-shard row.
    pub base: u64,
    /// Events/sec of the widest pinned row.
    pub wide: u64,
}

impl Speedup {
    /// Throughput of the widest row relative to the single-shard row.
    pub fn ratio(&self) -> f64 {
        if self.base == 0 {
            return 0.0;
        }
        self.wide as f64 / self.base as f64
    }
}

/// Extracts the [`Speedup`] comparison from completed pinned
/// engine-parallel rows, or `None` when the sweep carried no such pair.
/// The two rows execute the byte-identical simulation (the workload is
/// shard-count invariant), so their events/sec ratio isolates the
/// conservative executor's parallel efficiency — meaningful only when the
/// sweep ran with `--workers 1`, which CI's perf job does.
pub fn pinned_speedup(results: &[RunResult]) -> Option<Speedup> {
    let pinned = |r: &&RunResult| -> Option<usize> {
        match (r.spec.experiment, r.spec.shards, r.perf) {
            ("parallel", Shards::Fixed(k), Some(_)) => Some(k),
            _ => None,
        }
    };
    let rows: Vec<(&RunResult, usize)> = results
        .iter()
        .filter_map(|r| pinned(&r).map(|k| (r, k)))
        .collect();
    let (base, _) = rows.iter().find(|&&(_, k)| k == 1)?;
    let (wide, shards) = rows
        .iter()
        .filter(|&&(_, k)| k > 1)
        .max_by_key(|&&(_, k)| k)?;
    let eps = |r: &RunResult| {
        let p = r.perf.expect("pinned rows were filtered on perf presence");
        events_per_sec(p.events, p.wall_ns)
    };
    Some(Speedup {
        base_id: base.spec.id(),
        wide_id: wide.spec.id(),
        shards: *shards,
        base: eps(base),
        wide: eps(wide),
    })
}

/// Outcome of the `--require-speedup` gate.
#[derive(Debug, Clone)]
pub struct SpeedupOutcome {
    /// The measured comparison.
    pub speedup: Speedup,
    /// Minimum acceptable ratio.
    pub required: f64,
    /// Hardware threads available to this process.
    pub host_threads: usize,
}

impl SpeedupOutcome {
    /// `true` when the host cannot run the widest row's shards in
    /// parallel, making a wall-clock speedup physically unmeasurable; the
    /// gate reports and passes rather than failing on machine shape.
    pub fn skipped(&self) -> bool {
        self.host_threads < self.speedup.shards
    }

    /// `true` when the required ratio was met (or the gate was skipped).
    pub fn passed(&self) -> bool {
        self.skipped() || self.speedup.ratio() >= self.required
    }

    /// Renders the speedup-gate verdict for humans.
    pub fn render(&self) -> String {
        let s = &self.speedup;
        if self.skipped() {
            return format!(
                "parallel speedup gate SKIPPED: host has {} hardware thread(s) but \
                 {} uses {} shards — wall-clock speedup is not measurable here \
                 (measured {:.2}x, required \u{2265}{:.2}x)",
                self.host_threads,
                s.wide_id,
                s.shards,
                s.ratio(),
                self.required
            );
        }
        format!(
            "parallel speedup gate {}: {} at {} events/sec vs {} at {} events/sec \
             — {:.2}x (required \u{2265}{:.2}x)",
            if self.passed() { "PASSED" } else { "FAILED" },
            s.wide_id,
            s.wide,
            s.base_id,
            s.base,
            s.ratio(),
            self.required
        )
    }
}

/// Gates the pinned engine-parallel speedup: `Err` when the sweep carried
/// no completed pinned pair (the gate was requested but cannot measure).
pub fn check_speedup(
    results: &[RunResult],
    required: f64,
    host_threads: usize,
) -> Result<SpeedupOutcome, String> {
    let speedup = pinned_speedup(results).ok_or(
        "no completed pinned engine-parallel rows (need parallel/…/sh1 and a wider shN \
         in the sweep — run with --experiment parallel)",
    )?;
    Ok(SpeedupOutcome {
        speedup,
        required,
        host_threads,
    })
}

/// Outcome of gating fresh perf samples against a perf baseline.
#[derive(Debug, Clone)]
pub struct PerfOutcome {
    /// Baseline aggregate events/sec.
    pub baseline: u64,
    /// Fresh aggregate events/sec.
    pub fresh: u64,
    /// Rows carried by the baseline document (informational).
    pub baseline_rows: usize,
    /// Rows sampled by this sweep.
    pub fresh_rows: usize,
}

impl PerfOutcome {
    /// The lowest aggregate throughput the gate accepts.
    pub fn floor(&self) -> u64 {
        (self.baseline as f64 * (1.0 - TOLERANCE)) as u64
    }

    /// `true` when aggregate throughput stayed above the floor.
    pub fn passed(&self) -> bool {
        self.fresh >= self.floor()
    }

    /// `true` when the sweep beat the baseline by more than the band —
    /// never a failure, but a sign the committed floor is stale.
    pub fn stale_floor(&self) -> bool {
        self.fresh as f64 > self.baseline as f64 * (1.0 + TOLERANCE)
    }

    /// Renders the perf-gate verdict for humans.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.passed() {
            let _ = write!(
                out,
                "perf gate PASSED: {} events/sec aggregate over {} run(s) \
                 (baseline {}, floor {} at \u{2212}{:.0}%)",
                self.fresh,
                self.fresh_rows,
                self.baseline,
                self.floor(),
                TOLERANCE * 100.0
            );
        } else {
            let _ = write!(
                out,
                "perf gate FAILED: {} events/sec aggregate over {} run(s) \
                 fell below the floor of {} (baseline {} \u{2212} {:.0}%)",
                self.fresh,
                self.fresh_rows,
                self.floor(),
                self.baseline,
                TOLERANCE * 100.0
            );
        }
        if self.stale_floor() {
            let _ = write!(
                out,
                "\nnote: aggregate beat the baseline by >{:.0}% — refresh \
                 results/baselines/perf-*.json to raise the floor",
                TOLERANCE * 100.0
            );
        }
        out
    }
}

/// Diffs fresh results against a parsed perf-baseline document. Only the
/// aggregate `events_per_sec` gates; per-row figures and `peak_rss_bytes`
/// are recorded for trend-reading, not gating.
pub fn check(baseline: &Json, results: &[RunResult]) -> Result<PerfOutcome, String> {
    let base_totals = baseline
        .get("totals")
        .ok_or("perf baseline has no \"totals\" object")?;
    let base = base_totals
        .get("events_per_sec")
        .and_then(|v| v.as_u64())
        .ok_or("perf baseline totals missing \"events_per_sec\"")?;
    let baseline_rows = baseline
        .get("rows")
        .and_then(|r| r.as_arr())
        .map(<[Json]>::len)
        .unwrap_or(0);
    let (events, wall_ns) = totals(results);
    Ok(PerfOutcome {
        baseline: base,
        fresh: events_per_sec(events, wall_ns),
        baseline_rows,
        fresh_rows: results.iter().filter(|r| r.perf.is_some()).count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::runner::RunStatus;
    use shrimp_bench::{App, PerfSample, RunSpec, Scale};

    fn result_with(events: u64, wall_ns: u64) -> RunResult {
        let spec = RunSpec::new("test", App::DfsSockets, 2, Scale::Smoke);
        let record = spec.execute();
        RunResult {
            index: 0,
            spec,
            status: RunStatus::Ok(record),
            perf: Some(PerfSample {
                wall_ns,
                events,
                peak_rss_bytes: 1 << 20,
            }),
            obs: None,
        }
    }

    #[test]
    fn document_has_the_promised_schema() {
        let results = vec![result_with(2_000, 1_000_000)];
        let text = to_json("smoke", &results);
        let doc = json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        for field in [
            "id",
            "wall_ns",
            "events",
            "events_per_sec",
            "peak_rss_bytes",
        ] {
            assert!(rows[0].get(field).is_some(), "row missing {field}");
        }
        // 2000 events in 1ms = 2M events/sec, in the row and the totals.
        assert_eq!(
            rows[0].get("events_per_sec").unwrap().as_u64(),
            Some(2_000_000)
        );
        let totals = doc.get("totals").unwrap();
        assert_eq!(totals.get("events").unwrap().as_u64(), Some(2_000));
        assert_eq!(
            totals.get("events_per_sec").unwrap().as_u64(),
            Some(2_000_000)
        );
    }

    #[test]
    fn failed_runs_are_omitted_from_rows_and_totals() {
        let mut failed = result_with(1_000, 1_000);
        failed.status = RunStatus::TimedOut;
        failed.perf = None;
        let text = to_json("smoke", &[failed, result_with(2_000, 1_000_000)]);
        let doc = json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("rows").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(
            doc.get("totals").unwrap().get("events").unwrap().as_u64(),
            Some(2_000)
        );
    }

    #[test]
    fn gate_tolerates_the_band_and_fails_beyond_it() {
        let baseline = json::parse(&to_json("smoke", &[result_with(1_000_000, 1_000_000_000)]))
            .expect("valid JSON");
        // 30% slower in aggregate: inside the band.
        let ok = check(&baseline, &[result_with(700_000, 1_000_000_000)]).unwrap();
        assert!(ok.passed(), "{}", ok.render());
        assert!(!ok.stale_floor());
        // 50% slower: regression.
        let slow = check(&baseline, &[result_with(500_000, 1_000_000_000)]).unwrap();
        assert!(!slow.passed());
        assert!(slow.render().contains("FAILED"));
        // 2x faster: passes, reported as a stale floor.
        let fast = check(&baseline, &[result_with(2_000_000, 1_000_000_000)]).unwrap();
        assert!(fast.passed());
        assert!(fast.stale_floor());
    }

    fn parallel_result(index: usize, shards: Shards, events: u64, wall_ns: u64) -> RunResult {
        let spec =
            RunSpec::new("parallel", App::ParallelNodes, 16, Scale::Smoke).with_shards(shards);
        // A synthetic record is fine here: the speedup path reads only the
        // spec and the perf sample.
        let record = shrimp_bench::RunRecord {
            elapsed: 1,
            checksum: 1,
            messages: 0,
            notifications: 0,
            interrupts: 0,
            syscalls: 0,
            net_packets: 0,
            net_bytes: 0,
            recovery: None,
        };
        RunResult {
            index,
            spec,
            status: RunStatus::Ok(record),
            perf: Some(PerfSample {
                wall_ns,
                events,
                peak_rss_bytes: 0,
            }),
            obs: None,
        }
    }

    #[test]
    fn speedup_compares_the_pinned_extremes() {
        let results = vec![
            parallel_result(0, Shards::Fixed(1), 1_000, 1_000_000),
            parallel_result(1, Shards::Fixed(2), 1_000, 700_000),
            parallel_result(2, Shards::Fixed(4), 1_000, 500_000),
            // Auto rows and other experiments never enter the comparison.
            parallel_result(3, Shards::Auto, 1_000, 1),
            result_with(9_999, 1),
        ];
        let sp = pinned_speedup(&results).expect("pinned pair present");
        assert_eq!(sp.shards, 4);
        assert!(sp.base_id.ends_with("/sh1") && sp.wide_id.ends_with("/sh4"));
        assert!((sp.ratio() - 2.0).abs() < 0.01, "ratio {}", sp.ratio());

        let ok = check_speedup(&results, 1.5, 4).unwrap();
        assert!(ok.passed() && !ok.skipped());
        assert!(ok.render().contains("PASSED"));
        let fail = check_speedup(&results, 2.5, 4).unwrap();
        assert!(!fail.passed());
        assert!(fail.render().contains("FAILED"));
        // One hardware thread cannot exhibit a 4-shard wall-clock speedup:
        // the gate reports and passes instead of failing on machine shape.
        let skip = check_speedup(&results, 2.5, 1).unwrap();
        assert!(skip.skipped() && skip.passed());
        assert!(skip.render().contains("SKIPPED"));

        // The perf document records the comparison.
        let text = to_json("smoke", &results);
        let doc = json::parse(&text).expect("valid JSON");
        let block = doc.get("parallel_speedup").expect("speedup block");
        assert_eq!(block.get("shards").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn speedup_needs_both_pinned_rows() {
        let only_base = vec![parallel_result(0, Shards::Fixed(1), 1_000, 1_000)];
        assert!(pinned_speedup(&only_base).is_none());
        assert!(check_speedup(&only_base, 1.5, 4).is_err());
        let text = to_json("smoke", &only_base);
        assert!(!text.contains("parallel_speedup"));
    }

    #[test]
    fn a_sweep_with_no_samples_fails_the_gate() {
        let baseline =
            json::parse(&to_json("smoke", &[result_with(1_000_000, 1_000)])).expect("valid JSON");
        let mut failed = result_with(0, 0);
        failed.status = RunStatus::TimedOut;
        failed.perf = None;
        let outcome = check(&baseline, &[failed]).unwrap();
        assert!(!outcome.passed(), "zero throughput must never pass");
        assert_eq!(outcome.fresh, 0);
    }
}
