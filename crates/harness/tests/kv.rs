//! Replicated-KV integration: the `kv` experiment group at the harness
//! level. The chaos row — a permanent crash of group 0's initial primary
//! mid-load — must end with a promoted backup, a measured failover time,
//! and zero acknowledged writes lost; and the whole group's artifact must
//! be byte-identical no matter how many workers or shards executed it.

use shrimp_bench::{matrix, Scale};
use shrimp_harness::runner::{run_sweep, RunResult, RunStatus, RunnerOptions};
use shrimp_harness::sweep;

fn kv_specs() -> Vec<shrimp_bench::RunSpec> {
    let mut specs = matrix(Scale::Smoke, 4);
    specs.retain(|s| s.experiment == "kv");
    assert_eq!(specs.len(), 2, "smoke kv group changed size");
    specs
}

fn run_ok(specs: &[shrimp_bench::RunSpec], workers: usize, shards: usize) -> Vec<RunResult> {
    let results = run_sweep(
        specs,
        &RunnerOptions {
            workers,
            shards,
            ..RunnerOptions::default()
        },
    );
    for r in &results {
        assert!(
            matches!(r.status, RunStatus::Ok(_)),
            "{} failed: {}",
            r.spec.id(),
            r.status.label()
        );
    }
    results
}

/// The failover guarantee, end to end through the sweep runner: the
/// primary of group 0 crashes permanently at 400 µs; a backup detects the
/// silence, promotes itself, re-ships the inherited log, and every write
/// the clients saw acknowledged survives the handoff — while the
/// fault-free control row sees no promotion at all.
#[test]
fn kv_failover_row_promotes_and_loses_no_acked_write() {
    let specs = kv_specs();
    let results = run_ok(&specs, 2, 1);
    for r in &results {
        let record = r.status.record().expect("kv row completed");
        let kv = record
            .kv
            .expect("kv rows always carry the KV metrics block");
        assert_eq!(
            kv.verify_failures,
            0,
            "{}: an acked write regressed",
            r.spec.id()
        );
        assert!(kv.acked > 0, "{}: no request acknowledged", r.spec.id());
        assert!(
            kv.p50_ps > 0 && kv.p50_ps <= kv.p99_ps && kv.p99_ps <= kv.p999_ps,
            "{}: degenerate latency quantiles",
            r.spec.id()
        );
        if r.spec.knobs.faults.crash.is_some() {
            assert!(
                kv.failovers >= 1,
                "{}: primary crash produced no promotion",
                r.spec.id()
            );
            assert!(
                kv.failover_p50_ps > 0,
                "{}: failover time not measured",
                r.spec.id()
            );
            let rec = record
                .recovery
                .expect("kv chaos row lacks recovery metrics");
            assert!(
                rec.detection_latency_ps > 0,
                "{}: no detection latency recorded",
                r.spec.id()
            );
        } else {
            assert_eq!(
                kv.failovers,
                0,
                "{}: fault-free row observed a promotion",
                r.spec.id()
            );
        }
    }
}

/// Worker count and shard count both stay out of the kv artifact: the
/// sweep rows (latency quantiles included — the histogram merge across
/// shards is commutative) are byte-identical however the runs execute.
#[test]
fn kv_artifact_is_worker_and_shard_invariant() {
    let specs = kv_specs();
    let serial = sweep::to_json("smoke", &run_ok(&specs, 1, 1));
    let racing = sweep::to_json("smoke", &run_ok(&specs, 2, 4));
    assert_eq!(serial, racing, "worker/shard count leaked into the kv rows");
}
