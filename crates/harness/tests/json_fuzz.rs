//! Fuzz-style property tests for the hand-rolled JSON reader: whatever
//! bytes arrive — truncated documents, invalid UTF-8 mid-string, garbage
//! escapes — the parser returns `Err`, it never panics. (The historical
//! bug: `parse_num` unwrapped `from_utf8` on its scanned slice.)

use shrimp_harness::json::{self, Json};
use shrimp_testkit::prop::*;
use shrimp_testkit::{prop_assert, prop_assert_eq, props};

props! {
    cases = 256;

    /// Uniformly random bytes: parse must classify, not crash.
    fn random_bytes_never_panic(bytes in vec_of(any_u8(), 0..64)) {
        // Ok or Err are both acceptable; reaching this line is the property.
        let _ = json::parse_bytes(&bytes);
    }

    /// Bytes biased toward JSON syntax (quotes, escapes, digits, UTF-8
    /// lead/continuation bytes) reach much deeper into the parser —
    /// string escapes, `\u` sequences, multi-byte passthrough, numbers.
    fn json_shaped_bytes_never_panic(
        bytes in vec_of(select(vec![
            b'"', b'\\', b'u', b'n', b't', b'{', b'}', b'[', b']',
            b',', b':', b' ', b'-', b'+', b'.', b'e', b'E',
            b'0', b'1', b'9', b'a', b'f',
            0x00, 0x1f, 0x7f, 0x80, 0xbf, 0xc2, 0xe2, 0xf0, 0xff,
        ]), 0..48),
    ) {
        let _ = json::parse_bytes(&bytes);
    }

    /// A quoted string of arbitrary bytes: either it parses (the bytes
    /// happened to be valid UTF-8 with balanced escapes) or it errors —
    /// and a parsed result round-trips through escape().
    fn quoted_arbitrary_bytes_parse_or_error(inner in vec_of(any_u8(), 0..32)) {
        let mut doc = vec![b'"'];
        doc.extend_from_slice(&inner);
        doc.push(b'"');
        if let Ok(v) = json::parse_bytes(&doc) {
            let Json::Str(s) = &v else {
                panic!("quoted input parsed as non-string: {v:?}");
            };
            let re = format!("\"{}\"", json::escape(s));
            let parsed = json::parse(&re).unwrap();
            prop_assert_eq!(
                parsed.as_str(),
                Some(s.as_str()),
                "escape/parse round-trip diverged"
            );
        }
    }

    /// Numbers embedded in random surroundings: the historical panic site.
    fn numbers_with_junk_suffixes_never_panic(
        digits in vec_of(u8_in(b'0'..b'9' + 1), 1..20),
        junk in vec_of(any_u8(), 0..8),
    ) {
        let mut doc = digits.clone();
        doc.extend_from_slice(&junk);
        let _ = json::parse_bytes(&doc);
        // The clean prefix alone must parse as that exact number.
        let clean = json::parse_bytes(&digits).unwrap();
        let text = std::str::from_utf8(&digits).unwrap();
        prop_assert!(
            matches!(&clean, Json::Num(s) if s == text),
            "number text mangled: {clean:?} vs {text}"
        );
    }
}
