//! Observability integration tests: the metrics registry and trace export
//! must be free when off (unobserved rows byte-match the committed
//! baseline) and complete when on (an observed fig3 row yields a Chrome
//! trace spanning several component timelines plus latency histograms in
//! the sweep row).

use std::collections::BTreeSet;
use std::path::PathBuf;

use shrimp_bench::{matrix, RunSpec, Scale};
use shrimp_harness::runner::{RunResult, RunStatus};
use shrimp_harness::{chrome, json, sweep};

fn baseline_text() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/baselines/smoke.json");
    std::fs::read_to_string(path).expect("committed smoke baseline")
}

fn smoke_spec(id: &str) -> RunSpec {
    matrix(Scale::Smoke, 4)
        .into_iter()
        .find(|s| s.id() == id)
        .unwrap_or_else(|| panic!("{id} missing from smoke matrix"))
}

/// Serializes one unobserved run exactly as the sweep artifact would:
/// the single row line, indentation included.
fn row_line(spec: &RunSpec) -> String {
    let result = RunResult {
        index: 0,
        spec: spec.clone(),
        status: RunStatus::Ok(spec.execute()),
        perf: None,
        obs: None,
        checkpoint: None,
    };
    let text = sweep::to_json("smoke", &[result]);
    text.lines()
        .find(|l| l.trim_start().starts_with("{\"id\""))
        .expect("sweep artifact has a row line")
        .to_string()
}

/// With observability off (the default), rows are byte-for-byte what the
/// committed baseline recorded: the registry and trace sink cost nothing
/// disabled. One representative row per experiment flavor; the CI sweep
/// byte-compares the full matrix.
#[test]
fn unobserved_rows_are_byte_identical_to_committed_baseline() {
    let baseline = baseline_text();
    assert!(
        baseline.contains(&format!("\"schema\": \"{}\"", sweep::SCHEMA)),
        "baseline not at the current schema"
    );
    for id in [
        "fig3/radix-svm-aurc/p4/as-built",
        "table1/dfs-sockets-default/p4/as-built",
        "table1/radix-vmmc-default/p4/as-built",
        "chaos/radix-vmmc-du/p4/rel",
    ] {
        let line = row_line(&smoke_spec(id));
        assert!(
            baseline.contains(&line),
            "{id}: fresh unobserved row diverges from the committed baseline\nfresh: {line}"
        );
    }
}

/// An observed fig3 SVM row must produce a Chrome trace whose timeline
/// spans at least four component categories (NIC, network, SVM, VMMC) and
/// a sweep row whose metrics block carries latency histograms alongside
/// the flat gated fields.
#[test]
fn observed_fig3_row_exports_multi_category_trace_and_histograms() {
    let spec = smoke_spec("fig3/radix-svm-aurc/p2/as-built");
    let (record, _perf, obs) = spec.execute_observed();
    assert_eq!(obs.trace_dropped, 0, "smoke row overflowed the trace sink");

    // The Chrome export: valid JSON, >= 4 distinct category timelines.
    let trace = chrome::to_chrome_json(&spec.id(), &obs);
    let doc = json::parse(&trace).expect("trace export is valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let tids: BTreeSet<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
        .map(|e| e.get("tid").unwrap().as_u64().unwrap())
        .collect();
    assert!(
        tids.len() >= 4,
        "expected >= 4 category timelines, got tids {tids:?}"
    );

    // The sweep row: flat gated fields plus observed metrics, histograms
    // included.
    let result = RunResult {
        index: 0,
        spec: spec.clone(),
        status: RunStatus::Ok(record),
        perf: None,
        obs: Some(obs),
        checkpoint: None,
    };
    let text = sweep::to_json("smoke", &[result]);
    let doc = json::parse(&text).expect("sweep artifact is valid JSON");
    let rows = doc.get("rows").unwrap().as_arr().unwrap();
    let metrics = rows[0].get("metrics").unwrap();
    let json::Json::Obj(map) = metrics else {
        panic!("metrics is not an object")
    };
    assert!(
        metrics.get("elapsed_ns").and_then(|v| v.as_u64()).is_some(),
        "flat gated fields must survive observation"
    );
    let histograms: Vec<&String> = map
        .iter()
        .filter(|(_, v)| v.get("kind").and_then(|k| k.as_str()) == Some("histogram"))
        .map(|(k, _)| k)
        .collect();
    assert!(
        !histograms.is_empty(),
        "observed row carries no latency histograms: keys {:?}",
        map.keys().collect::<Vec<_>>()
    );
    assert!(
        histograms.iter().all(|k| k.contains('/')),
        "observed metric keys must be category-namespaced: {histograms:?}"
    );
}
