//! Chaos-plane integration tests: the fault injector must be
//! deterministic (worker count cannot change the artifact), recoverable
//! (no chaos run aborts), and free (disabled faults leave every metric
//! byte-identical to the committed smoke baseline).

use std::path::PathBuf;

use shrimp_bench::{matrix, Scale};
use shrimp_harness::runner::{run_sweep, RunStatus, RunnerOptions};
use shrimp_harness::{json, sweep};

fn chaos_specs() -> Vec<shrimp_bench::RunSpec> {
    let mut specs = matrix(Scale::Smoke, 4);
    specs.retain(|s| s.experiment == "chaos");
    assert!(
        specs.len() >= 5,
        "smoke chaos group unexpectedly small: {}",
        specs.len()
    );
    specs
}

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/baselines/smoke.json")
}

/// Same seed + same scenario ⇒ the sweep artifact is byte-identical no
/// matter how many workers raced through it, and every chaos run
/// completes: faults are absorbed by retransmission, never fatal.
#[test]
fn chaos_sweep_is_worker_count_invariant_with_zero_aborts() {
    let specs = chaos_specs();
    let opts = |workers| RunnerOptions {
        workers,
        ..RunnerOptions::default()
    };
    let serial = run_sweep(&specs, &opts(1));
    let racing = run_sweep(&specs, &opts(4));
    assert_eq!(
        sweep::to_json("smoke", &serial),
        sweep::to_json("smoke", &racing),
        "worker count leaked into the sweep artifact"
    );

    for r in &serial {
        let record = match &r.status {
            RunStatus::Ok(rec) => rec,
            other => panic!("{} aborted: {}", r.spec.id(), other.label()),
        };
        let rec = record
            .recovery
            .expect("chaos rows always carry recovery metrics");
        let s = r.spec.knobs.faults;
        let packet_faults =
            s.drop_pct > 0 || s.corrupt_pct > 0 || s.duplicate_pct > 0 || s.link.is_some();
        if packet_faults {
            assert!(
                rec.faults_injected > 0,
                "{}: scenario active but no faults fired",
                r.spec.id()
            );
        } else if !s.is_active() {
            // The control row proves the reliable path alone changes nothing.
            assert_eq!(rec.retransmits, 0, "{}: spurious retransmit", r.spec.id());
        }
    }

    // Transient faults must not change the computed answer: every chaos
    // run of the same app/scale agrees with the fault-free control row.
    let control = serial
        .iter()
        .find(|r| !r.spec.knobs.faults.is_active() && r.spec.knobs.reliability)
        .expect("chaos group has a fault-free control row");
    let expected = control.status.record().unwrap().checksum;
    for r in serial.iter().filter(|r| {
        r.spec.knobs.reliability
            && r.spec.app == control.spec.app
            && r.spec.nodes == control.spec.nodes
    }) {
        assert_eq!(
            r.status.record().unwrap().checksum,
            expected,
            "{}: faults corrupted the answer",
            r.spec.id()
        );
    }
}

/// With the fault plane disabled (every non-chaos matrix row), metrics are
/// byte-for-byte what the baseline committed before the plane existed: the
/// reliability machinery costs nothing when off.
#[test]
fn disabled_fault_plane_leaves_baseline_rows_byte_identical() {
    let text = std::fs::read_to_string(baseline_path()).expect("committed smoke baseline");
    let doc = json::parse(&text).expect("baseline parses");
    let rows = doc.get("rows").unwrap().as_arr().unwrap();

    // Two representative fault-free rows; full-matrix coverage is the CI
    // sweep gate's job, exactness (not tolerance bands) is this test's.
    for id in [
        "table1/dfs-sockets-default/p4/as-built",
        "table1/radix-vmmc-default/p4/as-built",
    ] {
        let spec = matrix(Scale::Smoke, 4)
            .into_iter()
            .find(|s| s.id() == id)
            .unwrap_or_else(|| panic!("{id} missing from smoke matrix"));
        assert!(!spec.knobs.faults.is_active());
        let record = spec.execute();
        assert!(
            record.recovery.is_none(),
            "fault-free row grew recovery fields"
        );

        let row = rows
            .iter()
            .find(|r| r.get("id").and_then(|v| v.as_str()) == Some(id))
            .unwrap_or_else(|| panic!("{id} missing from baseline"));
        let metrics = row.get("metrics").unwrap();
        let json::Json::Obj(map) = metrics else {
            panic!("metrics is not an object")
        };
        let fields = record.fields();
        let mut fresh_keys: Vec<&str> = fields.iter().map(|(k, _)| *k).collect();
        fresh_keys.sort_unstable();
        assert_eq!(
            fresh_keys,
            map.keys().map(String::as_str).collect::<Vec<_>>(),
            "{id}: metric field set changed"
        );
        for (name, fresh) in fields {
            assert_eq!(
                metrics.get(name).and_then(|v| v.as_u64()),
                Some(fresh),
                "{id}: metric {name} drifted"
            );
        }
    }
}
