//! Scheduler byte-identity: the timer-wheel executor and the legacy
//! `BinaryHeap` scheduler it replaced must produce byte-identical sweep
//! artifacts. The legacy path exists only behind the `legacy-sched` feature
//! (enabled here via dev-dependency), so release binaries carry the wheel
//! alone while this test keeps the reference alive.

use shrimp_bench::{matrix, RunSpec, Scale};
use shrimp_harness::runner::{RunResult, RunStatus};
use shrimp_harness::sweep;
use shrimp_sim::executor::sched;

/// A cheap but representative slice of the smoke matrix: every DFS row
/// (fastest workload, all experiment groups) plus two chaos rows so the
/// fault-injected timing paths are compared too.
fn slice() -> Vec<RunSpec> {
    let mut specs: Vec<_> = matrix(Scale::Smoke, 2)
        .into_iter()
        .filter(|s| s.id().contains("dfs"))
        .collect();
    let chaos: Vec<_> = matrix(Scale::Smoke, 4)
        .into_iter()
        .filter(|s| s.experiment == "chaos")
        .take(2)
        .collect();
    assert!(
        specs.len() >= 3 && chaos.len() == 2,
        "matrix slice too small"
    );
    specs.extend(chaos);
    specs
}

/// Executes the slice on the current thread (the scheduler selector is
/// thread-local) and renders the sweep artifact exactly as the CLI would.
fn sweep_bytes(specs: &[RunSpec]) -> String {
    let results: Vec<RunResult> = specs
        .iter()
        .enumerate()
        .map(|(index, spec)| RunResult {
            index,
            spec: spec.clone(),
            status: RunStatus::Ok(spec.execute()),
            perf: None,
            obs: None,
            checkpoint: None,
        })
        .collect();
    sweep::to_json("smoke", &results)
}

#[test]
fn wheel_and_legacy_heap_sweeps_are_byte_identical() {
    let specs = slice();
    assert!(!sched::legacy_scheduler());
    let wheel = sweep_bytes(&specs);

    sched::set_legacy_scheduler(true);
    let legacy = sweep_bytes(&specs);
    sched::set_legacy_scheduler(false);

    assert_eq!(
        wheel, legacy,
        "timer-wheel scheduler changed the simulated schedule"
    );
}
