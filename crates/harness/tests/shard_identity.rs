//! Shard-count byte-identity: the sweep artifact is the same file no
//! matter how many shards the shard-engine rows execute on, and the
//! `--shards` flag leaves every classic cluster run — chaos rows
//! included — untouched down to the committed baseline bytes.
//!
//! This is the artifact-level face of the conservative executor's
//! determinism guarantee: `Shards::Auto` rows follow the sweep-wide
//! setting, yet their `RunRecord` metrics are invariant, so
//! `results/sweep.json` and the committed smoke baselines cannot drift
//! with the host's parallelism. Two row families exercise the engine:
//! the synthetic `parallel` group and the `cluster` group, whose nodes
//! run the full SHRIMP stack (VMMC, NIC, notifications) sharded across
//! `Sim`s with the mesh as the only cross-shard channel.

use std::path::PathBuf;
use std::sync::Arc;

use shrimp_bench::{matrix, Scale};
use shrimp_harness::runner::{run_sweep, RunResult, RunStatus, RunnerOptions};
use shrimp_harness::sweep;

fn run_ok(
    specs: &[shrimp_bench::RunSpec],
    shards: usize,
    checkpoint_in: Option<Arc<Vec<u8>>>,
    checkpoint_out: bool,
) -> Vec<RunResult> {
    let results = run_sweep(
        specs,
        &RunnerOptions {
            workers: 4,
            shards,
            checkpoint_in,
            checkpoint_out,
            ..RunnerOptions::default()
        },
    );
    for r in &results {
        assert!(
            matches!(r.status, RunStatus::Ok(_)),
            "{} failed at {shards} shard(s): {}",
            r.spec.id(),
            r.status.label()
        );
    }
    results
}

fn sweep_bytes(specs: &[shrimp_bench::RunSpec], shards: usize) -> String {
    sweep::to_json("smoke", &run_ok(specs, shards, None, false))
}

fn committed(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/baselines")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed baseline {}: {e}", path.display()))
}

/// The full smoke sweep, three times: `--shards 1`, `--shards 2` and
/// `--shards 4` must produce byte-identical artifacts, and that one
/// artifact must match the committed smoke baseline byte for byte.
#[test]
fn smoke_sweep_is_byte_identical_across_shard_counts() {
    let specs = matrix(Scale::Smoke, 4);
    assert!(
        specs.iter().any(|s| s.experiment == "parallel"),
        "smoke matrix lost its engine-parallel rows"
    );
    assert!(
        specs.iter().any(|s| s.experiment == "cluster"),
        "smoke matrix lost its distributed-cluster rows"
    );
    let one = sweep_bytes(&specs, 1);
    let two = sweep_bytes(&specs, 2);
    let four = sweep_bytes(&specs, 4);
    assert_eq!(one, two, "--shards 2 changed the sweep artifact");
    assert_eq!(one, four, "--shards 4 changed the sweep artifact");
    assert_eq!(
        one,
        committed("smoke.json"),
        "the sweep artifact drifted from the committed smoke baseline"
    );
}

/// The sharded-cluster differential oracle at the artifact level: the
/// cluster rows alone — full SHRIMP nodes partitioned across shards,
/// including the pinned 64-node pair — produce the same bytes whether
/// the `Shards::Auto` row runs on one `Sim` (the single-`Sim` oracle
/// path: one shard, no windows) or windowed across 2 or 4 shards.
#[test]
fn cluster_rows_are_byte_identical_across_shard_counts() {
    let mut specs = matrix(Scale::Smoke, 4);
    specs.retain(|s| s.experiment == "cluster");
    assert!(
        specs.iter().any(|s| s.nodes == 16),
        "cluster group lost its 16-node oracle row"
    );
    assert!(
        specs.iter().any(|s| s.nodes == 64),
        "cluster group lost its 64-node rows"
    );
    let oracle = sweep_bytes(&specs, 1);
    assert_eq!(
        oracle,
        sweep_bytes(&specs, 2),
        "--shards 2 changed the cluster rows"
    );
    assert_eq!(
        oracle,
        sweep_bytes(&specs, 4),
        "--shards 4 changed the cluster rows"
    );
}

/// Chaos under parallel: the nine chaos smoke rows executed with
/// `--shards 4` reproduce the committed chaos baseline byte for byte.
/// These rows run classic single-`Sim` applications (Radix on `build()`),
/// where the fault plane draws from its legacy shared RNG stream — the
/// stream the committed bytes pin — so the `--shards` flag must stay a
/// no-op for them even with the fault plane active.
#[test]
fn chaos_rows_under_shards_4_match_the_committed_baseline() {
    let mut specs = matrix(Scale::Smoke, 4);
    specs.retain(|s| s.experiment == "chaos");
    assert_eq!(specs.len(), 9, "smoke chaos group changed size");
    let fresh = sweep_bytes(&specs, 4);
    assert_eq!(
        fresh,
        committed("chaos-smoke.json"),
        "--shards 4 (or a regression) changed the chaos sweep artifact"
    );
}

/// Sharded chaos: the chaos-cluster rows — fault scenarios on the
/// `launch()` path, per-entity RNG streams, crash/restart faults, and
/// the heartbeat failure detector — produce byte-identical artifacts at
/// `--shards` 1, 2 and 4, and the single-shard run (the windowless
/// single-`Sim` oracle) matches the committed baseline byte for byte.
#[test]
fn chaos_cluster_rows_are_byte_identical_across_shard_counts() {
    let mut specs = matrix(Scale::Smoke, 4);
    specs.retain(|s| s.experiment == "chaos-cluster");
    assert_eq!(specs.len(), 3, "smoke chaos-cluster group changed size");
    assert!(
        specs
            .iter()
            .any(|s| s.nodes == 64 && s.knobs.faults.crash.is_some()),
        "chaos-cluster group lost its 64-node crash rows"
    );
    let oracle = sweep_bytes(&specs, 1);
    assert_eq!(
        oracle,
        sweep_bytes(&specs, 2),
        "--shards 2 changed the chaos-cluster rows"
    );
    assert_eq!(
        oracle,
        sweep_bytes(&specs, 4),
        "--shards 4 changed the chaos-cluster rows"
    );
    assert_eq!(
        oracle,
        committed("chaos-cluster-smoke.json"),
        "the chaos-cluster artifact drifted from its committed baseline"
    );
}

/// The replicated-KV rows: open-loop load whose latency quantiles come
/// out of the merged metrics histograms, plus a primary-crash failover —
/// byte-identical at `--shards` 1, 2 and 4 (the histogram merge across
/// shards is commutative and associative), and the single-shard oracle
/// matches the committed kv baseline byte for byte.
#[test]
fn kv_rows_are_byte_identical_across_shard_counts() {
    let mut specs = matrix(Scale::Smoke, 4);
    specs.retain(|s| s.experiment == "kv");
    assert_eq!(specs.len(), 2, "smoke kv group changed size");
    assert!(
        specs.iter().any(|s| s.knobs.faults.crash.is_some()),
        "kv group lost its failover row"
    );
    let oracle = sweep_bytes(&specs, 1);
    assert_eq!(
        oracle,
        sweep_bytes(&specs, 2),
        "--shards 2 changed the kv rows"
    );
    assert_eq!(
        oracle,
        sweep_bytes(&specs, 4),
        "--shards 4 changed the kv rows"
    );
    assert_eq!(
        oracle,
        committed("kv-smoke.json"),
        "the kv artifact drifted from its committed baseline"
    );
}

/// Cross-shard checkpoint/restore identity at the artifact level: the
/// warm-start rows (64-node, forked from one post-warmup checkpoint)
/// produce the same sweep rows whether they run cold, restore a
/// checkpoint captured at `--shards 1` onto 4 shards, or restore one
/// captured at `--shards 4` onto a single shard — and the checkpoint
/// artifact itself is byte-identical at every shard count. The rows also
/// byte-match the committed smoke baseline.
#[test]
fn warm_rows_restore_byte_identically_across_shard_counts() {
    let mut specs = matrix(Scale::Smoke, 4);
    specs.retain(|s| s.experiment == "warm");
    assert_eq!(specs.len(), 3, "smoke warm group changed size");
    let cold = sweep_bytes(&specs, 1);

    // Capture the checkpoint at each shard count; every warm row echoes
    // the same bytes, and the artifact is shard-count-invariant.
    let capture = |shards: usize| -> Arc<Vec<u8>> {
        let results = run_ok(&specs, shards, None, true);
        let captured: Vec<&Vec<u8>> = results
            .iter()
            .filter_map(|r| r.checkpoint.as_ref())
            .collect();
        assert_eq!(
            captured.len(),
            3,
            "every warm row must capture a checkpoint"
        );
        assert!(
            captured.iter().all(|b| *b == captured[0]),
            "warm rows captured diverging checkpoints at {shards} shard(s)"
        );
        Arc::new(captured[0].clone())
    };
    let ck1 = capture(1);
    let ck4 = capture(4);
    assert_eq!(
        ck1, ck4,
        "the checkpoint artifact must not depend on the shard count"
    );

    // Checkpoint at --shards 1, restore at --shards 4 — and the reverse.
    let warm4 = sweep::to_json("smoke", &run_ok(&specs, 4, Some(ck1), false));
    assert_eq!(
        cold, warm4,
        "restoring the 1-shard checkpoint on 4 shards changed the rows"
    );
    let warm1 = sweep::to_json("smoke", &run_ok(&specs, 1, Some(ck4), false));
    assert_eq!(
        cold, warm1,
        "restoring the 4-shard checkpoint on 1 shard changed the rows"
    );

    // Row-for-row byte match against the committed smoke baseline (the
    // warm rows sit at the end of the full smoke matrix).
    let baseline = committed("smoke.json");
    let warm_rows: Vec<&str> = cold
        .lines()
        .filter(|l| l.contains("\"experiment\": \"warm\""))
        .map(|l| l.trim_end_matches(','))
        .collect();
    assert_eq!(warm_rows.len(), 3);
    for row in warm_rows {
        assert!(
            baseline.contains(row),
            "warm row missing from the committed smoke baseline: {row}"
        );
    }
}
