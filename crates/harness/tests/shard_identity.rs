//! Shard-count byte-identity: the sweep artifact is the same file no
//! matter how many shards the engine-parallel rows execute on, and the
//! `--shards` flag leaves every cluster run — chaos rows included —
//! untouched down to the committed baseline bytes.
//!
//! This is the artifact-level face of the conservative executor's
//! determinism guarantee: `Shards::Auto` rows follow the sweep-wide
//! setting, yet their `RunRecord` metrics are invariant, so
//! `results/sweep.json` and the committed smoke baselines cannot drift
//! with the host's parallelism.

use std::path::PathBuf;

use shrimp_bench::{matrix, Scale};
use shrimp_harness::runner::{run_sweep, RunStatus, RunnerOptions};
use shrimp_harness::sweep;

fn sweep_bytes(specs: &[shrimp_bench::RunSpec], shards: usize) -> String {
    let results = run_sweep(
        specs,
        &RunnerOptions {
            workers: 4,
            shards,
            ..RunnerOptions::default()
        },
    );
    for r in &results {
        assert!(
            matches!(r.status, RunStatus::Ok(_)),
            "{} failed at {shards} shard(s): {}",
            r.spec.id(),
            r.status.label()
        );
    }
    sweep::to_json("smoke", &results)
}

/// The full smoke sweep, three times: `--shards 1`, `--shards 2` and
/// `--shards 4` must produce byte-identical artifacts.
#[test]
fn smoke_sweep_is_byte_identical_across_shard_counts() {
    let specs = matrix(Scale::Smoke, 4);
    assert!(
        specs.iter().any(|s| s.experiment == "parallel"),
        "smoke matrix lost its engine-parallel rows"
    );
    let one = sweep_bytes(&specs, 1);
    let two = sweep_bytes(&specs, 2);
    let four = sweep_bytes(&specs, 4);
    assert_eq!(one, two, "--shards 2 changed the sweep artifact");
    assert_eq!(one, four, "--shards 4 changed the sweep artifact");
}

/// Chaos under parallel: the nine chaos smoke rows executed with
/// `--shards 4` reproduce the committed chaos baseline byte for byte.
/// Cluster runs are one coupling class and always execute single-shard
/// (see `shrimp_sim::shard`), so the flag must be a no-op for them even
/// with the fault plane active.
#[test]
fn chaos_rows_under_shards_4_match_the_committed_baseline() {
    let mut specs = matrix(Scale::Smoke, 4);
    specs.retain(|s| s.experiment == "chaos");
    assert_eq!(specs.len(), 9, "smoke chaos group changed size");
    let fresh = sweep_bytes(&specs, 4);
    let committed =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/baselines/chaos-smoke.json");
    let baseline = std::fs::read_to_string(committed).expect("committed chaos-smoke baseline");
    assert_eq!(
        fresh, baseline,
        "--shards 4 (or a regression) changed the chaos sweep artifact"
    );
}
