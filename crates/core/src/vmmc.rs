//! The user-level VMMC library: export/import, deliberate update,
//! automatic-update bindings, notifications, and polling.

use shrimp_faults::{backoff_timeout, ShrimpError};
use shrimp_mem::{AddressSpace, CacheMode, Vaddr, PAGE_SIZE, WORD_BYTES};
use shrimp_net::NodeId;
use shrimp_nic::{DuRequest, OptEntry};
use shrimp_sim::{Event, Queue, Sim, Time};

use crate::cluster::{Cluster, Notification};
use crate::cpu::Cpu;
use crate::stats::NodeStats;

/// Identifier of an exported receive buffer (cluster-global).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExportId(pub u32);

/// A proxy receive buffer: the local representation of an imported remote
/// receive buffer (§2.2). Sends address bytes relative to the buffer base.
///
/// Fields are private; use the accessor methods. Construction goes
/// through [`Vmmc::import`] or the configurable [`ImportBuilder`].
#[derive(Debug, Clone)]
pub struct ProxyBuffer {
    export: ExportId,
    dst_node: usize,
    proxy_base: u64,
    len: usize,
}

impl ProxyBuffer {
    /// Size of the underlying receive buffer in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for a zero-length buffer (never produced by `export`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Node owning the underlying receive buffer.
    pub fn dst_node(&self) -> NodeId {
        NodeId(self.dst_node)
    }

    /// The export this proxy was imported from.
    pub fn export_id(&self) -> ExportId {
        self.export
    }

    /// First OPT index of the proxy page range (diagnostics only).
    pub fn proxy_base(&self) -> u64 {
        self.proxy_base
    }
}

/// How stores into an imported buffer propagate to the owning node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// Deliberate update: explicit [`Vmmc::send`] DMA transfers (default).
    Deliberate,
    /// Automatic update: a local page range is bound write-through at
    /// import, and every store to it propagates as a side effect.
    Automatic {
        /// Merge consecutive stores into combined packets (§4.5.1).
        combine: bool,
        /// Attach the AU interrupt-request bit (receiver notification).
        notify: bool,
    },
}

/// Configurable import of an exported receive buffer: destination-node
/// sanity check, update policy, and (for automatic update) the local
/// binding range and its cache mode. Replaces the bare [`Vmmc::import`]
/// plus field poking of earlier revisions.
///
/// ```no_run
/// # use shrimp_core::{Cluster, DesignConfig, UpdatePolicy};
/// # let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
/// # let (a, b) = (cluster.vmmc(0), cluster.vmmc(1));
/// # let recv = b.space().alloc(1);
/// # let export = b.export(recv, shrimp_mem::PAGE_SIZE);
/// # let local = a.space().alloc(1);
/// let proxy = a
///     .importer(export)
///     .from_node(b.node_id())
///     .automatic(local, true, false)
///     .finish();
/// ```
#[must_use = "an ImportBuilder does nothing until finish() is called"]
pub struct ImportBuilder<'a> {
    vmmc: &'a Vmmc,
    export: ExportId,
    expect_from: Option<NodeId>,
    policy: UpdatePolicy,
    au_local: Option<Vaddr>,
    cache_mode: CacheMode,
}

impl ImportBuilder<'_> {
    /// Asserts at [`finish`](Self::finish) that the export is owned by
    /// `node` (catches wiring bugs in multi-buffer setups).
    pub fn from_node(mut self, node: NodeId) -> Self {
        self.expect_from = Some(node);
        self
    }

    /// Sets the update policy. [`UpdatePolicy::Automatic`] requires a
    /// local binding range, set with [`local_range`](Self::local_range)
    /// (or use the [`automatic`](Self::automatic) shorthand).
    pub fn update_policy(mut self, policy: UpdatePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the page-aligned local range bound for automatic update; the
    /// binding covers the whole buffer from its base.
    pub fn local_range(mut self, local: Vaddr) -> Self {
        self.au_local = Some(local);
        self
    }

    /// Shorthand: automatic update from `local` with the given combining
    /// and notification settings.
    pub fn automatic(self, local: Vaddr, combine: bool, notify: bool) -> Self {
        self.update_policy(UpdatePolicy::Automatic { combine, notify })
            .local_range(local)
    }

    /// Cache mode of the AU-bound local pages. The default,
    /// [`CacheMode::WriteThrough`], is what makes the NIC snoop the store
    /// stream; [`CacheMode::WriteBack`] models a (hypothetical) binding
    /// whose stores are not propagated until an explicit send.
    pub fn cache_mode(mut self, mode: CacheMode) -> Self {
        self.cache_mode = mode;
        self
    }

    /// Performs the import: allocates the proxy OPT range and, for an
    /// automatic-update policy, establishes the local binding.
    ///
    /// # Panics
    ///
    /// Panics if the export is owned by a node other than the one given
    /// to [`from_node`](Self::from_node), or if an automatic policy was
    /// requested without a local range.
    pub fn finish(self) -> ProxyBuffer {
        let vmmc = self.vmmc;
        let info = vmmc.cluster.export_info(self.export);
        if let Some(expect) = self.expect_from {
            assert_eq!(
                NodeId(info.node),
                expect,
                "export {:?} owned by node {}, not {}",
                self.export,
                info.node,
                expect.0
            );
        }
        let node = vmmc.cluster.node(vmmc.node);
        let proxy_base = node.nic.alloc_proxy_range(info.phys_pages.len());
        for (i, &dst_page) in info.phys_pages.iter().enumerate() {
            node.nic.opt_set(
                proxy_base + i as u64,
                OptEntry {
                    dst_node: NodeId(info.node),
                    dst_page,
                    au_enable: false,
                    combine: false,
                    interrupt: false,
                },
            );
        }
        let proxy = ProxyBuffer {
            export: self.export,
            dst_node: info.node,
            proxy_base,
            len: info.len,
        };
        if let UpdatePolicy::Automatic { combine, notify } = self.policy {
            let local = self
                .au_local
                .expect("automatic update policy requires a local range");
            vmmc.bind_with_mode(
                local,
                &proxy,
                0,
                proxy.len,
                combine,
                notify,
                self.cache_mode,
            );
        }
        proxy
    }
}

/// Handle returned by asynchronous sends; waiting on it confirms the source
/// memory may be reused (all data has left main memory).
#[derive(Debug, Clone)]
pub struct SendTicket {
    done: Event,
}

impl SendTicket {
    /// Waits until the transfer's data has been injected into the network.
    pub async fn wait(&self) {
        self.done.wait().await;
    }

    /// `true` once the data has left the node.
    pub fn is_done(&self) -> bool {
        self.done.is_set()
    }
}

/// The VMMC library handle held by one node's application process.
///
/// Cheap to clone; see the [crate-level example](crate).
#[derive(Clone)]
pub struct Vmmc {
    cluster: Cluster,
    node: usize,
}

impl std::fmt::Debug for Vmmc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vmmc").field("node", &self.node).finish()
    }
}

impl Vmmc {
    pub(crate) fn new(cluster: Cluster, node: usize) -> Self {
        Vmmc { cluster, node }
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        NodeId(self.node)
    }

    /// The owning cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The simulator.
    pub fn sim(&self) -> &Sim {
        self.cluster.sim()
    }

    /// This node's address space.
    pub fn space(&self) -> &AddressSpace {
        &self.cluster.node(self.node).space
    }

    /// This node's CPU.
    pub fn cpu(&self) -> &Cpu {
        &self.cluster.node(self.node).cpu
    }

    /// This node's software statistics.
    pub fn stats(&self) -> std::rc::Rc<NodeStats> {
        self.cluster.stats(self.node)
    }

    /// Charges `d` of application compute time (preemptible by interrupts).
    pub async fn compute(&self, d: Time) {
        self.cpu().compute(d).await;
    }

    /// Charges `n` CPU cycles of application compute time.
    pub async fn compute_cycles(&self, n: u64) {
        let d = self.cluster.config().cycles(n);
        self.cpu().compute(d).await;
    }

    /// Charges the time of a local user-level copy of `bytes`.
    pub async fn local_copy(&self, bytes: usize) {
        let d = self.cluster.config().copy_time(bytes);
        self.cpu().compute(d).await;
    }

    // ------------------------------------------------------------------
    // Export / import
    // ------------------------------------------------------------------

    /// Exports `[base, base+len)` as a receive buffer: pins its pages and
    /// configures the IPT to accept packets for them. Returns the buffer id
    /// other nodes use to import it.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page-aligned or `len` is zero (receive
    /// buffers are page-granular in the SHRIMP implementation).
    pub fn export(&self, base: Vaddr, len: usize) -> ExportId {
        assert!(base.is_page_aligned(), "export base must be page-aligned");
        assert!(len > 0, "export of empty buffer");
        let node = self.cluster.node(self.node);
        node.space.pin_range(base, len);
        let npages = len.div_ceil(PAGE_SIZE);
        let phys_pages: Vec<u64> = (0..npages as u64)
            .map(|i| node.space.phys_page(base.page() + i))
            .collect();
        self.cluster.register_export(self.node, len, phys_pages)
    }

    /// Revokes an export: unpins its pages and withdraws packet acceptance
    /// (subsequent transfers to it are dropped by the IPT protection check).
    /// Imports held by other nodes become dangling, as on the real machine.
    pub fn unexport(&self, export: ExportId) {
        let info = self.cluster.export_info(export);
        assert_eq!(info.node, self.node, "export owned by another node");
        let node = self.cluster.node(self.node);
        for &p in &info.phys_pages {
            node.nic.ipt_set(
                p,
                shrimp_nic::IptEntry {
                    accept: false,
                    interrupt_enable: false,
                    buffer_id: export.0,
                },
            );
            node.mem.unpin(p);
        }
    }

    /// Imports an exported buffer with the default (deliberate-update)
    /// policy. Shorthand for `self.importer(export).finish()`.
    pub fn import(&self, export: ExportId) -> ProxyBuffer {
        self.importer(export).finish()
    }

    /// Imports a receive buffer on a node owned by *another shard* of a
    /// sharded launch, where the export directory is not reachable: the
    /// importer supplies the owner's physical pages and length out of band
    /// (in SHRIMP terms, the export handle travelled over a bootstrap
    /// channel). Deliberate-update only.
    ///
    /// Programs written for
    /// [`ClusterBuilder::launch`](crate::ClusterBuilder::launch)
    /// can compute remote physical pages
    /// without communicating because every node's memory map is built
    /// identically: the same allocation sequence yields the same pages.
    pub fn import_remote(&self, dst_node: NodeId, phys_pages: &[u64], len: usize) -> ProxyBuffer {
        assert!(!phys_pages.is_empty(), "import of an empty page set");
        assert!(
            len > 0 && len.div_ceil(PAGE_SIZE) == phys_pages.len(),
            "length {len} does not match {} pages",
            phys_pages.len()
        );
        let node = self.cluster.node(self.node);
        let proxy_base = node.nic.alloc_proxy_range(phys_pages.len());
        for (i, &dst_page) in phys_pages.iter().enumerate() {
            node.nic.opt_set(
                proxy_base + i as u64,
                OptEntry {
                    dst_node,
                    dst_page,
                    au_enable: false,
                    combine: false,
                    interrupt: false,
                },
            );
        }
        ProxyBuffer {
            // No shard-local directory entry backs a remote import.
            export: ExportId(u32::MAX),
            dst_node: dst_node.0,
            proxy_base,
            len,
        }
    }

    /// Starts a configurable import of an exported buffer (§2.3): the
    /// returned [`ImportBuilder`] selects the expected owner, the update
    /// policy, and the cache mode of automatic-update bindings.
    pub fn importer(&self, export: ExportId) -> ImportBuilder<'_> {
        ImportBuilder {
            vmmc: self,
            export,
            expect_from: None,
            policy: UpdatePolicy::Deliberate,
            au_local: None,
            cache_mode: CacheMode::WriteThrough,
        }
    }

    // ------------------------------------------------------------------
    // Deliberate update
    // ------------------------------------------------------------------

    /// Sends `[src, src+len)` into the proxy buffer at `dst_off` and waits
    /// until the source memory is safe to reuse.
    ///
    /// # Panics
    ///
    /// Panics on a malformed transfer or (under the reliability knob) when
    /// the retransmission budget is exhausted; [`Vmmc::try_send`] surfaces
    /// the same conditions as a [`ShrimpError`] instead.
    pub async fn send(&self, src: Vaddr, dst: &ProxyBuffer, dst_off: usize, len: usize) {
        match self.send_inner(src, dst, dst_off, len, false).await {
            Ok(t) => t.wait().await,
            Err(e) => panic!("vmmc send failed: {e}"),
        }
    }

    /// Like [`Vmmc::send`] but returns delivery errors instead of panicking
    /// (the fault-injection experiments' entry point).
    pub async fn try_send(
        &self,
        src: Vaddr,
        dst: &ProxyBuffer,
        dst_off: usize,
        len: usize,
    ) -> Result<(), ShrimpError> {
        let t = self.send_inner(src, dst, dst_off, len, false).await?;
        t.wait().await;
        Ok(())
    }

    /// Like [`Vmmc::send`] but requests a user-level notification at the
    /// receiver on arrival of the message.
    pub async fn send_notify(&self, src: Vaddr, dst: &ProxyBuffer, dst_off: usize, len: usize) {
        match self.send_inner(src, dst, dst_off, len, true).await {
            Ok(t) => t.wait().await,
            Err(e) => panic!("vmmc send_notify failed: {e}"),
        }
    }

    /// Asynchronous send: returns as soon as the transfer is initiated
    /// (queued to the DMA engine); the ticket completes when the source is
    /// reusable. Used by the §4.5.3 queueing experiment.
    pub async fn send_async(
        &self,
        src: Vaddr,
        dst: &ProxyBuffer,
        dst_off: usize,
        len: usize,
    ) -> SendTicket {
        match self.send_inner(src, dst, dst_off, len, false).await {
            Ok(t) => t,
            Err(e) => panic!("vmmc send_async failed: {e}"),
        }
    }

    /// Asynchronous send with a notification request.
    pub async fn send_async_notify(
        &self,
        src: Vaddr,
        dst: &ProxyBuffer,
        dst_off: usize,
        len: usize,
    ) -> SendTicket {
        match self.send_inner(src, dst, dst_off, len, true).await {
            Ok(t) => t,
            Err(e) => panic!("vmmc send_async_notify failed: {e}"),
        }
    }

    async fn send_inner(
        &self,
        src: Vaddr,
        dst: &ProxyBuffer,
        dst_off: usize,
        len: usize,
        notify: bool,
    ) -> Result<SendTicket, ShrimpError> {
        if len == 0 {
            return Err(ShrimpError::EmptyTransfer);
        }
        if dst_off + len > dst.len {
            return Err(ShrimpError::BufferOverrun {
                offset: dst_off,
                len,
                capacity: dst.len,
            });
        }
        let cfg = self.cluster.config().clone();
        let node = self.cluster.node(self.node);
        NodeStats::bump(&node.stats.messages_sent);
        NodeStats::add(&node.stats.bytes_sent, len as u64);
        let send_t0 = self.sim().now();
        let metrics = self.sim().metrics().clone();
        metrics.counter_add(shrimp_sim::Category::Core, "messages_sent", 1);
        metrics.counter_add(shrimp_sim::Category::Core, "bytes_sent", len as u64);
        shrimp_sim::trace_event!(
            self.sim().trace(),
            self.sim().now(),
            shrimp_sim::Category::Core,
            [
                ("node", self.node),
                ("dst", dst.dst_node),
                ("len", len),
                ("notify", notify),
            ],
            "{}: send {} B -> node {} +{}",
            self.node,
            len,
            dst.dst_node,
            dst_off
        );
        // Table 2 experiment: an "aggressive kernel-based implementation"
        // traps into the kernel before every message send.
        if cfg.syscall_send {
            NodeStats::bump(&node.stats.syscalls);
            node.cpu.compute(cfg.syscall_cost).await;
        }
        // The library splits the transfer at source and destination page
        // boundaries (the protection scheme forbids crossing either, §4.5.3).
        let mut sent = 0usize;
        let mut last = None;
        while sent < len {
            let s = src.add(sent as u64);
            let d = dst_off + sent;
            let step = (PAGE_SIZE - s.offset())
                .min(PAGE_SIZE - d % PAGE_SIZE)
                .min(len - sent);
            let is_last = sent + step == len;
            // The two-instruction UDMA initiation sequence (§4.3).
            node.cpu.compute(cfg.nic.udma_initiate).await;
            let req = DuRequest {
                src: node.space.translate(s),
                proxy_index: dst.proxy_base + (d / PAGE_SIZE) as u64,
                dst_offset: d % PAGE_SIZE,
                len: step,
                // Table 4 experiment: force an interrupt per message.
                interrupt: is_last && (notify || cfg.interrupt_per_message),
                notify: is_last && notify,
                seq: 0,
            };
            let ev = if cfg.reliability.enabled {
                self.send_chunk_reliably(dst, req).await?
            } else {
                node.nic.deliberate_update(req).await?
            };
            last = Some(ev);
            sent += step;
        }
        // Initiation latency: syscall (if any) + per-chunk UDMA setup +
        // reliable handshakes, up to the last chunk's hand-off to the NIC.
        metrics.observe(
            shrimp_sim::Category::Core,
            "send_latency_ps",
            self.sim().now() - send_t0,
        );
        Ok(SendTicket {
            done: last.expect("send_inner sent nothing"),
        })
    }

    /// Stop-and-wait reliable transmission of one page-bounded chunk:
    /// sequence the request, then retransmit on nack or ack timeout with
    /// exponential backoff until acked or the retry budget is exhausted.
    async fn send_chunk_reliably(
        &self,
        dst: &ProxyBuffer,
        req: DuRequest,
    ) -> Result<Event, ShrimpError> {
        let node = self.cluster.node(self.node);
        let rel = self.cluster.config().reliability;
        let seq = node.nic.next_seq();
        let t0 = self.sim().now();
        let mut attempt = 0u32;
        loop {
            // A fresh waiter per attempt: a stale timeout timer can only
            // fire the previous attempt's event, never this one's.
            let waiter = node.nic.register_ack_waiter(seq);
            let du = node
                .nic
                .deliberate_update(DuRequest { seq, ..req.clone() })
                .await;
            let ev = match du {
                Ok(ev) => ev,
                Err(e) => {
                    node.nic.clear_ack_waiter(seq);
                    return Err(e);
                }
            };
            let timeout = backoff_timeout(rel.ack_timeout, rel.backoff_cap, attempt);
            let wake = waiter.ev.clone();
            self.sim().schedule_in(timeout, move || wake.set());
            waiter.ev.wait().await;
            if waiter.acked.get() {
                node.nic.clear_ack_waiter(seq);
                if attempt > 0 {
                    NodeStats::add(&node.stats.recovery_time, self.sim().now() - t0);
                }
                return Ok(ev);
            }
            // Nack or timeout: retransmit (the receiver suppresses any
            // duplicate the timeout path might produce).
            attempt += 1;
            if attempt > rel.max_retries {
                node.nic.clear_ack_waiter(seq);
                return Err(ShrimpError::DeliveryFailed {
                    dst: dst.dst_node,
                    seq,
                    attempts: attempt,
                });
            }
            NodeStats::bump(&node.stats.retransmits);
            self.sim()
                .metrics()
                .counter_add(shrimp_sim::Category::Core, "retransmits", 1);
        }
    }

    // ------------------------------------------------------------------
    // Automatic update
    // ------------------------------------------------------------------

    /// Binds `[local, local+len)` for automatic update into the imported
    /// buffer at `dst_off`: bound pages become write-through, and every
    /// store to them propagates to the remote buffer as a side effect.
    ///
    /// Bindings are page-aligned on both sides (§2.2's implementation
    /// restriction). `combine` enables per-binding combining (§4.5.1);
    /// `notify` attaches the AU interrupt-request bit, stored in the OPT.
    ///
    /// # Panics
    ///
    /// Panics on misaligned addresses or a binding that overruns the buffer.
    pub fn bind(
        &self,
        local: Vaddr,
        dst: &ProxyBuffer,
        dst_off: usize,
        len: usize,
        combine: bool,
        notify: bool,
    ) {
        self.bind_with_mode(
            local,
            dst,
            dst_off,
            len,
            combine,
            notify,
            CacheMode::WriteThrough,
        );
    }

    /// [`Vmmc::bind`] with an explicit cache mode for the bound local
    /// pages (the [`ImportBuilder`] what-if surface).
    #[allow(clippy::too_many_arguments)] // builder-facing internal variant
    pub(crate) fn bind_with_mode(
        &self,
        local: Vaddr,
        dst: &ProxyBuffer,
        dst_off: usize,
        len: usize,
        combine: bool,
        notify: bool,
        mode: CacheMode,
    ) {
        assert!(
            local.is_page_aligned(),
            "AU binding source not page-aligned"
        );
        assert!(
            dst_off.is_multiple_of(PAGE_SIZE),
            "AU binding destination not page-aligned"
        );
        assert!(len > 0, "empty AU binding");
        assert!(dst_off + len <= dst.len, "AU binding overruns buffer");
        let info = self.cluster.export_info(dst.export);
        let node = self.cluster.node(self.node);
        let npages = len.div_ceil(PAGE_SIZE);
        for i in 0..npages {
            let local_phys = node.space.phys_page(local.page() + i as u64);
            let dst_page = info.phys_pages[dst_off / PAGE_SIZE + i];
            node.nic.opt_set(
                local_phys,
                OptEntry {
                    dst_node: NodeId(info.node),
                    dst_page,
                    au_enable: true,
                    combine,
                    interrupt: notify,
                },
            );
            node.mem.set_cache_mode(local_phys, mode);
        }
    }

    /// Removes an automatic-update binding, restoring write-back caching.
    pub fn unbind(&self, local: Vaddr, len: usize) {
        let node = self.cluster.node(self.node);
        for i in 0..len.div_ceil(PAGE_SIZE) {
            let local_phys = node.space.phys_page(local.page() + i as u64);
            node.nic.tables().opt_clear(local_phys);
            node.mem.set_cache_mode(local_phys, CacheMode::WriteBack);
        }
    }

    /// Performs a store that may hit automatic-update bindings: pays the
    /// write-through cost on bound pages (and occupies the memory bus),
    /// honors FIFO-overflow de-scheduling, and triggers the NIC snoop path.
    ///
    /// Write-through stores are issued a word at a time, paced by their
    /// cost, so the NIC sees the store stream at the rate the memory bus
    /// delivers it (a block store cannot outrun the outgoing FIFO's
    /// threshold interrupt).
    pub async fn store(&self, v: Vaddr, data: &[u8]) {
        let node = self.cluster.node(self.node);
        let cfg = self.cluster.config().clone();
        // Words per pacing batch: small enough for the FIFO threshold
        // interrupt to bite, large enough to bound event counts.
        const BATCH_WORDS: usize = 16;
        let mut off = 0usize;
        while off < data.len() {
            let a = v.add(off as u64);
            let in_page = (PAGE_SIZE - a.offset()).min(data.len() - off);
            let pa = node.space.translate(a);
            if node.mem.cache_mode_of(pa.page()) == CacheMode::WriteBack {
                let words = in_page.div_ceil(WORD_BYTES) as u64;
                node.cpu.compute(words * cfg.wb_store_word_cost).await;
                node.space.store(a, &data[off..off + in_page]);
            } else {
                // Write-through: word-granular, snooped, paced stores.
                let mut w = 0usize;
                while w < in_page {
                    // §4.5.2: system software de-schedules AU writers while
                    // the outgoing FIFO is over threshold.
                    while node.nic.au_blocked() {
                        node.nic.drain_gate().wait().await;
                    }
                    let batch = (BATCH_WORDS * WORD_BYTES).min(in_page - w);
                    let words = batch.div_ceil(WORD_BYTES) as u64;
                    let d = words * cfg.wt_store_word_cost;
                    node.bus.occupy_reserve(self.sim(), d);
                    node.cpu.compute(d).await;
                    let mut x = 0usize;
                    while x < batch {
                        let step = WORD_BYTES.min(batch - x);
                        node.space.store(
                            a.add((w + x) as u64),
                            &data[off + w + x..off + w + x + step],
                        );
                        x += step;
                    }
                    w += batch;
                }
            }
            off += in_page;
        }
    }

    /// AU-aware store of a `u32`.
    pub async fn store_u32(&self, v: Vaddr, val: u32) {
        self.store(v, &val.to_le_bytes()).await;
    }

    /// AU-aware store of a `u64`.
    pub async fn store_u64(&self, v: Vaddr, val: u64) {
        self.store(v, &val.to_le_bytes()).await;
    }

    /// Flushes this node's pending combined AU packet (used before
    /// synchronization releases).
    pub fn flush_au(&self) {
        self.cluster.node(self.node).nic.flush_au();
    }

    // ------------------------------------------------------------------
    // Receiving: polling and notifications
    // ------------------------------------------------------------------

    /// Local read (no cost model; reads hit the cache).
    pub fn read(&self, v: Vaddr, buf: &mut [u8]) {
        self.cluster.node(self.node).space.read(v, buf);
    }

    /// Local read of a `u32`.
    pub fn read_u32(&self, v: Vaddr) -> u32 {
        self.cluster.node(self.node).space.read_u32(v)
    }

    /// Local read of a `u64`.
    pub fn read_u64(&self, v: Vaddr) -> u64 {
        self.cluster.node(self.node).space.read_u64(v)
    }

    /// Polls a word until `pred` holds, sleeping on incoming-DMA writes to
    /// its page between checks (the polling receive style that lets VMMC
    /// applications avoid receive interrupts entirely, §4.4).
    pub async fn poll_u32<F: Fn(u32) -> bool>(&self, v: Vaddr, pred: F) -> u32 {
        let node = self.cluster.node(self.node);
        let page = node.space.translate(v).page();
        let gate = node.mem.write_gate(page);
        loop {
            let cur = node.space.read_u32(v);
            if pred(cur) {
                return cur;
            }
            gate.wait().await;
        }
    }

    /// Polls a `u64` until `pred` holds.
    pub async fn poll_u64<F: Fn(u64) -> bool>(&self, v: Vaddr, pred: F) -> u64 {
        let node = self.cluster.node(self.node);
        let page = node.space.translate(v).page();
        let gate = node.mem.write_gate(page);
        loop {
            let cur = node.space.read_u64(v);
            if pred(cur) {
                return cur;
            }
            gate.wait().await;
        }
    }

    /// Gate notified on any incoming-DMA write to this node's memory;
    /// receive-from-any pollers sleep on it.
    pub fn any_write_gate(&self) -> shrimp_sim::Gate {
        self.cluster.node(self.node).mem.any_write_gate()
    }

    /// Gate notified on incoming-DMA writes to the page holding `v`.
    pub fn write_gate(&self, v: Vaddr) -> shrimp_sim::Gate {
        let node = self.cluster.node(self.node);
        let page = node.space.translate(v).page();
        node.mem.write_gate(page)
    }

    /// Enables notifications for an exported buffer and returns the queue
    /// its user-level handler consumes.
    ///
    /// # Panics
    ///
    /// Panics if the export belongs to another node.
    pub fn enable_notifications(&self, export: ExportId) -> Queue<Notification> {
        let info = self.cluster.export_info(export);
        assert_eq!(info.node, self.node, "export owned by another node");
        info.notify_enabled.set(true);
        let node = self.cluster.node(self.node);
        node.nic
            .tables()
            .ipt_set_interrupt_for_buffer(export.0, true);
        info.queue.clone()
    }

    /// Blocks notification delivery for this process (arrivals queue).
    pub fn block_notifications(&self) {
        self.cluster.node(self.node).notifications_blocked.set(true);
    }

    /// Unblocks notification delivery, delivering anything queued while
    /// blocked.
    pub async fn unblock_notifications(&self) {
        self.cluster
            .node(self.node)
            .notifications_blocked
            .set(false);
        self.cluster.flush_pending_notifications(self.node).await;
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // knob-flip style mirrors the experiments
mod tests {
    use super::*;
    use crate::config::DesignConfig;
    use shrimp_sim::time;

    fn two_nodes() -> (Cluster, Vmmc, Vmmc) {
        let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
        let a = cluster.vmmc(0);
        let b = cluster.vmmc(1);
        (cluster, a, b)
    }

    #[test]
    fn multi_page_send_delivers_exact_bytes() {
        let (cluster, a, b) = two_nodes();
        let recv = b.space().alloc(3);
        let export = b.export(recv, 3 * PAGE_SIZE);
        let proxy = a.import(export);
        let src = a.space().alloc(3);
        let payload: Vec<u8> = (0..9000u32).map(|i| (i % 251) as u8).collect();
        a.space().write_raw(src.add(100), &payload);
        let a2 = a.clone();
        let h = cluster.sim().spawn(async move {
            a2.send(src.add(100), &proxy, 300, 9000).await;
        });
        cluster.run_until_complete(vec![h]);
        let mut got = vec![0u8; 9000];
        b.space().read(recv.add(300), &mut got);
        assert_eq!(got, payload);
        // 9000 bytes from offset 100 against offset 300: split on both
        // sides' page boundaries.
        assert!(cluster.nic(0).counters().du_transfers.get() >= 3);
        assert_eq!(cluster.stats(0).messages_sent.get(), 1);
    }

    #[test]
    fn unexport_revokes_acceptance() {
        let (cluster, a, b) = two_nodes();
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let proxy = a.import(export);
        let src = a.space().alloc(1);
        a.space().write_raw(src, &1u32.to_le_bytes());
        let a2 = a.clone();
        let h = cluster.sim().spawn(async move {
            a2.send(src, &proxy, 0, 4).await;
        });
        // Give the first send time to land, then revoke.
        let b2 = b.clone();
        cluster
            .sim()
            .schedule(time::ms(1), move || b2.unexport(export));
        let a3 = a.clone();
        let proxy2 = a.import(export);
        let h2 = cluster.sim().spawn(async move {
            a3.sim().sleep(time::ms(2)).await;
            a3.space().write_raw(src, &2u32.to_le_bytes());
            a3.send(src, &proxy2, 8, 4).await;
        });
        cluster.run_until_complete(vec![h, h2]);
        assert_eq!(b.space().read_u32(recv), 1, "pre-revoke send lost");
        assert_eq!(
            b.space().read_u32(recv.add(8)),
            0,
            "post-revoke send landed"
        );
        assert_eq!(cluster.nic(1).counters().protection_drops.get(), 1);
    }

    #[test]
    fn send_rejects_overrun() {
        let (cluster, a, b) = two_nodes();
        let recv = b.space().alloc(1);
        let export = b.export(recv, 4096);
        let proxy = a.import(export);
        let src = a.space().alloc(1);
        let a2 = a.clone();
        let h = cluster.sim().spawn(async move {
            a2.send(src, &proxy, 4000, 200).await; // 4200 > 4096
        });
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cluster.run_until_complete(vec![h]);
        }));
        assert!(res.is_err());
    }

    #[test]
    fn automatic_update_binding_propagates_stores() {
        let (cluster, a, b) = two_nodes();
        let recv = b.space().alloc(2);
        let export = b.export(recv, 2 * PAGE_SIZE);
        let proxy = a.import(export);
        let local = a.space().alloc(2);
        a.bind(local, &proxy, 0, 2 * PAGE_SIZE, true, false);
        let a2 = a.clone();
        let h = cluster.sim().spawn(async move {
            a2.store_u32(local.add(8), 77).await;
            a2.store_u32(local.add(PAGE_SIZE as u64 + 12), 88).await;
            a2.flush_au();
        });
        cluster.run_until_complete(vec![h]);
        assert_eq!(b.space().read_u32(recv.add(8)), 77);
        assert_eq!(b.space().read_u32(recv.add(PAGE_SIZE as u64 + 12)), 88);
        assert!(cluster.nic(0).counters().au_packets.get() >= 2);
    }

    #[test]
    fn au_stores_cost_more_than_unbound_stores() {
        let (cluster, a, b) = two_nodes();
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let proxy = a.import(export);
        let bound = a.space().alloc(1);
        let unbound = a.space().alloc(1);
        a.bind(bound, &proxy, 0, PAGE_SIZE, true, false);
        let sim = cluster.sim().clone();
        let a2 = a.clone();
        let h = sim.spawn(async move {
            let t0 = a2.sim().now();
            for i in 0..64 {
                a2.store_u32(unbound.add(i * 4), i as u32).await;
            }
            let t1 = a2.sim().now();
            for i in 0..64 {
                a2.store_u32(bound.add(i * 4), i as u32).await;
            }
            let t2 = a2.sim().now();
            (t1 - t0, t2 - t1)
        });
        let (_, out) = cluster.run_until_complete(vec![h]);
        let (wb, wt) = out[0];
        assert!(
            wt > wb * 2,
            "write-through stores ({wt}) not much slower than write-back ({wb})"
        );
    }

    #[test]
    fn notification_delivered_only_when_requested_and_enabled() {
        let (cluster, a, b) = two_nodes();
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let notif_queue = b.enable_notifications(export);
        let proxy = a.import(export);
        let src = a.space().alloc(1);
        let a2 = a.clone();
        let h = cluster.sim().spawn(async move {
            a2.send(src, &proxy, 0, 64).await; // no notify
            a2.send_notify(src, &proxy, 64, 32).await; // notify
        });
        let b2 = b.clone();
        let hb = cluster.sim().spawn(async move {
            let n = b2.cluster().export_info(export).queue.recv().await.unwrap();
            n
        });
        let _ = notif_queue;
        cluster.run_until_complete(vec![h]);
        let n = hb.try_take().expect("notification not delivered");
        assert_eq!(n.offset, 64);
        assert_eq!(n.len, 32);
        assert_eq!(cluster.stats(1).notifications.get(), 1);
        assert_eq!(cluster.stats(1).interrupts_taken.get(), 1);
    }

    #[test]
    fn syscall_send_knob_charges_and_counts() {
        let run = |syscall: bool| -> (Time, u64) {
            let mut cfg = DesignConfig::default();
            cfg.syscall_send = syscall;
            let cluster = Cluster::builder(2).config(cfg).build();
            let a = cluster.vmmc(0);
            let b = cluster.vmmc(1);
            let recv = b.space().alloc(1);
            let export = b.export(recv, PAGE_SIZE);
            let proxy = a.import(export);
            let src = a.space().alloc(1);
            let a2 = a.clone();
            let h = cluster.sim().spawn(async move {
                for i in 0..10 {
                    a2.send(src, &proxy, (i * 64) as usize, 64).await;
                }
            });
            let (t, _) = cluster.run_until_complete(vec![h]);
            (t, cluster.stats(0).syscalls.get())
        };
        let (t_udma, sc_udma) = run(false);
        let (t_sys, sc_sys) = run(true);
        assert_eq!(sc_udma, 0);
        assert_eq!(sc_sys, 10);
        assert!(
            t_sys >= t_udma + 10 * time::us(25) - time::us(1),
            "syscalls not charged: {t_udma} -> {t_sys}"
        );
    }

    #[test]
    fn interrupt_per_message_forces_null_handler_interrupts() {
        let run = |forced: bool| -> (Time, u64, u64) {
            let mut cfg = DesignConfig::default();
            cfg.interrupt_per_message = forced;
            let cluster = Cluster::builder(2).config(cfg).build();
            let a = cluster.vmmc(0);
            let b = cluster.vmmc(1);
            let recv = b.space().alloc(1);
            let export = b.export(recv, PAGE_SIZE);
            let proxy = a.import(export);
            let src = a.space().alloc(1);
            let flag = recv.add(PAGE_SIZE as u64 - 8);
            let a2 = a.clone();
            let ha = cluster.sim().spawn(async move {
                for i in 0..20u32 {
                    a2.send(src, &proxy, 0, 64).await;
                    a2.space().write_raw(src, &(i + 1).to_le_bytes());
                }
                a2.send(src, &proxy, PAGE_SIZE - 8, 4).await;
            });
            let b2 = b.clone();
            let hb = cluster.sim().spawn(async move {
                // Receiver computes while messages arrive, then sees flag.
                b2.compute(time::us(500)).await;
                b2.poll_u32(flag, |v| v != 0).await;
            });
            let (t, _) = cluster.run_until_complete(vec![ha, hb]);
            (
                t,
                cluster.stats(1).interrupts_taken.get(),
                cluster.stats(1).notifications.get(),
            )
        };
        let (t_base, intr_base, notif_base) = run(false);
        let (t_forced, intr_forced, notif_forced) = run(true);
        assert_eq!(intr_base, 0);
        assert_eq!(notif_base, 0);
        assert_eq!(intr_forced, 21);
        assert_eq!(notif_forced, 0, "forced interrupts must not notify");
        assert!(t_forced > t_base, "forced interrupts cost nothing");
    }

    #[test]
    fn blocked_notifications_queue_until_unblocked() {
        let (cluster, a, b) = two_nodes();
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let q = b.enable_notifications(export);
        b.block_notifications();
        let proxy = a.import(export);
        let src = a.space().alloc(1);
        let a2 = a.clone();
        let ha = cluster.sim().spawn(async move {
            a2.send_notify(src, &proxy, 0, 16).await;
            a2.send_notify(src, &proxy, 16, 16).await;
        });
        let b2 = b.clone();
        let sim = cluster.sim().clone();
        let hb = cluster.sim().spawn(async move {
            sim.sleep(time::ms(1)).await; // messages arrive while blocked
            assert!(q.is_empty(), "delivered while blocked");
            b2.unblock_notifications().await;
            let n1 = q.recv().await.unwrap();
            let n2 = q.recv().await.unwrap();
            (n1.offset, n2.offset)
        });
        cluster.run_until_complete(vec![ha]);
        // Queued notifications flushed in arrival order (LIFO pop then
        // re-pushed; assert both arrived).
        let offs = hb.try_take().expect("receiver did not finish");
        let mut v = [offs.0, offs.1];
        v.sort_unstable();
        assert_eq!(v, [0, 16]);
        assert_eq!(cluster.stats(1).notifications.get(), 2);
    }

    #[test]
    fn poll_wakes_on_remote_write() {
        let (cluster, a, b) = two_nodes();
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let proxy = a.import(export);
        let src = a.space().alloc(1);
        a.space().write_raw(src, &123u32.to_le_bytes());
        let sim = cluster.sim().clone();
        let a2 = a.clone();
        let ha = sim.spawn(async move {
            a2.compute(time::us(50)).await;
            a2.send(src, &proxy, 0, 4).await;
        });
        let b2 = b.clone();
        let hb = sim.spawn(async move { b2.poll_u32(recv, |v| v != 0).await });
        cluster.run_until_complete(vec![ha]);
        assert_eq!(hb.try_take(), Some(123));
    }

    #[test]
    fn import_builder_automatic_policy_binds_at_import() {
        let (cluster, a, b) = two_nodes();
        let recv = b.space().alloc(2);
        let export = b.export(recv, 2 * PAGE_SIZE);
        let local = a.space().alloc(2);
        let proxy = a
            .importer(export)
            .from_node(b.node_id())
            .automatic(local, true, false)
            .finish();
        assert_eq!(proxy.export_id(), export);
        assert_eq!(proxy.dst_node(), b.node_id());
        assert_eq!(proxy.len(), 2 * PAGE_SIZE);
        let a2 = a.clone();
        let h = cluster.sim().spawn(async move {
            a2.store_u32(local.add(16), 4242).await;
            a2.flush_au();
        });
        cluster.run_until_complete(vec![h]);
        assert_eq!(b.space().read_u32(recv.add(16)), 4242);
    }

    #[test]
    fn import_builder_write_back_mode_suppresses_propagation() {
        let (cluster, a, b) = two_nodes();
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let local = a.space().alloc(1);
        let _proxy = a
            .importer(export)
            .automatic(local, true, false)
            .cache_mode(shrimp_mem::CacheMode::WriteBack)
            .finish();
        let a2 = a.clone();
        let h = cluster.sim().spawn(async move {
            a2.store_u32(local, 7).await;
            a2.flush_au();
        });
        cluster.run_until_complete(vec![h]);
        // Write-back bound pages are not snooped: nothing arrives.
        assert_eq!(b.space().read_u32(recv), 0);
        assert_eq!(cluster.nic(0).counters().au_packets.get(), 0);
    }

    #[test]
    #[should_panic(expected = "owned by node")]
    fn import_builder_checks_expected_owner() {
        let (_cluster, a, b) = two_nodes();
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let _ = a.importer(export).from_node(a.node_id()).finish();
    }

    #[test]
    fn reliable_send_survives_heavy_packet_drops() {
        let mut cfg = DesignConfig::default();
        cfg.reliability = crate::Reliability::on();
        cfg.faults.seed = 5;
        cfg.faults.drop_pct = 30;
        let cluster = Cluster::builder(2).config(cfg).build();
        let a = cluster.vmmc(0);
        let b = cluster.vmmc(1);
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let proxy = a.import(export);
        let src = a.space().alloc(1);
        let payload: Vec<u8> = (0..256u32).map(|i| (i % 251) as u8).collect();
        a.space().write_raw(src, &payload);
        let a2 = a.clone();
        let h = cluster.sim().spawn(async move {
            for i in 0..16usize {
                a2.try_send(src, &proxy, i * 256, 256).await?;
            }
            Ok::<(), ShrimpError>(())
        });
        let (_, out) = cluster.run_until_complete(vec![h]);
        out[0].as_ref().expect("reliable delivery failed");
        for i in 0..16usize {
            let mut got = vec![0u8; 256];
            b.space().read(recv.add((i * 256) as u64), &mut got);
            assert_eq!(got, payload, "message {i} damaged or lost");
        }
        assert!(
            cluster.stats(0).retransmits.get() > 0,
            "30% drop over 16 messages injected no retransmission"
        );
        assert!(
            cluster.stats(0).recovery_time.get() > 0,
            "retransmissions recorded no recovery time"
        );
        let plane = cluster.fault_plane().expect("plane missing");
        assert!(plane.stats().drops.get() > 0);
    }

    #[test]
    fn reliable_send_delivers_exactly_once_under_duplicates() {
        let mut cfg = DesignConfig::default();
        cfg.reliability = crate::Reliability::on();
        cfg.faults.seed = 9;
        cfg.faults.duplicate_pct = 50;
        let cluster = Cluster::builder(2).config(cfg).build();
        let a = cluster.vmmc(0);
        let b = cluster.vmmc(1);
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let proxy = a.import(export);
        let src = a.space().alloc(1);
        a.space().write_raw(src, &0xdead_beefu32.to_le_bytes());
        let a2 = a.clone();
        let h = cluster.sim().spawn(async move {
            for i in 0..16usize {
                a2.try_send(src, &proxy, i * 16, 4).await?;
            }
            Ok::<(), ShrimpError>(())
        });
        let (_, out) = cluster.run_until_complete(vec![h]);
        out[0].as_ref().expect("reliable delivery failed");
        for i in 0..16usize {
            assert_eq!(b.space().read_u32(recv.add((i * 16) as u64)), 0xdead_beef);
        }
        assert!(
            cluster.nic(1).counters().dup_suppressed.get() > 0,
            "50% duplication suppressed nothing"
        );
    }

    #[test]
    fn reliable_send_to_unreachable_node_fails_gracefully() {
        let mut cfg = DesignConfig::default();
        cfg.reliability = crate::Reliability::on();
        // Sever the only link of the 2-node mesh before anything is sent.
        cfg.faults.link = Some(shrimp_faults::LinkFault {
            from: 0,
            to: 1,
            at_us: 0,
            down_us: 0,
        });
        let max_retries = cfg.reliability.max_retries;
        let cluster = Cluster::builder(2).config(cfg).build();
        let a = cluster.vmmc(0);
        let b = cluster.vmmc(1);
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let proxy = a.import(export);
        let src = a.space().alloc(1);
        let a2 = a.clone();
        let h = cluster
            .sim()
            .spawn(async move { a2.try_send(src, &proxy, 0, 64).await });
        let (_, out) = cluster.run_until_complete(vec![h]);
        match out[0] {
            Err(ShrimpError::DeliveryFailed { dst, attempts, .. }) => {
                assert_eq!(dst, 1);
                assert_eq!(attempts, max_retries + 1);
            }
            ref other => panic!("expected DeliveryFailed, got {other:?}"),
        }
        assert_eq!(
            cluster.stats(0).retransmits.get(),
            max_retries as u64,
            "every attempt after the first is a retransmission"
        );
    }

    #[test]
    fn fault_free_reliable_send_needs_no_retransmission() {
        let mut cfg = DesignConfig::default();
        cfg.reliability = crate::Reliability::on();
        let cluster = Cluster::builder(2).config(cfg).build();
        let a = cluster.vmmc(0);
        let b = cluster.vmmc(1);
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let proxy = a.import(export);
        let src = a.space().alloc(1);
        a.space().write_raw(src, &7u32.to_le_bytes());
        let a2 = a.clone();
        let h = cluster.sim().spawn(async move {
            a2.send(src, &proxy, 0, 4).await;
        });
        cluster.run_until_complete(vec![h]);
        assert_eq!(b.space().read_u32(recv), 7);
        assert_eq!(cluster.stats(0).retransmits.get(), 0);
        assert_eq!(cluster.stats(0).recovery_time.get(), 0);
        assert!(
            cluster.fault_plane().is_none(),
            "empty scenario built a plane"
        );
        assert!(
            cluster.nic(0).counters().acks_sent.get() > 0
                || cluster.nic(1).counters().acks_sent.get() > 0
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || -> (Time, u64) {
            let (cluster, a, b) = two_nodes();
            let recv = b.space().alloc(2);
            let export = b.export(recv, 2 * PAGE_SIZE);
            let proxy = a.import(export);
            let src = a.space().alloc(2);
            let a2 = a.clone();
            let h = cluster.sim().spawn(async move {
                for i in 0..50 {
                    a2.send(src, &proxy, (i * 100) % 4096, 100).await;
                    a2.compute(time::us(3)).await;
                }
            });
            let (t, _) = cluster.run_until_complete(vec![h]);
            (t, cluster.nic(1).counters().packets_received.get())
        };
        assert_eq!(run(), run());
    }
}
