//! The design-choice configuration: hardware parameters plus the software
//! policy knobs each §4 experiment varies.

use shrimp_faults::{FaultScenario, Reliability};
use shrimp_net::MeshConfig;
use shrimp_nic::NicConfig;
use shrimp_sim::{time, Time};

/// Full system configuration for one experiment.
///
/// [`DesignConfig::default`] is the SHRIMP machine as built and measured;
/// every experiment in the paper corresponds to flipping one field (or one
/// field of the embedded [`NicConfig`]).
#[derive(Debug, Clone)]
pub struct DesignConfig {
    /// Network-interface hardware/firmware parameters.
    pub nic: NicConfig,
    /// Backplane override; `None` picks the smallest SHRIMP-parameter mesh
    /// that holds the cluster (ablation studies sweep this).
    pub mesh: Option<MeshConfig>,
    /// Table 2: require a system call before every message send (the
    /// "aggressive kernel-based implementation" of §4.3).
    pub syscall_send: bool,
    /// Table 4: force an interrupt (null kernel handler) on every arriving
    /// message.
    pub interrupt_per_message: bool,
    /// Cost of a kernel trap + argument checks + return (1994-era Pentium).
    pub syscall_cost: Time,
    /// Cost of taking an interrupt and running a null kernel handler.
    pub interrupt_cost: Time,
    /// Additional cost of delivering a user-level notification (signal-like
    /// control transfer) on top of the kernel interrupt.
    pub notification_cost: Time,
    /// Node CPU clock (60 MHz Pentium).
    pub cpu_hz: u64,
    /// Local cache-to-cache copy bandwidth for user-level buffer copies.
    pub copy_bytes_per_sec: u64,
    /// Cost per word of a write-through (snoopable) store — the price the
    /// CPU pays for automatic-update bindings.
    pub wt_store_word_cost: Time,
    /// Cost per word of an ordinary write-back store.
    pub wb_store_word_cost: Time,
    /// Faults injected into this run; [`FaultScenario::none`] (the default)
    /// injects nothing and adds no overhead.
    pub faults: FaultScenario,
    /// Reliable-delivery knob for deliberate update: sequence numbers,
    /// acks, and timeout/backoff retransmission. Off by default — the
    /// unreliable fast path is the machine as built.
    pub reliability: Reliability,
}

impl DesignConfig {
    /// The system as built: user-level DMA sends, no forced interrupts,
    /// combining on, 32 KB outgoing FIFO, single-slot DU engine.
    pub fn as_built() -> Self {
        DesignConfig {
            nic: NicConfig::shrimp_default(),
            mesh: None,
            syscall_send: false,
            interrupt_per_message: false,
            syscall_cost: time::us(25),
            interrupt_cost: time::us(20),
            notification_cost: time::us(15),
            cpu_hz: 60_000_000,
            copy_bytes_per_sec: 80_000_000,
            wt_store_word_cost: time::ns(220),
            wb_store_word_cost: time::ns(17), // ~1 cycle at 60 MHz
            faults: FaultScenario::none(),
            reliability: Reliability::default(),
        }
    }

    /// Duration of `n` CPU cycles at this configuration's clock.
    pub fn cycles(&self, n: u64) -> Time {
        time::cycles(n, self.cpu_hz)
    }

    /// Duration of a user-level copy of `bytes` bytes.
    pub fn copy_time(&self, bytes: usize) -> Time {
        time::transfer(bytes as u64, self.copy_bytes_per_sec)
    }

    /// Compact summary of every knob flipped relative to the machine as
    /// built (`"as-built"` when none are) — recorded per run in sweep
    /// artifacts so a row is self-describing.
    pub fn knob_summary(&self) -> String {
        let base = DesignConfig::as_built();
        let mut parts = Vec::new();
        if self.syscall_send {
            parts.push("syscall-send".to_string());
        }
        if self.interrupt_per_message {
            parts.push("interrupt-per-message".to_string());
        }
        if self.nic.combining != base.nic.combining {
            parts.push(format!("combining={}", self.nic.combining));
        }
        if self.nic.out_fifo_capacity != base.nic.out_fifo_capacity {
            parts.push(format!("fifo={}B", self.nic.out_fifo_capacity));
        }
        if self.nic.du_queue_depth != base.nic.du_queue_depth {
            parts.push(format!("du-queue={}", self.nic.du_queue_depth));
        }
        if self.reliability.enabled {
            parts.push("reliable".to_string());
        }
        if self.faults.is_active() {
            parts.push(format!("faults={}", self.faults.label()));
        }
        if parts.is_empty() {
            "as-built".to_string()
        } else {
            parts.join(",")
        }
    }
}

impl Default for DesignConfig {
    fn default() -> Self {
        Self::as_built()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_machine_as_built() {
        let c = DesignConfig::default();
        assert!(!c.syscall_send);
        assert!(!c.interrupt_per_message);
        assert!(c.nic.combining);
        assert_eq!(c.cpu_hz, 60_000_000);
    }

    #[test]
    fn knob_summary_names_flipped_knobs() {
        assert_eq!(DesignConfig::default().knob_summary(), "as-built");
        let mut c = DesignConfig {
            syscall_send: true,
            ..DesignConfig::default()
        };
        c.nic.combining = false;
        assert_eq!(c.knob_summary(), "syscall-send,combining=false");
    }

    #[test]
    fn knob_summary_names_reliability_and_faults() {
        let mut c = DesignConfig {
            reliability: Reliability::on(),
            ..DesignConfig::default()
        };
        c.faults.drop_pct = 5;
        assert_eq!(c.knob_summary(), "reliable,faults=drop5");
    }

    #[test]
    fn cycles_and_copy_helpers() {
        let c = DesignConfig::default();
        assert_eq!(c.cycles(60), time::us(1));
        assert_eq!(c.copy_time(80), time::us(1));
    }
}
