//! The distributed cluster workload: the full SHRIMP software stack —
//! VMMC exports/imports, deliberate-update DMA, arrival interrupts, and
//! user-level notifications — driven through
//! [`ClusterBuilder::launch`](crate::ClusterBuilder::launch) so the same
//! program runs on one `Sim` or on many shards with bit-identical results.
//!
//! # Shape
//!
//! Every node exports one receive buffer with a fixed slot per peer,
//! enables notifications on it, and imports every peer's buffer. Because
//! each node's memory map is built by the identical allocation sequence on
//! a fresh `NodeMem`, a node computes its peers' physical pages from its
//! *own* — no bootstrap traffic — and imports them with
//! [`Vmmc::import_remote`](crate::Vmmc::import_remote). The work loop is
//! `steps` rounds of deterministic compute plus one deliberate-update send
//! to a seeded peer; a closing round sends one *notifying* message to every
//! peer, and each node returns a checksum of its receive buffer once all
//! `nodes - 1` closing notifications arrived (per-pair FIFO ordering makes
//! the notification the happens-after witness for that peer's data).
//!
//! # Invariance
//!
//! Each node's timeline is a pure function of its own deterministic
//! program and the totally-ordered `(arrival, source)` delivery sequence of
//! the decoupled mesh transport, so every [`LaunchOutcome`] field that
//! feeds a `RunRecord` is identical at every shard count — asserted here
//! and, at the artifact-byte level, by the harness shard-identity tests.
//!
//! The workload is *proportional*: per-node work is constant, so total
//! work scales linearly with the node count — the shape the 64- and
//! 256-node speedup rows in `EXPERIMENTS.md` rely on.

use std::sync::Arc;

use shrimp_mem::PAGE_SIZE;
use shrimp_net::NodeId;
use shrimp_sim::rng::splitmix64;
use shrimp_sim::shard::Shards;
use shrimp_sim::{time, Time};

use crate::cluster::{Cluster, LaunchOutcome, NodeProgram};
use crate::config::DesignConfig;
use crate::parallel::choice;
use crate::vmmc::Vmmc;

/// Workload shape for one distributed cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributedParams {
    /// Simulated nodes (one full SHRIMP node each).
    pub nodes: usize,
    /// Compute/send rounds per node (excluding the closing notify round).
    pub steps: u32,
    /// Bytes per message; also the per-peer slot size in the receive
    /// buffer.
    pub payload: usize,
    /// Simulated compute time per round (before jitter).
    pub compute: Time,
    /// Workload seed; every derived choice is a pure function of it.
    pub seed: u64,
}

impl DistributedParams {
    /// The default 16-node shape at a given round count.
    pub fn with_steps(steps: u32) -> Self {
        DistributedParams {
            nodes: 16,
            steps,
            payload: 256,
            compute: time::us(2),
            seed: 1,
        }
    }

    /// The same per-node work on a different node count (proportional
    /// scaling: total work grows linearly with `nodes`).
    pub fn scaled_to(self, nodes: usize) -> Self {
        DistributedParams { nodes, ..self }
    }
}

/// Runs the workload on a sharded cluster and returns the merged,
/// shard-count-invariant outcome.
///
/// # Panics
///
/// Panics when `params.nodes == 0`, `params.payload == 0`, or the design
/// configuration carries an active fault scenario (chaos is single-`Sim`
/// only — see [`ClusterBuilder::launch`](crate::ClusterBuilder::launch)).
pub fn run_distributed(
    params: &DistributedParams,
    cfg: DesignConfig,
    shards: Shards,
) -> LaunchOutcome {
    assert!(params.nodes >= 1, "workload needs at least one node");
    assert!(params.payload >= 1, "workload needs a non-empty payload");
    Cluster::builder(params.nodes)
        .config(cfg)
        .shards(shards)
        .launch(node_program(*params))
}

/// The per-node program of the workload, reusable under a caller-built
/// [`ClusterBuilder`](crate::ClusterBuilder).
pub fn node_program(p: DistributedParams) -> NodeProgram {
    Arc::new(move |vmmc: Vmmc| Box::pin(run_node(vmmc, p)))
}

async fn run_node(vmmc: Vmmc, p: DistributedParams) -> u64 {
    let me = vmmc.node_id().0;
    let n = p.nodes;
    let slot = p.payload;
    let len = n * slot;
    let npages = len.div_ceil(PAGE_SIZE);

    // The receive buffer is every node's FIRST allocation, so its physical
    // pages are the same deterministic sequence on every fresh node — the
    // fact import_remote relies on below.
    let recv = vmmc.space().alloc(npages);
    let export = vmmc.export(recv, len);
    let inbox = vmmc.enable_notifications(export);
    let peer_pages: Vec<u64> = (0..npages as u64)
        .map(|i| vmmc.space().phys_page(recv.page() + i))
        .collect();
    let stage = vmmc.space().alloc(slot.div_ceil(PAGE_SIZE).max(1));

    let proxies: Vec<_> = (0..n)
        .map(|peer| (peer != me).then(|| vmmc.import_remote(NodeId(peer), &peer_pages, len)))
        .collect();

    for step in 0..p.steps {
        let jitter = choice(p.seed, me, step, 0x6a69) % 1024;
        vmmc.compute(p.compute + jitter).await;
        if n == 1 {
            continue;
        }
        let pick = choice(p.seed, me, step, 0x7065) as usize;
        let dst = (me + 1 + pick % (n - 1)) % n;
        let bytes: Vec<u8> = (0..slot)
            .map(|i| (choice(p.seed, me, step, i as u64) & 0xff) as u8)
            .collect();
        vmmc.space().write_raw(stage, &bytes);
        let proxy = proxies[dst].as_ref().expect("never send to self");
        vmmc.send(stage, proxy, me * slot, slot).await;
    }

    if n > 1 {
        // Closing round: one notifying send per peer. It follows every
        // data send on the same (src, dst) pair, so its notification
        // witnesses that all of this node's data has landed there.
        let fin: Vec<u8> = (0..slot)
            .map(|i| (choice(p.seed, me, p.steps, i as u64) & 0xff) as u8)
            .collect();
        vmmc.space().write_raw(stage, &fin);
        for proxy in proxies.iter().flatten() {
            vmmc.send_notify(stage, proxy, me * slot, slot).await;
        }
        let mut checked_in = 0;
        while checked_in < n - 1 {
            inbox
                .recv()
                .await
                .expect("notification queue closed before all peers checked in");
            checked_in += 1;
        }
    }

    // Checksum the receive buffer (node-local reads of a now-final buffer;
    // the scan is charged as a local copy).
    let mut buf = vec![0u8; len];
    vmmc.space().read(recv, &mut buf);
    vmmc.local_copy(len).await;
    let mut st = p.seed ^ ((me as u64) << 32) ^ 0x5348_524d_5044_4953;
    let mut h = 0u64;
    for &b in &buf {
        st ^= u64::from(b);
        h = h.wrapping_add(splitmix64(&mut st));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    fn small() -> DistributedParams {
        DistributedParams {
            nodes: 8,
            steps: 4,
            payload: 64,
            compute: time::us(1),
            seed: 7,
        }
    }

    fn fields(o: &LaunchOutcome) -> (Time, Vec<u64>, u64, u64, u64, u64, u64, u64) {
        (
            o.elapsed,
            o.node_results.clone(),
            o.messages,
            o.notifications,
            o.interrupts,
            o.syscalls,
            o.net_packets,
            o.net_bytes,
        )
    }

    #[test]
    fn outcome_is_invariant_across_shard_counts() {
        let p = small();
        let base = run_distributed(&p, DesignConfig::as_built(), Shards::Fixed(1));
        assert_eq!(base.shards, 1);
        assert_eq!(base.windows, 0, "one shard must run windowless");
        let n = p.nodes as u64;
        assert_eq!(base.messages, n * u64::from(p.steps) + n * (n - 1));
        assert_eq!(base.notifications, n * (n - 1));
        for shards in [2, 4, 8] {
            let out = run_distributed(&p, DesignConfig::as_built(), Shards::Fixed(shards));
            assert_eq!(out.shards, shards);
            assert!(out.windows > 0, "{shards} shards ran without windows");
            assert_eq!(
                fields(&out),
                fields(&base),
                "outcome diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_distributed(&small(), DesignConfig::as_built(), Shards::Fixed(2));
        let b = run_distributed(
            &DistributedParams { seed: 8, ..small() },
            DesignConfig::as_built(),
            Shards::Fixed(2),
        );
        assert_ne!(a.node_results, b.node_results);
    }

    #[test]
    fn single_node_runs_computation_only() {
        let p = DistributedParams {
            nodes: 1,
            ..small()
        };
        let out = run_distributed(&p, DesignConfig::as_built(), Shards::Auto);
        assert_eq!(out.messages, 0);
        assert_eq!(out.notifications, 0);
        assert_eq!(out.node_results.len(), 1);
    }

    /// Shutdown regression: a node whose program finishes immediately must
    /// keep its NIC and notification queues open until the engine's global
    /// drain barrier, so traffic arriving from *other shards* long after
    /// its completion is still delivered and counted.
    #[test]
    fn late_cross_shard_traffic_drains_before_queues_close() {
        let n = 4usize;
        let program: NodeProgram = Arc::new(move |vmmc: Vmmc| {
            Box::pin(async move {
                let me = vmmc.node_id().0;
                let recv = vmmc.space().alloc(1);
                let export = vmmc.export(recv, PAGE_SIZE);
                vmmc.enable_notifications(export);
                let pages = vec![vmmc.space().phys_page(recv.page())];
                if me == 0 {
                    return 1; // finishes at t=0; arrivals come much later
                }
                vmmc.compute(time::us(50)).await;
                let proxy = vmmc.import_remote(NodeId(0), &pages, PAGE_SIZE);
                let stage = vmmc.space().alloc(1);
                vmmc.space().write_raw(stage, &[me as u8; 32]);
                vmmc.send_notify(stage, &proxy, me * 32, 32).await;
                2
            })
        });
        let mut outcomes = Vec::new();
        for shards in [1usize, 2, 4] {
            let out = Cluster::builder(n)
                .shards(Shards::Fixed(shards))
                .launch(program.clone());
            assert_eq!(
                out.notifications,
                (n - 1) as u64,
                "late arrivals were dropped at {shards} shards"
            );
            outcomes.push(fields(&out));
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcomes[2]);
    }

    /// The builder rejects sharded launches of chaos scenarios instead of
    /// silently decohering their shared RNG stream.
    #[test]
    #[should_panic(expected = "fault scenarios")]
    fn launch_rejects_fault_scenarios() {
        let mut cfg = DesignConfig::as_built();
        cfg.faults = shrimp_faults::FaultScenario {
            drop_pct: 3,
            ..Default::default()
        };
        let _ = run_distributed(&small(), cfg, Shards::Fixed(2));
    }

    /// The classic path still exists and agrees with itself: build() and
    /// run_until_complete drive the same program single-Sim.
    #[test]
    fn classic_build_path_still_runs_programs() {
        let cluster = Cluster::builder(2).build();
        let a = cluster.vmmc(0);
        let b = cluster.vmmc(1);
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let proxy = a.import(export);
        let src = a.space().alloc(1);
        a.space().write_raw(src, &[7u8; 16]);
        let got = Rc::new(Cell::new(false));
        let g2 = Rc::clone(&got);
        let h = cluster.sim().spawn(async move {
            a.send(src, &proxy, 0, 16).await;
            g2.set(true);
        });
        cluster.run_until_complete(vec![h]);
        assert!(got.get());
        let mut out = [0u8; 16];
        b.space().read(recv, &mut out);
        assert_eq!(out, [7u8; 16]);
    }
}
