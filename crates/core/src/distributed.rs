//! The distributed cluster workload: the full SHRIMP software stack —
//! VMMC exports/imports, deliberate-update DMA, arrival interrupts, and
//! user-level notifications — driven through
//! [`ClusterBuilder::launch`](crate::ClusterBuilder::launch) so the same
//! program runs on one `Sim` or on many shards with bit-identical results.
//!
//! # Shape
//!
//! Every node exports one receive buffer with a fixed slot per peer,
//! enables notifications on it, and imports every peer's buffer. Because
//! each node's memory map is built by the identical allocation sequence on
//! a fresh `NodeMem`, a node computes its peers' physical pages from its
//! *own* — no bootstrap traffic — and imports them with
//! [`Vmmc::import_remote`](crate::Vmmc::import_remote). The work loop is
//! `steps` rounds of deterministic compute plus one deliberate-update send
//! to a seeded peer; a closing round sends one *notifying* message to every
//! peer, and each node returns a checksum of its receive buffer once all
//! `nodes - 1` closing notifications arrived (per-pair FIFO ordering makes
//! the notification the happens-after witness for that peer's data).
//!
//! # Invariance
//!
//! Each node's timeline is a pure function of its own deterministic
//! program and the totally-ordered `(arrival, source)` delivery sequence of
//! the decoupled mesh transport, so every [`LaunchOutcome`] field that
//! feeds a `RunRecord` is identical at every shard count — asserted here
//! and, at the artifact-byte level, by the harness shard-identity tests.
//!
//! The workload is *proportional*: per-node work is constant, so total
//! work scales linearly with the node count — the shape the 64- and
//! 256-node speedup rows in `EXPERIMENTS.md` rely on.
//!
//! # Chaos
//!
//! [`run_chaos_distributed`] runs a fault-tolerant variant of the same
//! workload: every node additionally exports a small control buffer,
//! gossips a heartbeat counter round-robin to its peers, and runs a
//! lease-based failure detector ([`HeartbeatConfig`]) that declares silent
//! peers dead after seeded-backoff probe extensions, routes data sends
//! around them, and witnesses deterministic restarts. Detection latency
//! and recovery time land in [`LaunchOutcome::detection_latency_ps`] and
//! [`LaunchOutcome::recovery_time_ps`].

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use shrimp_faults::{node_backoff, NodeCrash};
use shrimp_mem::{Vaddr, PAGE_SIZE};
use shrimp_net::NodeId;
use shrimp_sim::rng::splitmix64;
use shrimp_sim::shard::Shards;
use shrimp_sim::{time, Category, Queue, Time};

use crate::cluster::{Cluster, LaunchOutcome, NodeProgram, Notification};
use crate::config::DesignConfig;
use crate::parallel::choice;
use crate::stats::NodeStats;
use crate::vmmc::{ProxyBuffer, Vmmc};

/// Workload shape for one distributed cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributedParams {
    /// Simulated nodes (one full SHRIMP node each).
    pub nodes: usize,
    /// Compute/send rounds per node (excluding the closing notify round).
    pub steps: u32,
    /// Bytes per message; also the per-peer slot size in the receive
    /// buffer.
    pub payload: usize,
    /// Simulated compute time per round (before jitter).
    pub compute: Time,
    /// Workload seed; every derived choice is a pure function of it.
    pub seed: u64,
}

impl DistributedParams {
    /// The default 16-node shape at a given round count.
    pub fn with_steps(steps: u32) -> Self {
        DistributedParams {
            nodes: 16,
            steps,
            payload: 256,
            compute: time::us(2),
            seed: 1,
        }
    }

    /// The same per-node work on a different node count (proportional
    /// scaling: total work grows linearly with `nodes`).
    pub fn scaled_to(self, nodes: usize) -> Self {
        DistributedParams { nodes, ..self }
    }
}

/// Runs the workload on a sharded cluster and returns the merged,
/// shard-count-invariant outcome.
///
/// Fault scenarios are welcome here: `launch` runs them on per-entity RNG
/// streams that partition cleanly across shards. For runs that must also
/// *recover* — crashed peers detected, restarts witnessed — use
/// [`run_chaos_distributed`], whose workload carries a failure detector.
///
/// # Panics
///
/// Panics when `params.nodes == 0` or `params.payload == 0`.
pub fn run_distributed(
    params: &DistributedParams,
    cfg: DesignConfig,
    shards: Shards,
) -> LaunchOutcome {
    assert!(params.nodes >= 1, "workload needs at least one node");
    assert!(params.payload >= 1, "workload needs a non-empty payload");
    Cluster::builder(params.nodes)
        .config(cfg)
        .shards(shards)
        .launch(node_program(*params))
}

/// The per-node program of the workload, reusable under a caller-built
/// [`ClusterBuilder`](crate::ClusterBuilder).
pub fn node_program(p: DistributedParams) -> NodeProgram {
    Arc::new(move |vmmc: Vmmc| Box::pin(run_node(vmmc, p)))
}

/// The deterministic buffer map every incarnation of the workload builds
/// in [`setup_node`]. Shared with the warm-start resume path
/// (`crate::warm`), whose preamble must replay this map exactly.
pub(crate) struct NodeSetup {
    pub(crate) recv: Vaddr,
    pub(crate) stage: Vaddr,
    pub(crate) inbox: Queue<Notification>,
    pub(crate) proxies: Vec<Option<ProxyBuffer>>,
}

/// The workload preamble: receive buffer, export + notifications, peer
/// page map, stage buffer, proxy imports. Pure allocation and table
/// programming — no sends, no awaits — so a checkpoint restore can verify
/// its replay against the captured allocator cursors and table images.
pub(crate) fn setup_node(vmmc: &Vmmc, p: &DistributedParams) -> NodeSetup {
    let me = vmmc.node_id().0;
    let n = p.nodes;
    let slot = p.payload;
    let len = n * slot;
    let npages = len.div_ceil(PAGE_SIZE);

    // The receive buffer is every node's FIRST allocation, so its physical
    // pages are the same deterministic sequence on every fresh node — the
    // fact import_remote relies on below.
    let recv = vmmc.space().alloc(npages);
    let export = vmmc.export(recv, len);
    let inbox = vmmc.enable_notifications(export);
    let peer_pages: Vec<u64> = (0..npages as u64)
        .map(|i| vmmc.space().phys_page(recv.page() + i))
        .collect();
    let stage = vmmc.space().alloc(slot.div_ceil(PAGE_SIZE).max(1));

    let proxies: Vec<_> = (0..n)
        .map(|peer| (peer != me).then(|| vmmc.import_remote(NodeId(peer), &peer_pages, len)))
        .collect();
    NodeSetup {
        recv,
        stage,
        inbox,
        proxies,
    }
}

/// One compute/send round of the workload: seeded jitter, then one
/// deliberate-update send to a seeded peer.
pub(crate) async fn work_step(vmmc: &Vmmc, p: &DistributedParams, s: &NodeSetup, step: u32) {
    let me = vmmc.node_id().0;
    let n = p.nodes;
    let slot = p.payload;
    let jitter = choice(p.seed, me, step, 0x6a69) % 1024;
    vmmc.compute(p.compute + jitter).await;
    if n == 1 {
        return;
    }
    let pick = choice(p.seed, me, step, 0x7065) as usize;
    let dst = (me + 1 + pick % (n - 1)) % n;
    let bytes: Vec<u8> = (0..slot)
        .map(|i| (choice(p.seed, me, step, i as u64) & 0xff) as u8)
        .collect();
    vmmc.space().write_raw(s.stage, &bytes);
    let proxy = s.proxies[dst].as_ref().expect("never send to self");
    vmmc.send(s.stage, proxy, me * slot, slot).await;
}

/// The closing notify round plus the receive-buffer checksum that is the
/// node's program result.
pub(crate) async fn finish_node(vmmc: &Vmmc, p: &DistributedParams, s: &NodeSetup) -> u64 {
    let me = vmmc.node_id().0;
    let n = p.nodes;
    let slot = p.payload;
    let len = n * slot;

    if n > 1 {
        // Closing round: one notifying send per peer. It follows every
        // data send on the same (src, dst) pair, so its notification
        // witnesses that all of this node's data has landed there.
        let fin: Vec<u8> = (0..slot)
            .map(|i| (choice(p.seed, me, p.steps, i as u64) & 0xff) as u8)
            .collect();
        vmmc.space().write_raw(s.stage, &fin);
        for proxy in s.proxies.iter().flatten() {
            vmmc.send_notify(s.stage, proxy, me * slot, slot).await;
        }
        let mut checked_in = 0;
        while checked_in < n - 1 {
            s.inbox
                .recv()
                .await
                .expect("notification queue closed before all peers checked in");
            checked_in += 1;
        }
    }

    // Checksum the receive buffer (node-local reads of a now-final buffer;
    // the scan is charged as a local copy).
    let mut buf = vec![0u8; len];
    vmmc.space().read(s.recv, &mut buf);
    vmmc.local_copy(len).await;
    let mut st = p.seed ^ ((me as u64) << 32) ^ 0x5348_524d_5044_4953;
    let mut h = 0u64;
    for &b in &buf {
        st ^= u64::from(b);
        h = h.wrapping_add(splitmix64(&mut st));
    }
    h
}

async fn run_node(vmmc: Vmmc, p: DistributedParams) -> u64 {
    let setup = setup_node(&vmmc, &p);
    for step in 0..p.steps {
        work_step(&vmmc, &p, &setup, step).await;
    }
    finish_node(&vmmc, &p, &setup).await
}

/// Bytes of one node's slot in every peer's control buffer:
/// `[heartbeat counter: u64][done flag: u64]`, little-endian.
const CTRL_SLOT: usize = 16;

/// Knobs of the lease-based heartbeat failure detector run by the chaos
/// workload. Every node gossips a monotonically increasing counter to one
/// peer per `period`, rotating round-robin, so each peer hears from it
/// once per *cycle* (`period * (nodes - 1)`). A peer silent past its
/// `lease` gets up to `max_probes` deadline extensions of
/// [`node_backoff`] length (seeded exponential backoff with deterministic
/// jitter) before it is declared dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Gap between consecutive heartbeat sends (to rotating targets).
    pub period: Time,
    /// Silence tolerated from one peer before probing begins.
    pub lease: Time,
    /// Base of the probe-extension backoff schedule.
    pub backoff_base: Time,
    /// Cap of the probe-extension backoff schedule.
    pub backoff_cap: Time,
    /// Probes granted past the lease before declaring a peer dead.
    pub max_probes: u32,
}

impl HeartbeatConfig {
    /// The default detector for an `n`-node cluster: 1 µs heartbeat
    /// period, a lease of three full gossip cycles, and three probes on a
    /// 5 µs-base / 40 µs-cap backoff.
    pub fn for_nodes(n: usize) -> Self {
        let period = time::us(1);
        HeartbeatConfig {
            period,
            lease: 3 * period * n.saturating_sub(1).max(1) as Time,
            backoff_base: time::us(5),
            backoff_cap: time::us(40),
            max_probes: 3,
        }
    }

    /// One full gossip rotation: the gap between two heartbeats arriving
    /// at the *same* peer.
    pub fn cycle(&self, n: usize) -> Time {
        self.period * n.saturating_sub(1).max(1) as Time
    }
}

/// Runs the fault-tolerant chaos workload on a sharded cluster: the
/// distributed workload plus a heartbeat failure detector, with the
/// configured fault scenario injected from per-entity RNG streams.
///
/// When the scenario restarts a crashed node, the run is held open for
/// two gossip cycles past the restart so every survivor witnesses the
/// rejoin and records its recovery time.
///
/// # Panics
///
/// Panics when `params.nodes == 0`, `params.payload == 0`, or the launch
/// fails (deadlock, or `Shards::Fixed` above the node count — see
/// [`ClusterBuilder::try_launch`](crate::ClusterBuilder::try_launch)).
pub fn run_chaos_distributed(
    params: &DistributedParams,
    cfg: DesignConfig,
    shards: Shards,
    detector: HeartbeatConfig,
) -> LaunchOutcome {
    assert!(params.nodes >= 1, "workload needs at least one node");
    assert!(params.payload >= 1, "workload needs a non-empty payload");
    let run_until = cfg
        .faults
        .crash
        .as_ref()
        .and_then(NodeCrash::restart_at)
        .map_or(0, |t| t + 2 * detector.cycle(params.nodes));
    Cluster::builder(params.nodes)
        .config(cfg)
        .shards(shards)
        .launch(chaos_node_program(*params, detector, run_until))
}

/// The per-node program of the chaos workload, reusable under a
/// caller-built [`ClusterBuilder`](crate::ClusterBuilder). `run_until`
/// holds every node's completion open until that sim time (0 for no
/// hold), so late events — a restarted peer's rejoin — are witnessed.
pub fn chaos_node_program(
    p: DistributedParams,
    detector: HeartbeatConfig,
    run_until: Time,
) -> NodeProgram {
    Arc::new(move |vmmc: Vmmc| Box::pin(run_chaos_node(vmmc, p, detector, run_until)))
}

/// What one node's detector believes about one peer. Shared between the
/// worker, the heartbeat sender, and the monitor subtasks.
#[derive(Default)]
struct PeerView {
    dead: Cell<bool>,
    declared_at: Cell<Time>,
    done: Cell<bool>,
}

struct ChaosShared {
    /// Set by the worker once the run is complete; stops the subtasks.
    halt: Cell<bool>,
    /// This node's done flag, gossiped inside its heartbeats.
    my_done: Cell<bool>,
    peers: Vec<PeerView>,
}

async fn run_chaos_node(
    vmmc: Vmmc,
    p: DistributedParams,
    det: HeartbeatConfig,
    run_until: Time,
) -> u64 {
    let me = vmmc.node_id().0;
    let n = p.nodes;
    let sim = vmmc.sim().clone();
    let slot = p.payload;
    let len = n * slot;
    let npages = len.div_ceil(PAGE_SIZE);
    let ctrl_len = n * CTRL_SLOT;
    let ctrl_pages = ctrl_len.div_ceil(PAGE_SIZE);

    // If this node is scheduled to crash ahead, its subtasks self-abort at
    // the onset; a restarted incarnation (booted at or after the onset)
    // sees no future crash and runs clean.
    let abort_at = vmmc
        .cluster()
        .fault_plane()
        .and_then(|plane| plane.crash_of(me))
        .map(|c| c.onset())
        .filter(|&t| t > sim.now())
        .unwrap_or(Time::MAX);

    // Allocation order is the node-map contract (see `run_node`): data
    // receive buffer first, control buffer second, so peers compute both
    // from their own layout. A restarted incarnation repeats the same
    // sequence on rewound allocators and lands on the same pages.
    let recv = vmmc.space().alloc(npages);
    let _ = vmmc.export(recv, len);
    let ctrl = vmmc.space().alloc(ctrl_pages);
    let _ = vmmc.export(ctrl, ctrl_len);
    let hb_stage = vmmc.space().alloc(1);
    let stage = vmmc.space().alloc(slot.div_ceil(PAGE_SIZE).max(1));

    let data_pages: Vec<u64> = (0..npages as u64)
        .map(|i| vmmc.space().phys_page(recv.page() + i))
        .collect();
    let ctrl_phys: Vec<u64> = (0..ctrl_pages as u64)
        .map(|i| vmmc.space().phys_page(ctrl.page() + i))
        .collect();
    let data_proxies: Vec<_> = (0..n)
        .map(|peer| (peer != me).then(|| vmmc.import_remote(NodeId(peer), &data_pages, len)))
        .collect();
    let ctrl_proxies: Rc<Vec<_>> = Rc::new(
        (0..n)
            .map(|peer| {
                (peer != me).then(|| vmmc.import_remote(NodeId(peer), &ctrl_phys, ctrl_len))
            })
            .collect(),
    );

    let shared = Rc::new(ChaosShared {
        halt: Cell::new(false),
        my_done: Cell::new(false),
        peers: (0..n).map(|_| PeerView::default()).collect(),
    });

    // Heartbeat sender: one peer per period, round-robin, carrying the
    // counter and this node's done flag. Dead peers keep receiving
    // heartbeats — a restarted incarnation must hear the world to rejoin.
    if n > 1 {
        let (sim, vmmc, sh, proxies) = (
            sim.clone(),
            vmmc.clone(),
            Rc::clone(&shared),
            Rc::clone(&ctrl_proxies),
        );
        sim.clone().spawn(async move {
            let mut counter: u64 = 0;
            let mut target = (me + 1) % n;
            loop {
                sim.sleep(det.period).await;
                if sh.halt.get() || sim.now() >= abort_at {
                    break;
                }
                counter += 1;
                let mut bytes = [0u8; CTRL_SLOT];
                bytes[..8].copy_from_slice(&counter.to_le_bytes());
                bytes[8..].copy_from_slice(&u64::from(sh.my_done.get()).to_le_bytes());
                vmmc.space().write_raw(hb_stage, &bytes);
                let proxy = proxies[target].as_ref().expect("never heartbeat self");
                vmmc.send(hb_stage, proxy, me * CTRL_SLOT, CTRL_SLOT).await;
                target = (target + 1) % n;
                if target == me {
                    target = (target + 1) % n;
                }
            }
        });
    }

    // Monitor: samples every peer's control slot each period. A counter
    // change refreshes the lease (and witnesses a rejoin); silence past
    // the deadline earns seeded-backoff probe extensions, then a death
    // declaration.
    if n > 1 {
        let (sim, vmmc, sh) = (sim.clone(), vmmc.clone(), Rc::clone(&shared));
        let stats = vmmc.stats();
        sim.clone().spawn(async move {
            let start = sim.now();
            let mut last_val = vec![0u64; n];
            let mut last_heard = vec![start; n];
            let mut deadline = vec![start + det.lease; n];
            let mut attempt = vec![0u32; n];
            loop {
                sim.sleep(det.period).await;
                let now = sim.now();
                if sh.halt.get() || now >= abort_at {
                    break;
                }
                for q in 0..n {
                    if q == me {
                        continue;
                    }
                    let mut b = [0u8; CTRL_SLOT];
                    vmmc.space().read(ctrl.add((q * CTRL_SLOT) as u64), &mut b);
                    let hb = u64::from_le_bytes(b[..8].try_into().unwrap());
                    let done = u64::from_le_bytes(b[8..].try_into().unwrap());
                    let view = &sh.peers[q];
                    if hb != last_val[q] {
                        last_val[q] = hb;
                        last_heard[q] = now;
                        attempt[q] = 0;
                        deadline[q] = now + det.lease;
                        if view.dead.get() {
                            view.dead.set(false);
                            let rec = now - view.declared_at.get();
                            NodeStats::add(&stats.recovery_time, rec);
                            sim.metrics()
                                .observe(Category::Core, "recovery_time_ps", rec);
                        }
                        if done != 0 {
                            view.done.set(true);
                        }
                    } else if !view.dead.get() && now >= deadline[q] {
                        if attempt[q] >= det.max_probes {
                            view.dead.set(true);
                            view.declared_at.set(now);
                            let lat = now - last_heard[q];
                            NodeStats::add(&stats.detection_latency, lat);
                            sim.metrics()
                                .observe(Category::Core, "detection_latency_ps", lat);
                        } else {
                            deadline[q] = now
                                + node_backoff(
                                    p.seed,
                                    q,
                                    attempt[q],
                                    det.backoff_base,
                                    det.backoff_cap,
                                );
                            attempt[q] += 1;
                        }
                    }
                }
            }
        });
    }

    // Worker: same compute/send rounds as `run_node`, but data sends
    // route around peers the detector has declared dead.
    for step in 0..p.steps {
        let jitter = choice(p.seed, me, step, 0x6a69) % 1024;
        vmmc.compute(p.compute + jitter).await;
        if n == 1 {
            continue;
        }
        let pick = choice(p.seed, me, step, 0x7065) as usize;
        let mut dst = (me + 1 + pick % (n - 1)) % n;
        let mut hops = 0;
        while (dst == me || shared.peers[dst].dead.get()) && hops < n {
            dst = (dst + 1) % n;
            hops += 1;
        }
        if hops >= n {
            continue; // every peer is dead; nothing to send to
        }
        let bytes: Vec<u8> = (0..slot)
            .map(|i| (choice(p.seed, me, step, i as u64) & 0xff) as u8)
            .collect();
        vmmc.space().write_raw(stage, &bytes);
        let proxy = data_proxies[dst].as_ref().expect("never send to self");
        vmmc.send(stage, proxy, me * slot, slot).await;
    }
    shared.my_done.set(true);

    // Completion: every peer has either gossiped its done flag or been
    // declared dead, and the hold-open window (for witnessing restarts)
    // has elapsed. Because the done flag rides the same per-pair FIFO as
    // the data sends, seeing it means that peer's data has landed.
    loop {
        let settled = (0..n)
            .filter(|&q| q != me)
            .all(|q| shared.peers[q].done.get() || shared.peers[q].dead.get());
        if settled && sim.now() >= run_until {
            break;
        }
        sim.sleep(det.period).await;
    }
    shared.halt.set(true);

    let mut buf = vec![0u8; len];
    vmmc.space().read(recv, &mut buf);
    vmmc.local_copy(len).await;
    let mut st = p.seed ^ ((me as u64) << 32) ^ 0x4348_414f_5344_4953;
    let mut h = 0u64;
    for &b in &buf {
        st ^= u64::from(b);
        h = h.wrapping_add(splitmix64(&mut st));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    fn small() -> DistributedParams {
        DistributedParams {
            nodes: 8,
            steps: 4,
            payload: 64,
            compute: time::us(1),
            seed: 7,
        }
    }

    fn fields(o: &LaunchOutcome) -> (Time, Vec<u64>, u64, u64, u64, u64, u64, u64) {
        (
            o.elapsed,
            o.node_results.clone(),
            o.messages,
            o.notifications,
            o.interrupts,
            o.syscalls,
            o.net_packets,
            o.net_bytes,
        )
    }

    #[test]
    fn outcome_is_invariant_across_shard_counts() {
        let p = small();
        let base = run_distributed(&p, DesignConfig::as_built(), Shards::Fixed(1));
        assert_eq!(base.shards, 1);
        assert_eq!(base.windows, 0, "one shard must run windowless");
        let n = p.nodes as u64;
        assert_eq!(base.messages, n * u64::from(p.steps) + n * (n - 1));
        assert_eq!(base.notifications, n * (n - 1));
        for shards in [2, 4, 8] {
            let out = run_distributed(&p, DesignConfig::as_built(), Shards::Fixed(shards));
            assert_eq!(out.shards, shards);
            assert!(out.windows > 0, "{shards} shards ran without windows");
            assert_eq!(
                fields(&out),
                fields(&base),
                "outcome diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_distributed(&small(), DesignConfig::as_built(), Shards::Fixed(2));
        let b = run_distributed(
            &DistributedParams { seed: 8, ..small() },
            DesignConfig::as_built(),
            Shards::Fixed(2),
        );
        assert_ne!(a.node_results, b.node_results);
    }

    #[test]
    fn single_node_runs_computation_only() {
        let p = DistributedParams {
            nodes: 1,
            ..small()
        };
        let out = run_distributed(&p, DesignConfig::as_built(), Shards::Auto);
        assert_eq!(out.messages, 0);
        assert_eq!(out.notifications, 0);
        assert_eq!(out.node_results.len(), 1);
    }

    /// Shutdown regression: a node whose program finishes immediately must
    /// keep its NIC and notification queues open until the engine's global
    /// drain barrier, so traffic arriving from *other shards* long after
    /// its completion is still delivered and counted.
    #[test]
    fn late_cross_shard_traffic_drains_before_queues_close() {
        let n = 4usize;
        let program: NodeProgram = Arc::new(move |vmmc: Vmmc| {
            Box::pin(async move {
                let me = vmmc.node_id().0;
                let recv = vmmc.space().alloc(1);
                let export = vmmc.export(recv, PAGE_SIZE);
                vmmc.enable_notifications(export);
                let pages = vec![vmmc.space().phys_page(recv.page())];
                if me == 0 {
                    return 1; // finishes at t=0; arrivals come much later
                }
                vmmc.compute(time::us(50)).await;
                let proxy = vmmc.import_remote(NodeId(0), &pages, PAGE_SIZE);
                let stage = vmmc.space().alloc(1);
                vmmc.space().write_raw(stage, &[me as u8; 32]);
                vmmc.send_notify(stage, &proxy, me * 32, 32).await;
                2
            })
        });
        let mut outcomes = Vec::new();
        for shards in [1usize, 2, 4] {
            let out = Cluster::builder(n)
                .shards(Shards::Fixed(shards))
                .launch(program.clone());
            assert_eq!(
                out.notifications,
                (n - 1) as u64,
                "late arrivals were dropped at {shards} shards"
            );
            outcomes.push(fields(&out));
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcomes[2]);
    }

    /// More fixed shards than nodes cannot host a fault scenario (a crash
    /// schedule needs every node on a real shard): `try_launch` returns
    /// the typed error, `launch` panics with its message.
    #[test]
    fn try_launch_rejects_shard_overflow_with_faults() {
        let mut cfg = DesignConfig::as_built();
        cfg.faults = shrimp_faults::FaultScenario {
            drop_pct: 3,
            ..Default::default()
        };
        let err = Cluster::builder(8)
            .config(cfg)
            .shards(Shards::Fixed(16))
            .try_launch(node_program(small()))
            .unwrap_err();
        assert!(matches!(
            err,
            shrimp_faults::ShrimpError::ShardOverflow {
                shards: 16,
                nodes: 8
            }
        ));
    }

    #[test]
    #[should_panic(expected = "lower the shard count")]
    fn launch_panics_on_shard_overflow_with_faults() {
        let mut cfg = DesignConfig::as_built();
        cfg.faults = shrimp_faults::FaultScenario {
            drop_pct: 3,
            ..Default::default()
        };
        let _ = Cluster::builder(8)
            .config(cfg)
            .shards(Shards::Fixed(16))
            .launch(node_program(small()));
    }

    fn chaos_fields(o: &LaunchOutcome) -> (Time, Vec<u64>, u64, u64, u64, u64, u64, u64, u64, u64) {
        (
            o.elapsed,
            o.node_results.clone(),
            o.messages,
            o.net_packets,
            o.net_bytes,
            o.retransmits,
            o.corrupt_detected,
            o.dup_suppressed,
            o.faults_injected,
            o.detection_latency_ps,
        )
    }

    /// The tentpole guarantee: packet fates drawn from per-entity RNG
    /// streams make a chaos run byte-identical at every shard count.
    #[test]
    fn chaos_outcome_is_invariant_across_shard_counts() {
        let p = small();
        let mut cfg = DesignConfig::as_built();
        cfg.reliability = shrimp_faults::Reliability::on();
        cfg.faults = shrimp_faults::FaultScenario {
            seed: 11,
            drop_pct: 4,
            corrupt_pct: 3,
            duplicate_pct: 3,
            ..Default::default()
        };
        let det = HeartbeatConfig::for_nodes(p.nodes);
        let base = run_chaos_distributed(&p, cfg.clone(), Shards::Fixed(1), det);
        assert_eq!(base.windows, 0, "one shard must run windowless");
        assert!(base.faults_injected > 0, "scenario injected nothing");
        for shards in [2, 4] {
            let out = run_chaos_distributed(&p, cfg.clone(), Shards::Fixed(shards), det);
            assert!(out.windows > 0, "{shards} shards ran without windows");
            assert_eq!(
                chaos_fields(&out),
                chaos_fields(&base),
                "chaos outcome diverged at {shards} shards"
            );
        }
    }

    /// A permanently crashed node is declared dead by every survivor
    /// (finite detection latency) and the run still completes.
    #[test]
    fn permanent_crash_is_detected_and_run_completes() {
        let p = small();
        let mut cfg = DesignConfig::as_built();
        cfg.faults = shrimp_faults::FaultScenario {
            crash: Some(shrimp_faults::NodeCrash {
                node: 3,
                at_us: 10,
                down_us: 0,
            }),
            ..Default::default()
        };
        let det = HeartbeatConfig::for_nodes(p.nodes);
        let base = run_chaos_distributed(&p, cfg.clone(), Shards::Fixed(1), det);
        assert_eq!(base.node_results.len(), p.nodes);
        assert!(
            base.detection_latency_ps > 0,
            "no survivor declared the crashed node dead"
        );
        assert_eq!(base.recovery_time_ps, 0, "a permanent crash cannot rejoin");
        assert_eq!(base.faults_injected, 1, "the crash counts as one fault");
        for shards in [2, 4] {
            let out = run_chaos_distributed(&p, cfg.clone(), Shards::Fixed(shards), det);
            assert_eq!(
                chaos_fields(&out),
                chaos_fields(&base),
                "crash outcome diverged at {shards} shards"
            );
            assert_eq!(out.recovery_time_ps, base.recovery_time_ps);
        }
    }

    /// A crash with an outage window restarts deterministically: the
    /// survivors record both the detection and, once the restarted
    /// incarnation gossips again, the recovery.
    #[test]
    fn restart_is_witnessed_with_recovery_time() {
        let p = small();
        let mut cfg = DesignConfig::as_built();
        cfg.faults = shrimp_faults::FaultScenario {
            crash: Some(shrimp_faults::NodeCrash {
                node: 3,
                at_us: 10,
                down_us: 120,
            }),
            ..Default::default()
        };
        let det = HeartbeatConfig::for_nodes(p.nodes);
        let base = run_chaos_distributed(&p, cfg.clone(), Shards::Fixed(1), det);
        assert!(base.detection_latency_ps > 0, "crash went undetected");
        assert!(base.recovery_time_ps > 0, "rejoin went unwitnessed");
        for shards in [2, 4] {
            let out = run_chaos_distributed(&p, cfg.clone(), Shards::Fixed(shards), det);
            assert_eq!(
                chaos_fields(&out),
                chaos_fields(&base),
                "restart outcome diverged at {shards} shards"
            );
            assert_eq!(out.recovery_time_ps, base.recovery_time_ps);
        }
    }

    /// The classic path still exists and agrees with itself: build() and
    /// run_until_complete drive the same program single-Sim.
    #[test]
    fn classic_build_path_still_runs_programs() {
        let cluster = Cluster::builder(2).build();
        let a = cluster.vmmc(0);
        let b = cluster.vmmc(1);
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let proxy = a.import(export);
        let src = a.space().alloc(1);
        a.space().write_raw(src, &[7u8; 16]);
        let got = Rc::new(Cell::new(false));
        let g2 = Rc::clone(&got);
        let h = cluster.sim().spawn(async move {
            a.send(src, &proxy, 0, 16).await;
            g2.set(true);
        });
        cluster.run_until_complete(vec![h]);
        assert!(got.get());
        let mut out = [0u8; 16];
        b.space().read(recv, &mut out);
        assert_eq!(out, [7u8; 16]);
    }
}
