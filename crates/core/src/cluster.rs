//! Cluster assembly: nodes (memory, bus, CPU, NIC), the backplane, the
//! global export directory, and per-node system software (interrupt
//! dispatch and notification delivery).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use shrimp_faults::FaultPlane;
use shrimp_mem::{AddressSpace, MemBus, NodeMem, PAGE_SIZE};
use shrimp_net::{MeshConfig, Network, NodeId};
use shrimp_nic::{IptEntry, Nic, ShrimpNetwork};
use shrimp_sim::executor::{join_all, TaskHandle};
use shrimp_sim::{Queue, Sim, Time};

use crate::config::DesignConfig;
use crate::cpu::Cpu;
use crate::stats::NodeStats;
use crate::vmmc::{ExportId, Vmmc};

/// A user-level notification delivered for an exported buffer (§2.2).
#[derive(Debug, Clone)]
pub struct Notification {
    /// Sending node.
    pub src: NodeId,
    /// Byte offset of the arriving write within the exported buffer.
    pub offset: usize,
    /// Bytes written.
    pub len: usize,
}

pub(crate) struct ExportInfo {
    pub(crate) node: usize,
    pub(crate) len: usize,
    pub(crate) phys_pages: Vec<u64>,
    pub(crate) notify_enabled: Cell<bool>,
    pub(crate) queue: Queue<Notification>,
}

pub(crate) struct Node {
    pub(crate) mem: NodeMem,
    pub(crate) bus: MemBus,
    pub(crate) nic: Nic,
    pub(crate) cpu: Cpu,
    pub(crate) space: AddressSpace,
    pub(crate) stats: Rc<NodeStats>,
    /// physical page -> (export, page index within export); set at export.
    pub(crate) page_dir: RefCell<HashMap<u64, (u32, usize)>>,
    pub(crate) notifications_blocked: Cell<bool>,
    pub(crate) pending_notifications: RefCell<Vec<(u32, Notification)>>,
}

pub(crate) struct ClusterInner {
    pub(crate) sim: Sim,
    pub(crate) cfg: DesignConfig,
    pub(crate) net: ShrimpNetwork,
    pub(crate) nodes: Vec<Node>,
    pub(crate) exports: RefCell<Vec<Rc<ExportInfo>>>,
    pub(crate) fault_plane: Option<FaultPlane>,
}

/// A simulated SHRIMP machine: `n` nodes on a Paragon-style backplane.
///
/// Cheap to clone. See the [crate-level example](crate) for usage.
#[derive(Clone)]
pub struct Cluster {
    pub(crate) inner: Rc<ClusterInner>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.inner.nodes.len())
            .finish()
    }
}

impl Cluster {
    /// Builds an `n`-node machine with the given design configuration and
    /// starts all hardware engines and system-software processes.
    pub fn new(n: usize, cfg: DesignConfig) -> Self {
        let sim = Sim::new();
        Self::with_sim(sim, n, cfg)
    }

    /// Like [`Cluster::new`] but on a caller-provided simulator (so several
    /// machines can share one timeline, or the caller controls the run loop).
    pub fn with_sim(sim: Sim, n: usize, cfg: DesignConfig) -> Self {
        assert!(n >= 1, "cluster needs at least one node");
        let mut cfg = cfg;
        // The Table 4 experiment is a firmware change: interrupts fire on
        // every message arrival whether or not the receiver enabled them.
        if cfg.interrupt_per_message {
            cfg.nic.force_arrival_interrupts = true;
        }
        let mesh = cfg.mesh.clone().unwrap_or_else(|| MeshConfig::for_nodes(n));
        let net: ShrimpNetwork = Network::new(sim.clone(), mesh, n);
        // One shared fault plane per run (absent on fault-free runs, which
        // therefore pay nothing and replay byte-identically).
        let fault_plane = cfg.faults.is_active().then(|| {
            let plane = FaultPlane::new(cfg.faults);
            net.install_fault_plane(plane.clone());
            plane
        });
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let mem = NodeMem::new();
            let bus = MemBus::shrimp_default();
            let nic = Nic::new(
                sim.clone(),
                NodeId(i),
                cfg.nic.clone(),
                mem.clone(),
                bus.clone(),
                net.clone(),
            );
            if let Some(plane) = &fault_plane {
                nic.install_fault_plane(plane.clone());
            }
            nic.start();
            let cpu = Cpu::new(sim.clone());
            let stall_cpu = cpu.clone();
            nic.set_cpu_stall_hook(move |d| stall_cpu.steal(d));
            // A scheduled CPU pause (SMI-style outage) is stolen time: the
            // node's application and handlers make no progress through it.
            if let Some((at, dur)) = fault_plane.as_ref().and_then(|p| p.pause_of(i)) {
                let paused = cpu.clone();
                sim.schedule(at, move || paused.steal(dur));
            }
            nodes.push(Node {
                space: AddressSpace::new(mem.clone()),
                mem,
                bus,
                nic,
                cpu,
                stats: Rc::new(NodeStats::new()),
                page_dir: RefCell::new(HashMap::new()),
                notifications_blocked: Cell::new(false),
                pending_notifications: RefCell::new(Vec::new()),
            });
        }
        let cluster = Cluster {
            inner: Rc::new(ClusterInner {
                sim,
                cfg,
                net,
                nodes,
                exports: RefCell::new(Vec::new()),
                fault_plane,
            }),
        };
        for i in 0..n {
            cluster.spawn_dispatcher(i);
        }
        cluster
    }

    /// The per-node interrupt dispatch process: takes NIC interrupts,
    /// charges the kernel handler, and delivers user-level notifications
    /// when requested and enabled (§4.4).
    fn spawn_dispatcher(&self, node: usize) {
        let cluster = self.clone();
        let interrupts = self.inner.nodes[node].nic.interrupts();
        let intr_delay = self.inner.cfg.faults.interrupt_delay();
        self.inner.sim.spawn(async move {
            loop {
                let Some(intr) = interrupts.recv().await else {
                    break;
                };
                // Delayed-interrupt fault: the wire between NIC and CPU is
                // slow, not the handler.
                if intr_delay > 0 {
                    cluster.inner.sim.sleep(intr_delay).await;
                }
                let n = &cluster.inner.nodes[node];
                NodeStats::bump(&n.stats.interrupts_taken);
                let svc_t0 = cluster.inner.sim.now();
                n.cpu.run_handler(cluster.inner.cfg.interrupt_cost).await;
                {
                    let metrics = cluster.inner.sim.metrics();
                    metrics.counter_add(shrimp_sim::Category::Core, "interrupts_taken", 1);
                    // Handler cost plus any CPU contention the dispatch paid.
                    metrics.observe(
                        shrimp_sim::Category::Core,
                        "intr_service_ps",
                        cluster.inner.sim.now() - svc_t0,
                    );
                }
                if !intr.notify {
                    continue; // forced interrupt (Table 4): null handler only
                }
                let Some(&(export_id, page_idx)) = n.page_dir.borrow().get(&intr.dst_page) else {
                    continue;
                };
                let export = cluster.inner.exports.borrow()[export_id as usize].clone();
                if !export.notify_enabled.get() {
                    continue;
                }
                let notification = Notification {
                    src: intr.src,
                    offset: page_idx * PAGE_SIZE + intr.offset,
                    len: intr.len,
                };
                if n.notifications_blocked.get() {
                    n.pending_notifications
                        .borrow_mut()
                        .push((export_id, notification));
                } else {
                    n.cpu.run_handler(cluster.inner.cfg.notification_cost).await;
                    NodeStats::bump(&n.stats.notifications);
                    export.queue.send(notification);
                }
            }
        });
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.inner.nodes.len()
    }

    /// The simulator driving this machine.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// The design configuration.
    pub fn config(&self) -> &DesignConfig {
        &self.inner.cfg
    }

    /// The backplane.
    pub fn network(&self) -> &ShrimpNetwork {
        &self.inner.net
    }

    /// The mesh's minimum inter-node latency — what a conservative parallel
    /// executor could use as cross-shard lookahead if this machine were
    /// partitioned by node.
    ///
    /// The cluster itself always runs as **one shard** (one coupling
    /// class): link `Resource`s are reserved synchronously in global send
    /// order, and a chaos run's single [`FaultPlane`] RNG stream is
    /// consumed in that same order — zero-lookahead couplings that node
    /// partitioning would have to respect. Workloads without that shared
    /// state (see [`crate::parallel`]) shard freely using this bound.
    pub fn coupling_lookahead(&self) -> Time {
        self.inner.net.config().min_remote_latency()
    }

    /// The run's fault plane (its stats report injections actually
    /// performed); `None` when the scenario is empty.
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.inner.fault_plane.as_ref()
    }

    /// The VMMC library handle for `node`'s application process.
    pub fn vmmc(&self, node: usize) -> Vmmc {
        assert!(node < self.num_nodes(), "no such node {node}");
        Vmmc::new(self.clone(), node)
    }

    /// A node's NIC (experiment drivers read its counters).
    pub fn nic(&self, node: usize) -> &Nic {
        &self.inner.nodes[node].nic
    }

    /// A node's CPU.
    pub fn cpu(&self, node: usize) -> &Cpu {
        &self.inner.nodes[node].cpu
    }

    /// A node's software statistics.
    pub fn stats(&self, node: usize) -> Rc<NodeStats> {
        self.inner.nodes[node].stats.clone()
    }

    /// Sum of a counter over all nodes.
    pub fn total<F: Fn(&NodeStats) -> u64>(&self, f: F) -> u64 {
        self.inner.nodes.iter().map(|n| f(&n.stats)).sum()
    }

    /// Closes NIC queues so hardware/system processes terminate once idle.
    pub fn shutdown(&self) {
        for n in &self.inner.nodes {
            n.nic.shutdown();
        }
        for e in self.inner.exports.borrow().iter() {
            e.queue.close();
        }
    }

    /// Runs the simulation until the given application processes complete,
    /// then shuts the machine down and drains remaining events. Returns the
    /// simulated completion time of the *applications* and their outputs.
    ///
    /// # Panics
    ///
    /// Panics if the applications deadlock.
    pub fn run_until_complete<T: 'static>(&self, handles: Vec<TaskHandle<T>>) -> (Time, Vec<T>) {
        let sim = self.inner.sim.clone();
        let s2 = sim.clone();
        let joiner = sim.spawn(async move {
            let out = join_all(handles).await;
            (s2.now(), out)
        });
        sim.run();
        let (t, out) = joiner
            .try_take()
            .expect("application processes deadlocked; check for missing sends/receives");
        self.shutdown();
        sim.run();
        (t, out)
    }

    // ----- internal accessors used by the Vmmc library -------------------

    pub(crate) fn node(&self, i: usize) -> &Node {
        &self.inner.nodes[i]
    }

    pub(crate) fn register_export(
        &self,
        node: usize,
        len: usize,
        phys_pages: Vec<u64>,
    ) -> ExportId {
        let id = self.inner.exports.borrow().len() as u32;
        {
            let mut dir = self.inner.nodes[node].page_dir.borrow_mut();
            for (idx, &p) in phys_pages.iter().enumerate() {
                dir.insert(p, (id, idx));
            }
        }
        self.inner.exports.borrow_mut().push(Rc::new(ExportInfo {
            node,
            len,
            phys_pages,
            notify_enabled: Cell::new(false),
            queue: Queue::new(),
        }));
        // IPT: accept packets for every page of the buffer.
        let info = self.inner.exports.borrow()[id as usize].clone();
        for &p in &info.phys_pages {
            self.inner.nodes[node].nic.ipt_set(
                p,
                IptEntry {
                    accept: true,
                    interrupt_enable: false,
                    buffer_id: id,
                },
            );
        }
        ExportId(id)
    }

    pub(crate) fn export_info(&self, id: ExportId) -> Rc<ExportInfo> {
        self.inner.exports.borrow()[id.0 as usize].clone()
    }

    /// Delivers notifications that were queued while blocked (§2.2 allows
    /// blocking/unblocking, with queueing of multiple notifications).
    pub(crate) async fn flush_pending_notifications(&self, node: usize) {
        loop {
            let next = self.inner.nodes[node]
                .pending_notifications
                .borrow_mut()
                .pop();
            let Some((export_id, notification)) = next else {
                break;
            };
            let n = &self.inner.nodes[node];
            n.cpu.run_handler(self.inner.cfg.notification_cost).await;
            NodeStats::bump(&n.stats.notifications);
            let export = self.inner.exports.borrow()[export_id as usize].clone();
            export.queue.send(notification);
        }
    }
}
