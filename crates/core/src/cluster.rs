//! Cluster assembly: nodes (memory, bus, CPU, NIC), the backplane, the
//! export directory, and per-node system software (interrupt dispatch and
//! notification delivery).
//!
//! Construction goes through the typed [`ClusterBuilder`]
//! (`Cluster::builder(n)`): [`ClusterBuilder::build`] produces the classic
//! single-`Sim` machine — every node on one timeline, the contended mesh
//! with link-level `Resource` booking — while [`ClusterBuilder::launch`]
//! partitions the nodes across shards of the conservative-parallel engine
//! (`shrimp_sim::shard`): each node's memory, bus, NIC, CPU, and system
//! software are constructed on its owning shard's `Sim`, and the mesh is
//! the **only** cross-shard channel (decoupled fixed-latency transport,
//! lookahead = [`MeshConfig::min_remote_latency`]). The single-`Sim` path
//! doubles as the differential oracle: `launch` at one shard degenerates
//! to it exactly, and its outcome is byte-identical at any shard count.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use shrimp_faults::{FaultPlane, FaultScenario, Reliability, ShrimpError};
use shrimp_mem::{AddressSpace, MemBus, NodeMem, Paddr, PAGE_SIZE};
use shrimp_net::{Flit, MeshConfig, Network, NodeId};
use shrimp_nic::{IptEntry, Nic, Packet, ShrimpNetwork};
use shrimp_sim::executor::{join_all, TaskHandle};
use shrimp_sim::metrics::MetricsSnapshot;
use shrimp_sim::shard::{
    run_sharded_phased, PhasedBuilder, ShardConfig, ShardCtx, ShardPlan, Shards,
};
use shrimp_sim::{Queue, Sim, Time};

use crate::checkpoint::NodeState;
use crate::config::DesignConfig;
use crate::cpu::Cpu;
use crate::parallel::shard_of;
use crate::stats::NodeStats;
use crate::vmmc::{ExportId, Vmmc};

/// The cross-shard message type of a sharded cluster: a mesh packet in
/// flight between two shards' backplane views.
pub type ClusterFlit = Flit<Packet>;

/// A per-node application program for [`ClusterBuilder::launch`]: called
/// once per node *on the node's owning shard thread* with that node's VMMC
/// handle; the returned future runs on the shard's `Sim` and its output is
/// the node's result (collected into [`LaunchOutcome::node_results`]).
///
/// The closure crosses threads (hence `Send + Sync`); the future it builds
/// never does.
pub type NodeProgram = Arc<dyn Fn(Vmmc) -> Pin<Box<dyn Future<Output = u64>>> + Send + Sync>;

/// A user-level notification delivered for an exported buffer (§2.2).
#[derive(Debug, Clone)]
pub struct Notification {
    /// Sending node.
    pub src: NodeId,
    /// Byte offset of the arriving write within the exported buffer.
    pub offset: usize,
    /// Bytes written.
    pub len: usize,
}

pub(crate) struct ExportInfo {
    pub(crate) node: usize,
    pub(crate) len: usize,
    pub(crate) phys_pages: Vec<u64>,
    pub(crate) notify_enabled: Cell<bool>,
    pub(crate) queue: Queue<Notification>,
}

pub(crate) struct Node {
    pub(crate) mem: NodeMem,
    pub(crate) bus: MemBus,
    pub(crate) nic: Nic,
    pub(crate) cpu: Cpu,
    pub(crate) space: AddressSpace,
    pub(crate) stats: Rc<NodeStats>,
    /// physical page -> (export, page index within export); set at export.
    pub(crate) page_dir: RefCell<HashMap<u64, (u32, usize)>>,
    pub(crate) notifications_blocked: Cell<bool>,
    pub(crate) pending_notifications: RefCell<Vec<(u32, Notification)>>,
}

pub(crate) struct ClusterInner {
    pub(crate) sim: Sim,
    pub(crate) cfg: DesignConfig,
    pub(crate) net: ShrimpNetwork,
    /// The nodes this `Cluster` *owns*: all of them on the classic path,
    /// the contiguous slice `[node_base, node_base + nodes.len())` on one
    /// shard of a sharded launch.
    pub(crate) nodes: Vec<Node>,
    /// Global id of `nodes[0]`.
    pub(crate) node_base: usize,
    /// Nodes in the whole machine (across all shards).
    pub(crate) total_nodes: usize,
    /// Export directory — owned-node exports only; on a sharded machine
    /// the directory is deliberately shard-local (ids never cross shards;
    /// remote imports go through [`Vmmc::import_remote`]).
    pub(crate) exports: RefCell<Vec<Rc<ExportInfo>>>,
    pub(crate) fault_plane: Option<FaultPlane>,
}

/// A simulated SHRIMP machine: `n` nodes on a Paragon-style backplane.
///
/// Cheap to clone. See the [crate-level example](crate) for usage.
#[derive(Clone)]
pub struct Cluster {
    pub(crate) inner: Rc<ClusterInner>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.inner.total_nodes)
            .field("owned", &self.inner.nodes.len())
            .finish()
    }
}

/// Typed construction of a [`Cluster`]: node count, design configuration,
/// mesh geometry, fault plane, reliability, shard count, and observation.
///
/// ```
/// use shrimp_core::{Cluster, DesignConfig};
///
/// let cluster = Cluster::builder(4)
///     .config(DesignConfig::as_built())
///     .build();
/// assert_eq!(cluster.num_nodes(), 4);
/// ```
#[derive(Clone)]
pub struct ClusterBuilder {
    nodes: usize,
    cfg: DesignConfig,
    shards: Shards,
    metrics: bool,
    trace_capacity: Option<Option<usize>>,
    capture: bool,
    start: Time,
}

impl ClusterBuilder {
    fn new(nodes: usize) -> Self {
        assert!(nodes >= 1, "cluster needs at least one node");
        ClusterBuilder {
            nodes,
            cfg: DesignConfig::as_built(),
            shards: Shards::Auto,
            metrics: false,
            trace_capacity: None,
            capture: false,
            start: 0,
        }
    }

    /// Replaces the whole design configuration (defaults to
    /// [`DesignConfig::as_built`]).
    pub fn config(mut self, cfg: DesignConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Overrides the mesh geometry (defaults to the smallest mesh that
    /// holds the node count, [`MeshConfig::for_nodes`]).
    pub fn mesh(mut self, mesh: MeshConfig) -> Self {
        self.cfg.mesh = Some(mesh);
        self
    }

    /// Sets the fault-injection scenario. The classic
    /// [`ClusterBuilder::build`] path draws all packet fates from one
    /// shared RNG stream; [`ClusterBuilder::launch`] uses per-entity
    /// streams (one per directed mesh edge, one per node) so the same
    /// scenario partitions cleanly across shards with byte-identical
    /// fates at any shard count.
    pub fn faults(mut self, faults: FaultScenario) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Sets the reliable-delivery policy.
    pub fn reliability(mut self, reliability: Reliability) -> Self {
        self.cfg.reliability = reliability;
        self
    }

    /// Shard count for [`ClusterBuilder::launch`] ([`Shards::Auto`] means
    /// one shard standalone; the harness resolves it to its `--shards`
    /// flag). Ignored by [`ClusterBuilder::build`], which is always
    /// single-`Sim`.
    pub fn shards(mut self, shards: Shards) -> Self {
        self.shards = shards;
        self
    }

    /// Enables the deterministic metrics registry on the machine's
    /// simulator(s).
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Enables trace capture with the given capacity (`None` = unbounded).
    pub fn trace_capacity(mut self, capacity: Option<usize>) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Captures every node's checkpoint state
    /// ([`NodeState`]) at the launch's
    /// global drain barrier and returns it in
    /// [`LaunchOutcome::node_states`]. The barrier is the quiesce point:
    /// every program has completed and no packet is in flight, so the
    /// capture is byte-identical at every shard count.
    pub fn capture_state(mut self, on: bool) -> Self {
        self.capture = on;
        self
    }

    /// Starts every shard's simulated clock at `start` instead of 0 — a
    /// run resuming from a checkpoint sets this to the checkpoint's
    /// quiesce time so restored timelines continue where the captured one
    /// stopped.
    pub fn resume_at(mut self, start: Time) -> Self {
        self.start = start;
        self
    }

    /// Effective shard count of a [`ClusterBuilder::launch`]: the
    /// [`Shards`] setting resolved standalone and clamped to the node
    /// count.
    pub fn effective_shards(&self) -> usize {
        self.shards.resolve(1).min(self.nodes)
    }

    /// Builds the classic single-`Sim` machine on a fresh simulator and
    /// starts all hardware engines and system-software processes.
    pub fn build(self) -> Cluster {
        let sim = Sim::new();
        self.build_on(sim)
    }

    /// Like [`ClusterBuilder::build`] but on a caller-provided simulator
    /// (so several machines can share one timeline, or the caller controls
    /// the run loop).
    pub fn build_on(self, sim: Sim) -> Cluster {
        let n = self.nodes;
        if self.metrics {
            sim.metrics().enable();
        }
        if let Some(capacity) = self.trace_capacity {
            sim.trace().enable(capacity);
        }
        let mut cfg = self.cfg;
        // The Table 4 experiment is a firmware change: interrupts fire on
        // every message arrival whether or not the receiver enabled them.
        if cfg.interrupt_per_message {
            cfg.nic.force_arrival_interrupts = true;
        }
        let mesh = cfg.mesh.clone().unwrap_or_else(|| MeshConfig::for_nodes(n));
        let net: ShrimpNetwork = Network::new(sim.clone(), mesh, n);
        // One shared fault plane per run (absent on fault-free runs, which
        // therefore pay nothing and replay byte-identically).
        let fault_plane = cfg.faults.is_active().then(|| {
            let plane = FaultPlane::new(cfg.faults);
            net.install_fault_plane(plane.clone());
            plane
        });
        let nodes = assemble(&sim, &cfg, &net, fault_plane.as_ref(), 0..n);
        let cluster = Cluster {
            inner: Rc::new(ClusterInner {
                sim,
                cfg,
                net,
                nodes,
                node_base: 0,
                total_nodes: n,
                exports: RefCell::new(Vec::new()),
                fault_plane,
            }),
        };
        for i in 0..n {
            cluster.spawn_dispatcher(i);
        }
        cluster
    }

    /// Runs `program` on every node of the machine under the
    /// conservative-parallel shard engine and returns the merged outcome.
    ///
    /// Nodes are partitioned contiguously across [`ClusterBuilder::shards`]
    /// shards (`shard_of`); each shard constructs its nodes on its own
    /// `Sim` and the mesh runs the decoupled fixed-latency transport with
    /// the mesh's minimum remote latency as cross-shard lookahead. At one
    /// effective shard this degenerates to the single-`Sim` executor — the
    /// differential oracle — and the outcome is byte-identical at any
    /// shard count.
    ///
    /// Shutdown is shard-safe by construction: each shard closes its NIC
    /// ingress and notification queues only at the engine's global drain
    /// barrier, when no other shard can still have packets in flight.
    ///
    /// Fault scenarios run here too: the fault plane uses per-entity RNG
    /// streams (one per directed mesh edge, owned by the sending shard),
    /// so packet fates are byte-identical at any shard count, and
    /// [`NodeCrash`](shrimp_faults::NodeCrash) faults power-cycle the
    /// node on its owning shard (see [`ClusterBuilder::try_launch`]).
    ///
    /// # Panics
    ///
    /// Panics when the application processes deadlock, or on the typed
    /// errors [`ClusterBuilder::try_launch`] returns instead.
    pub fn launch(self, program: NodeProgram) -> LaunchOutcome {
        match self.try_launch(program) {
            Ok(out) => out,
            Err(e) => panic!("cluster launch failed: {e}"),
        }
    }

    /// [`ClusterBuilder::launch`] with typed configuration errors.
    ///
    /// A chaos row's shard count is part of its experiment identity, so a
    /// fault scenario combined with a [`Shards::Fixed`] request above the
    /// node count is refused as [`ShrimpError::ShardOverflow`] rather
    /// than silently clamped to fewer shards than the row claims.
    pub fn try_launch(self, program: NodeProgram) -> Result<LaunchOutcome, ShrimpError> {
        if self.cfg.faults.is_active() {
            if let Shards::Fixed(k) = self.shards {
                if k > self.nodes {
                    return Err(ShrimpError::ShardOverflow {
                        shards: k,
                        nodes: self.nodes,
                    });
                }
            }
        }
        let n = self.nodes;
        let shards = self.effective_shards();
        let mesh = self
            .cfg
            .mesh
            .clone()
            .unwrap_or_else(|| MeshConfig::for_nodes(n));
        let mut shard_cfg = ShardConfig::new(shards, mesh.min_remote_latency());
        shard_cfg.start = self.start;
        let capture = self.capture;
        let builders: Vec<PhasedBuilder<ClusterFlit, ShardTally>> = (0..shards)
            .map(|_| {
                let builder = self.clone();
                let program = program.clone();
                let b: PhasedBuilder<ClusterFlit, ShardTally> =
                    Box::new(move |ctx| builder.build_shard_plan(ctx, program));
                b
            })
            .collect();
        let out = run_sharded_phased(&shard_cfg, builders);
        let mut node_results = vec![0u64; n];
        let mut finished_nodes = 0usize;
        for tally in &out.results {
            for &(node, result) in &tally.node_results {
                node_results[node] = result;
                finished_nodes += 1;
            }
        }
        assert_eq!(finished_nodes, n, "a node's program never completed");
        let node_states = capture.then(|| {
            let mut states: Vec<NodeState> = out
                .results
                .iter()
                .flat_map(|t| t.node_states.iter().cloned())
                .collect();
            states.sort_unstable_by_key(|s| s.node);
            assert_eq!(states.len(), n, "a node's state was never captured");
            states
        });
        let mut metrics = MetricsSnapshot::default();
        for tally in &out.results {
            metrics.merge(&tally.metrics);
        }
        let sum = |f: fn(&ShardTally) -> u64| out.results.iter().map(f).sum::<u64>();
        Ok(LaunchOutcome {
            elapsed: out.results.iter().map(|t| t.finished).max().unwrap_or(0),
            node_results,
            messages: sum(|t| t.messages),
            notifications: sum(|t| t.notifications),
            interrupts: sum(|t| t.interrupts),
            syscalls: sum(|t| t.syscalls),
            net_packets: sum(|t| t.net_packets),
            net_bytes: sum(|t| t.net_bytes),
            retransmits: sum(|t| t.retransmits),
            corrupt_detected: sum(|t| t.corrupt_detected),
            dup_suppressed: sum(|t| t.dup_suppressed),
            faults_injected: sum(|t| t.faults_injected),
            detection_latency_ps: sum(|t| t.detection_latency_ps),
            recovery_time_ps: sum(|t| t.recovery_time_ps),
            events: out.events,
            windows: out.windows,
            shards,
            node_states,
            metrics,
        })
    }

    /// Constructs this shard's slice of the machine on `ctx`'s `Sim`,
    /// spawns the owned nodes' programs, and returns the shard's
    /// shutdown/harvest plan.
    fn build_shard_plan(
        &self,
        ctx: &ShardCtx<ClusterFlit>,
        program: NodeProgram,
    ) -> ShardPlan<ShardTally> {
        let n = self.nodes;
        let (shard, shards) = (ctx.shard(), ctx.shards());
        let shard_map: Vec<usize> = (0..n).map(|i| shard_of(i, n, shards)).collect();
        let node_base = shard_map
            .iter()
            .position(|&s| s == shard)
            .expect("every shard owns at least one node");
        let owned = shard_map.iter().filter(|&&s| s == shard).count();
        let sim = ctx.sim().clone();
        if self.metrics {
            sim.metrics().enable();
        }
        if let Some(capacity) = self.trace_capacity {
            sim.trace().enable(capacity);
        }
        let mut cfg = self.cfg.clone();
        if cfg.interrupt_per_message {
            cfg.nic.force_arrival_interrupts = true;
        }
        let mesh = cfg.mesh.clone().unwrap_or_else(|| MeshConfig::for_nodes(n));
        let net: ShrimpNetwork = Network::sharded(sim.clone(), mesh, n, shard_map, ctx.sender());
        {
            let net = net.clone();
            ctx.on_message(move |arrival, flit| {
                // Structurally unreachable: `net` was just built sharded. The
                // typed error exists for callers that wire a contended
                // backplane by mistake; surface its message if it ever fires.
                if let Err(e) = net.deliver_remote(arrival, flit) {
                    panic!("sharded cluster backplane rejected a remote flit: {e}");
                }
            });
        }
        // Each shard builds its own per-entity plane from the shared
        // scenario: every directed mesh edge draws from a stream seeded by
        // (seed, edge) and consumed in that edge's node-local send order,
        // so fates are byte-identical at any shard count.
        let fault_plane = cfg.faults.is_active().then(|| {
            let plane = FaultPlane::per_entity(cfg.faults);
            net.install_fault_plane(plane.clone());
            plane
        });
        let nodes = assemble(
            &sim,
            &cfg,
            &net,
            fault_plane.as_ref(),
            node_base..node_base + owned,
        );
        let cluster = Cluster {
            inner: Rc::new(ClusterInner {
                sim: sim.clone(),
                cfg,
                net,
                nodes,
                node_base,
                total_nodes: n,
                exports: RefCell::new(Vec::new()),
                fault_plane,
            }),
        };
        #[allow(clippy::type_complexity)]
        let finished: Rc<RefCell<Vec<(usize, Time, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        for node in node_base..node_base + owned {
            cluster.spawn_dispatcher(node);
            let crash = cluster
                .fault_plane()
                .and_then(|p| p.crash_of(node))
                .filter(|c| c.onset() > sim.now());
            let fut = program(cluster.vmmc(node));
            let record = Rc::clone(&finished);
            let at = sim.clone();
            let Some(crash) = crash else {
                sim.spawn(async move {
                    let result = fut.await;
                    record.borrow_mut().push((node, at.now(), result));
                });
                continue;
            };
            // A crashing node's program races its scheduled power loss:
            // the incarnation is aborted at onset (its tasks stop making
            // progress; in-flight hardware requests complete against a
            // dead board), the node's volatile state is wiped, and — for
            // a transient outage — a fresh incarnation of the same
            // program boots deterministically on the same rewound
            // allocators at restart.
            let signal = Rc::new(CrashSignal::default());
            {
                let signal = Rc::clone(&signal);
                sim.spawn(async move {
                    let race = CrashRace { inner: fut, signal };
                    if let Some(result) = race.await {
                        record.borrow_mut().push((node, at.now(), result));
                    }
                });
            }
            {
                let cl = cluster.clone();
                let rec = Rc::clone(&finished);
                let at = sim.clone();
                sim.schedule(crash.onset(), move || {
                    signal.trip();
                    cl.crash_node(node);
                    // Tombstone result: the incarnation died mid-program.
                    rec.borrow_mut().push((node, at.now(), 0));
                });
            }
            if let Some(up_at) = crash.restart_at() {
                let cl = cluster.clone();
                let rec = Rc::clone(&finished);
                let program = program.clone();
                let at = sim.clone();
                sim.schedule(up_at, move || {
                    cl.restart_node(node);
                    let fut = program(cl.vmmc(node));
                    let rec = Rc::clone(&rec);
                    let done_at = at.clone();
                    at.spawn(async move {
                        let result = fut.await;
                        rec.borrow_mut().push((node, done_at.now(), result));
                    });
                });
            }
        }
        let to_shutdown = cluster.clone();
        let capture = self.capture;
        ShardPlan {
            shutdown: Box::new(move || to_shutdown.shutdown()),
            harvest: Box::new(move || {
                let mut done = finished.borrow_mut();
                // A crashed node records a tombstone at onset and — when it
                // restarts — a second, later record from the fresh
                // incarnation. Keep the record latest in time per node.
                done.sort_by_key(|&(node, t, _)| (node, t));
                let mut merged: Vec<(usize, Time, u64)> = Vec::with_capacity(owned);
                for &(node, t, r) in done.iter() {
                    match merged.last_mut() {
                        Some(last) if last.0 == node => *last = (node, t, r),
                        _ => merged.push((node, t, r)),
                    }
                }
                assert_eq!(
                    merged.len(),
                    owned,
                    "application processes deadlocked; check for missing sends/receives"
                );
                ShardTally {
                    finished: merged.iter().map(|&(_, t, _)| t).max().unwrap_or(0),
                    node_results: merged.iter().map(|&(node, _, r)| (node, r)).collect(),
                    messages: cluster.total(|s| s.messages_sent.get()),
                    notifications: cluster.total(|s| s.notifications.get()),
                    interrupts: cluster.total(|s| s.interrupts_taken.get()),
                    syscalls: cluster.total(|s| s.syscalls.get()),
                    net_packets: cluster.network().stats().packets(),
                    net_bytes: cluster.network().stats().bytes(),
                    retransmits: cluster.total(|s| s.retransmits.get()),
                    corrupt_detected: cluster.total_nic(|c| c.corrupt_detected.get()),
                    dup_suppressed: cluster.total_nic(|c| c.dup_suppressed.get()),
                    faults_injected: cluster.fault_plane().map_or(0, |p| p.stats().total()),
                    detection_latency_ps: cluster.total(|s| s.detection_latency.get()),
                    recovery_time_ps: cluster.total(|s| s.recovery_time.get()),
                    node_states: if capture {
                        // Quiesce-point capture: this closure runs at the
                        // engine's global drain barrier, after every shard
                        // is exhausted — no packet is in flight.
                        cluster
                            .owned_nodes()
                            .map(|node| cluster.capture_node(node))
                            .collect()
                    } else {
                        Vec::new()
                    },
                    metrics: cluster.sim().metrics().snapshot(),
                }
            }),
        }
    }
}

/// Abort flag raced against a crashing node's program future: tripping it
/// wakes the task, whose next poll resolves to `None` without touching the
/// aborted program again.
#[derive(Default)]
struct CrashSignal {
    tripped: Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

impl CrashSignal {
    fn trip(&self) {
        self.tripped.set(true);
        if let Some(w) = self.waker.borrow_mut().take() {
            w.wake();
        }
    }
}

/// Races a node program against its crash signal; yields `Some(result)` on
/// completion, `None` when the node lost power first.
struct CrashRace {
    inner: Pin<Box<dyn Future<Output = u64>>>,
    signal: Rc<CrashSignal>,
}

impl Future for CrashRace {
    type Output = Option<u64>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if self.signal.tripped.get() {
            return Poll::Ready(None);
        }
        match self.inner.as_mut().poll(cx) {
            Poll::Ready(v) => Poll::Ready(Some(v)),
            Poll::Pending => {
                *self.signal.waker.borrow_mut() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// One shard's harvest of a [`ClusterBuilder::launch`].
struct ShardTally {
    finished: Time,
    node_results: Vec<(usize, u64)>,
    messages: u64,
    notifications: u64,
    interrupts: u64,
    syscalls: u64,
    net_packets: u64,
    net_bytes: u64,
    retransmits: u64,
    corrupt_detected: u64,
    dup_suppressed: u64,
    faults_injected: u64,
    detection_latency_ps: u64,
    recovery_time_ps: u64,
    node_states: Vec<NodeState>,
    metrics: MetricsSnapshot,
}

/// The merged, shard-count-invariant outcome of a
/// [`ClusterBuilder::launch`]: everything but `events`, `windows`, and
/// `shards` is a pure function of the simulated program.
#[derive(Debug, Clone)]
pub struct LaunchOutcome {
    /// Latest per-node program completion time (simulated).
    pub elapsed: Time,
    /// Each node's program result, indexed by node.
    pub node_results: Vec<u64>,
    /// Messages sent (VMMC sends, all nodes).
    pub messages: u64,
    /// User-level notifications delivered.
    pub notifications: u64,
    /// Interrupts taken.
    pub interrupts: u64,
    /// Kernel traps performed.
    pub syscalls: u64,
    /// Mesh packets (recorded at the sending shard; loopback excluded).
    pub net_packets: u64,
    /// Mesh wire bytes including headers.
    pub net_bytes: u64,
    /// Reliable-delivery retransmissions performed (0 on fault-free runs).
    pub retransmits: u64,
    /// Packets whose payload failed the checksum at NIC ingress.
    pub corrupt_detected: u64,
    /// Sequenced packets discarded as already-delivered duplicates.
    pub dup_suppressed: u64,
    /// Faults the planes actually injected, summed across shards.
    pub faults_injected: u64,
    /// Summed failure-detector latency: per declaring node, sim time from
    /// a peer's last heartbeat to declaring it dead (ps).
    pub detection_latency_ps: u64,
    /// Summed recovery time: retransmitted-chunk recovery plus sim time
    /// from a death declaration to the heartbeat witnessing the rejoin
    /// (ps).
    pub recovery_time_ps: u64,
    /// Executor events across shards (host-dependent layout detail — never
    /// part of deterministic artifacts).
    pub events: u64,
    /// Synchronization windows (0 on the one-shard degenerate path).
    pub windows: u64,
    /// Effective shard count the launch ran with.
    pub shards: usize,
    /// Per-node checkpoint state captured at the drain barrier, indexed by
    /// node — `Some` only when [`ClusterBuilder::capture_state`] was set.
    pub node_states: Option<Vec<NodeState>>,
    /// Per-shard metric registries folded with
    /// [`MetricsSnapshot::merge`] — counters and histograms are
    /// shard-count invariant (the merge is commutative and associative);
    /// gauges keep elementwise maxima and are **not**. Empty unless
    /// [`ClusterBuilder::metrics`] enabled the plane.
    pub metrics: MetricsSnapshot,
}

/// Constructs and starts the nodes `range` (global ids) against `net`.
fn assemble(
    sim: &Sim,
    cfg: &DesignConfig,
    net: &ShrimpNetwork,
    fault_plane: Option<&FaultPlane>,
    range: std::ops::Range<usize>,
) -> Vec<Node> {
    let mut nodes = Vec::with_capacity(range.len());
    for i in range {
        let mem = NodeMem::new();
        let bus = MemBus::shrimp_default();
        let nic = Nic::new(
            sim.clone(),
            NodeId(i),
            cfg.nic.clone(),
            mem.clone(),
            bus.clone(),
            net.clone(),
        );
        if let Some(plane) = fault_plane {
            nic.install_fault_plane(plane.clone());
        }
        nic.start();
        let cpu = Cpu::new(sim.clone());
        let stall_cpu = cpu.clone();
        nic.set_cpu_stall_hook(move |d| stall_cpu.steal(d));
        // A scheduled CPU pause (SMI-style outage) is stolen time: the
        // node's application and handlers make no progress through it.
        if let Some((at, dur)) = fault_plane.and_then(|p| p.pause_of(i)) {
            let paused = cpu.clone();
            sim.schedule(at, move || paused.steal(dur));
        }
        nodes.push(Node {
            space: AddressSpace::new(mem.clone()),
            mem,
            bus,
            nic,
            cpu,
            stats: Rc::new(NodeStats::new()),
            page_dir: RefCell::new(HashMap::new()),
            notifications_blocked: Cell::new(false),
            pending_notifications: RefCell::new(Vec::new()),
        });
    }
    nodes
}

impl Cluster {
    /// Starts a typed [`ClusterBuilder`] for an `n`-node machine.
    pub fn builder(n: usize) -> ClusterBuilder {
        ClusterBuilder::new(n)
    }

    /// The per-node interrupt dispatch process: takes NIC interrupts,
    /// charges the kernel handler, and delivers user-level notifications
    /// when requested and enabled (§4.4).
    fn spawn_dispatcher(&self, node: usize) {
        let cluster = self.clone();
        let interrupts = self.node(node).nic.interrupts();
        let intr_delay = self.inner.cfg.faults.interrupt_delay();
        self.inner.sim.spawn(async move {
            loop {
                let Some(intr) = interrupts.recv().await else {
                    break;
                };
                // Delayed-interrupt fault: the wire between NIC and CPU is
                // slow, not the handler.
                if intr_delay > 0 {
                    cluster.inner.sim.sleep(intr_delay).await;
                }
                let n = cluster.node(node);
                NodeStats::bump(&n.stats.interrupts_taken);
                let svc_t0 = cluster.inner.sim.now();
                n.cpu.run_handler(cluster.inner.cfg.interrupt_cost).await;
                {
                    let metrics = cluster.inner.sim.metrics();
                    metrics.counter_add(shrimp_sim::Category::Core, "interrupts_taken", 1);
                    // Handler cost plus any CPU contention the dispatch paid.
                    metrics.observe(
                        shrimp_sim::Category::Core,
                        "intr_service_ps",
                        cluster.inner.sim.now() - svc_t0,
                    );
                }
                if !intr.notify {
                    continue; // forced interrupt (Table 4): null handler only
                }
                let Some(&(export_id, page_idx)) = n.page_dir.borrow().get(&intr.dst_page) else {
                    continue;
                };
                let export = cluster.inner.exports.borrow()[export_id as usize].clone();
                if !export.notify_enabled.get() {
                    continue;
                }
                let notification = Notification {
                    src: intr.src,
                    offset: page_idx * PAGE_SIZE + intr.offset,
                    len: intr.len,
                };
                if n.notifications_blocked.get() {
                    n.pending_notifications
                        .borrow_mut()
                        .push((export_id, notification));
                } else {
                    n.cpu.run_handler(cluster.inner.cfg.notification_cost).await;
                    NodeStats::bump(&n.stats.notifications);
                    export.queue.send(notification);
                }
            }
        });
    }

    /// Number of nodes in the whole machine (across all shards of a
    /// sharded launch).
    pub fn num_nodes(&self) -> usize {
        self.inner.total_nodes
    }

    /// Global ids of the nodes this `Cluster` owns: everything on the
    /// classic path, one contiguous slice per shard of a sharded launch.
    pub fn owned_nodes(&self) -> std::ops::Range<usize> {
        self.inner.node_base..self.inner.node_base + self.inner.nodes.len()
    }

    /// The simulator driving this machine (this shard's, when sharded).
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// The design configuration.
    pub fn config(&self) -> &DesignConfig {
        &self.inner.cfg
    }

    /// The backplane (this shard's view, when sharded).
    pub fn network(&self) -> &ShrimpNetwork {
        &self.inner.net
    }

    /// The mesh's minimum inter-node latency — the cross-shard lookahead a
    /// sharded launch synchronizes with.
    ///
    /// Couplings tighter than the mesh pin a machine to **one shard**: the
    /// contended transport's link `Resource`s are reserved synchronously
    /// in global send order, so the classic [`ClusterBuilder::build`]
    /// machine always runs single-`Sim`. A sharded launch has no shared
    /// fabric state — the decoupled transport keeps per-(src, dst) clamp
    /// state on the sender's shard, and a chaos run's [`FaultPlane`]
    /// draws each edge's packet fates from a per-edge RNG stream consumed
    /// in that edge's node-local send order — so only the mesh latency
    /// bounds its windows.
    pub fn coupling_lookahead(&self) -> Time {
        self.inner.net.config().min_remote_latency()
    }

    /// The run's fault plane (its stats report injections actually
    /// performed); `None` when the scenario is empty.
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.inner.fault_plane.as_ref()
    }

    /// The VMMC library handle for `node`'s application process.
    pub fn vmmc(&self, node: usize) -> Vmmc {
        let _ = self.index(node);
        Vmmc::new(self.clone(), node)
    }

    /// A node's NIC (experiment drivers read its counters).
    pub fn nic(&self, node: usize) -> &Nic {
        &self.node(node).nic
    }

    /// A node's CPU.
    pub fn cpu(&self, node: usize) -> &Cpu {
        &self.node(node).cpu
    }

    /// A node's software statistics.
    pub fn stats(&self, node: usize) -> Rc<NodeStats> {
        self.node(node).stats.clone()
    }

    /// Sum of a counter over the owned nodes.
    pub fn total<F: Fn(&NodeStats) -> u64>(&self, f: F) -> u64 {
        self.inner.nodes.iter().map(|n| f(&n.stats)).sum()
    }

    /// Sum of a NIC hardware counter over the owned nodes.
    pub fn total_nic<F: Fn(&shrimp_nic::NicCounters) -> u64>(&self, f: F) -> u64 {
        self.inner.nodes.iter().map(|n| f(n.nic.counters())).sum()
    }

    /// Captures an owned node's checkpoint state: memory image, allocator
    /// cursors, NIC sequence counter, and page-table images. Meaningful
    /// only at a quiesce point (the launch drain barrier — see
    /// [`ClusterBuilder::capture_state`]); capturing mid-run would race
    /// in-flight packets.
    pub fn capture_node(&self, node: usize) -> NodeState {
        let n = self.node(node);
        let tables = n.nic.tables();
        NodeState {
            node,
            pages: n.mem.dump_pages(),
            next_phys_page: n.mem.next_phys_page(),
            nic_seq: n.nic.seq_counter(),
            next_proxy: tables.next_proxy(),
            opt: tables.opt_entries(),
            // Buffer ids index the shard-local export directory; store the
            // shard-count-invariant ordinal form instead.
            ipt: crate::checkpoint::canonicalize_ipt(tables.ipt_entries()),
        }
    }

    /// Restores an owned node from a captured [`NodeState`], after the
    /// resuming program has replayed its allocation and export/import
    /// preamble.
    ///
    /// The restore is *verified*: the replayed allocator cursors and
    /// OPT/IPT images must equal the captured ones — they are pure
    /// functions of the preamble, so a mismatch means the resuming program
    /// (or its configuration) diverged from the one that produced the
    /// checkpoint. Only then are the memory image and the NIC sequence
    /// counter (state the preamble cannot reproduce) written back.
    ///
    /// # Panics
    ///
    /// Panics on any divergence between the replayed preamble and the
    /// captured state.
    pub fn restore_node(&self, node: usize, state: &NodeState) {
        assert_eq!(state.node, node, "checkpoint state is for another node");
        let n = self.node(node);
        assert_eq!(
            n.mem.next_phys_page(),
            state.next_phys_page,
            "node {node}: replayed page allocator diverged from the checkpoint"
        );
        let tables = n.nic.tables();
        assert_eq!(
            tables.next_proxy(),
            state.next_proxy,
            "node {node}: replayed proxy allocator diverged from the checkpoint"
        );
        assert_eq!(
            tables.opt_entries(),
            state.opt,
            "node {node}: replayed OPT image diverged from the checkpoint"
        );
        assert_eq!(
            crate::checkpoint::canonicalize_ipt(tables.ipt_entries()),
            state.ipt,
            "node {node}: replayed IPT image diverged from the checkpoint"
        );
        for (page, data) in &state.pages {
            n.mem.write_raw(Paddr::from_parts(*page, 0), data);
        }
        n.nic.set_seq_counter(state.nic_seq);
    }

    /// Crashes a node with full loss of volatile state: the NIC loses
    /// power (page tables, dedup window and in-flight work gone; traffic
    /// to the dead board is absorbed), memory and the address space rewind
    /// to their post-construction allocators, and the system software's
    /// page directory and queued notifications are dropped. The NIC's
    /// sequence counter deliberately survives — it is the incarnation
    /// guard that keeps a restarted node's sequences distinct from its
    /// pre-crash ones in peers' dedup tables.
    pub(crate) fn crash_node(&self, node: usize) {
        let n = self.node(node);
        n.nic.power_off();
        n.mem.reset();
        n.space.reset();
        n.page_dir.borrow_mut().clear();
        n.pending_notifications.borrow_mut().clear();
        n.notifications_blocked.set(false);
        if let Some(plane) = self.fault_plane() {
            plane.record_crash();
        }
    }

    /// Restores power to a crashed node's NIC. The caller boots a fresh
    /// program incarnation, which reproduces the node's canonical memory
    /// map on the rewound allocators.
    pub(crate) fn restart_node(&self, node: usize) {
        self.node(node).nic.power_on();
    }

    /// Closes NIC queues so hardware/system processes terminate once idle,
    /// and closes the owned exports' notification queues.
    ///
    /// On a sharded launch each shard's shutdown runs at the engine's
    /// global drain barrier — after every shard is exhausted — so no
    /// packet can still be in flight toward a queue being closed here.
    pub fn shutdown(&self) {
        for n in &self.inner.nodes {
            n.nic.shutdown();
        }
        for e in self.inner.exports.borrow().iter() {
            e.queue.close();
        }
    }

    /// Runs the simulation until the given application processes complete,
    /// then shuts the machine down and drains remaining events. Returns the
    /// simulated completion time of the *applications* and their outputs.
    ///
    /// # Panics
    ///
    /// Panics if the applications deadlock.
    pub fn run_until_complete<T: 'static>(&self, handles: Vec<TaskHandle<T>>) -> (Time, Vec<T>) {
        let sim = self.inner.sim.clone();
        let s2 = sim.clone();
        let joiner = sim.spawn(async move {
            let out = join_all(handles).await;
            (s2.now(), out)
        });
        sim.run();
        let (t, out) = joiner
            .try_take()
            .expect("application processes deadlocked; check for missing sends/receives");
        self.shutdown();
        sim.run();
        (t, out)
    }

    // ----- internal accessors used by the Vmmc library -------------------

    /// Index of a *global* node id within the owned slice.
    fn index(&self, node: usize) -> usize {
        assert!(
            node >= self.inner.node_base && node < self.inner.node_base + self.inner.nodes.len(),
            "node {node} is not owned by this cluster (owns {:?} of {} nodes)",
            self.owned_nodes(),
            self.inner.total_nodes,
        );
        node - self.inner.node_base
    }

    pub(crate) fn node(&self, i: usize) -> &Node {
        &self.inner.nodes[self.index(i)]
    }

    pub(crate) fn register_export(
        &self,
        node: usize,
        len: usize,
        phys_pages: Vec<u64>,
    ) -> ExportId {
        let id = self.inner.exports.borrow().len() as u32;
        {
            let mut dir = self.node(node).page_dir.borrow_mut();
            for (idx, &p) in phys_pages.iter().enumerate() {
                dir.insert(p, (id, idx));
            }
        }
        self.inner.exports.borrow_mut().push(Rc::new(ExportInfo {
            node,
            len,
            phys_pages,
            notify_enabled: Cell::new(false),
            queue: Queue::new(),
        }));
        // IPT: accept packets for every page of the buffer.
        let info = self.inner.exports.borrow()[id as usize].clone();
        for &p in &info.phys_pages {
            self.node(node).nic.ipt_set(
                p,
                IptEntry {
                    accept: true,
                    interrupt_enable: false,
                    buffer_id: id,
                },
            );
        }
        ExportId(id)
    }

    pub(crate) fn export_info(&self, id: ExportId) -> Rc<ExportInfo> {
        self.inner.exports.borrow()[id.0 as usize].clone()
    }

    /// Delivers notifications that were queued while blocked (§2.2 allows
    /// blocking/unblocking, with queueing of multiple notifications).
    pub(crate) async fn flush_pending_notifications(&self, node: usize) {
        loop {
            let next = self.node(node).pending_notifications.borrow_mut().pop();
            let Some((export_id, notification)) = next else {
                break;
            };
            let n = self.node(node);
            n.cpu.run_handler(self.inner.cfg.notification_cost).await;
            NodeStats::bump(&n.stats.notifications);
            let export = self.inner.exports.borrow()[export_id as usize].clone();
            export.queue.send(notification);
        }
    }
}
