//! The node CPU model: one application process per node, preemptible by
//! interrupt handlers and DMA-induced bus stalls.
//!
//! The model keeps exact preemption semantics without time-slicing: the
//! application's current compute interval is extended by exactly the time
//! stolen from it, while handlers that fire when the CPU is idle (the
//! application is blocked on communication) cost nothing on the critical
//! path — the overlap the paper's interrupt-avoidance design exploits (§4.4).

use std::cell::Cell;
use std::rc::Rc;

use shrimp_sim::{Sim, Time};

struct CpuInner {
    sim: Sim,
    /// End of the application's current compute interval, if it is in one.
    computing_end: Cell<Option<Time>>,
    total_compute: Cell<Time>,
    total_stolen: Cell<Time>,
}

/// One node's CPU. Cheap to clone.
#[derive(Clone)]
pub struct Cpu {
    inner: Rc<CpuInner>,
}

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("total_compute", &self.inner.total_compute.get())
            .field("total_stolen", &self.inner.total_stolen.get())
            .finish()
    }
}

impl Cpu {
    /// Creates an idle CPU.
    pub fn new(sim: Sim) -> Self {
        Cpu {
            inner: Rc::new(CpuInner {
                sim,
                computing_end: Cell::new(None),
                total_compute: Cell::new(0),
                total_stolen: Cell::new(0),
            }),
        }
    }

    /// Runs application computation for `d` of CPU time. Any time stolen by
    /// [`Cpu::steal`] while this is in progress extends the interval, so the
    /// call returns after `d` plus all preemptions.
    ///
    /// If another process is already computing on this CPU (a protocol
    /// handler doing work while the application computes), this call behaves
    /// like [`Cpu::run_handler`]: it preempts the current owner and
    /// completes after `d`.
    pub async fn compute(&self, d: Time) {
        if d == 0 {
            return;
        }
        if self.inner.computing_end.get().is_some() {
            self.run_handler(d).await;
            return;
        }
        self.inner
            .total_compute
            .set(self.inner.total_compute.get() + d);
        let mut end = self.inner.sim.now() + d;
        self.inner.computing_end.set(Some(end));
        loop {
            self.inner.sim.sleep_until(end).await;
            let cur = self
                .inner
                .computing_end
                .get()
                .expect("compute interval cleared underneath us");
            if cur == end {
                break;
            }
            end = cur;
        }
        self.inner.computing_end.set(None);
    }

    /// Steals `d` of CPU time: if the application is computing, its interval
    /// extends by `d`; if the CPU is idle the handler absorbs idle time and
    /// the application is unaffected.
    pub fn steal(&self, d: Time) {
        if d == 0 {
            return;
        }
        self.inner
            .total_stolen
            .set(self.inner.total_stolen.get() + d);
        if let Some(e) = self.inner.computing_end.get() {
            self.inner.computing_end.set(Some(e + d));
        }
    }

    /// Runs an interrupt/notification handler for `d`: preempts the
    /// application (via [`Cpu::steal`]) and completes after `d` elapses.
    pub async fn run_handler(&self, d: Time) {
        self.steal(d);
        self.inner.sim.sleep(d).await;
    }

    /// `true` while the application process is inside [`Cpu::compute`].
    pub fn is_computing(&self) -> bool {
        self.inner.computing_end.get().is_some()
    }

    /// Total application compute time requested so far.
    pub fn total_compute(&self) -> Time {
        self.inner.total_compute.get()
    }

    /// Total time stolen by handlers and stalls so far.
    pub fn total_stolen(&self) -> Time {
        self.inner.total_stolen.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_sim::time::us;

    #[test]
    fn compute_runs_for_requested_time() {
        let sim = Sim::new();
        let cpu = Cpu::new(sim.clone());
        sim.spawn(async move { cpu.compute(us(10)).await });
        assert_eq!(sim.run_to_completion(), us(10));
    }

    #[test]
    fn steal_during_compute_extends_it() {
        let sim = Sim::new();
        let cpu = Cpu::new(sim.clone());
        let c = cpu.clone();
        sim.spawn(async move { c.compute(us(10)).await });
        let c = cpu.clone();
        sim.schedule(us(3), move || c.steal(us(5)));
        assert_eq!(sim.run_to_completion(), us(15));
        assert_eq!(cpu.total_stolen(), us(5));
    }

    #[test]
    fn steal_while_idle_is_free() {
        let sim = Sim::new();
        let cpu = Cpu::new(sim.clone());
        let c = cpu.clone();
        sim.schedule(us(1), move || c.steal(us(100)));
        let c = cpu.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(us(5)).await; // blocked on "communication"
            c.compute(us(10)).await;
        });
        // The idle-time steal does not delay the later compute.
        assert_eq!(sim.run_to_completion(), us(15));
    }

    #[test]
    fn multiple_steals_accumulate() {
        let sim = Sim::new();
        let cpu = Cpu::new(sim.clone());
        let c = cpu.clone();
        sim.spawn(async move { c.compute(us(10)).await });
        for t in [2, 4, 6] {
            let c = cpu.clone();
            sim.schedule(us(t), move || c.steal(us(1)));
        }
        assert_eq!(sim.run_to_completion(), us(13));
    }

    #[test]
    fn run_handler_takes_its_duration() {
        let sim = Sim::new();
        let cpu = Cpu::new(sim.clone());
        let c = cpu.clone();
        let h = sim.spawn(async move {
            c.run_handler(us(7)).await;
        });
        sim.run_to_completion();
        assert!(h.is_done());
        assert_eq!(cpu.total_stolen(), us(7));
    }

    #[test]
    fn steal_late_in_extended_interval_still_counts() {
        let sim = Sim::new();
        let cpu = Cpu::new(sim.clone());
        let c = cpu.clone();
        sim.spawn(async move { c.compute(us(10)).await });
        // First steal extends to 15; second fires at 12 (inside extension).
        let c = cpu.clone();
        sim.schedule(us(3), move || c.steal(us(5)));
        let c = cpu.clone();
        sim.schedule(us(12), move || c.steal(us(2)));
        assert_eq!(sim.run_to_completion(), us(17));
    }
}
