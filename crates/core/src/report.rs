//! Post-run utilization reporting: where did the time go, machine-wide?
//!
//! A [`ClusterReport`] snapshots every node's CPU, bus, NIC and network
//! counters after a run and renders them as the kind of utilization
//! summary the paper's authors used to find their surprises (an idle
//! outgoing FIFO, a never-busy DU queue). Benches print it under
//! `SHRIMP_REPORT=1`.

use shrimp_sim::{time, Time};

use crate::cluster::Cluster;

/// Per-node utilization snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Application compute time charged.
    pub cpu_compute: Time,
    /// Time stolen from the application by handlers and DMA stalls.
    pub cpu_stolen: Time,
    /// Memory-bus busy time.
    pub bus_busy: Time,
    /// Memory-bus transactions.
    pub bus_transactions: u64,
    /// Deliberate-update transfers sent.
    pub du_transfers: u64,
    /// Automatic-update packets sent.
    pub au_packets: u64,
    /// Stores merged by combining.
    pub au_combined: u64,
    /// Packets received.
    pub packets_received: u64,
    /// Outgoing-FIFO high-water mark (bytes).
    pub fifo_high_water: usize,
    /// Host interrupts taken.
    pub interrupts: u64,
    /// User-level notifications delivered.
    pub notifications: u64,
    /// VMMC messages sent.
    pub messages: u64,
}

/// Machine-wide utilization snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Simulated elapsed time the report is normalized against.
    pub elapsed: Time,
    /// Per-node rows.
    pub nodes: Vec<NodeReport>,
    /// Backplane packets.
    pub net_packets: u64,
    /// Backplane payload bytes.
    pub net_bytes: u64,
    /// Total hops taken.
    pub net_hops: u64,
    /// Total time packets waited on busy channels.
    pub net_contention: Time,
}

impl ClusterReport {
    /// Snapshots `cluster` after a run that ended at `elapsed`.
    pub fn capture(cluster: &Cluster, elapsed: Time) -> Self {
        let nodes = (0..cluster.num_nodes())
            .map(|i| {
                let nic = cluster.nic(i).counters();
                let stats = cluster.stats(i);
                let node = cluster.node(i);
                NodeReport {
                    cpu_compute: cluster.cpu(i).total_compute(),
                    cpu_stolen: cluster.cpu(i).total_stolen(),
                    bus_busy: node.bus.total_busy(),
                    bus_transactions: node.bus.transactions(),
                    du_transfers: nic.du_transfers.get(),
                    au_packets: nic.au_packets.get(),
                    au_combined: nic.au_combined_stores.get(),
                    packets_received: nic.packets_received.get(),
                    fifo_high_water: nic.fifo_high_water.get(),
                    interrupts: stats.interrupts_taken.get(),
                    notifications: stats.notifications.get(),
                    messages: stats.messages_sent.get(),
                }
            })
            .collect();
        let net = cluster.network().stats();
        ClusterReport {
            elapsed,
            nodes,
            net_packets: net.packets(),
            net_bytes: net.bytes(),
            net_hops: net.hops(),
            net_contention: net.contention_wait(),
        }
    }

    /// CPU utilization (compute + stolen over elapsed) of a node, 0..=1+.
    pub fn cpu_utilization(&self, node: usize) -> f64 {
        let n = &self.nodes[node];
        (n.cpu_compute + n.cpu_stolen) as f64 / self.elapsed.max(1) as f64
    }

    /// Memory-bus utilization of a node, 0..=1.
    pub fn bus_utilization(&self, node: usize) -> f64 {
        self.nodes[node].bus_busy as f64 / self.elapsed.max(1) as f64
    }

    /// Mean hops per backplane packet.
    pub fn mean_hops(&self) -> f64 {
        if self.net_packets == 0 {
            0.0
        } else {
            self.net_hops as f64 / self.net_packets as f64
        }
    }

    /// The machine-wide totals as stable `(name, value)` pairs — the
    /// machine-readable row the sweep harness serializes next to each
    /// run's application metrics. Deterministic, simulated quantities
    /// only; the key set is append-only so committed baselines stay
    /// comparable across versions.
    pub fn totals(&self) -> Vec<(&'static str, u64)> {
        let sum = |f: fn(&NodeReport) -> u64| self.nodes.iter().map(f).sum::<u64>();
        vec![
            ("elapsed_ns", self.elapsed),
            ("net_packets", self.net_packets),
            ("net_bytes", self.net_bytes),
            ("net_hops", self.net_hops),
            ("net_contention_ns", self.net_contention),
            ("du_transfers", sum(|n| n.du_transfers)),
            ("au_packets", sum(|n| n.au_packets)),
            ("au_combined", sum(|n| n.au_combined)),
            ("interrupts", sum(|n| n.interrupts)),
            ("notifications", sum(|n| n.notifications)),
            ("messages", sum(|n| n.messages)),
        ]
    }

    /// Renders the machine-wide summary as text.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cluster report @ {:.3} s simulated; backplane: {} packets, {} bytes, \
             {:.2} mean hops, {:.1} us total contention",
            time::to_secs(self.elapsed),
            self.net_packets,
            self.net_bytes,
            self.mean_hops(),
            time::to_us(self.net_contention),
        );
        let _ = writeln!(
            out,
            "{:>4}  {:>7} {:>7} {:>7}  {:>8} {:>8} {:>9}  {:>8} {:>6} {:>6}",
            "node",
            "cpu%",
            "steal%",
            "bus%",
            "du-xfer",
            "au-pkt",
            "combined",
            "rx-pkt",
            "intr",
            "notif"
        );
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>4}  {:>6.1}% {:>6.1}% {:>6.1}%  {:>8} {:>8} {:>9}  {:>8} {:>6} {:>6}",
                i,
                n.cpu_compute as f64 / self.elapsed.max(1) as f64 * 100.0,
                n.cpu_stolen as f64 / self.elapsed.max(1) as f64 * 100.0,
                self.bus_utilization(i) * 100.0,
                n.du_transfers,
                n.au_packets,
                n.au_combined,
                n.packets_received,
                n.interrupts,
                n.notifications,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, DesignConfig};
    use shrimp_mem::PAGE_SIZE;

    #[test]
    fn report_reflects_activity() {
        let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
        let a = cluster.vmmc(0);
        let b = cluster.vmmc(1);
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let proxy = a.import(export);
        let src = a.space().alloc(1);
        let a2 = a.clone();
        let h = cluster.sim().spawn(async move {
            a2.compute(time::ms(1)).await;
            for i in 0..10 {
                a2.send(src, &proxy, i * 64, 64).await;
            }
        });
        let (elapsed, _) = cluster.run_until_complete(vec![h]);
        let report = ClusterReport::capture(&cluster, elapsed);
        assert_eq!(report.nodes.len(), 2);
        assert_eq!(report.nodes[0].du_transfers, 10);
        assert_eq!(report.nodes[1].packets_received, 10);
        assert_eq!(report.net_packets, 10);
        assert!(report.cpu_utilization(0) > 0.5, "sender mostly computed");
        assert!(report.bus_utilization(1) > 0.0);
        let text = report.render();
        assert!(text.contains("cluster report"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn idle_cluster_reports_zeros() {
        let cluster = Cluster::builder(1).config(DesignConfig::default()).build();
        let (elapsed, _) = cluster.run_until_complete::<()>(vec![]);
        let report = ClusterReport::capture(&cluster, elapsed);
        assert_eq!(report.net_packets, 0);
        assert_eq!(report.mean_hops(), 0.0);
        assert_eq!(report.nodes[0].messages, 0);
    }
}
