//! Cluster checkpoints: the versioned per-node state image a warm-start
//! run forks from.
//!
//! A checkpoint is captured at a **quiesce point** — the shard engine's
//! global drain barrier, after every node program of the warmup phase has
//! completed and no packet is in flight — so the image is a pure function
//! of the workload, byte-identical at every shard count. It stores, per
//! node: the allocated physical memory pages, the page and proxy allocator
//! cursors, the NIC's packet sequence counter, and the full OPT/IPT table
//! images.
//!
//! Restore is **replay-verified**: a restored node re-runs its allocation
//! and export/import preamble (the node map is deterministic by
//! construction), then [`Cluster::restore_node`](crate::Cluster::restore_node)
//! checks the replayed allocator cursors and table images against the
//! captured ones before overwriting memory — a silent divergence between
//! the checkpoint's program and the resuming one fails loudly instead of
//! corrupting the run.
//!
//! Artifacts use the `shrimp_sim::snapshot` codec (same magic and format
//! version as `Sim` snapshots).

use shrimp_net::NodeId;
use shrimp_nic::{IptEntry, OptEntry};
use shrimp_sim::{SnapshotError, SnapshotReader, SnapshotWriter, Time};

/// Everything one node needs beyond its deterministic preamble: memory
/// image, allocator cursors, NIC sequence counter, and page-table images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeState {
    /// Global node id this state belongs to.
    pub node: usize,
    /// Every allocated physical page and its contents, sorted by page.
    pub pages: Vec<(u64, Vec<u8>)>,
    /// The memory allocator cursor (verified, not restored — the resuming
    /// preamble must replay the identical allocation sequence).
    pub next_phys_page: u64,
    /// The NIC's outgoing packet sequence counter (restored; it is the
    /// incarnation guard peers' dedup windows key on).
    pub nic_seq: u64,
    /// The proxy-index allocator cursor (verified like `next_phys_page`).
    pub next_proxy: u64,
    /// The full OPT image, sorted by index (verified).
    pub opt: Vec<(u64, OptEntry)>,
    /// The full IPT image, sorted by page (verified).
    pub ipt: Vec<(u64, IptEntry)>,
}

impl NodeState {
    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.node as u64);
        w.put_u64(self.pages.len() as u64);
        for (page, data) in &self.pages {
            w.put_u64(*page);
            w.put_bytes(data);
        }
        w.put_u64(self.next_phys_page);
        w.put_u64(self.nic_seq);
        w.put_u64(self.next_proxy);
        w.put_u64(self.opt.len() as u64);
        for (index, e) in &self.opt {
            w.put_u64(*index);
            w.put_u64(e.dst_node.0 as u64);
            w.put_u64(e.dst_page);
            w.put_bool(e.au_enable);
            w.put_bool(e.combine);
            w.put_bool(e.interrupt);
        }
        w.put_u64(self.ipt.len() as u64);
        for (page, e) in &self.ipt {
            w.put_u64(*page);
            w.put_bool(e.accept);
            w.put_bool(e.interrupt_enable);
            w.put_u32(e.buffer_id);
        }
    }

    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let node = r.get_u64()? as usize;
        let npages = r.get_len()?;
        let mut pages = Vec::with_capacity(npages);
        for _ in 0..npages {
            let page = r.get_u64()?;
            pages.push((page, r.get_bytes()?.to_vec()));
        }
        let next_phys_page = r.get_u64()?;
        let nic_seq = r.get_u64()?;
        let next_proxy = r.get_u64()?;
        let nopt = r.get_len()?;
        let mut opt = Vec::with_capacity(nopt);
        for _ in 0..nopt {
            let index = r.get_u64()?;
            opt.push((
                index,
                OptEntry {
                    dst_node: NodeId(r.get_u64()? as usize),
                    dst_page: r.get_u64()?,
                    au_enable: r.get_bool()?,
                    combine: r.get_bool()?,
                    interrupt: r.get_bool()?,
                },
            ));
        }
        let nipt = r.get_len()?;
        let mut ipt = Vec::with_capacity(nipt);
        for _ in 0..nipt {
            let page = r.get_u64()?;
            ipt.push((
                page,
                IptEntry {
                    accept: r.get_bool()?,
                    interrupt_enable: r.get_bool()?,
                    buffer_id: r.get_u32()?,
                },
            ));
        }
        Ok(NodeState {
            node,
            pages,
            next_phys_page,
            nic_seq,
            next_proxy,
            opt,
            ipt,
        })
    }
}

/// Rewrites an IPT image's buffer ids to node-local ordinals (order of
/// first appearance over ascending pages). Raw `buffer_id`s index the
/// *shard-local* export directory, so they depend on how many nodes share
/// the shard; the ordinal form is shard-count-invariant while still
/// pinning which pages belong to the same buffer. Capture stores this
/// form, and restore canonicalizes the replayed image before comparing.
pub(crate) fn canonicalize_ipt(mut entries: Vec<(u64, IptEntry)>) -> Vec<(u64, IptEntry)> {
    let mut ordinals: Vec<u32> = Vec::new();
    for (_, e) in entries.iter_mut() {
        let ord = match ordinals.iter().position(|&id| id == e.buffer_id) {
            Some(i) => i as u32,
            None => {
                ordinals.push(e.buffer_id);
                ordinals.len() as u32 - 1
            }
        };
        e.buffer_id = ord;
    }
    entries
}

/// A whole machine's quiesce-point image plus the identity of the run that
/// produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterCheckpoint {
    /// The quiesce time the resuming run starts its clocks at.
    pub time: Time,
    /// Nodes in the checkpointed machine.
    pub total_nodes: usize,
    /// Opaque fingerprint of the producing workload (shape, seed, warmup
    /// depth). Restore refuses a checkpoint whose tag differs from the
    /// resuming run's expectation.
    pub tag: Vec<u8>,
    /// Per-node state, indexed by node id.
    pub nodes: Vec<NodeState>,
}

impl ClusterCheckpoint {
    /// Serializes the checkpoint into a versioned artifact.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.time);
        w.put_u64(self.total_nodes as u64);
        w.put_bytes(&self.tag);
        w.put_u64(self.nodes.len() as u64);
        for n in &self.nodes {
            n.encode_into(&mut w);
        }
        w.finish()
    }

    /// Decodes an artifact produced by [`ClusterCheckpoint::encode`],
    /// validating the magic, version, and structure.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::new(bytes)?;
        let time = r.get_u64()?;
        let total_nodes = r.get_u64()? as usize;
        let tag = r.get_bytes()?.to_vec();
        let n = r.get_len()?;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(NodeState::decode_from(&mut r)?);
        }
        if nodes.len() != total_nodes {
            return Err(SnapshotError::Corrupt(
                "checkpoint node count disagrees with its header",
            ));
        }
        for (i, st) in nodes.iter().enumerate() {
            if st.node != i {
                return Err(SnapshotError::Corrupt(
                    "checkpoint node states are not indexed by node id",
                ));
            }
        }
        r.finish()?;
        Ok(ClusterCheckpoint {
            time,
            total_nodes,
            tag,
            nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClusterCheckpoint {
        let node = |i: usize| NodeState {
            node: i,
            pages: vec![(0, vec![i as u8; 8]), (1, vec![0xAA; 4])],
            next_phys_page: 2,
            nic_seq: 5 + i as u64,
            next_proxy: shrimp_nic::tables::PROXY_INDEX_BASE + 3,
            opt: vec![(
                7,
                OptEntry {
                    dst_node: NodeId(1 - i),
                    dst_page: 9,
                    au_enable: false,
                    combine: true,
                    interrupt: i == 0,
                },
            )],
            ipt: vec![(
                0,
                IptEntry {
                    accept: true,
                    interrupt_enable: i == 1,
                    buffer_id: 0,
                },
            )],
        };
        ClusterCheckpoint {
            time: 123_456,
            total_nodes: 2,
            tag: b"tag".to_vec(),
            nodes: vec![node(0), node(1)],
        }
    }

    #[test]
    fn round_trips_byte_identically() {
        let ck = sample();
        let bytes = ck.encode();
        let back = ClusterCheckpoint::decode(&bytes).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.encode(), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn rejects_header_disagreement_and_misindexed_nodes() {
        let mut ck = sample();
        ck.total_nodes = 3;
        assert!(matches!(
            ClusterCheckpoint::decode(&ck.encode()),
            Err(SnapshotError::Corrupt(_))
        ));
        let mut ck = sample();
        ck.nodes.swap(0, 1);
        assert!(matches!(
            ClusterCheckpoint::decode(&ck.encode()),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_truncated_artifacts() {
        let bytes = sample().encode();
        assert!(ClusterCheckpoint::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(ClusterCheckpoint::decode(&bytes[..12]).is_err());
    }
}
