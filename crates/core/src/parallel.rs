//! The node-sharded parallel workload: SHRIMP's mesh as the only
//! cross-shard channel.
//!
//! This driver is the production consumer of `shrimp_sim::shard`: every
//! simulated node becomes (part of) one shard — its compute loop, mailbox,
//! and receive process all live on that shard's own `Sim` — and nodes
//! interact *only* by exchanging [`Packet`]s whose arrival times come from
//! the mesh's uncongested point-to-point latency. The minimum of that
//! latency over distinct nodes ([`MeshConfig::min_remote_latency`], two
//! transceiver crossings plus one router hop) is the conservative
//! executor's lookahead, exactly as the tentpole prescribes.
//!
//! **Shard-count invariance.** Every per-node event sequence is a pure
//! function of the node's own timeline (deterministic compute delays and
//! deterministically chosen peers/arrivals), and the summary metrics are
//! commutative reductions — wrapping sums for the checksum and counters, a
//! max for the elapsed time — so [`ParallelOutcome`] is *identical at every
//! shard count*, which the shard-identity and chaos-under-parallel tests
//! assert at the artifact-byte level.
//!
//! This driver exchanges bare [`Packet`]s; the full SHRIMP *cluster* model
//! (NIC, VMMC, notifications) rides the same engine through
//! [`ClusterBuilder::launch`](crate::ClusterBuilder::launch) and the
//! decoupled mesh transport — see [`crate::distributed`] for its workload.
//! Only fault scenarios remain pinned to the single-`Sim` path: chaos
//! couples all nodes through one RNG stream with zero lookahead (see the
//! module docs of `shrimp_sim::shard`).

use shrimp_net::{MeshConfig, NodeId};
use shrimp_nic::packet::Packet;
use shrimp_sim::rng::splitmix64;
use shrimp_sim::shard::{run_sharded, Builder, ShardConfig, ShardCtx};
use shrimp_sim::{time, Queue, Time};

use std::cell::Cell;
use std::rc::Rc;

/// Workload shape for one sharded parallel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelParams {
    /// Simulated nodes (one compute + receive process pair each).
    pub nodes: usize,
    /// Compute/communicate iterations per node.
    pub steps: u32,
    /// Payload bytes per message.
    pub payload: usize,
    /// Messages each node sends per step.
    pub fanout: usize,
    /// Simulated compute time per step (before jitter).
    pub compute: Time,
    /// Host-CPU work units burned per step (SplitMix64 rounds); this is the
    /// real work the threaded executor parallelizes.
    pub burn: u32,
    /// Workload seed; every derived choice is a pure function of it.
    pub seed: u64,
}

impl ParallelParams {
    /// The default 16-node shape at a given step count.
    pub fn with_steps(steps: u32) -> Self {
        ParallelParams {
            nodes: 16,
            steps,
            payload: 256,
            fanout: 2,
            compute: time::us(2),
            burn: 400,
            seed: 1,
        }
    }
}

/// Commutative summary of one sharded parallel run. Identical at every
/// shard count (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOutcome {
    /// Final simulated time (max over nodes).
    pub elapsed: Time,
    /// Order-independent checksum over all received messages and all
    /// compute results.
    pub checksum: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Executor events across all shards (perf accounting only — not part
    /// of the invariant artifact metrics).
    pub events: u64,
    /// Synchronization windows the conservative protocol ran (0 when
    /// `shards == 1`).
    pub windows: u64,
}

/// Contiguous block assignment of nodes to shards: node `i` of `n` on
/// shard `i * shards / n`.
pub fn shard_of(node: usize, nodes: usize, shards: usize) -> usize {
    node * shards / nodes
}

/// One round of SplitMix64 keyed by node and step — the deterministic
/// per-(node, step) choice stream (shared with the distributed cluster
/// workload).
pub(crate) fn choice(seed: u64, node: usize, step: u32, salt: u64) -> u64 {
    let mut st = seed
        ^ (node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (step as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ salt;
    splitmix64(&mut st)
}

/// Per-shard running totals, merged commutatively at harvest.
#[derive(Default, Clone, Copy)]
struct Totals {
    checksum: u64,
    messages: u64,
    bytes: u64,
}

/// Runs the workload on `shards` shards (1 = today's single-threaded
/// executor, no windows).
///
/// # Panics
///
/// Panics when `params.nodes == 0`, `shards == 0`, or `shards` exceeds the
/// node count (a shard must own at least one node).
pub fn run_parallel(params: &ParallelParams, shards: usize) -> ParallelOutcome {
    assert!(params.nodes >= 1, "workload needs at least one node");
    assert!(
        (1..=params.nodes).contains(&shards),
        "shards must be in 1..={} (one node per shard minimum), got {shards}",
        params.nodes
    );
    let mesh = MeshConfig::for_nodes(params.nodes);
    let lookahead = mesh.min_remote_latency();
    let cfg = ShardConfig::new(shards, lookahead);
    let builders: Vec<Builder<Packet, Totals>> = (0..shards)
        .map(|s| shard_builder(s, *params, mesh.clone()))
        .collect();
    let out = run_sharded(&cfg, builders);
    let mut total = Totals::default();
    for t in &out.results {
        total.checksum = total.checksum.wrapping_add(t.checksum);
        total.messages += t.messages;
        total.bytes += t.bytes;
    }
    ParallelOutcome {
        elapsed: out.elapsed,
        checksum: total.checksum,
        messages: total.messages,
        bytes: total.bytes,
        events: out.events,
        windows: out.windows,
    }
}

/// Builds one shard: every owned node gets a mailbox, a receive process,
/// and a compute/send process.
fn shard_builder(shard: usize, p: ParallelParams, mesh: MeshConfig) -> Builder<Packet, Totals> {
    Box::new(move |ctx: &ShardCtx<Packet>| {
        let owned: Vec<usize> = (0..p.nodes)
            .filter(|&n| shard_of(n, p.nodes, ctx.shards()) == shard)
            .collect();
        let totals = Rc::new(Cell::new(Totals::default()));

        // Mailboxes for owned nodes; the shard's message handler routes by
        // packet destination. Arrival-time ties are resolved upstream by the
        // deterministic (arrival, src shard, seq) merge, and the checksum is
        // commutative anyway — both layers defend the invariance.
        let mailboxes: Vec<Queue<Packet>> = owned.iter().map(|_| Queue::new()).collect();
        {
            let mailboxes = mailboxes.clone();
            let owned = owned.clone();
            ctx.on_message(move |_at, pkt: Packet| {
                let slot = owned
                    .binary_search(&pkt.dst.0)
                    .expect("packet routed to a shard that does not own its destination");
                mailboxes[slot].send(pkt);
            });
        }

        for (slot, &node) in owned.iter().enumerate() {
            spawn_receiver(ctx, &mailboxes[slot], &totals);
            spawn_sender(ctx, node, p, mesh.clone(), &totals);
        }

        let totals = Rc::clone(&totals);
        Box::new(move || totals.get())
    })
}

/// The receive process: folds every delivered packet into the shard's
/// totals with an order-independent mix.
fn spawn_receiver(ctx: &ShardCtx<Packet>, mailbox: &Queue<Packet>, totals: &Rc<Cell<Totals>>) {
    let mailbox = mailbox.clone();
    let totals = Rc::clone(totals);
    let sim = ctx.sim().clone();
    ctx.sim().spawn(async move {
        while let Some(pkt) = mailbox.recv().await {
            debug_assert!(pkt.checksum_ok());
            let mut t = totals.get();
            // Wrapping add of a per-message hash: commutative, so delivery
            // order (and therefore shard layout) cannot change it.
            let mix = choice(
                pkt.checksum ^ sim.now(),
                pkt.src.0,
                pkt.dst.0 as u32,
                pkt.sent_at,
            );
            t.checksum = t.checksum.wrapping_add(mix);
            t.messages += 1;
            t.bytes += pkt.len() as u64;
            totals.set(t);
        }
    });
}

/// The compute/send process for one node: `steps` rounds of simulated
/// compute, host-CPU burn, and deterministic-fanout sends with mesh-true
/// arrival times.
fn spawn_sender(
    ctx: &ShardCtx<Packet>,
    node: usize,
    p: ParallelParams,
    mesh: MeshConfig,
    totals: &Rc<Cell<Totals>>,
) {
    let tx = ctx.sender();
    let sim = ctx.sim().clone();
    let totals = Rc::clone(totals);
    ctx.sim().spawn(async move {
        for step in 0..p.steps {
            let jitter = choice(p.seed, node, step, 0x6a69) % 1024;
            sim.sleep(p.compute + jitter).await;

            // Real host work — the parallel executor's speedup substrate.
            // The result feeds the checksum, so it is load-bearing and
            // deterministic.
            let mut acc = choice(p.seed, node, step, 0x6275);
            for _ in 0..p.burn {
                acc = splitmix64(&mut acc);
            }
            let mut t = totals.get();
            t.checksum = t.checksum.wrapping_add(acc);
            totals.set(t);

            for f in 0..p.fanout {
                if p.nodes == 1 {
                    break;
                }
                let pick = choice(p.seed, node, step, 0x7065 + f as u64) as usize;
                let dst = (node + 1 + pick % (p.nodes - 1)) % p.nodes;
                let payload: Vec<u8> = (0..p.payload)
                    .map(|i| (choice(p.seed, node, step, i as u64) & 0xff) as u8)
                    .collect();
                let pkt = Packet::data(NodeId(node), NodeId(dst), payload, sim.now());
                let (sx, sy) = mesh.coords(NodeId(node));
                let (dx, dy) = mesh.coords(NodeId(dst));
                let hops = sx.abs_diff(dx) + sy.abs_diff(dy);
                let arrival = sim.now() + mesh.point_latency(hops, p.payload);
                tx.send(shard_of(dst, p.nodes, tx.shards()), arrival, pkt);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ParallelParams {
        ParallelParams {
            nodes: 8,
            steps: 6,
            payload: 64,
            fanout: 2,
            compute: time::us(1),
            burn: 16,
            seed: 7,
        }
    }

    #[test]
    fn outcome_is_invariant_across_shard_counts() {
        let p = small();
        let base = run_parallel(&p, 1);
        assert_eq!(base.messages, 8 * 6 * 2);
        assert_eq!(base.bytes, base.messages * 64);
        for shards in [2, 4, 8] {
            let out = run_parallel(&p, shards);
            assert!(out.windows > 0, "{shards} shards ran without windows");
            assert_eq!(
                (
                    out.elapsed,
                    out.checksum,
                    out.messages,
                    out.bytes,
                    out.events
                ),
                (
                    base.elapsed,
                    base.checksum,
                    base.messages,
                    base.bytes,
                    base.events
                ),
                "outcome diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_parallel(&small(), 2);
        let b = run_parallel(&ParallelParams { seed: 8, ..small() }, 2);
        assert_ne!(a.checksum, b.checksum);
    }

    #[test]
    fn single_node_runs_computation_only() {
        let p = ParallelParams {
            nodes: 1,
            ..small()
        };
        let out = run_parallel(&p, 1);
        assert_eq!(out.messages, 0);
        assert!(out.checksum != 0, "compute results must reach the checksum");
    }
}
