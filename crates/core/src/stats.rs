//! Per-node software-level statistics — the raw numbers behind Tables 2–4.

use std::cell::Cell;

/// Counters maintained by one node's VMMC library and system software.
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Messages sent (explicit VMMC transfers; the unit of Tables 2–4).
    pub messages_sent: Cell<u64>,
    /// Payload bytes sent by deliberate update.
    pub bytes_sent: Cell<u64>,
    /// System calls performed on the send path (Table 2 experiment).
    pub syscalls: Cell<u64>,
    /// Interrupts taken by system software.
    pub interrupts_taken: Cell<u64>,
    /// User-level notifications delivered (Table 3).
    pub notifications: Cell<u64>,
    /// Reliable-delivery retransmissions performed (chaos experiments).
    pub retransmits: Cell<u64>,
    /// Summed sim time (picoseconds) spent recovering chunks that needed at
    /// least one retransmission, from first injection to final ack — and,
    /// on the chaos-cluster path, from a peer's death declaration to the
    /// heartbeat that witnessed its rejoin.
    pub recovery_time: Cell<u64>,
    /// Summed sim time (picoseconds) from a peer's last heartbeat to this
    /// node's failure detector declaring it dead (chaos-cluster runs).
    pub detection_latency: Cell<u64>,
}

impl NodeStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn bump(cell: &Cell<u64>) {
        cell.set(cell.get() + 1);
    }

    /// Adds `v` to one counter cell — the accumulation idiom workload
    /// subtasks (failure detectors, replicas) use on their shared stats.
    pub fn add(cell: &Cell<u64>, v: u64) {
        cell.set(cell.get() + v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_zero_and_bump() {
        let s = NodeStats::new();
        assert_eq!(s.messages_sent.get(), 0);
        NodeStats::bump(&s.messages_sent);
        NodeStats::add(&s.bytes_sent, 100);
        assert_eq!(s.messages_sent.get(), 1);
        assert_eq!(s.bytes_sent.get(), 100);
    }
}
