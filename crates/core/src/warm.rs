//! Warm-start runs of the distributed workload: run the warmup prefix
//! once, checkpoint the machine at the drain barrier, and fork the
//! checkpoint into any number of design-knob settings — each resumed run
//! pays only the post-warmup steps.
//!
//! # Identity
//!
//! Determinism makes warm and cold runs indistinguishable *by
//! construction*: a "cold" run of the warm experiment
//! ([`run_cold`]) executes phase A (warmup, always
//! [`DesignConfig::as_built`]), encodes the checkpoint, decodes it, and
//! runs phase B — the very path a warm run takes with a checkpoint loaded
//! from disk. Both phases are shard-count-invariant, so a checkpoint
//! captured at one shard count restores onto any other
//! (`crates/harness/tests/shard_identity.rs` pins this at the artifact
//! byte level).
//!
//! # Quiesce and verification
//!
//! Phase A's capture happens at the shard engine's global drain barrier
//! (no packet in flight), and phase B's restore replays the allocation
//! preamble before [`Cluster::restore_node`](crate::Cluster::restore_node)
//! verifies the replayed cursors and table images against the captured
//! ones — a resuming run whose shape diverged from the checkpoint fails
//! loudly. The fingerprint [`WarmParams::tag`] guards the same boundary at
//! the artifact level; phase-B knobs are deliberately outside it.

use std::sync::Arc;

use shrimp_sim::shard::Shards;
use shrimp_sim::{SnapshotError, SnapshotWriter};

use crate::checkpoint::ClusterCheckpoint;
use crate::cluster::{Cluster, LaunchOutcome, NodeProgram};
use crate::config::DesignConfig;
use crate::distributed::{finish_node, setup_node, work_step, DistributedParams};
use crate::vmmc::Vmmc;

/// Shape of a warm-start experiment: the distributed workload split at a
/// warmup boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmParams {
    /// The full workload shape (phase A and phase B together run exactly
    /// `base.steps` rounds plus the closing round).
    pub base: DistributedParams,
    /// Rounds in the warmup prefix (phase A). Must not exceed
    /// `base.steps`.
    pub warmup: u32,
}

impl WarmParams {
    /// Splits a workload at the midpoint: half the rounds are warmup.
    pub fn split(base: DistributedParams) -> Self {
        WarmParams {
            base,
            warmup: base.steps / 2,
        }
    }

    /// The checkpoint fingerprint of this shape: everything phase A
    /// depends on. Design knobs are deliberately absent — one checkpoint
    /// forks into every phase-B knob setting.
    pub fn tag(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_str("warm-distributed");
        w.put_u64(self.base.nodes as u64);
        w.put_u64(u64::from(self.base.steps));
        w.put_u64(self.base.payload as u64);
        w.put_u64(self.base.compute);
        w.put_u64(self.base.seed);
        w.put_u64(u64::from(self.warmup));
        w.finish()
    }
}

/// Runs phase A — the warmup prefix under [`DesignConfig::as_built`] —
/// and captures the machine at the drain barrier.
///
/// The checkpoint is a pure function of `params` (shard-count-invariant
/// down to its encoded bytes).
///
/// # Panics
///
/// Panics when `params.warmup > params.base.steps` or the launch fails.
pub fn warm_checkpoint(params: &WarmParams, shards: Shards) -> ClusterCheckpoint {
    assert!(
        params.warmup <= params.base.steps,
        "warmup prefix exceeds the workload's round count"
    );
    let p = params.base;
    let warmup = params.warmup;
    let program: NodeProgram = Arc::new(move |vmmc: Vmmc| {
        Box::pin(async move {
            let setup = setup_node(&vmmc, &p);
            for step in 0..warmup {
                work_step(&vmmc, &p, &setup, step).await;
            }
            0
        })
    });
    let out = Cluster::builder(p.nodes)
        .config(DesignConfig::as_built())
        .shards(shards)
        .capture_state(true)
        .launch(program);
    ClusterCheckpoint {
        time: out.elapsed,
        total_nodes: p.nodes,
        tag: params.tag(),
        nodes: out.node_states.expect("capture_state was requested"),
    }
}

/// Runs phase B — steps `[warmup, steps)` plus the closing round — from a
/// checkpoint, under any design configuration and shard count.
///
/// Every node replays the allocation preamble, restores its captured
/// state (verified — see
/// [`Cluster::restore_node`](crate::Cluster::restore_node)), and resumes
/// with its clock at the checkpoint's quiesce time.
///
/// # Errors
///
/// [`SnapshotError::FingerprintMismatch`] when the checkpoint was
/// produced by a different workload shape than `params`.
///
/// # Panics
///
/// Panics when the launch fails or a node's replayed preamble diverges
/// from the captured state.
pub fn run_warm(
    params: &WarmParams,
    cfg: DesignConfig,
    shards: Shards,
    ckpt: &ClusterCheckpoint,
) -> Result<LaunchOutcome, SnapshotError> {
    if ckpt.tag != params.tag() || ckpt.total_nodes != params.base.nodes {
        return Err(SnapshotError::FingerprintMismatch);
    }
    let p = params.base;
    let warmup = params.warmup;
    let state = Arc::new(ckpt.clone());
    let program: NodeProgram = Arc::new(move |vmmc: Vmmc| {
        let state = Arc::clone(&state);
        Box::pin(async move {
            let me = vmmc.node_id().0;
            // Replay the preamble, then restore before the first await:
            // no packet can arrive earlier (the mesh latency is positive
            // and every peer starts at the same resumed clock).
            let setup = setup_node(&vmmc, &p);
            vmmc.cluster().restore_node(me, &state.nodes[me]);
            for step in warmup..p.steps {
                work_step(&vmmc, &p, &setup, step).await;
            }
            finish_node(&vmmc, &p, &setup).await
        })
    });
    Ok(Cluster::builder(p.nodes)
        .config(cfg)
        .shards(shards)
        .resume_at(ckpt.time)
        .launch(program))
}

/// The cold path of the warm experiment: phase A, encode, decode, phase B
/// — byte-for-byte the pipeline a warm run takes with the checkpoint
/// loaded from disk, so cold and warm rows are identical by construction.
/// Returns the phase-B outcome and the encoded checkpoint artifact.
pub fn run_cold(
    params: &WarmParams,
    cfg: DesignConfig,
    shards: Shards,
) -> (LaunchOutcome, Vec<u8>) {
    let bytes = warm_checkpoint(params, shards).encode();
    let ckpt = ClusterCheckpoint::decode(&bytes).expect("self-produced checkpoint decodes");
    let out = run_warm(params, cfg, shards, &ckpt).expect("self-produced checkpoint matches");
    (out, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_sim::{time, Time};

    fn small() -> WarmParams {
        WarmParams::split(DistributedParams {
            nodes: 8,
            steps: 6,
            payload: 64,
            compute: time::us(1),
            seed: 7,
        })
    }

    fn fields(o: &LaunchOutcome) -> (Time, Vec<u64>, u64, u64, u64, u64, u64, u64) {
        (
            o.elapsed,
            o.node_results.clone(),
            o.messages,
            o.notifications,
            o.interrupts,
            o.syscalls,
            o.net_packets,
            o.net_bytes,
        )
    }

    #[test]
    fn checkpoint_bytes_are_shard_invariant() {
        let p = small();
        let base = warm_checkpoint(&p, Shards::Fixed(1)).encode();
        for shards in [2, 4] {
            assert_eq!(
                warm_checkpoint(&p, Shards::Fixed(shards)).encode(),
                base,
                "checkpoint diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn warm_equals_cold_across_shard_counts() {
        let p = small();
        let cfg = DesignConfig::as_built();
        let (cold, bytes) = run_cold(&p, cfg.clone(), Shards::Fixed(1));
        let ckpt = ClusterCheckpoint::decode(&bytes).unwrap();
        for shards in [1, 2, 4] {
            let warm = run_warm(&p, cfg.clone(), Shards::Fixed(shards), &ckpt).unwrap();
            assert_eq!(
                fields(&warm),
                fields(&cold),
                "warm run diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn one_checkpoint_forks_into_different_knobs() {
        let p = small();
        let ckpt = warm_checkpoint(&p, Shards::Fixed(2));
        let base = run_warm(&p, DesignConfig::as_built(), Shards::Fixed(2), &ckpt).unwrap();
        let mut cfg = DesignConfig::as_built();
        cfg.syscall_send = true;
        let syscall = run_warm(&p, cfg, Shards::Fixed(2), &ckpt).unwrap();
        assert!(
            syscall.syscalls > base.syscalls,
            "the forked knob had no effect"
        );
        assert_eq!(
            syscall.node_results, base.node_results,
            "knobs must not change the workload's data"
        );
    }

    #[test]
    fn resumed_clock_starts_at_the_quiesce_time() {
        let p = small();
        let ckpt = warm_checkpoint(&p, Shards::Fixed(1));
        assert!(ckpt.time > 0);
        let warm = run_warm(&p, DesignConfig::as_built(), Shards::Fixed(2), &ckpt).unwrap();
        assert!(
            warm.elapsed > ckpt.time,
            "phase B must run past the resumed clock"
        );
    }

    #[test]
    fn mismatched_fingerprint_is_refused() {
        let p = small();
        let ckpt = warm_checkpoint(&p, Shards::Fixed(1));
        let other = WarmParams {
            base: DistributedParams { seed: 8, ..p.base },
            ..p
        };
        assert!(matches!(
            run_warm(&other, DesignConfig::as_built(), Shards::Fixed(1), &ckpt),
            Err(SnapshotError::FingerprintMismatch)
        ));
    }
}
