//! Virtual Memory-Mapped Communication (VMMC) — the SHRIMP system's
//! communication model and user-level library (§2.2–2.3 of the paper).
//!
//! VMMC's primitives:
//!
//! * **Export / import** — a receiving process *exports* a region of its
//!   virtual memory as a receive buffer (pages pinned, IPT configured); any
//!   process with permission *imports* it, obtaining a *proxy receive
//!   buffer* (OPT entries pointing at the remote physical pages).
//! * **Deliberate update** — explicit transfers from local memory into a
//!   proxy buffer, initiated by user-level DMA with a two-instruction
//!   sequence; no system call, no kernel copy (§4.3).
//! * **Automatic update** — local virtual memory *bound* to an imported
//!   buffer so every store propagates as a side effect of the write; bound
//!   pages are write-through and snooped by the NIC (§4.2).
//! * **Notifications** — optional per-buffer control transfers to a
//!   user-level handler on message arrival, with queueing and
//!   block/unblock, similar to Unix signals (§4.4).
//!
//! The [`DesignConfig`] knobs re-run the paper's what-if experiments:
//! forcing a system call before every send (Table 2), forcing an interrupt
//! on every message arrival (Table 4), removing automatic-update combining
//! (§4.5.1), shrinking the outgoing FIFO (§4.5.2), and deepening the
//! deliberate-update request queue (§4.5.3).
//!
//! # Example
//!
//! ```
//! use shrimp_core::{Cluster, DesignConfig};
//!
//! let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
//! let a = cluster.vmmc(0);
//! let b = cluster.vmmc(1);
//!
//! // Node 1 exports a one-page receive buffer; node 0 imports and sends.
//! let recv = b.space().alloc(1);
//! let export = b.export(recv, 4096);
//! let proxy = a.import(export);
//!
//! let src = a.space().alloc(1);
//! a.space().write_raw(src, b"greetings");
//! let sim = cluster.sim().clone();
//! let h = sim.spawn(async move {
//!     a.send(src, &proxy, 0, 9).await;
//! });
//! let (t, _) = cluster.run_until_complete(vec![h]);
//! assert!(t > 0);
//! let mut got = [0u8; 9];
//! b.space().read(recv, &mut got);
//! assert_eq!(&got, b"greetings");
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod cpu;
pub mod distributed;
pub mod parallel;
pub mod report;
pub mod ring;
pub mod stats;
pub mod vmmc;
pub mod warm;

pub use checkpoint::{ClusterCheckpoint, NodeState};
pub use cluster::{Cluster, ClusterBuilder, ClusterFlit, LaunchOutcome, NodeProgram, Notification};
pub use config::DesignConfig;
pub use cpu::Cpu;
pub use distributed::{
    chaos_node_program, node_program, run_chaos_distributed, run_distributed, DistributedParams,
    HeartbeatConfig,
};
pub use parallel::{run_parallel, shard_of, ParallelOutcome, ParallelParams};
pub use report::{ClusterReport, NodeReport};
pub use ring::{connect_ring, RingBulk, RingFrame, RingReceiver, RingSender};
pub use shrimp_faults::{node_backoff, FaultScenario, NodeCrash, Reliability, ShrimpError};
pub use shrimp_net::NodeId;
pub use shrimp_sim::shard::Shards;
pub use stats::NodeStats;
pub use vmmc::{ExportId, ImportBuilder, ProxyBuffer, SendTicket, UpdatePolicy, Vmmc};
pub use warm::{run_cold, run_warm, warm_checkpoint, WarmParams};
