//! Framed receive rings over VMMC — the building block of the NX and
//! stream-sockets libraries.
//!
//! A ring is a receive buffer exported by the consumer and imported by the
//! single producer. Frames carry a sequence number in both header and
//! trailer; because deliberate update delivers a message's chunks in
//! ascending offset order (and packets between one node pair stay in order
//! on the oblivious mesh), a matched trailer guarantees the whole frame has
//! landed — the polling receive discipline that lets these libraries avoid
//! receive interrupts entirely (§4.4).
//!
//! Flow control costs no messages: the consumer's read cursor is a word
//! bound for **automatic update** back to the producer, so credits return as
//! a side effect of a single store.

use std::cell::Cell;

use shrimp_mem::{Vaddr, PAGE_SIZE};

use crate::vmmc::{ExportId, ProxyBuffer, Vmmc};

/// Frame header bytes: `[seq-word u64][tag u32][len u32]`.
pub const FRAME_HDR: usize = 16;
/// Frame trailer bytes: `[seq-word u64]`.
pub const FRAME_TRL: usize = 8;

/// Header sequence words are the sequence number XORed with this magic, so
/// stale payload bytes recycled at a ring position (small integers are
/// common in payloads) cannot alias the next expected frame. The trailer
/// uses a different magic, so a header can never pass as a trailer.
const HDR_MAGIC: u64 = 0x5348_524D_5000_0000; // "SHRMP"
/// Trailer magic; see [`HDR_MAGIC`].
const TRL_MAGIC: u64 = 0xA5A5_5A5A_0000_0000;

/// Bulk data transfer mechanism for ring frames (the §4.2 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingBulk {
    /// User-level DMA deliberate-update transfers (the library default).
    #[default]
    Deliberate,
    /// Stores through an automatic-update binding covering the ring.
    Automatic,
}

/// A frame pulled from a ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingFrame {
    /// Application tag (message type, stream flags, ...).
    pub tag: u32,
    /// Payload bytes.
    pub data: Vec<u8>,
}

/// Pads a payload length to the 8-byte frame alignment.
pub fn pad8(len: usize) -> usize {
    len.div_ceil(8) * 8
}

/// Ring bytes occupied by a frame with `len` payload bytes.
pub fn frame_len(len: usize) -> usize {
    FRAME_HDR + pad8(len) + FRAME_TRL
}

/// Producer end of a ring.
#[derive(Debug)]
pub struct RingSender {
    vm: Vmmc,
    proxy: ProxyBuffer,
    au_image: Option<Vaddr>,
    staging: Vaddr,
    capacity: usize,
    write_pos: Cell<u64>,
    peer_cursor: Vaddr,
    next_seq: Cell<u64>,
    frames: Cell<u64>,
    bytes: Cell<u64>,
}

/// Consumer end of a ring.
#[derive(Debug)]
pub struct RingReceiver {
    vm: Vmmc,
    export: ExportId,
    ring: Vaddr,
    capacity: usize,
    read_pos: Cell<u64>,
    cursor_out: Vaddr,
    next_seq: Cell<u64>,
    frames: Cell<u64>,
}

/// Builds a ring carrying frames from `producer` to `consumer`.
///
/// Performs the export/import/bind handshakes synchronously (start-up work
/// the paper does not measure).
///
/// # Panics
///
/// Panics unless `capacity` is a power-of-two multiple of the page size.
pub fn connect_ring(
    producer: &Vmmc,
    consumer: &Vmmc,
    capacity: usize,
    bulk: RingBulk,
) -> (RingSender, RingReceiver) {
    assert!(
        capacity.is_power_of_two() && capacity.is_multiple_of(PAGE_SIZE),
        "ring capacity must be a power-of-two multiple of the page size"
    );
    // Consumer side: the ring itself.
    let ring = consumer.space().alloc(capacity / PAGE_SIZE);
    let ring_export = consumer.export(ring, capacity);
    let ring_proxy = producer.import(ring_export);
    let _ = &ring_export;
    // Producer side: the cursor word the consumer writes back via AU.
    let cursor_page = producer.space().alloc(1);
    let cursor_export = producer.export(cursor_page, PAGE_SIZE);
    let cursor_proxy = consumer.import(cursor_export);
    let cursor_out = consumer.space().alloc(1);
    consumer.bind(cursor_out, &cursor_proxy, 0, PAGE_SIZE, false, false);
    // Optional AU image of the ring on the producer.
    let au_image = match bulk {
        RingBulk::Deliberate => None,
        RingBulk::Automatic => {
            let img = producer.space().alloc(capacity / PAGE_SIZE);
            producer.bind(img, &ring_proxy, 0, capacity, true, false);
            Some(img)
        }
    };
    let staging = producer.space().alloc(capacity / PAGE_SIZE);
    (
        RingSender {
            vm: producer.clone(),
            proxy: ring_proxy,
            au_image,
            staging,
            capacity,
            write_pos: Cell::new(0),
            peer_cursor: cursor_page,
            next_seq: Cell::new(1),
            frames: Cell::new(0),
            bytes: Cell::new(0),
        },
        RingReceiver {
            vm: consumer.clone(),
            export: ring_export,
            ring,
            capacity,
            read_pos: Cell::new(0),
            cursor_out,
            next_seq: Cell::new(1),
            frames: Cell::new(0),
        },
    )
}

impl RingSender {
    /// Largest payload a single frame may carry (frames are limited to half
    /// the ring so flow control can always make progress).
    pub fn max_payload(&self) -> usize {
        self.capacity / 2 - FRAME_HDR - FRAME_TRL
    }

    /// Frames sent.
    pub fn frames_sent(&self) -> u64 {
        self.frames.get()
    }

    /// Payload bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes.get()
    }

    /// Sends one frame, blocking on ring space. Charges the user-level
    /// staging copy (ordinary library path).
    pub async fn send_frame(&self, tag: u32, data: &[u8]) {
        self.send_inner(tag, data, true, false).await;
    }

    /// Sends one frame and requests a user-level notification at the
    /// consumer on arrival — the upcall style SVM protocol requests use
    /// (§4.4). The consumer must have enabled notifications on
    /// [`RingReceiver::export`].
    pub async fn send_frame_notify(&self, tag: u32, data: &[u8]) {
        self.send_inner(tag, data, true, true).await;
    }

    /// Sends one frame without the staging-copy charge — the sockets
    /// library's non-standard block-transfer extension (§3, DFS-sockets).
    pub async fn send_frame_zero_copy(&self, tag: u32, data: &[u8]) {
        self.send_inner(tag, data, false, false).await;
    }

    async fn send_inner(&self, tag: u32, data: &[u8], charge_copy: bool, notify: bool) {
        let fl = frame_len(data.len());
        assert!(
            fl <= self.capacity / 2,
            "frame of {} bytes exceeds half the {}-byte ring",
            data.len(),
            self.capacity
        );
        let cap = self.capacity as u64;
        // Flow control: watch the AU-propagated consumer cursor.
        let gate = self.vm.write_gate(self.peer_cursor);
        loop {
            let consumed = self.vm.read_u64(self.peer_cursor);
            if self.write_pos.get() + fl as u64 - consumed <= cap {
                break;
            }
            gate.wait().await;
        }

        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        self.frames.set(self.frames.get() + 1);
        self.bytes.set(self.bytes.get() + data.len() as u64);

        let mut frame = Vec::with_capacity(fl);
        frame.extend_from_slice(&(seq ^ HDR_MAGIC).to_le_bytes());
        frame.extend_from_slice(&tag.to_le_bytes());
        frame.extend_from_slice(&(data.len() as u32).to_le_bytes());
        frame.extend_from_slice(data);
        frame.resize(FRAME_HDR + pad8(data.len()), 0);
        frame.extend_from_slice(&(seq ^ TRL_MAGIC).to_le_bytes());

        let pos = (self.write_pos.get() % cap) as usize;
        self.write_pos.set(self.write_pos.get() + fl as u64);

        match self.au_image {
            None => {
                if charge_copy {
                    self.vm.local_copy(fl).await;
                }
                self.vm.space().write_raw(self.staging, &frame);
                let first = fl.min(self.capacity - pos);
                if first < fl {
                    self.vm.send(self.staging, &self.proxy, pos, first).await;
                    if notify {
                        self.vm
                            .send_notify(self.staging.add(first as u64), &self.proxy, 0, fl - first)
                            .await;
                    } else {
                        self.vm
                            .send(self.staging.add(first as u64), &self.proxy, 0, fl - first)
                            .await;
                    }
                } else if notify {
                    self.vm
                        .send_notify(self.staging, &self.proxy, pos, first)
                        .await;
                } else {
                    self.vm.send(self.staging, &self.proxy, pos, first).await;
                }
            }
            Some(img) => {
                assert!(!notify, "AU bulk frames cannot request notifications");
                let first = fl.min(self.capacity - pos);
                self.vm.store(img.add(pos as u64), &frame[..first]).await;
                if first < fl {
                    self.vm.store(img, &frame[first..]).await;
                }
                self.vm.flush_au();
            }
        }
    }
}

impl RingReceiver {
    /// The ring's export id, for enabling arrival notifications.
    pub fn export(&self) -> ExportId {
        self.export
    }

    /// Frames received.
    pub fn frames_received(&self) -> u64 {
        self.frames.get()
    }

    fn at(&self, off: usize) -> Vaddr {
        self.ring.add((off % self.capacity) as u64)
    }

    /// Non-blocking: pulls the head frame if it has fully arrived. The
    /// caller must [`RingReceiver::ack`] (possibly batched) to return
    /// credits.
    pub fn try_recv(&self) -> Option<RingFrame> {
        let pos = (self.read_pos.get() % self.capacity as u64) as usize;
        let seq = self.next_seq.get();
        if self.vm.read_u64(self.at(pos)) != seq ^ HDR_MAGIC {
            return None;
        }
        let mut w = [0u8; 8];
        self.vm.read(self.at(pos + 8), &mut w);
        let tag = u32::from_le_bytes(w[0..4].try_into().unwrap());
        let len = u32::from_le_bytes(w[4..8].try_into().unwrap()) as usize;
        let fl = frame_len(len);
        // The header word and the tag/len word may arrive in different
        // deliberate-update chunks (a destination page boundary can fall
        // between them), so `len` may not be valid yet. An implausible
        // length, or a trailer that does not carry this sequence number's
        // magic, both mean "frame not fully here" — stale trailer bytes can
        // never alias, because sequence numbers are never reused and the
        // trailer magic differs from the header magic.
        if fl > self.capacity / 2 {
            return None;
        }
        if self.vm.read_u64(self.at(pos + fl - FRAME_TRL)) != seq ^ TRL_MAGIC {
            return None; // payload still in flight
        }
        let mut data = vec![0u8; len];
        let start = (pos + FRAME_HDR) % self.capacity;
        let first = len.min(self.capacity - start);
        self.vm.read(self.at(start), &mut data[..first]);
        if first < len {
            self.vm.read(self.ring, &mut data[first..]);
        }
        self.read_pos.set(self.read_pos.get() + fl as u64);
        self.next_seq.set(seq + 1);
        self.frames.set(self.frames.get() + 1);
        Some(RingFrame { tag, data })
    }

    /// Returns the read cursor to the producer (one AU store).
    pub async fn ack(&self) {
        self.vm
            .store_u64(self.cursor_out, self.read_pos.get())
            .await;
        self.vm.flush_au();
    }

    /// Blocking receive of the next frame; acks automatically.
    pub async fn recv(&self) -> RingFrame {
        let gate = self.vm.any_write_gate();
        loop {
            if let Some(f) = self.try_recv() {
                self.ack().await;
                return f;
            }
            gate.wait().await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, DesignConfig};

    fn pair(bulk: RingBulk, capacity: usize) -> (Cluster, RingSender, RingReceiver) {
        let cluster = Cluster::builder(2).config(DesignConfig::default()).build();
        let a = cluster.vmmc(0);
        let b = cluster.vmmc(1);
        let (tx, rx) = connect_ring(&a, &b, capacity, bulk);
        (cluster, tx, rx)
    }

    #[test]
    fn frames_roundtrip_in_order() {
        let (cluster, tx, rx) = pair(RingBulk::Deliberate, 8192);
        let h = cluster.sim().spawn(async move {
            for i in 0..20u32 {
                tx.send_frame(i, &vec![i as u8; (i * 37 % 300) as usize + 1])
                    .await;
            }
        });
        let hr = cluster.sim().spawn(async move {
            let mut tags = Vec::new();
            for _ in 0..20 {
                let f = rx.recv().await;
                assert_eq!(f.data, vec![f.tag as u8; f.data.len()]);
                tags.push(f.tag);
            }
            tags
        });
        cluster.run_until_complete(vec![h]);
        assert_eq!(hr.try_take().unwrap(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn wrapping_frames_preserved() {
        let (cluster, tx, rx) = pair(RingBulk::Deliberate, 4096);
        let h = cluster.sim().spawn(async move {
            for i in 0..30u32 {
                // 1000-byte frames in a 4096 ring: wraps repeatedly.
                let payload: Vec<u8> = (0..1000).map(|j| ((i as usize + j) % 256) as u8).collect();
                tx.send_frame(i, &payload).await;
            }
        });
        let hr = cluster.sim().spawn(async move {
            for i in 0..30u32 {
                let f = rx.recv().await;
                assert_eq!(f.tag, i);
                let expect: Vec<u8> = (0..1000).map(|j| ((i as usize + j) % 256) as u8).collect();
                assert_eq!(f.data, expect);
            }
            true
        });
        cluster.run_until_complete(vec![h]);
        assert_eq!(hr.try_take(), Some(true));
    }

    #[test]
    fn automatic_bulk_equivalent_data() {
        let (cluster, tx, rx) = pair(RingBulk::Automatic, 8192);
        let h = cluster.sim().spawn(async move {
            tx.send_frame(9, b"via automatic update").await;
        });
        let hr = cluster.sim().spawn(async move { rx.recv().await });
        cluster.run_until_complete(vec![h]);
        let f = hr.try_take().unwrap();
        assert_eq!(
            (f.tag, f.data.as_slice()),
            (9, b"via automatic update".as_slice())
        );
    }

    #[test]
    fn zero_copy_send_skips_copy_charge() {
        let run = |zero_copy: bool| {
            let (cluster, tx, rx) = pair(RingBulk::Deliberate, 65536);
            let h = cluster.sim().spawn(async move {
                let data = vec![1u8; 16384];
                for _ in 0..8 {
                    if zero_copy {
                        tx.send_frame_zero_copy(1, &data).await;
                    } else {
                        tx.send_frame(1, &data).await;
                    }
                }
            });
            let hr = cluster.sim().spawn(async move {
                for _ in 0..8 {
                    rx.recv().await;
                }
            });
            let (t, _) = cluster.run_until_complete(vec![h]);
            drop(hr); // receiver checked via run_until_complete
            t
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn header_split_across_page_boundary_is_safe() {
        // Position a frame so the destination page boundary falls between
        // its header word and its tag/len word: the header chunk arrives
        // first, and a receiver polling between the chunks must treat the
        // frame as not-yet-arrived (regression test for the stale-length
        // desync bug).
        let (cluster, tx, rx) = pair(RingBulk::Deliberate, 8192);
        let h = cluster.sim().spawn(async move {
            // First frame: frame_len = 24 + 4064 = 4088, so the second
            // frame's header starts at ring offset 4088 and its tag/len
            // word crosses the 4096 page boundary.
            let a: Vec<u8> = (0..4064u32).map(|i| (i % 251) as u8).collect();
            tx.send_frame(1, &a).await;
            let b: Vec<u8> = (0..100u32).map(|i| (i % 13) as u8).collect();
            tx.send_frame(2, &b).await;
        });
        let hr = cluster.sim().spawn(async move {
            // recv() polls on every incoming write, so it runs try_recv
            // between the split chunks' arrivals.
            let f1 = rx.recv().await;
            let f2 = rx.recv().await;
            (f1, f2)
        });
        cluster.run_until_complete(vec![h]);
        let (f1, f2) = hr.try_take().unwrap();
        assert_eq!(f1.tag, 1);
        assert_eq!(f1.data.len(), 4064);
        assert_eq!(f2.tag, 2);
        assert_eq!(
            f2.data,
            (0..100u32).map(|i| (i % 13) as u8).collect::<Vec<_>>()
        );
    }

    #[test]
    fn frame_len_accounts_padding() {
        assert_eq!(frame_len(0), 24);
        assert_eq!(frame_len(1), 32);
        assert_eq!(frame_len(8), 32);
        assert_eq!(frame_len(9), 40);
    }
}
