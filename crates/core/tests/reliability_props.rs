//! Property tests for the reliable VMMC delivery layer: under arbitrary
//! seeded drop/corrupt/duplicate schedules every payload is applied to
//! receiver memory exactly once, and the retransmission backoff is
//! monotone and capped.

use shrimp_core::{Cluster, DesignConfig, FaultScenario, Reliability, ShrimpError};
use shrimp_faults::{backoff_timeout, node_backoff};
use shrimp_mem::PAGE_SIZE;
use shrimp_testkit::prop::*;
use shrimp_testkit::{prop_assert, prop_assert_eq, props};

props! {
    cases = 16;

    /// Every message lands intact and is DMA'd exactly once, whatever mix
    /// of packet loss, in-flight corruption, and duplication the plane
    /// throws at the stream (duplicates and nack-triggered retransmits
    /// also cover stale out-of-order arrivals).
    fn reliable_delivery_is_exactly_once(
        messages in vec_of(zip(usize_in(1..256), any_u8()), 1..10),
        drop in u8_in(0..30),
        corrupt in u8_in(0..15),
        dup in u8_in(0..40),
        seed in any_u64(),
    ) {
        let cfg = DesignConfig {
            reliability: Reliability::on(),
            faults: FaultScenario {
                seed,
                drop_pct: drop,
                corrupt_pct: corrupt,
                duplicate_pct: dup,
                ..FaultScenario::none()
            },
            ..DesignConfig::default()
        };
        let cluster = Cluster::builder(2).config(cfg).build();
        let a = cluster.vmmc(0);
        let b = cluster.vmmc(1);
        let recv = b.space().alloc(1);
        let export = b.export(recv, PAGE_SIZE);
        let proxy = a.import(export);
        let src = a.space().alloc(1);

        // Message i lives in its own 256-byte slot, so each is one chunk.
        let msgs = messages.clone();
        let a2 = a.clone();
        let h = cluster.sim().spawn(async move {
            for (i, (len, fill)) in msgs.into_iter().enumerate() {
                a2.space().write_raw(src, &vec![fill; len]);
                a2.try_send(src, &proxy, i * 256, len).await?;
            }
            Ok::<(), ShrimpError>(())
        });
        let (_, out) = cluster.run_until_complete(vec![h]);
        prop_assert!(out[0].is_ok(), "delivery failed: {:?}", out[0]);

        for (i, (len, fill)) in messages.iter().enumerate() {
            let mut got = vec![0u8; *len];
            b.space().read(recv.add((i * 256) as u64), &mut got);
            prop_assert_eq!(&got, &vec![*fill; *len], "message {} damaged", i);
        }
        // Exactly once: of everything that reached the receiver's ingress,
        // corrupt arrivals were nacked and duplicates re-acked without DMA,
        // leaving precisely one applied packet per message.
        let c = cluster.nic(1).counters();
        prop_assert_eq!(c.protection_drops.get(), 0);
        prop_assert_eq!(
            c.packets_received.get() - c.corrupt_detected.get() - c.dup_suppressed.get(),
            messages.len() as u64,
            "a payload was applied zero or multiple times"
        );
    }

    /// The retransmission backoff never exceeds its cap and never shrinks
    /// as attempts accumulate (including shift-overflow territory).
    fn backoff_is_capped_and_monotone(
        base in u64_in(1..10_000_000_000),
        cap in u64_in(1..100_000_000_000),
        attempt in u32_in(0..80),
    ) {
        let here = backoff_timeout(base, cap, attempt);
        let next = backoff_timeout(base, cap, attempt + 1);
        prop_assert!(here <= cap, "timeout above cap");
        prop_assert!(next >= here, "backoff shrank between attempts");
        prop_assert_eq!(backoff_timeout(base, cap, 0), base.min(cap));
    }

    /// The per-node jittered backoff (the failure detector's probe
    /// schedule) is a pure function of `(seed, node, attempt)`, stays
    /// within one base of the pure exponential schedule, and two distinct
    /// nodes never replay each other's full schedule — the property that
    /// keeps their probes from colliding in lockstep.
    fn node_backoff_is_deterministic_bounded_and_distinct(
        seed in any_u64(),
        node_a in usize_in(0..512),
        node_gap in usize_in(1..512),
        base in u64_in(1..10_000_000_000),
        cap in u64_in(1..100_000_000_000),
        attempt in u32_in(0..60),
    ) {
        let node_b = node_a + node_gap;
        let here = node_backoff(seed, node_a, attempt, base, cap);
        prop_assert_eq!(
            here,
            node_backoff(seed, node_a, attempt, base, cap),
            "same stream drew a different value"
        );
        let pure = backoff_timeout(base, cap, attempt);
        prop_assert!(here >= pure, "jitter went negative");
        prop_assert!(here - pure < base, "jitter exceeded one base");

        // Distinctness: across the first attempts, the two nodes' schedules
        // must differ somewhere (a full lockstep replay is what syncs
        // recovery probes and herds them onto the network together). With
        // base == 1 the jitter range collapses to {0} and schedules are
        // legitimately identical, so the property starts at base 2.
        if base > 1 {
            let differs = (0..8u32).any(|a| {
                node_backoff(seed, node_a, a, base, cap) != node_backoff(seed, node_b, a, base, cap)
            });
            prop_assert!(differs, "nodes {} and {} replay identical backoff schedules", node_a, node_b);
        }
    }
}
