//! The seeded fault plane that turns a scenario into individual faults.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use shrimp_sim::rng::{rng_for, rng_for_entity, SimRng};
use shrimp_sim::Time;

use crate::scenario::{FaultScenario, NodeCrash};

/// What the fault plane decided to do to one mesh packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Deliver normally.
    Deliver,
    /// Drop silently.
    Drop,
    /// Deliver with a corrupted payload (and a stale checksum).
    Corrupt,
    /// Deliver twice.
    Duplicate,
}

/// Counts of faults actually injected (as opposed to configured rates).
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Packets dropped by the plane.
    pub drops: Cell<u64>,
    /// Packets corrupted by the plane.
    pub corrupts: Cell<u64>,
    /// Packets duplicated by the plane.
    pub dups: Cell<u64>,
    /// Packet sends refused because a failed link made the destination
    /// unreachable.
    pub link_rejects: Cell<u64>,
    /// Packets detoured around a failed link.
    pub reroutes: Cell<u64>,
    /// Node crashes injected (one per crash onset, not per restart).
    pub crashes: Cell<u64>,
}

impl FaultStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.drops.get()
            + self.corrupts.get()
            + self.dups.get()
            + self.link_rejects.get()
            + self.reroutes.get()
            + self.crashes.get()
    }
}

/// Where the plane's randomness comes from.
///
/// `Shared` is the PR-3 design: one `rng_for("faults", seed)` stream drawn in
/// global packet order. That only replays on a single-`Sim` run, because the
/// draw order couples every node; the committed chaos baselines are pinned to
/// it, so it stays byte-for-byte as-is.
///
/// `PerEntity` derives one independent stream per *directed mesh edge*
/// `(src, dst)` lazily on first use. A packet's fate then depends only on how
/// many packets that edge carried before it — a per-edge count that is
/// invariant under shard placement — so the plane partitions across shards
/// with byte-identical fates at any shard count. Per-node faults (FIFO
/// stalls, pauses, crashes) are fixed windows that draw nothing, so they are
/// trivially partitionable in both modes.
enum RngMode {
    Shared(RefCell<SimRng>),
    PerEntity {
        seed: u64,
        edges: RefCell<HashMap<(usize, usize), SimRng>>,
    },
}

struct PlaneInner {
    scenario: FaultScenario,
    rng: RngMode,
    stats: FaultStats,
}

impl RngMode {
    /// Runs `f` on the stream that owns randomness for edge `(src, dst)`.
    fn with_edge<T>(&self, src: usize, dst: usize, f: impl FnOnce(&mut SimRng) -> T) -> T {
        match self {
            RngMode::Shared(rng) => f(&mut rng.borrow_mut()),
            RngMode::PerEntity { seed, edges } => {
                let mut edges = edges.borrow_mut();
                let rng = edges.entry((src, dst)).or_insert_with(|| {
                    let edge = ((src as u64) << 32) | dst as u64;
                    rng_for_entity("faults", *seed, edge)
                });
                f(rng)
            }
        }
    }
}

/// A shared handle to one run's fault-injection state.
///
/// Cloned into the network and every NIC; every random decision comes from
/// one RNG stream seeded by `rng_for("faults", scenario.seed)`, and the
/// single-threaded discrete-event executor makes the draw order — and hence
/// the whole run — deterministic.
#[derive(Clone)]
pub struct FaultPlane {
    inner: Rc<PlaneInner>,
}

impl std::fmt::Debug for FaultPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlane")
            .field("scenario", &self.inner.scenario)
            .finish()
    }
}

impl FaultPlane {
    /// Creates a plane for `scenario` on the legacy shared RNG stream.
    ///
    /// Fates replay only when every packet in the run draws in one global
    /// order — i.e. on the classic single-`Sim` contended path. The sharded
    /// path uses [`FaultPlane::per_entity`].
    pub fn new(scenario: FaultScenario) -> Self {
        FaultPlane {
            inner: Rc::new(PlaneInner {
                scenario,
                rng: RngMode::Shared(RefCell::new(rng_for("faults", scenario.seed))),
                stats: FaultStats::default(),
            }),
        }
    }

    /// Creates a plane for `scenario` with one independent RNG stream per
    /// directed mesh edge, so fates are invariant under shard placement.
    ///
    /// Each shard constructs its own plane from the same scenario; a shard
    /// only ever draws from the edge streams of packets its own nodes send,
    /// and those draws depend only on the per-edge send order (a node-local
    /// property), never on cross-shard interleaving.
    pub fn per_entity(scenario: FaultScenario) -> Self {
        FaultPlane {
            inner: Rc::new(PlaneInner {
                scenario,
                rng: RngMode::PerEntity {
                    seed: scenario.seed,
                    edges: RefCell::new(HashMap::new()),
                },
                stats: FaultStats::default(),
            }),
        }
    }

    /// `true` if this plane draws from per-edge streams (shard-safe mode).
    pub fn is_per_entity(&self) -> bool {
        matches!(self.inner.rng, RngMode::PerEntity { .. })
    }

    /// The scenario this plane injects.
    pub fn scenario(&self) -> &FaultScenario {
        &self.inner.scenario
    }

    /// Counts of faults injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.inner.stats
    }

    /// Draws the fate of the next mesh packet on edge `src -> dst` and
    /// records any injection.
    ///
    /// Drop, corrupt, and duplicate are mutually exclusive per packet; each
    /// packet consumes exactly one RNG draw so fates replay with the seed.
    /// In shared mode the edge is ignored (one global draw order); in
    /// per-entity mode the draw comes from the edge's own stream.
    pub fn packet_fate(&self, src: usize, dst: usize) -> PacketFate {
        let s = &self.inner.scenario;
        if s.drop_pct == 0 && s.corrupt_pct == 0 && s.duplicate_pct == 0 {
            return PacketFate::Deliver;
        }
        let roll = self
            .inner
            .rng
            .with_edge(src, dst, |rng| rng.gen_range(0..100u64)) as u8;
        let stats = &self.inner.stats;
        if roll < s.drop_pct {
            stats.drops.set(stats.drops.get() + 1);
            PacketFate::Drop
        } else if roll < s.drop_pct + s.corrupt_pct {
            stats.corrupts.set(stats.corrupts.get() + 1);
            PacketFate::Corrupt
        } else if roll < s.drop_pct + s.corrupt_pct + s.duplicate_pct {
            stats.dups.set(stats.dups.get() + 1);
            PacketFate::Duplicate
        } else {
            PacketFate::Deliver
        }
    }

    /// A fresh random value for choosing how to corrupt a payload on edge
    /// `src -> dst` (drawn from the same stream as that edge's fates).
    pub fn corrupt_salt(&self, src: usize, dst: usize) -> u64 {
        self.inner.rng.with_edge(src, dst, |rng| rng.gen_u64())
    }

    /// Records a send refused because no route avoided a failed link.
    pub fn record_link_reject(&self) {
        let c = &self.inner.stats.link_rejects;
        c.set(c.get() + 1);
    }

    /// Records a packet detoured around a failed link.
    pub fn record_reroute(&self) {
        let c = &self.inner.stats.reroutes;
        c.set(c.get() + 1);
    }

    /// `true` if the scenario contains a link failure (routing must consult
    /// [`FaultPlane::link_blocked`]).
    pub fn has_link_faults(&self) -> bool {
        self.inner.scenario.link.is_some()
    }

    /// `true` if the (undirected) router link `a <-> b` is unusable at `now`.
    pub fn link_blocked(&self, a: usize, b: usize, now: Time) -> bool {
        match &self.inner.scenario.link {
            Some(l) => {
                let pair = (l.from as usize, l.to as usize);
                (pair == (a, b) || pair == (b, a)) && l.blocks_at(now)
            }
            None => false,
        }
    }

    /// If `node`'s outgoing-FIFO drain is stalled at `now`, the sim time at
    /// which the stall ends.
    pub fn fifo_stall_until(&self, node: usize, now: Time) -> Option<Time> {
        let s = self.inner.scenario.fifo_stall?;
        if s.node as usize != node {
            return None;
        }
        let at = shrimp_sim::time::us(s.at_us as u64);
        let end = at + shrimp_sim::time::us(s.dur_us as u64);
        (now >= at && now < end).then_some(end)
    }

    /// Fixed extra interrupt-delivery delay.
    pub fn interrupt_delay(&self) -> Time {
        self.inner.scenario.interrupt_delay()
    }

    /// The `(onset, duration)` of `node`'s CPU pause, if any.
    pub fn pause_of(&self, node: usize) -> Option<(Time, Time)> {
        let p = self.inner.scenario.pause?;
        (p.node as usize == node).then(|| {
            (
                shrimp_sim::time::us(p.at_us as u64),
                shrimp_sim::time::us(p.dur_us as u64),
            )
        })
    }

    /// The crash scheduled for `node`, if any.
    pub fn crash_of(&self, node: usize) -> Option<NodeCrash> {
        let c = self.inner.scenario.crash?;
        (c.node as usize == node).then_some(c)
    }

    /// Records a node crash actually injected.
    pub fn record_crash(&self) {
        let c = &self.inner.stats.crashes;
        c.set(c.get() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FifoStall, LinkFault};
    use shrimp_sim::time;

    #[test]
    fn fates_replay_with_the_seed() {
        let scenario = FaultScenario {
            seed: 7,
            drop_pct: 10,
            corrupt_pct: 10,
            duplicate_pct: 10,
            ..FaultScenario::none()
        };
        let a = FaultPlane::new(scenario);
        let b = FaultPlane::new(scenario);
        let fates_a: Vec<_> = (0..256).map(|_| a.packet_fate(0, 1)).collect();
        let fates_b: Vec<_> = (0..256).map(|_| b.packet_fate(0, 1)).collect();
        assert_eq!(fates_a, fates_b);
        assert!(fates_a.contains(&PacketFate::Drop));
        assert!(fates_a.contains(&PacketFate::Corrupt));
        assert!(fates_a.contains(&PacketFate::Duplicate));
        assert_eq!(
            a.stats().total(),
            fates_a
                .iter()
                .filter(|f| **f != PacketFate::Deliver)
                .count() as u64
        );
    }

    #[test]
    fn empty_scenario_never_touches_the_rng() {
        let plane = FaultPlane::new(FaultScenario::none());
        for _ in 0..64 {
            assert_eq!(plane.packet_fate(0, 1), PacketFate::Deliver);
        }
        assert_eq!(plane.stats().total(), 0);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plane = FaultPlane::new(FaultScenario {
            seed: 3,
            drop_pct: 25,
            ..FaultScenario::none()
        });
        let n = 4000;
        let drops = (0..n)
            .filter(|_| plane.packet_fate(0, 1) == PacketFate::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((0.2..0.3).contains(&rate), "drop rate {rate} off target");
    }

    #[test]
    fn link_blocking_is_undirected_and_windowed() {
        let plane = FaultPlane::new(FaultScenario {
            link: Some(LinkFault {
                from: 1,
                to: 2,
                at_us: 50,
                down_us: 100,
            }),
            ..FaultScenario::none()
        });
        assert!(plane.has_link_faults());
        assert!(!plane.link_blocked(1, 2, time::us(49)));
        assert!(plane.link_blocked(1, 2, time::us(50)));
        assert!(plane.link_blocked(2, 1, time::us(149)));
        assert!(!plane.link_blocked(1, 2, time::us(150)));
        assert!(!plane.link_blocked(0, 1, time::us(60)));
    }

    #[test]
    fn per_entity_fates_are_invariant_under_interleaving() {
        let scenario = FaultScenario {
            seed: 11,
            drop_pct: 10,
            corrupt_pct: 10,
            duplicate_pct: 10,
            ..FaultScenario::none()
        };
        // Plane A serves edge (0,1) then edge (2,3); plane B interleaves the
        // two edges packet-by-packet — the per-edge fate sequences must not
        // change, which is exactly what a shard layout change does to the
        // global draw order.
        let a = FaultPlane::per_entity(scenario);
        let fates_01_a: Vec<_> = (0..128).map(|_| a.packet_fate(0, 1)).collect();
        let fates_23_a: Vec<_> = (0..128).map(|_| a.packet_fate(2, 3)).collect();
        let b = FaultPlane::per_entity(scenario);
        let mut fates_01_b = Vec::new();
        let mut fates_23_b = Vec::new();
        for _ in 0..128 {
            fates_23_b.push(b.packet_fate(2, 3));
            fates_01_b.push(b.packet_fate(0, 1));
        }
        assert_eq!(fates_01_a, fates_01_b);
        assert_eq!(fates_23_a, fates_23_b);
        // Distinct edges draw distinct streams.
        assert_ne!(fates_01_a, fates_23_a);
        // Direction matters: (1,0) is not (0,1).
        let c = FaultPlane::per_entity(scenario);
        let fates_10: Vec<_> = (0..128).map(|_| c.packet_fate(1, 0)).collect();
        assert_ne!(fates_01_a, fates_10);
    }

    #[test]
    fn per_entity_salts_ride_the_edge_stream() {
        let scenario = FaultScenario {
            seed: 5,
            corrupt_pct: 100,
            ..FaultScenario::none()
        };
        let a = FaultPlane::per_entity(scenario);
        let b = FaultPlane::per_entity(scenario);
        for _ in 0..32 {
            assert_eq!(a.packet_fate(3, 7), b.packet_fate(3, 7));
            assert_eq!(a.corrupt_salt(3, 7), b.corrupt_salt(3, 7));
        }
        assert!(a.is_per_entity());
        assert!(!FaultPlane::new(scenario).is_per_entity());
    }

    #[test]
    fn crash_of_matches_only_the_crashed_node() {
        use crate::scenario::NodeCrash;
        let plane = FaultPlane::per_entity(FaultScenario {
            crash: Some(NodeCrash {
                node: 5,
                at_us: 40,
                down_us: 400,
            }),
            ..FaultScenario::none()
        });
        assert_eq!(plane.crash_of(5).unwrap().at_us, 40);
        assert!(plane.crash_of(4).is_none());
        assert_eq!(plane.stats().crashes.get(), 0);
        plane.record_crash();
        assert_eq!(plane.stats().crashes.get(), 1);
        assert_eq!(plane.stats().total(), 1);
    }

    #[test]
    fn fifo_stall_reports_its_end() {
        let plane = FaultPlane::new(FaultScenario {
            fifo_stall: Some(FifoStall {
                node: 2,
                at_us: 10,
                dur_us: 5,
            }),
            ..FaultScenario::none()
        });
        assert_eq!(plane.fifo_stall_until(2, time::us(12)), Some(time::us(15)));
        assert_eq!(plane.fifo_stall_until(2, time::us(15)), None);
        assert_eq!(plane.fifo_stall_until(1, time::us(12)), None);
    }
}
