//! The typed error taxonomy for delivery paths.

/// An error surfaced by the communication stack.
///
/// These replace the `panic!`/`assert!` calls that used to guard the
/// delivery paths of `vmmc`, `svm/system`, and `nic/engine`, so that a run
/// under fault injection reports a structured outcome instead of aborting
/// with an opaque message.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ShrimpError {
    /// A zero-length transfer was requested.
    EmptyTransfer,
    /// A transfer would run past the end of the destination buffer.
    BufferOverrun {
        /// Requested destination offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Destination buffer capacity.
        capacity: usize,
    },
    /// A single deliberate-update request crossed a destination page
    /// boundary (the VMMC library must split such sends).
    PageCrossing {
        /// Destination offset within the page.
        offset: usize,
        /// Requested length.
        len: usize,
    },
    /// A deliberate-update request named an OPT proxy index with no mapping.
    UnmappedProxy {
        /// The unmapped outgoing-page-table index.
        index: u64,
    },
    /// The reliable send path exhausted its retransmission budget.
    DeliveryFailed {
        /// Destination node index.
        dst: usize,
        /// Sequence number of the failed transfer.
        seq: u64,
        /// Total transmission attempts made (1 + retries).
        attempts: u32,
    },
    /// A mesh link is failed and no alternative route exists.
    LinkDown {
        /// Upstream router index of the failed link.
        from: usize,
        /// Downstream router index of the failed link.
        to: usize,
    },
    /// A protocol message failed to decode (unknown kind tag).
    CorruptMessage {
        /// Which decoder rejected the message (`"request"` / `"reply"`).
        context: &'static str,
        /// The unrecognized kind tag.
        kind: u64,
    },
    /// A protocol exchange returned a reply of the wrong variant.
    BadReply {
        /// The reply variant the caller needed.
        wanted: &'static str,
        /// Debug rendering of what actually arrived.
        got: String,
    },
    /// A cross-shard flit was handed to a backplane built without the
    /// decoupled transport (`Network::new` instead of `Network::sharded`),
    /// which has no reorder heaps to accept it.
    NoDecoupledTransport {
        /// Node the flit addressed.
        dst: usize,
    },
    /// A fault scenario was combined with a fixed shard count larger than
    /// the node count, which the fault plane cannot partition.
    ShardOverflow {
        /// The fixed shard count requested.
        shards: usize,
        /// The cluster's node count.
        nodes: usize,
    },
}

impl std::fmt::Display for ShrimpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShrimpError::EmptyTransfer => write!(f, "zero-length transfer"),
            ShrimpError::BufferOverrun {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "transfer of {len} bytes at offset {offset} overruns buffer of {capacity} bytes"
            ),
            ShrimpError::PageCrossing { offset, len } => write!(
                f,
                "deliberate update of {len} bytes at page offset {offset} crosses destination page boundary"
            ),
            ShrimpError::UnmappedProxy { index } => {
                write!(f, "deliberate update names unmapped OPT proxy {index}")
            }
            ShrimpError::DeliveryFailed { dst, seq, attempts } => write!(
                f,
                "delivery of seq {seq} to node {dst} failed after {attempts} attempts"
            ),
            ShrimpError::LinkDown { from, to } => {
                write!(f, "mesh link {from}->{to} is down and no route avoids it")
            }
            ShrimpError::CorruptMessage { context, kind } => {
                write!(f, "corrupt SVM {context}: unknown kind {kind}")
            }
            ShrimpError::BadReply { wanted, got } => {
                write!(f, "SVM protocol expected {wanted} reply, got {got}")
            }
            ShrimpError::NoDecoupledTransport { dst } => write!(
                f,
                "cross-shard flit for node {dst} reached a contended backplane built without \
                 the decoupled transport; construct the network with Network::sharded"
            ),
            ShrimpError::ShardOverflow { shards, nodes } => write!(
                f,
                "fault scenarios cannot run on {shards} fixed shards with only {nodes} nodes; \
                 lower the shard count to at most the node count"
            ),
        }
    }
}

impl std::error::Error for ShrimpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_structured_and_specific() {
        let e = ShrimpError::DeliveryFailed {
            dst: 3,
            seq: 41,
            attempts: 13,
        };
        assert_eq!(
            e.to_string(),
            "delivery of seq 41 to node 3 failed after 13 attempts"
        );
        let e = ShrimpError::PageCrossing {
            offset: 4000,
            len: 200,
        };
        assert!(e.to_string().contains("crosses destination page boundary"));
    }
}
