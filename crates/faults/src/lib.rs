//! Deterministic fault injection for the SHRIMP simulation.
//!
//! The paper's methodology assumes a perfectly reliable interconnect; this
//! crate removes that assumption in a controlled way. A [`FaultScenario`]
//! describes *which* faults to inject (packet drop/corrupt/duplicate rates,
//! link failures, NIC FIFO stalls, delayed interrupts, node pauses) and a
//! [`FaultPlane`] draws every individual fault from the deterministic
//! simulation RNG ([`shrimp_sim::rng::rng_for`]) so that a given seed +
//! scenario replays event-for-event.
//!
//! The crate also defines the [`ShrimpError`] taxonomy used by the delivery
//! paths (`vmmc`, `svm`, `nic`) so injected faults become reported outcomes
//! instead of aborts, and the [`Reliability`] knob + [`backoff_timeout`]
//! schedule used by the sequence-numbered retransmitting send path.

#![warn(missing_docs)]

mod error;
mod plane;
mod scenario;

pub use error::ShrimpError;
pub use plane::{FaultPlane, FaultStats, PacketFate};
pub use scenario::{FaultScenario, FifoStall, LinkFault, NodePause};

use shrimp_sim::Time;

/// Configuration of the reliable (acked, retransmitting) VMMC send path.
///
/// Disabled by default: the unreliable fast path is the machine as built and
/// measured by the paper, and baselines are pinned to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reliability {
    /// Sequence-number, ack, and retransmit deliberate-update sends.
    pub enabled: bool,
    /// Initial ack timeout (doubled per retry up to `backoff_cap`).
    pub ack_timeout: Time,
    /// Upper bound on the per-retry timeout.
    pub backoff_cap: Time,
    /// Retransmissions attempted before the send fails with
    /// [`ShrimpError::DeliveryFailed`].
    pub max_retries: u32,
}

impl Default for Reliability {
    fn default() -> Self {
        Reliability {
            enabled: false,
            ack_timeout: shrimp_sim::time::us(2000),
            backoff_cap: shrimp_sim::time::ms(8),
            max_retries: 12,
        }
    }
}

impl Reliability {
    /// The default parameters with the retransmit path switched on.
    pub fn on() -> Self {
        Reliability {
            enabled: true,
            ..Reliability::default()
        }
    }
}

/// Ack timeout armed for retransmission attempt `attempt` (0-based):
/// `base << attempt`, saturating, capped at `cap`.
///
/// The schedule is pure so the property tests can pin that it is monotone
/// non-decreasing and capped.
pub fn backoff_timeout(base: Time, cap: Time, attempt: u32) -> Time {
    let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
    base.saturating_mul(factor).min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_sim::time;

    #[test]
    fn backoff_doubles_then_caps() {
        let base = time::us(500);
        let cap = time::ms(8);
        assert_eq!(backoff_timeout(base, cap, 0), time::us(500));
        assert_eq!(backoff_timeout(base, cap, 1), time::ms(1));
        assert_eq!(backoff_timeout(base, cap, 4), time::ms(8));
        assert_eq!(backoff_timeout(base, cap, 63), cap);
        assert_eq!(backoff_timeout(base, cap, u32::MAX), cap);
    }

    #[test]
    fn reliability_defaults_to_the_unreliable_fast_path() {
        assert!(!Reliability::default().enabled);
        assert!(Reliability::on().enabled);
    }
}
