//! Deterministic fault injection for the SHRIMP simulation.
//!
//! The paper's methodology assumes a perfectly reliable interconnect; this
//! crate removes that assumption in a controlled way. A [`FaultScenario`]
//! describes *which* faults to inject (packet drop/corrupt/duplicate rates,
//! link failures, NIC FIFO stalls, delayed interrupts, node pauses) and a
//! [`FaultPlane`] draws every individual fault from the deterministic
//! simulation RNG ([`shrimp_sim::rng::rng_for`]) so that a given seed +
//! scenario replays event-for-event.
//!
//! The crate also defines the [`ShrimpError`] taxonomy used by the delivery
//! paths (`vmmc`, `svm`, `nic`) so injected faults become reported outcomes
//! instead of aborts, and the [`Reliability`] knob + [`backoff_timeout`]
//! schedule used by the sequence-numbered retransmitting send path.

#![warn(missing_docs)]

mod error;
mod plane;
mod scenario;

pub use error::ShrimpError;
pub use plane::{FaultPlane, FaultStats, PacketFate};
pub use scenario::{FaultScenario, FifoStall, LinkFault, NodeCrash, NodePause};

use shrimp_sim::Time;

/// Configuration of the reliable (acked, retransmitting) VMMC send path.
///
/// Disabled by default: the unreliable fast path is the machine as built and
/// measured by the paper, and baselines are pinned to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reliability {
    /// Sequence-number, ack, and retransmit deliberate-update sends.
    pub enabled: bool,
    /// Initial ack timeout (doubled per retry up to `backoff_cap`).
    pub ack_timeout: Time,
    /// Upper bound on the per-retry timeout.
    pub backoff_cap: Time,
    /// Retransmissions attempted before the send fails with
    /// [`ShrimpError::DeliveryFailed`].
    pub max_retries: u32,
}

impl Default for Reliability {
    fn default() -> Self {
        Reliability {
            enabled: false,
            ack_timeout: shrimp_sim::time::us(2000),
            backoff_cap: shrimp_sim::time::ms(8),
            max_retries: 12,
        }
    }
}

impl Reliability {
    /// The default parameters with the retransmit path switched on.
    pub fn on() -> Self {
        Reliability {
            enabled: true,
            ..Reliability::default()
        }
    }
}

/// Ack timeout armed for retransmission attempt `attempt` (0-based):
/// `base << attempt`, saturating, capped at `cap`.
///
/// The schedule is pure so the property tests can pin that it is monotone
/// non-decreasing and capped.
pub fn backoff_timeout(base: Time, cap: Time, attempt: u32) -> Time {
    let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
    base.saturating_mul(factor).min(cap)
}

/// Per-node jittered backoff: the [`backoff_timeout`] schedule plus a
/// deterministic jitter in `[0, base)` drawn from the node's own
/// `(seed, node, attempt)` stream.
///
/// Used by the heartbeat failure detector's suspicion probes. The jitter
/// decorrelates nodes that arm a probe at the same instant — two distinct
/// nodes never replay the same schedule — while staying a pure function, so
/// the schedule is shard-invariant and replay-stable by construction.
pub fn node_backoff(seed: u64, node: usize, attempt: u32, base: Time, cap: Time) -> Time {
    let mut st = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((node as u64) << 32)
        .wrapping_add(attempt as u64)
        ^ 0x6261_636b_6f66_6621;
    let _ = shrimp_sim::rng::splitmix64(&mut st);
    let draw = shrimp_sim::rng::splitmix64(&mut st);
    let jitter = if base == 0 { 0 } else { draw % base };
    backoff_timeout(base, cap, attempt).saturating_add(jitter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_sim::time;

    #[test]
    fn backoff_doubles_then_caps() {
        let base = time::us(500);
        let cap = time::ms(8);
        assert_eq!(backoff_timeout(base, cap, 0), time::us(500));
        assert_eq!(backoff_timeout(base, cap, 1), time::ms(1));
        assert_eq!(backoff_timeout(base, cap, 4), time::ms(8));
        assert_eq!(backoff_timeout(base, cap, 63), cap);
        assert_eq!(backoff_timeout(base, cap, u32::MAX), cap);
    }

    #[test]
    fn reliability_defaults_to_the_unreliable_fast_path() {
        assert!(!Reliability::default().enabled);
        assert!(Reliability::on().enabled);
    }

    #[test]
    fn node_backoff_is_deterministic_bounded_and_node_distinct() {
        let base = time::us(10);
        let cap = time::us(40);
        for attempt in 0..6 {
            let t = node_backoff(1, 3, attempt, base, cap);
            assert_eq!(t, node_backoff(1, 3, attempt, base, cap));
            let pure = backoff_timeout(base, cap, attempt);
            assert!(t >= pure && t < pure + base);
        }
        let a: Vec<_> = (0..6).map(|i| node_backoff(1, 3, i, base, cap)).collect();
        let b: Vec<_> = (0..6).map(|i| node_backoff(1, 4, i, base, cap)).collect();
        assert_ne!(a, b);
    }
}
