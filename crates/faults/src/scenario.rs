//! Typed descriptions of what to inject.

use shrimp_sim::{time, Time};

/// A failed directed mesh link (both directions are taken down).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LinkFault {
    /// Router index of one end of the link.
    pub from: u8,
    /// Router index of the other end (must be mesh-adjacent to `from`).
    pub to: u8,
    /// Onset time in microseconds of sim time.
    pub at_us: u32,
    /// Outage duration in microseconds; `0` means the failure is permanent.
    pub down_us: u32,
}

impl LinkFault {
    /// `true` if the link is unusable at `now`.
    pub fn blocks_at(&self, now: Time) -> bool {
        let at = time::us(self.at_us as u64);
        now >= at && (self.down_us == 0 || now < at + time::us(self.down_us as u64))
    }

    /// `true` for a permanent (never-recovering) failure.
    pub fn is_permanent(&self) -> bool {
        self.down_us == 0
    }
}

/// A window during which one NIC's outgoing-FIFO drain engine is stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FifoStall {
    /// Node whose NIC stalls.
    pub node: u8,
    /// Onset time in microseconds of sim time.
    pub at_us: u32,
    /// Stall duration in microseconds.
    pub dur_us: u32,
}

/// A window during which one node's CPU makes no progress (e.g. an SMI or a
/// hypervisor-style preemption); modeled as stolen CPU time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodePause {
    /// Paused node.
    pub node: u8,
    /// Onset time in microseconds of sim time.
    pub at_us: u32,
    /// Pause duration in microseconds.
    pub dur_us: u32,
}

/// A whole-node crash: the node's CPU stops, its NIC powers off, and all
/// volatile state (memory pages, address-space layout, NIC page tables,
/// in-flight transfers) is lost. With `down_us == 0` the node never comes
/// back; otherwise it restarts deterministically after the outage with
/// empty memory and re-runs its program from the top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeCrash {
    /// Crashed node.
    pub node: u8,
    /// Onset time in microseconds of sim time.
    pub at_us: u32,
    /// Outage duration in microseconds; `0` means the crash is permanent.
    pub down_us: u32,
}

impl NodeCrash {
    /// `true` for a permanent (never-restarting) crash.
    pub fn is_permanent(&self) -> bool {
        self.down_us == 0
    }

    /// Crash onset in sim time.
    pub fn onset(&self) -> Time {
        time::us(self.at_us as u64)
    }

    /// Restart time, for a crash that restarts.
    pub fn restart_at(&self) -> Option<Time> {
        (!self.is_permanent()).then(|| self.onset() + time::us(self.down_us as u64))
    }
}

/// Everything the fault plane injects into one run.
///
/// The default ([`FaultScenario::none`]) injects nothing, costs nothing, and
/// leaves every baseline byte-identical. `Copy + Eq + Hash` so it can ride
/// on the sweep harness's `Knobs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FaultScenario {
    /// Seed for the fault plane's RNG stream (independent of the run seed).
    pub seed: u64,
    /// Percent of mesh packets silently dropped.
    pub drop_pct: u8,
    /// Percent of mesh packets payload-corrupted in flight.
    pub corrupt_pct: u8,
    /// Percent of mesh packets delivered twice.
    pub duplicate_pct: u8,
    /// A transient or permanent link failure.
    pub link: Option<LinkFault>,
    /// An outgoing-FIFO drain stall on one NIC.
    pub fifo_stall: Option<FifoStall>,
    /// Fixed extra delay, in microseconds, before each interrupt reaches its
    /// dispatcher.
    pub interrupt_delay_us: u32,
    /// A CPU pause on one node.
    pub pause: Option<NodePause>,
    /// A whole-node crash, optionally followed by a deterministic restart.
    pub crash: Option<NodeCrash>,
}

impl FaultScenario {
    /// The empty scenario: no faults, no overhead.
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` if the scenario injects anything at all.
    pub fn is_active(&self) -> bool {
        self.drop_pct > 0
            || self.corrupt_pct > 0
            || self.duplicate_pct > 0
            || self.link.is_some()
            || self.fifo_stall.is_some()
            || self.interrupt_delay_us > 0
            || self.pause.is_some()
            || self.crash.is_some()
    }

    /// The fixed interrupt-delivery delay.
    pub fn interrupt_delay(&self) -> Time {
        time::us(self.interrupt_delay_us as u64)
    }

    /// Compact id-safe label naming every active fault, `"none"` when empty
    /// (used in run ids and knob summaries).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.drop_pct > 0 {
            parts.push(format!("drop{}", self.drop_pct));
        }
        if self.corrupt_pct > 0 {
            parts.push(format!("corrupt{}", self.corrupt_pct));
        }
        if self.duplicate_pct > 0 {
            parts.push(format!("dup{}", self.duplicate_pct));
        }
        if let Some(l) = &self.link {
            let kind = if l.is_permanent() { "down" } else { "flap" };
            parts.push(format!("link{kind}{}-{}", l.from, l.to));
        }
        if let Some(s) = &self.fifo_stall {
            parts.push(format!("fifostall{}", s.node));
        }
        if self.interrupt_delay_us > 0 {
            parts.push(format!("intrdelay{}", self.interrupt_delay_us));
        }
        if let Some(p) = &self.pause {
            parts.push(format!("pause{}", p.node));
        }
        if let Some(c) = &self.crash {
            let kind = if c.is_permanent() {
                "crash"
            } else {
                "crashres"
            };
            parts.push(format!("{kind}{}", c.node));
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_labeled_none() {
        let s = FaultScenario::none();
        assert!(!s.is_active());
        assert_eq!(s.label(), "none");
        assert_eq!(s, FaultScenario::default());
    }

    #[test]
    fn label_names_every_active_fault() {
        let s = FaultScenario {
            drop_pct: 5,
            corrupt_pct: 2,
            link: Some(LinkFault {
                from: 0,
                to: 1,
                at_us: 100,
                down_us: 0,
            }),
            ..FaultScenario::none()
        };
        assert!(s.is_active());
        assert_eq!(s.label(), "drop5+corrupt2+linkdown0-1");
    }

    #[test]
    fn link_fault_windows() {
        let transient = LinkFault {
            from: 0,
            to: 1,
            at_us: 10,
            down_us: 20,
        };
        assert!(!transient.blocks_at(time::us(9)));
        assert!(transient.blocks_at(time::us(10)));
        assert!(transient.blocks_at(time::us(29)));
        assert!(!transient.blocks_at(time::us(30)));
        let permanent = LinkFault {
            down_us: 0,
            ..transient
        };
        assert!(permanent.is_permanent());
        assert!(permanent.blocks_at(time::us(1_000_000)));
    }

    #[test]
    fn crash_label_distinguishes_permanent_from_restarting() {
        let dead = FaultScenario {
            crash: Some(NodeCrash {
                node: 5,
                at_us: 40,
                down_us: 0,
            }),
            ..FaultScenario::none()
        };
        assert!(dead.is_active());
        assert_eq!(dead.label(), "crash5");
        assert!(dead.crash.unwrap().restart_at().is_none());

        let restarts = FaultScenario {
            crash: Some(NodeCrash {
                node: 5,
                at_us: 40,
                down_us: 400,
            }),
            ..FaultScenario::none()
        };
        assert_eq!(restarts.label(), "crashres5");
        assert_eq!(restarts.crash.unwrap().restart_at(), Some(time::us(440)));
    }
}
