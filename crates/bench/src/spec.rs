//! Typed experiment run specifications.
//!
//! A [`RunSpec`] names one deterministic DES run of the paper's matrix:
//! an application, a version ([`Variant`]), a node count, the design
//! knobs flipped relative to the machine as built ([`Knobs`]), a problem
//! [`Scale`] and a workload seed. Specs are plain `Send` data — the
//! `shrimp-harness` sweep runner shards them across worker threads —
//! and [`RunSpec::execute`] builds the cluster, runs the application and
//! returns the deterministic [`RunRecord`] metrics. The per-table bench
//! binaries are thin wrappers over the same specs, so a number printed
//! by `cargo bench` and a row in `results/sweep.json` come from the
//! identical run.

use shrimp_apps::barnes::{run_barnes_nx, run_barnes_svm, BarnesParams};
use shrimp_apps::dfs::{run_dfs, DfsParams};
use shrimp_apps::kv::{run_kv, total_acked, total_verify_failures, KvParams};
use shrimp_apps::ocean::{run_ocean_nx, run_ocean_svm, OceanParams};
use shrimp_apps::radix::{run_radix_svm, run_radix_vmmc, RadixParams};
use shrimp_apps::render::{run_render, RenderParams};
use shrimp_apps::{Mechanism, RunOutcome};
use shrimp_core::{
    run_chaos_distributed, run_cold, run_distributed, run_parallel, run_warm, Cluster,
    ClusterCheckpoint, ClusterReport, DesignConfig, DistributedParams, HeartbeatConfig,
    LaunchOutcome, ParallelParams, RingBulk, WarmParams,
};
use shrimp_faults::{FaultScenario, FifoStall, LinkFault, NodeCrash, NodePause};
use shrimp_sim::{time, Category, MetricValue, MetricsSnapshot, Time, TraceEvent};
use shrimp_sockets::SocketConfig;
use shrimp_svm::Protocol;

use crate::App;

// ---------------------------------------------------------------------------
// Scale
// ---------------------------------------------------------------------------

/// Problem scale of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smallest sizes: every application in seconds, for CI and the
    /// harness determinism/regression gates.
    Smoke,
    /// The default `cargo bench` sizes (minutes, same shapes as paper).
    Reduced,
    /// The paper's problem sizes (`SHRIMP_FULL=1`).
    Full,
}

impl Scale {
    /// Stable lowercase label used in run ids and artifact names.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Reduced => "reduced",
            Scale::Full => "full",
        }
    }

    /// The headline cluster size at this scale (paper: 16).
    pub fn default_nodes(&self) -> usize {
        match self {
            Scale::Smoke => 4,
            _ => 16,
        }
    }
}

/// Radix problem size at a scale (paper: 2 M keys, 3 iters).
pub fn radix_params_at(scale: Scale, seed: u64) -> RadixParams {
    let mut p = match scale {
        Scale::Full => RadixParams::paper(),
        Scale::Reduced => RadixParams {
            total_keys: 128 * 1024,
            iters: 3,
            radix_bits: 10,
            seed: 1,
        },
        Scale::Smoke => RadixParams {
            total_keys: 32 * 1024,
            iters: 2,
            radix_bits: 8,
            seed: 1,
        },
    };
    p.seed = seed;
    p
}

/// Ocean-SVM problem size at a scale (paper: 514 x 514).
pub fn ocean_svm_params_at(scale: Scale) -> OceanParams {
    match scale {
        Scale::Full => OceanParams::paper_svm(),
        Scale::Reduced => OceanParams {
            n: 130,
            sweeps: 24,
            reduce_every: 4,
        },
        Scale::Smoke => OceanParams {
            n: 66,
            sweeps: 8,
            reduce_every: 4,
        },
    }
}

/// Ocean-NX problem size at a scale (paper: 258 x 258).
pub fn ocean_nx_params_at(scale: Scale) -> OceanParams {
    match scale {
        Scale::Full => OceanParams::paper_nx(),
        _ => ocean_svm_params_at(scale),
    }
}

/// Barnes-NX problem size at a scale (paper: 4 K bodies, 20 iters).
pub fn barnes_nx_params_at(scale: Scale) -> BarnesParams {
    match scale {
        Scale::Full => BarnesParams::paper_nx(),
        Scale::Reduced => BarnesParams {
            bodies: 1024,
            steps: 4,
            chunk_bodies: 2,
            ..BarnesParams::paper_nx()
        },
        Scale::Smoke => BarnesParams {
            bodies: 256,
            steps: 2,
            chunk_bodies: 4,
            work_chunk: 8,
            ..BarnesParams::paper_nx()
        },
    }
}

/// Barnes-SVM problem size at a scale (paper: 16 K bodies).
pub fn barnes_svm_params_at(scale: Scale) -> BarnesParams {
    match scale {
        Scale::Full => BarnesParams::paper_svm(),
        Scale::Reduced => BarnesParams {
            bodies: 2048,
            steps: 2,
            ..BarnesParams::paper_svm()
        },
        Scale::Smoke => BarnesParams {
            bodies: 512,
            steps: 1,
            chunk_bodies: 4,
            work_chunk: 16,
            ..BarnesParams::paper_svm()
        },
    }
}

/// DFS workload at a scale.
pub fn dfs_params_at(scale: Scale) -> DfsParams {
    match scale {
        Scale::Full => DfsParams::paper(),
        Scale::Reduced => DfsParams {
            clients: 4,
            files: 4,
            file_blocks: 48,
            block_bytes: 8192,
            cache_blocks: 24,
            reads_per_client: 8,
        },
        Scale::Smoke => DfsParams {
            clients: 2,
            files: 2,
            file_blocks: 16,
            block_bytes: 4096,
            cache_blocks: 8,
            reads_per_client: 4,
        },
    }
}

/// Engine-parallel workload at a scale. Always 16 nodes — the paper's
/// cluster size — so shard counts 1/2/4 divide the node set evenly at
/// every scale; only the step count (and the host-CPU burn that gives the
/// threaded executor real work to parallelize) grows with the scale.
pub fn parallel_params_at(scale: Scale) -> ParallelParams {
    match scale {
        Scale::Smoke => ParallelParams {
            burn: 12_000,
            ..ParallelParams::with_steps(192)
        },
        Scale::Reduced => ParallelParams {
            burn: 12_000,
            ..ParallelParams::with_steps(768)
        },
        Scale::Full => ParallelParams {
            burn: 12_000,
            ..ParallelParams::with_steps(3072)
        },
    }
}

/// Distributed-cluster workload at a scale: the full SHRIMP stack (VMMC
/// exports/imports, DMA sends, notifications) driven through the shard
/// engine by `shrimp_core::run_distributed`. Per-node work is constant —
/// the workload is *proportional* — so the 64- and 256-node rows scale
/// total work linearly and give the threaded executor real work per shard.
pub fn distributed_params_at(scale: Scale) -> DistributedParams {
    match scale {
        Scale::Smoke => DistributedParams::with_steps(24),
        Scale::Reduced => DistributedParams::with_steps(96),
        Scale::Full => DistributedParams::with_steps(384),
    }
}

/// Warm-start workload at a scale: the distributed-cluster shape on
/// `nodes` nodes, split at the midpoint — half the rounds are warmup
/// (phase A, checkpointed once), half resume from the checkpoint (phase
/// B, per knob setting). Derived, not stored: every warm row of a given
/// (scale, nodes, seed) shares one checkpoint fingerprint.
pub fn warm_params_at(scale: Scale, nodes: usize, seed: u64) -> WarmParams {
    let mut base = distributed_params_at(scale).scaled_to(nodes);
    base.seed = seed;
    WarmParams::split(base)
}

/// Replicated KV service at a scale: the 16-node smoke shape (two groups
/// of three replicas, ten clients, 4096-key Zipf keyspace) with the
/// load-phase request count scaled. Latency quantiles want enough samples
/// to have a tail, so the count grows faster than the step counts above.
pub fn kv_params_at(scale: Scale) -> KvParams {
    let requests = match scale {
        Scale::Smoke => 10,
        Scale::Reduced => 40,
        Scale::Full => 160,
    };
    KvParams {
        requests,
        ..KvParams::smoke()
    }
}

/// [`kv_params_at`] on `nodes` nodes with `seed`: extra nodes become
/// clients, and the open-loop gap stretches with each group's client
/// fan-in so the offered load per primary — set just under the ~55 µs
/// per-request service capacity by the 16-node shape (5 clients per
/// group at 400 µs) — stays constant at every node count. Without the
/// stretch a 64-node row would oversubscribe its two primaries several
/// times over: the open-loop tail would grow without bound and the
/// starved primaries would be falsely declared dead by their backups.
pub fn kv_params_for(scale: Scale, nodes: usize, seed: u64) -> KvParams {
    let mut p = kv_params_at(scale).scaled_to(nodes);
    p.seed = seed;
    let fanin = p.clients().div_ceil(p.groups).max(1);
    p.mean_gap = time::us(80) * fanin as Time;
    p
}

/// Render workload at a scale.
pub fn render_params_at(scale: Scale) -> RenderParams {
    match scale {
        Scale::Full => RenderParams::paper(),
        Scale::Reduced => RenderParams {
            image: 64,
            tile: 8,
            steps: 48,
            fail_worker: None,
        },
        Scale::Smoke => RenderParams {
            image: 32,
            tile: 8,
            steps: 12,
            fail_worker: None,
        },
    }
}

// ---------------------------------------------------------------------------
// Variants and knobs
// ---------------------------------------------------------------------------

/// Which version of an application a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The application's default version (AURC for the SVM applications,
    /// deliberate update for the rest — the Table 1 configurations).
    Default,
    /// An explicit SVM protocol (SVM applications only).
    Protocol(Protocol),
    /// An explicit bulk mechanism (VMMC/NX applications only).
    Mechanism(Mechanism),
    /// Sockets forced onto automatic-update bulk transfers (§4.5.1).
    ForcedAu,
}

impl Variant {
    /// Stable lowercase label used in run ids.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Default => "default",
            Variant::Protocol(Protocol::Hlrc) => "hlrc",
            Variant::Protocol(Protocol::HlrcAu) => "hlrc-au",
            Variant::Protocol(Protocol::Aurc) => "aurc",
            Variant::Mechanism(Mechanism::AutomaticUpdate) => "au",
            Variant::Mechanism(Mechanism::DeliberateUpdate) => "du",
            Variant::ForcedAu => "forced-au",
        }
    }
}

/// Design knobs flipped relative to the machine as built. `None`/`false`
/// everywhere reproduces [`DesignConfig::as_built`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Knobs {
    /// Table 2: a system call before every message send.
    pub syscall_send: bool,
    /// Table 4: an interrupt on every message arrival.
    pub interrupt_per_message: bool,
    /// §4.5.1: automatic-update combining override.
    pub combining: Option<bool>,
    /// §4.5.2: outgoing FIFO capacity override (threshold = half).
    pub fifo_bytes: Option<usize>,
    /// §4.5.3: deliberate-update request queue depth override.
    pub du_queue_depth: Option<usize>,
    /// Chaos sweeps: reliable (acked, retransmitting) deliberate update.
    pub reliability: bool,
    /// Chaos sweeps: the fault scenario injected into the run.
    pub faults: FaultScenario,
}

impl Knobs {
    /// The machine as built.
    pub fn as_built() -> Self {
        Knobs::default()
    }

    /// Applies the knobs to a design configuration.
    pub fn apply(&self, cfg: &mut DesignConfig) {
        cfg.syscall_send = self.syscall_send;
        cfg.interrupt_per_message = self.interrupt_per_message;
        if let Some(c) = self.combining {
            cfg.nic.combining = c;
        }
        if let Some(bytes) = self.fifo_bytes {
            // The §4.5.2 configuration: threshold at half capacity, 2 us
            // interrupt dispatch (applied for every override, including
            // re-stating the default 32 KB, so FIFO pairs differ only in
            // the capacity).
            cfg.nic.out_fifo_capacity = bytes;
            cfg.nic.out_fifo_threshold = bytes / 2;
            cfg.nic.fifo_interrupt_latency = time::us(2);
        }
        if let Some(depth) = self.du_queue_depth {
            cfg.nic.du_queue_depth = depth;
        }
        cfg.reliability.enabled = self.reliability;
        cfg.faults = self.faults;
    }

    /// Stable label used in run ids ("as-built" when nothing is flipped).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.syscall_send {
            parts.push("syscall".to_string());
        }
        if self.interrupt_per_message {
            parts.push("intr".to_string());
        }
        match self.combining {
            Some(true) => parts.push("comb".to_string()),
            Some(false) => parts.push("nocomb".to_string()),
            None => {}
        }
        if let Some(b) = self.fifo_bytes {
            parts.push(format!("fifo{b}"));
        }
        if let Some(d) = self.du_queue_depth {
            parts.push(format!("duq{d}"));
        }
        if self.reliability {
            parts.push("rel".to_string());
        }
        if self.faults.is_active() {
            parts.push(self.faults.label());
        }
        if parts.is_empty() {
            "as-built".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// Shard-count selection for shard-engine runs (the engine-parallel and
/// distributed-cluster groups): `Auto` follows the sweep-wide `--shards`
/// setting, `Fixed(k)` pins the row. One shared spelling across the whole
/// workspace — this is `shrimp_sim::shard::Shards`, re-exported through
/// `shrimp_core`. Because both workloads are shard-count invariant, an
/// `Auto` row's [`RunRecord`] is byte-identical at every setting; `Fixed`
/// rows are the scaling pairs the `--perf` speedup gate compares. Chaos
/// and classic single-`Sim` rows ignore the selection entirely.
pub use shrimp_core::Shards;

// ---------------------------------------------------------------------------
// RunSpec
// ---------------------------------------------------------------------------

/// One deterministic DES run of the experiment matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Experiment group this run belongs to (`"fig3"`, `"table2"`, ...).
    pub experiment: &'static str,
    /// The application.
    pub app: App,
    /// Application version.
    pub variant: Variant,
    /// Cluster size.
    pub nodes: usize,
    /// Design knobs flipped for this run.
    pub knobs: Knobs,
    /// Problem scale.
    pub scale: Scale,
    /// Workload seed (radix data; other workloads use fixed seeds).
    pub seed: u64,
    /// Shard-count selection (engine-parallel runs only).
    pub shards: Shards,
}

impl RunSpec {
    /// A default-version, as-built run of `app` on `nodes` nodes.
    pub fn new(experiment: &'static str, app: App, nodes: usize, scale: Scale) -> Self {
        RunSpec {
            experiment,
            app,
            variant: Variant::Default,
            nodes,
            knobs: Knobs::as_built(),
            scale,
            seed: 1,
            shards: Shards::Auto,
        }
    }

    /// Builder: application version.
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Builder: cluster size.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Builder: design knobs.
    pub fn with_knobs(mut self, knobs: Knobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// Builder: workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: shard-count selection.
    pub fn with_shards(mut self, shards: Shards) -> Self {
        self.shards = shards;
        self
    }

    /// The unique, deterministic identifier of this run — the key that
    /// joins sweep rows, baselines and logs.
    pub fn id(&self) -> String {
        let mut id = format!(
            "{}/{}-{}/p{}/{}",
            self.experiment,
            self.app.name().to_lowercase(),
            self.variant.label(),
            self.nodes,
            self.knobs.label()
        );
        if self.seed != 1 {
            id.push_str(&format!("/s{}", self.seed));
        }
        if let Shards::Fixed(k) = self.shards {
            id.push_str(&format!("/sh{k}"));
        }
        id
    }

    /// The shard count this run executes on: a [`Shards::Fixed`] pin wins;
    /// otherwise the sweep-wide CLI setting (minimum 1).
    pub fn effective_shards(&self, cli_shards: usize) -> usize {
        self.shards.resolve(cli_shards)
    }

    /// The design configuration of this run.
    pub fn design_config(&self) -> DesignConfig {
        let mut cfg = DesignConfig::default();
        self.knobs.apply(&mut cfg);
        cfg
    }

    /// Runs the spec to completion on a fresh cluster and collects the
    /// deterministic metrics.
    pub fn execute(&self) -> RunRecord {
        self.execute_timed().0
    }

    /// [`RunSpec::execute`] plus a host-side [`PerfSample`]: wall-clock time
    /// around cluster construction + run + metric capture, and the number of
    /// simulator events the run dispatched. The sample is returned beside the
    /// record — never inside it — so the deterministic artifact cannot pick
    /// up host timing.
    pub fn execute_timed(&self) -> (RunRecord, PerfSample) {
        self.execute_timed_at(1)
    }

    /// [`RunSpec::execute_timed`] under a sweep-wide `--shards` setting.
    /// Only engine-parallel runs with [`Shards::Auto`] are affected;
    /// everything else (and every [`RunRecord`]) is independent of it.
    pub fn execute_timed_at(&self, cli_shards: usize) -> (RunRecord, PerfSample) {
        let (record, perf, _) = self.execute_inner(false, cli_shards);
        (record, perf)
    }

    /// [`RunSpec::execute_timed`] with the observability plane switched on:
    /// the simulator's [`TraceSink`](shrimp_sim::TraceSink) and
    /// [`MetricsRegistry`](shrimp_sim::MetricsRegistry) record throughout
    /// the run, and everything they captured comes back as an
    /// [`Observation`]. The plain `execute`/`execute_timed` paths never
    /// enable either, so their artifacts stay byte-identical.
    pub fn execute_observed(&self) -> (RunRecord, PerfSample, Observation) {
        self.execute_observed_at(1)
    }

    /// [`RunSpec::execute_observed`] under a sweep-wide `--shards` setting
    /// (see [`RunSpec::execute_timed_at`]).
    pub fn execute_observed_at(&self, cli_shards: usize) -> (RunRecord, PerfSample, Observation) {
        let (record, perf, obs) = self.execute_inner(true, cli_shards);
        (
            record,
            perf,
            obs.expect("observed run must yield an observation"),
        )
    }

    fn execute_inner(
        &self,
        observe: bool,
        cli_shards: usize,
    ) -> (RunRecord, PerfSample, Option<Observation>) {
        if self.app == App::ParallelNodes {
            return self.execute_parallel(observe, cli_shards);
        }
        if self.app == App::ClusterNodes {
            return self.execute_cluster(observe, cli_shards);
        }
        if self.app == App::KvNodes {
            return self.execute_kv(observe, cli_shards);
        }
        if self.app == App::WarmClusterNodes {
            let (record, perf, _) = self
                .execute_warm_at(cli_shards, None)
                .expect("a cold warm-cluster run consumes no external checkpoint");
            return (record, perf, observe.then(Observation::default));
        }
        let start = std::time::Instant::now();
        let cluster = Cluster::builder(self.nodes)
            .config(self.design_config())
            .build();
        if observe {
            // Per-packet network events push a smoke row past the sink's
            // default 64 K bound; a 1 M cap keeps whole smoke timelines.
            // Bigger scales overflow it and report via `trace_dropped`.
            cluster.sim().trace().enable(Some(1 << 20));
            cluster.sim().metrics().enable();
        }
        let out = self.run_on(&cluster);
        let report = ClusterReport::capture(&cluster, out.elapsed);
        // Recovery metrics only exist on chaos/reliability runs; plain rows
        // omit them so their serialized form is byte-identical to before
        // the fault plane existed.
        let recovery = (self.knobs.reliability || self.knobs.faults.is_active()).then(|| {
            let nic_sum = |f: &dyn Fn(&shrimp_nic::NicCounters) -> u64| -> u64 {
                (0..cluster.num_nodes())
                    .map(|i| f(cluster.nic(i).counters()))
                    .sum()
            };
            Recovery {
                retransmits: cluster.total(|s| s.retransmits.get()),
                corrupt_detected: nic_sum(&|c| c.corrupt_detected.get()),
                dup_suppressed: nic_sum(&|c| c.dup_suppressed.get()),
                faults_injected: cluster.fault_plane().map_or(0, |p| p.stats().total()),
                detection_latency_ps: nic_sum(&|c| c.detection_latency.get()),
                recovery_time_ps: cluster.total(|s| s.recovery_time.get()),
            }
        });
        let record = RunRecord {
            elapsed: out.elapsed,
            checksum: out.checksum,
            messages: out.messages,
            notifications: out.notifications,
            interrupts: cluster.total(|s| s.interrupts_taken.get()),
            syscalls: cluster.total(|s| s.syscalls.get()),
            net_packets: report.net_packets,
            net_bytes: report.net_bytes,
            recovery,
            kv: None,
        };
        let events = cluster.sim().events();
        let observation = observe.then(|| Observation {
            events: cluster.sim().trace().take(),
            trace_dropped: cluster.sim().trace().dropped(),
            metrics: cluster.sim().metrics().snapshot(),
        });
        let wall_ns = start.elapsed().as_nanos() as u64;
        (
            record,
            PerfSample {
                wall_ns,
                events,
                peak_rss_bytes: peak_rss_bytes(),
                shards: 1,
            },
            observation,
        )
    }

    /// The distributed-cluster execution path: the full SHRIMP stack on
    /// the shard engine via [`shrimp_core::run_distributed`] — or, when
    /// the knobs carry a fault scenario,
    /// [`shrimp_core::run_chaos_distributed`] with the default heartbeat
    /// failure detector for the row's node count. The
    /// [`RunRecord`] comes from the shard-count-invariant
    /// [`LaunchOutcome`](shrimp_core::LaunchOutcome) — byte-identical at
    /// every shard count — while the [`PerfSample`] (wall-clock, executor
    /// events, effective shards) sees the parallelism. Like the
    /// engine-parallel path, an observed run yields an empty
    /// [`Observation`]: per-shard trace interleavings are a host-layout
    /// detail the deterministic artifacts must not depend on.
    fn execute_cluster(
        &self,
        observe: bool,
        cli_shards: usize,
    ) -> (RunRecord, PerfSample, Option<Observation>) {
        let start = std::time::Instant::now();
        let mut params = distributed_params_at(self.scale).scaled_to(self.nodes);
        params.seed = self.seed;
        let shards = self.effective_shards(cli_shards);
        let chaos = self.knobs.faults.is_active();
        let out = if chaos {
            run_chaos_distributed(
                &params,
                self.design_config(),
                Shards::Fixed(shards),
                HeartbeatConfig::for_nodes(self.nodes),
            )
        } else {
            run_distributed(&params, self.design_config(), Shards::Fixed(shards))
        };
        let checksum = out
            .node_results
            .iter()
            .fold(0u64, |acc, &r| acc.wrapping_add(r));
        // Same serialization rule as the classic path: recovery metrics
        // appear only on chaos/reliability rows, so plain cluster rows
        // stay byte-identical.
        let recovery = (self.knobs.reliability || chaos).then_some(Recovery {
            retransmits: out.retransmits,
            corrupt_detected: out.corrupt_detected,
            dup_suppressed: out.dup_suppressed,
            faults_injected: out.faults_injected,
            detection_latency_ps: out.detection_latency_ps,
            recovery_time_ps: out.recovery_time_ps,
        });
        let record = RunRecord {
            elapsed: out.elapsed,
            checksum,
            messages: out.messages,
            notifications: out.notifications,
            interrupts: out.interrupts,
            syscalls: out.syscalls,
            net_packets: out.net_packets,
            net_bytes: out.net_bytes,
            recovery,
            kv: None,
        };
        let wall_ns = start.elapsed().as_nanos() as u64;
        (
            record,
            PerfSample {
                wall_ns,
                events: out.events,
                peak_rss_bytes: peak_rss_bytes(),
                shards: out.shards,
            },
            observe.then(Observation::default),
        )
    }

    /// The replicated-KV execution path ([`App::KvNodes`]): the service
    /// of `shrimp_apps::kv` on the `launch()` path, always with the
    /// metrics plane on — the row's tail-latency quantiles come out of
    /// the merged `(App, "kv_req_ps")` histogram, which is part of the
    /// shard-count-invariant [`LaunchOutcome`](shrimp_core::LaunchOutcome),
    /// so the [`KvMetrics`] block is byte-identical at every shard count
    /// like the rest of the [`RunRecord`]. Like the other shard-engine
    /// paths, an observed run yields an empty [`Observation`].
    fn execute_kv(
        &self,
        observe: bool,
        cli_shards: usize,
    ) -> (RunRecord, PerfSample, Option<Observation>) {
        let start = std::time::Instant::now();
        let params = kv_params_for(self.scale, self.nodes, self.seed);
        let shards = self.effective_shards(cli_shards);
        let out = run_kv(&params, self.design_config(), Shards::Fixed(shards));
        let checksum = out
            .node_results
            .iter()
            .fold(0u64, |acc, &r| acc.wrapping_add(r));
        let chaos = self.knobs.faults.is_active();
        let recovery = (self.knobs.reliability || chaos).then_some(Recovery {
            retransmits: out.retransmits,
            corrupt_detected: out.corrupt_detected,
            dup_suppressed: out.dup_suppressed,
            faults_injected: out.faults_injected,
            detection_latency_ps: out.detection_latency_ps,
            recovery_time_ps: out.recovery_time_ps,
        });
        let kv = Some(KvMetrics::capture(&params, &out));
        let record = RunRecord {
            elapsed: out.elapsed,
            checksum,
            messages: out.messages,
            notifications: out.notifications,
            interrupts: out.interrupts,
            syscalls: out.syscalls,
            net_packets: out.net_packets,
            net_bytes: out.net_bytes,
            recovery,
            kv,
        };
        let wall_ns = start.elapsed().as_nanos() as u64;
        (
            record,
            PerfSample {
                wall_ns,
                events: out.events,
                peak_rss_bytes: peak_rss_bytes(),
                shards: out.shards,
            },
            observe.then(Observation::default),
        )
    }

    /// The warm-start execution path ([`App::WarmClusterNodes`]).
    ///
    /// With `checkpoint` (an encoded
    /// [`ClusterCheckpoint`], the harness
    /// `--checkpoint-in` payload) the warmup phase is skipped entirely:
    /// the machine restores from the artifact and runs only phase B —
    /// the warm start. Without it the row runs **cold**: warmup under the
    /// as-built machine, checkpoint encode + decode, then the identical
    /// phase B — so cold and warm rows are byte-identical by construction
    /// and differ only in wall-clock.
    ///
    /// Returns the record, the perf sample, and the encoded checkpoint
    /// the row ran from (the input echoed back on warm starts, freshly
    /// captured on cold runs — the harness `--checkpoint-out` payload).
    ///
    /// # Errors
    ///
    /// Any [`shrimp_sim::SnapshotError`] from decoding the artifact, and
    /// [`FingerprintMismatch`](shrimp_sim::SnapshotError::FingerprintMismatch)
    /// when it was produced by a different workload shape (scale, nodes,
    /// or seed) than this spec.
    ///
    /// # Panics
    ///
    /// Panics when called on any app but [`App::WarmClusterNodes`], or on
    /// a spec whose knobs carry a fault scenario (the restore plane is
    /// fault-free).
    pub fn execute_warm_at(
        &self,
        cli_shards: usize,
        checkpoint: Option<&[u8]>,
    ) -> Result<(RunRecord, PerfSample, Vec<u8>), shrimp_sim::SnapshotError> {
        assert_eq!(
            self.app,
            App::WarmClusterNodes,
            "execute_warm_at only runs warm-cluster rows"
        );
        assert!(
            !self.knobs.faults.is_active(),
            "warm-start rows cannot carry a fault scenario"
        );
        let start = std::time::Instant::now();
        let params = warm_params_at(self.scale, self.nodes, self.seed);
        let shards = self.effective_shards(cli_shards);
        let cfg = self.design_config();
        let (out, bytes) = match checkpoint {
            Some(bytes) => {
                let ckpt = ClusterCheckpoint::decode(bytes)?;
                let out = run_warm(&params, cfg, Shards::Fixed(shards), &ckpt)?;
                (out, bytes.to_vec())
            }
            None => run_cold(&params, cfg, Shards::Fixed(shards)),
        };
        let record = Self::record_of_launch(&out);
        let wall_ns = start.elapsed().as_nanos() as u64;
        Ok((
            record,
            PerfSample {
                wall_ns,
                events: out.events,
                peak_rss_bytes: peak_rss_bytes(),
                shards: out.shards,
            },
            bytes,
        ))
    }

    /// The fault-free [`RunRecord`] of a phase-B
    /// [`LaunchOutcome`](shrimp_core::LaunchOutcome).
    fn record_of_launch(out: &LaunchOutcome) -> RunRecord {
        RunRecord {
            elapsed: out.elapsed,
            checksum: out
                .node_results
                .iter()
                .fold(0u64, |acc, &r| acc.wrapping_add(r)),
            messages: out.messages,
            notifications: out.notifications,
            interrupts: out.interrupts,
            syscalls: out.syscalls,
            net_packets: out.net_packets,
            net_bytes: out.net_bytes,
            recovery: None,
            kv: None,
        }
    }

    /// The engine-parallel execution path: no cluster, no trace/metrics
    /// plane (the shard workload records nothing into either, so an
    /// observed run yields an empty [`Observation`]). The [`RunRecord`] is
    /// built from the commutative [`shrimp_core::ParallelOutcome`] metrics
    /// and is byte-identical at every shard count; only the
    /// [`PerfSample`] — wall-clock and executor events — sees the
    /// parallelism.
    fn execute_parallel(
        &self,
        observe: bool,
        cli_shards: usize,
    ) -> (RunRecord, PerfSample, Option<Observation>) {
        let start = std::time::Instant::now();
        let out = run_parallel(
            &parallel_params_at(self.scale),
            self.effective_shards(cli_shards),
        );
        let record = RunRecord {
            elapsed: out.elapsed,
            checksum: out.checksum,
            messages: out.messages,
            notifications: 0,
            interrupts: 0,
            syscalls: 0,
            net_packets: out.messages,
            net_bytes: out.bytes,
            recovery: None,
            kv: None,
        };
        let wall_ns = start.elapsed().as_nanos() as u64;
        (
            record,
            PerfSample {
                wall_ns,
                events: out.events,
                peak_rss_bytes: peak_rss_bytes(),
                shards: self.effective_shards(cli_shards),
            },
            observe.then(Observation::default),
        )
    }

    /// Runs the spec's application on a caller-provided cluster (the thin
    /// bench wrappers use this to reuse [`RunOutcome`] directly).
    ///
    /// # Panics
    ///
    /// Panics for [`App::ParallelNodes`], which has no cluster; engine
    /// runs go through [`RunSpec::execute_timed_at`].
    pub fn run_on(&self, cluster: &Cluster) -> RunOutcome {
        let scale = self.scale;
        match self.app {
            App::BarnesSvm => {
                run_barnes_svm(cluster, self.protocol(), &barnes_svm_params_at(scale))
            }
            App::OceanSvm => run_ocean_svm(cluster, self.protocol(), &ocean_svm_params_at(scale)),
            App::RadixSvm => {
                run_radix_svm(cluster, self.protocol(), &radix_params_at(scale, self.seed))
            }
            App::RadixVmmc => run_radix_vmmc(
                cluster,
                &radix_params_at(scale, self.seed),
                self.mechanism(),
            ),
            App::BarnesNx => run_barnes_nx(cluster, &barnes_nx_params_at(scale), self.mechanism()),
            App::OceanNx => run_ocean_nx(cluster, &ocean_nx_params_at(scale), self.mechanism()),
            App::DfsSockets => {
                let mut p = dfs_params_at(scale);
                p.clients = p.clients.min(cluster.num_nodes());
                run_dfs(cluster, &p, self.socket_config())
            }
            App::RenderSockets => {
                run_render(cluster, &render_params_at(scale), self.socket_config())
            }
            App::ParallelNodes => {
                panic!("Engine-parallel has no cluster; execute the spec instead of run_on")
            }
            App::ClusterNodes => {
                panic!("Cluster-distributed builds its own sharded cluster; execute the spec instead of run_on")
            }
            App::WarmClusterNodes => {
                panic!("Cluster-warm builds its own sharded clusters; execute the spec instead of run_on")
            }
            App::KvNodes => {
                panic!("KV-replicated builds its own sharded cluster; execute the spec instead of run_on")
            }
        }
    }

    fn protocol(&self) -> Protocol {
        match self.variant {
            Variant::Protocol(p) => p,
            Variant::Default => Protocol::Aurc,
            v => panic!("variant {v:?} does not apply to {}", self.app.name()),
        }
    }

    fn mechanism(&self) -> Mechanism {
        match self.variant {
            Variant::Mechanism(m) => m,
            Variant::Default => Mechanism::DeliberateUpdate,
            v => panic!("variant {v:?} does not apply to {}", self.app.name()),
        }
    }

    fn socket_config(&self) -> SocketConfig {
        match self.variant {
            Variant::ForcedAu => SocketConfig {
                bulk: RingBulk::Automatic,
                ..SocketConfig::default()
            },
            Variant::Default => SocketConfig::default(),
            v => panic!("variant {v:?} does not apply to {}", self.app.name()),
        }
    }
}

/// The deterministic metrics of one completed run. Simulated quantities
/// only — wall-clock time is kept out so rows are byte-identical across
/// worker counts and machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunRecord {
    /// Simulated completion time.
    pub elapsed: Time,
    /// Deterministic digest of the application's numerical output.
    pub checksum: u64,
    /// VMMC messages sent (Table 3's totals).
    pub messages: u64,
    /// User-level notifications delivered.
    pub notifications: u64,
    /// Host interrupts taken.
    pub interrupts: u64,
    /// Send syscalls taken (Table 2 runs only).
    pub syscalls: u64,
    /// Backplane packets.
    pub net_packets: u64,
    /// Backplane payload bytes.
    pub net_bytes: u64,
    /// Fault-recovery metrics; present only on runs with reliability or an
    /// active fault scenario, so fault-free rows serialize unchanged.
    pub recovery: Option<Recovery>,
    /// KV-service metrics (tail-latency quantiles, throughput, failover);
    /// present only on [`App::KvNodes`] rows, so every other row
    /// serializes unchanged.
    pub kv: Option<KvMetrics>,
}

/// Host-side performance sample of one run. Carried *beside* the
/// deterministic [`RunRecord`], never inside it: wall-clock depends on the
/// machine, the load and the build, so it must stay out of `sweep.json`
/// and the baselines (`results/perf.json` is its only home).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfSample {
    /// Host wall-clock nanoseconds for the whole run (cluster construction,
    /// simulation and metric capture).
    pub wall_ns: u64,
    /// Simulator events dispatched (task polls + timer fires) — the
    /// deterministic work measure that turns `wall_ns` into events/sec.
    pub events: u64,
    /// Process peak resident set (`VmHWM`) in bytes, sampled when the run
    /// completed. Process-wide and monotone across a sweep, so it bounds —
    /// rather than attributes — per-run memory; `0` where unavailable.
    pub peak_rss_bytes: u64,
    /// Effective shard count the run executed on (1 for every classic
    /// single-`Sim` row). Host-execution metadata, so it lives here and in
    /// `perf.json`, never in the [`RunRecord`].
    pub shards: usize,
}

/// Everything the observability plane captured during one observed run:
/// the drained trace timeline plus a snapshot of every metrics-registry
/// instrument. Deterministic, simulated data only (plain `Send` values),
/// so the harness carries it across run-thread boundaries and serializes
/// it byte-identically on every host.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Observation {
    /// The run's trace timeline in record order.
    pub events: Vec<TraceEvent>,
    /// Events the sink discarded to its capacity bound (oldest first);
    /// non-zero means [`Observation::events`] is the *tail* of the run.
    pub trace_dropped: u64,
    /// Final values of every counter, gauge and histogram.
    pub metrics: MetricsSnapshot,
}

/// Process peak RSS in bytes from `/proc/self/status` (`VmHWM`); `0` on
/// platforms without procfs.
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|kb| kb.parse::<u64>().ok())
                    .map(|kb| kb * 1024)
            })
        })
        .unwrap_or(0)
}

/// Fault-detection and -recovery metrics of one chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// Reliable-delivery retransmissions performed by senders.
    pub retransmits: u64,
    /// Packets whose payload failed the checksum at NIC ingress.
    pub corrupt_detected: u64,
    /// Sequenced packets discarded as already-delivered duplicates.
    pub dup_suppressed: u64,
    /// Faults the plane actually injected (drops + corruptions +
    /// duplications + link-reject losses).
    pub faults_injected: u64,
    /// Summed sim time from injection to corruption detection (ps).
    pub detection_latency_ps: u64,
    /// Summed sim time spent recovering retransmitted chunks (ps).
    pub recovery_time_ps: u64,
}

/// Service-level metrics of one replicated-KV run, extracted from the
/// shard-count-invariant merged metrics of the
/// [`LaunchOutcome`] — so, like every other
/// [`RunRecord`] field, byte-identical at every shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvMetrics {
    /// Load-phase requests acknowledged across all clients.
    pub acked: u64,
    /// Acked writes whose verify-phase re-read regressed (0 on a correct
    /// run — an acked write must survive any crash in the scenario).
    pub verify_failures: u64,
    /// Median request latency (ps), scheduled open-loop arrival → ack.
    pub p50_ps: u64,
    /// 99th-percentile request latency (ps).
    pub p99_ps: u64,
    /// 99.9th-percentile request latency (ps).
    pub p999_ps: u64,
    /// Saturation throughput: acked requests per simulated second.
    pub throughput_rps: u64,
    /// Backup promotions observed (0 on fault-free rows).
    pub failovers: u64,
    /// Median failover time (ps): promotion instant minus the failed
    /// primary's last heartbeat. 0 when no failover happened.
    pub failover_p50_ps: u64,
}

impl KvMetrics {
    /// Reads the service metrics out of a finished KV run.
    pub fn capture(params: &KvParams, out: &LaunchOutcome) -> Self {
        let hist = |name: &str| match out.metrics.get(Category::App, name) {
            Some(MetricValue::Histogram(h)) => Some(h.clone()),
            _ => None,
        };
        let req = hist("kv_req_ps");
        let fail = hist("kv_failover_ps");
        let q = |h: &Option<shrimp_sim::HistogramSnapshot>, p: f64| {
            h.as_ref().map_or(0, |h| h.quantile(p))
        };
        let acked = total_acked(params, out);
        KvMetrics {
            acked,
            verify_failures: total_verify_failures(params, out),
            p50_ps: q(&req, 0.50),
            p99_ps: q(&req, 0.99),
            p999_ps: q(&req, 0.999),
            throughput_rps: acked
                .saturating_mul(1_000_000_000_000)
                .checked_div(out.elapsed)
                .unwrap_or(0),
            failovers: fail.as_ref().map_or(0, |h| h.count),
            failover_p50_ps: q(&fail, 0.50),
        }
    }
}

impl RunRecord {
    /// The gated metrics as stable `(name, value)` pairs — the flat row
    /// schema shared by `sweep.json` and the committed baselines.
    /// Recovery and KV metrics are appended only when present.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        let mut f = vec![
            ("elapsed_ns", self.elapsed),
            ("checksum", self.checksum),
            ("messages", self.messages),
            ("notifications", self.notifications),
            ("interrupts", self.interrupts),
            ("syscalls", self.syscalls),
            ("net_packets", self.net_packets),
            ("net_bytes", self.net_bytes),
        ];
        if let Some(r) = &self.recovery {
            f.push(("retransmits", r.retransmits));
            f.push(("corrupt_detected", r.corrupt_detected));
            f.push(("dup_suppressed", r.dup_suppressed));
            f.push(("faults_injected", r.faults_injected));
            f.push(("detection_latency_ps", r.detection_latency_ps));
            f.push(("recovery_time_ps", r.recovery_time_ps));
        }
        if let Some(k) = &self.kv {
            f.push(("kv_acked", k.acked));
            f.push(("kv_verify_failures", k.verify_failures));
            f.push(("kv_p50_ps", k.p50_ps));
            f.push(("kv_p99_ps", k.p99_ps));
            f.push(("kv_p999_ps", k.p999_ps));
            f.push(("kv_rps", k.throughput_rps));
            f.push(("kv_failovers", k.failovers));
            f.push(("kv_failover_p50_ps", k.failover_p50_ps));
        }
        f
    }

    /// Looks up a metric by its field name.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields()
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }
}

// ---------------------------------------------------------------------------
// The matrix
// ---------------------------------------------------------------------------

/// Enumerates the whole EXPERIMENTS.md matrix at a scale: every table and
/// figure of the paper as independent [`RunSpec`]s, capped at `max_nodes`.
pub fn matrix(scale: Scale, max_nodes: usize) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    let n = max_nodes;
    let du = Variant::Mechanism(Mechanism::DeliberateUpdate);
    let au = Variant::Mechanism(Mechanism::AutomaticUpdate);

    // Figure 3: speedup curves, best version per application. p=1 rows
    // are each version's own sequential run.
    let counts: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&c| c <= n)
        .collect();
    let fig3: [(App, Variant); 6] = [
        (App::OceanNx, au),
        (App::RadixVmmc, au),
        (App::BarnesNx, du),
        (App::RadixSvm, Variant::Protocol(Protocol::Aurc)),
        (App::OceanSvm, Variant::Protocol(Protocol::Aurc)),
        (App::BarnesSvm, Variant::Protocol(Protocol::Aurc)),
    ];
    for (app, variant) in fig3 {
        for &c in &counts {
            specs.push(RunSpec::new("fig3", app, c, scale).with_variant(variant));
        }
    }

    // Figure 4 (left): HLRC vs HLRC-AU vs AURC for the SVM applications.
    for app in [App::BarnesSvm, App::OceanSvm, App::RadixSvm] {
        for proto in [Protocol::Hlrc, Protocol::HlrcAu, Protocol::Aurc] {
            specs.push(
                RunSpec::new("fig4-svm-au", app, n, scale).with_variant(Variant::Protocol(proto)),
            );
        }
    }

    // Figure 4 (right): DU vs AU as the bulk mechanism.
    for app in [App::RadixVmmc, App::OceanNx, App::BarnesNx] {
        for m in [du, au] {
            specs.push(RunSpec::new("fig4-du-au", app, n, scale).with_variant(m));
        }
    }

    // Tables 1 and 3: the default versions as built (sequential times,
    // message and notification counts).
    for app in App::all() {
        specs.push(RunSpec::new("table1", app, n.max(app.min_nodes()), scale));
    }

    // Table 2: a system call before every send (paper: all except DFS).
    for app in [
        App::BarnesSvm,
        App::OceanSvm,
        App::RadixSvm,
        App::RadixVmmc,
        App::BarnesNx,
        App::OceanNx,
        App::RenderSockets,
    ] {
        specs.push(
            RunSpec::new("table2", app, n.max(app.min_nodes()), scale).with_knobs(Knobs {
                syscall_send: true,
                ..Knobs::as_built()
            }),
        );
    }

    // Table 4: an interrupt per arrival (paper: Barnes-NX on 8 nodes).
    for app in App::all() {
        let c = if app == App::BarnesNx {
            n.min(8)
        } else {
            n.max(app.min_nodes())
        };
        specs.push(RunSpec::new("table4", app, c, scale).with_knobs(Knobs {
            interrupt_per_message: true,
            ..Knobs::as_built()
        }));
    }

    // §4.5.1 combining: on/off for sparse-AU and bulk-AU workloads.
    for (app, variant) in [
        (App::RadixVmmc, au),
        (App::RadixSvm, Variant::Protocol(Protocol::Aurc)),
        (App::DfsSockets, Variant::ForcedAu),
    ] {
        for on in [true, false] {
            specs.push(
                RunSpec::new("combining", app, n, scale)
                    .with_variant(variant)
                    .with_knobs(Knobs {
                        combining: Some(on),
                        ..Knobs::as_built()
                    }),
            );
        }
    }

    // §4.5.2 FIFO capacity: 32 KB vs 1 KB.
    for (app, variant) in [
        (App::RadixVmmc, au),
        (App::RadixSvm, Variant::Protocol(Protocol::Aurc)),
        (App::OceanSvm, Variant::Protocol(Protocol::Aurc)),
        (App::DfsSockets, Variant::ForcedAu),
    ] {
        for bytes in [32 * 1024, 1024] {
            specs.push(
                RunSpec::new("fifo", app, n, scale)
                    .with_variant(variant)
                    .with_knobs(Knobs {
                        fifo_bytes: Some(bytes),
                        ..Knobs::as_built()
                    }),
            );
        }
    }

    // §4.5.3 DU queue depth: 1 vs 2 for the HLRC SVM applications.
    for app in [App::BarnesSvm, App::OceanSvm, App::RadixSvm] {
        for depth in [1usize, 2] {
            specs.push(
                RunSpec::new("du-queue", app, n, scale)
                    .with_variant(Variant::Protocol(Protocol::Hlrc))
                    .with_knobs(Knobs {
                        du_queue_depth: Some(depth),
                        ..Knobs::as_built()
                    }),
            );
        }
    }

    // Chaos: the fault-injection/recovery study. Deliberate-update Radix
    // under the reliability knob, one scenario per row; the control row
    // (reliability, no faults) isolates the overhead of sequencing alone.
    let mut chaos = vec![
        FaultScenario::none(),
        FaultScenario {
            seed: 11,
            drop_pct: 5,
            ..FaultScenario::none()
        },
        FaultScenario {
            seed: 12,
            corrupt_pct: 5,
            ..FaultScenario::none()
        },
        FaultScenario {
            seed: 13,
            duplicate_pct: 5,
            ..FaultScenario::none()
        },
        // Transient link outage spanning the communication phase: senders
        // detour around the dead window (or lose packets and recover by
        // backoff retransmission on meshes with no alternative path).
        FaultScenario {
            link: Some(LinkFault {
                from: 0,
                to: 1,
                at_us: 500,
                down_us: 30_000,
            }),
            ..FaultScenario::none()
        },
        FaultScenario {
            interrupt_delay_us: 50,
            ..FaultScenario::none()
        },
        FaultScenario {
            pause: Some(NodePause {
                node: 1,
                at_us: 1000,
                dur_us: 500,
            }),
            ..FaultScenario::none()
        },
    ];
    if n >= 4 {
        // Permanent link failure: every delivery takes the route around it
        // for the whole run. Needs a mesh with an alternative path.
        chaos.push(FaultScenario {
            link: Some(LinkFault {
                from: 0,
                to: 1,
                at_us: 0,
                down_us: 0,
            }),
            ..FaultScenario::none()
        });
    }
    for scenario in chaos {
        specs.push(
            RunSpec::new("chaos", App::RadixVmmc, n, scale)
                .with_variant(du)
                .with_knobs(Knobs {
                    reliability: true,
                    faults: scenario,
                    ..Knobs::as_built()
                }),
        );
    }
    // Automatic update has no retransmission path, so its chaos row is the
    // one non-lossy fault: a stalled outgoing-FIFO drain engine.
    specs.push(
        RunSpec::new("chaos", App::RadixVmmc, n, scale)
            .with_variant(au)
            .with_knobs(Knobs {
                faults: FaultScenario {
                    fifo_stall: Some(FifoStall {
                        node: 0,
                        at_us: 500,
                        dur_us: 300,
                    }),
                    ..FaultScenario::none()
                },
                ..Knobs::as_built()
            }),
    );

    // Engine-parallel: the sharded conservative executor at the paper's 16
    // nodes (independent of `max_nodes` — the workload is engine-level, no
    // cluster). Fixed shard counts are the scaling rows the `--perf`
    // speedup gate compares; the Auto row follows the sweep-wide
    // `--shards` flag and must stay byte-identical at every setting.
    for sh in [1usize, 2, 4] {
        specs.push(
            RunSpec::new("parallel", App::ParallelNodes, 16, scale).with_shards(Shards::Fixed(sh)),
        );
    }
    specs.push(RunSpec::new("parallel", App::ParallelNodes, 16, scale));

    // Distributed cluster: the full SHRIMP stack (VMMC/NIC/notifications)
    // on the shard engine, independent of `max_nodes` like the parallel
    // group (the workload is proportional, so row cost is bounded by the
    // scale's step count). The 16-node Auto row follows the sweep-wide
    // `--shards` flag and must stay byte-identical at every setting; the
    // pinned 64-node pair is the cluster leg of the `--perf` speedup gate;
    // the 256-node row exercises the machine at Paragon scale (too heavy
    // for the smoke gate).
    specs.push(RunSpec::new("cluster", App::ClusterNodes, 16, scale));
    for sh in [1usize, 4] {
        specs.push(
            RunSpec::new("cluster", App::ClusterNodes, 64, scale).with_shards(Shards::Fixed(sh)),
        );
    }
    if scale != Scale::Smoke {
        specs.push(RunSpec::new("cluster", App::ClusterNodes, 256, scale));
    }

    // Sharded chaos: fault scenarios on the `launch()` path, where the
    // fault plane draws from per-entity RNG streams (shard-count
    // invariant) and the workload carries the heartbeat failure detector.
    // The 16-node packet-fate row is the oracle row (its single-shard run
    // is windowless); the 64-node pair exercises a permanent crash and a
    // crash-with-restart — detection latency and recovery time land in
    // the recovery metrics; the 256-node permanent-link-failure row runs
    // the detour path at Paragon scale (too heavy for the smoke gate).
    specs.push(
        RunSpec::new("chaos-cluster", App::ClusterNodes, 16, scale).with_knobs(Knobs {
            reliability: true,
            faults: FaultScenario {
                seed: 21,
                drop_pct: 3,
                corrupt_pct: 2,
                duplicate_pct: 3,
                ..FaultScenario::none()
            },
            ..Knobs::as_built()
        }),
    );
    for crash in [
        // Permanent: the node never returns; survivors must detect it and
        // complete without it.
        NodeCrash {
            node: 5,
            at_us: 40,
            down_us: 0,
        },
        // Restarting: down for 560 us, then a deterministic reboot the
        // survivors witness (finite recovery time).
        NodeCrash {
            node: 5,
            at_us: 40,
            down_us: 560,
        },
    ] {
        specs.push(
            RunSpec::new("chaos-cluster", App::ClusterNodes, 64, scale).with_knobs(Knobs {
                faults: FaultScenario {
                    crash: Some(crash),
                    ..FaultScenario::none()
                },
                ..Knobs::as_built()
            }),
        );
    }
    if scale != Scale::Smoke {
        specs.push(
            RunSpec::new("chaos-cluster", App::ClusterNodes, 256, scale).with_knobs(Knobs {
                reliability: true,
                faults: FaultScenario {
                    link: Some(LinkFault {
                        from: 0,
                        to: 1,
                        at_us: 0,
                        down_us: 0,
                    }),
                    ..FaultScenario::none()
                },
                ..Knobs::as_built()
            }),
        );
    }

    // Warm-start: three knob settings forked from one post-warmup
    // checkpoint of the 64-node distributed workload (half the rounds are
    // warmup — see `warm_params_at`). All three rows share a checkpoint
    // fingerprint, so the harness `--checkpoint-in` mode resumes every
    // one of them from a single artifact; rows are byte-identical whether
    // run cold or warm, and at every shard count.
    for knobs in [
        Knobs::as_built(),
        Knobs {
            syscall_send: true,
            ..Knobs::as_built()
        },
        Knobs {
            interrupt_per_message: true,
            ..Knobs::as_built()
        },
    ] {
        specs.push(RunSpec::new("warm", App::WarmClusterNodes, 64, scale).with_knobs(knobs));
    }

    // Replicated KV service: two groups of three replicas on the
    // `launch()` path under a deterministic open-loop Zipf load, with
    // p50/p99/p999 request latency and throughput in the row's KV
    // metrics block. The 16-node Auto row follows the sweep-wide
    // `--shards` flag and must stay byte-identical at every setting; the
    // chaos row crashes group 0's initial primary mid-load (permanently —
    // reliability stays off, matching the service's unreliable-transport
    // failover design) and reports the measured failover time; the
    // pinned 64-node pair scales the client fan-in at constant offered
    // load per primary (too heavy for the smoke gate).
    specs.push(RunSpec::new("kv", App::KvNodes, 16, scale));
    specs.push(
        RunSpec::new("kv", App::KvNodes, 16, scale).with_knobs(Knobs {
            faults: FaultScenario {
                crash: Some(NodeCrash {
                    node: 0,
                    at_us: 400,
                    down_us: 0,
                }),
                ..FaultScenario::none()
            },
            ..Knobs::as_built()
        }),
    );
    if scale != Scale::Smoke {
        for sh in [1usize, 4] {
            specs.push(RunSpec::new("kv", App::KvNodes, 64, scale).with_shards(Shards::Fixed(sh)));
        }
    }

    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_stable() {
        let specs = matrix(Scale::Smoke, 4);
        let mut ids: Vec<String> = specs.iter().map(|s| s.id()).collect();
        let count = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), count, "duplicate run ids in the matrix");
        // A spot check against the documented id scheme.
        let spec = RunSpec::new("table2", App::RadixVmmc, 4, Scale::Smoke).with_knobs(Knobs {
            syscall_send: true,
            ..Knobs::as_built()
        });
        assert_eq!(spec.id(), "table2/radix-vmmc-default/p4/syscall");
        let pinned = RunSpec::new("parallel", App::ParallelNodes, 16, Scale::Smoke)
            .with_shards(Shards::Fixed(4));
        assert_eq!(
            pinned.id(),
            "parallel/engine-parallel-default/p16/as-built/sh4"
        );
        let cluster = RunSpec::new("cluster", App::ClusterNodes, 64, Scale::Smoke)
            .with_shards(Shards::Fixed(4));
        assert_eq!(
            cluster.id(),
            "cluster/cluster-distributed-default/p64/as-built/sh4"
        );
    }

    #[test]
    fn matrix_covers_every_experiment_group() {
        let specs = matrix(Scale::Smoke, 4);
        for exp in [
            "fig3",
            "fig4-svm-au",
            "fig4-du-au",
            "table1",
            "table2",
            "table4",
            "combining",
            "fifo",
            "du-queue",
            "chaos",
            "parallel",
            "cluster",
            "chaos-cluster",
            "warm",
            "kv",
        ] {
            assert!(
                specs.iter().any(|s| s.experiment == exp),
                "matrix missing {exp}"
            );
        }
        // Smoke at 4 nodes keeps fig3 to p in {1, 2, 4}.
        assert!(specs
            .iter()
            .filter(|s| s.experiment == "fig3")
            .all(|s| s.nodes <= 4));
    }

    #[test]
    fn chaos_rows_recover_and_keep_the_answer() {
        let base = RunSpec::new("test", App::RadixVmmc, 2, Scale::Smoke).execute();
        assert!(
            base.recovery.is_none(),
            "fault-free run grew recovery metrics"
        );
        assert!(base.fields().iter().all(|(k, _)| *k != "retransmits"));
        let chaos = RunSpec::new("test", App::RadixVmmc, 2, Scale::Smoke).with_knobs(Knobs {
            reliability: true,
            faults: FaultScenario {
                seed: 11,
                drop_pct: 5,
                ..FaultScenario::none()
            },
            ..Knobs::as_built()
        });
        assert_eq!(chaos.id(), "test/radix-vmmc-default/p2/rel+drop5");
        let r = chaos.execute();
        let rec = r.recovery.expect("chaos run lacks recovery metrics");
        assert!(rec.faults_injected > 0, "5% drop injected nothing");
        assert!(
            rec.retransmits > 0,
            "drops recovered without retransmission"
        );
        assert_eq!(r.checksum, base.checksum, "faults changed the answer");
    }

    #[test]
    fn execute_is_deterministic_and_knobs_bite() {
        let spec = RunSpec::new("test", App::RadixVmmc, 2, Scale::Smoke);
        let a = spec.execute();
        let b = spec.execute();
        assert_eq!(a, b, "same spec, different metrics");
        let sys = RunSpec::new("test", App::RadixVmmc, 2, Scale::Smoke).with_knobs(Knobs {
            syscall_send: true,
            ..Knobs::as_built()
        });
        let s = sys.execute();
        assert_eq!(s.checksum, a.checksum, "knob changed the answer");
        assert!(s.syscalls > 0 && a.syscalls == 0);
        assert!(s.elapsed > a.elapsed, "syscalls cost nothing");
    }

    #[test]
    fn parallel_record_is_shard_count_invariant() {
        // The Auto row follows the CLI shard count; the record must not.
        let auto = RunSpec::new("parallel", App::ParallelNodes, 16, Scale::Smoke);
        let (one, perf1) = auto.execute_timed_at(1);
        let (four, perf4) = auto.execute_timed_at(4);
        assert_eq!(one, four, "CLI shard count leaked into the record");
        assert!(perf1.events > 0 && perf1.events == perf4.events);
        // A Fixed pin beats the CLI and is visible only in the id.
        let pinned = auto.clone().with_shards(Shards::Fixed(2));
        assert_eq!(pinned.effective_shards(4), 2);
        assert_eq!(auto.effective_shards(4), 4);
        let (two, _) = pinned.execute_timed_at(4);
        assert_eq!(one, two);
        // Observed engine runs yield an empty observation, deterministically.
        let (rec, _, obs) = auto.execute_observed_at(2);
        assert_eq!(rec, one);
        assert_eq!(obs, Observation::default());
    }

    #[test]
    fn cluster_record_is_shard_count_invariant() {
        // The 16-node Auto row: the CLI shard count reaches the perf
        // sample but never the record.
        let auto = RunSpec::new("cluster", App::ClusterNodes, 16, Scale::Smoke);
        let (one, perf1) = auto.execute_timed_at(1);
        let (four, perf4) = auto.execute_timed_at(4);
        assert_eq!(one, four, "CLI shard count leaked into the record");
        assert_eq!((perf1.shards, perf4.shards), (1, 4));
        assert!(one.messages > 0 && one.notifications > 0 && one.interrupts > 0);
        // A Fixed pin beats the CLI.
        let pinned = auto.clone().with_shards(Shards::Fixed(2));
        assert_eq!(pinned.effective_shards(4), 2);
        let (two, perf2) = pinned.execute_timed_at(4);
        assert_eq!(one, two);
        assert_eq!(perf2.shards, 2);
    }

    #[test]
    fn kv_record_is_shard_count_invariant_and_carries_tail_quantiles() {
        // The 16-node Auto row follows the CLI shard count; the record —
        // KV metrics block included, since the latency histogram merges
        // commutatively across shards — must not.
        let auto = RunSpec::new("kv", App::KvNodes, 16, Scale::Smoke);
        let (one, perf1) = auto.execute_timed_at(1);
        let (two, _) = auto.execute_timed_at(2);
        let (four, perf4) = auto.execute_timed_at(4);
        assert_eq!(one, two, "--shards 2 leaked into the kv record");
        assert_eq!(one, four, "--shards 4 leaked into the kv record");
        assert_eq!((perf1.shards, perf4.shards), (1, 4));
        let kv = one.kv.expect("kv row lacks its KV metrics block");
        let p = kv_params_for(Scale::Smoke, 16, 1);
        assert_eq!(kv.acked, p.clients() as u64 * p.requests as u64);
        assert_eq!(kv.verify_failures, 0);
        assert!(kv.p50_ps > 0, "no median latency measured");
        assert!(kv.p50_ps <= kv.p99_ps && kv.p99_ps <= kv.p999_ps);
        assert!(kv.throughput_rps > 0);
        assert_eq!(kv.failovers, 0, "fault-free run observed a promotion");
        // The quantiles ride the flat row schema; fault-free kv rows
        // carry no recovery block.
        assert_eq!(one.field("kv_p999_ps"), Some(kv.p999_ps));
        assert_eq!(one.field("kv_rps"), Some(kv.throughput_rps));
        assert!(one.recovery.is_none());
    }

    #[test]
    fn kv_chaos_row_reports_failover_and_loses_no_acked_write() {
        let specs = matrix(Scale::Smoke, 4);
        let spec = specs
            .iter()
            .find(|s| s.experiment == "kv" && s.knobs.faults.crash.is_some())
            .expect("kv group lost its crash row");
        let (one, _) = spec.execute_timed_at(1);
        let (four, _) = spec.execute_timed_at(4);
        assert_eq!(one, four, "--shards 4 leaked into the kv chaos row");
        let kv = one.kv.expect("kv chaos row lacks its KV metrics block");
        assert_eq!(
            kv.verify_failures, 0,
            "an acked write regressed after failover"
        );
        assert!(kv.acked > 0, "the crash starved the load phase");
        assert!(kv.failovers >= 1, "the primary crash produced no promotion");
        assert!(kv.failover_p50_ps > 0, "failover time not measured");
        let rec = one.recovery.expect("kv chaos row lacks recovery metrics");
        assert!(
            rec.detection_latency_ps > 0,
            "no detection latency recorded"
        );
    }

    /// Every warm row forks from one shared checkpoint artifact, matches
    /// its own cold run byte-for-byte, and refuses foreign checkpoints.
    #[test]
    fn warm_rows_fork_from_one_checkpoint_and_match_cold() {
        let rows: Vec<RunSpec> = matrix(Scale::Smoke, 4)
            .into_iter()
            .filter(|s| s.experiment == "warm")
            .collect();
        assert_eq!(rows.len(), 3, "the warm group lost rows");
        let (_, _, bytes) = rows[0].execute_warm_at(1, None).unwrap();
        for row in &rows {
            let (warm, _, echoed) = row.execute_warm_at(2, Some(&bytes)).unwrap();
            let (cold, _) = row.execute_timed_at(1);
            assert_eq!(warm, cold, "{} diverged warm vs cold", row.id());
            assert_eq!(echoed, bytes, "warm start must echo its input artifact");
        }
        let foreign = rows[0].clone().with_seed(9);
        assert!(matches!(
            foreign.execute_warm_at(1, Some(&bytes)),
            Err(shrimp_sim::SnapshotError::FingerprintMismatch)
        ));
    }

    /// A chaos-cluster crash row produces finite detector metrics and
    /// stays shard-count invariant, record bytes included.
    #[test]
    fn chaos_cluster_crash_row_reports_detection_and_is_invariant() {
        let spec = matrix(Scale::Smoke, 4)
            .into_iter()
            .find(|s| s.experiment == "chaos-cluster" && s.knobs.faults.label() == "crashres5")
            .expect("matrix lost the 64-node crash/restart row");
        let (one, _) = spec.execute_timed_at(1);
        let r = one.recovery.as_ref().expect("chaos row without recovery");
        assert_eq!(r.faults_injected, 1);
        assert!(r.detection_latency_ps > 0, "crash went undetected");
        assert!(r.recovery_time_ps > 0, "restart went unwitnessed");
        let (four, perf4) = spec.execute_timed_at(4);
        assert_eq!(one, four, "chaos-cluster record diverged across shards");
        assert_eq!(perf4.shards, 4);
    }
}
