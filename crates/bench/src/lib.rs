//! Experiment harness shared by the per-table/figure bench targets and the
//! `shrimp-harness` sweep runner.
//!
//! Each bench target (`benches/*.rs`, `harness = false`) regenerates one
//! table or figure of the paper by executing the corresponding
//! [`spec::RunSpec`]s. Problem sizes default to scaled-down instances so
//! `cargo bench` completes quickly; set `SHRIMP_FULL=1` for the paper's
//! sizes (documented in `EXPERIMENTS.md`), and `SHRIMP_NODES=<n>` to
//! override the 16-node default. Both are thin shims over the typed
//! [`HarnessConfig`], which drivers can also build programmatically.

#![warn(missing_docs)]

pub mod spec;

use shrimp_apps::barnes::BarnesParams;
use shrimp_apps::dfs::DfsParams;
use shrimp_apps::ocean::OceanParams;
use shrimp_apps::radix::RadixParams;
use shrimp_apps::render::RenderParams;
use shrimp_apps::RunOutcome;
use shrimp_core::{Cluster, DesignConfig};
use shrimp_sim::{time, Time};
use shrimp_testkit::HarnessConfig;

pub use spec::{
    matrix, Knobs, KvMetrics, Observation, PerfSample, RunRecord, RunSpec, Scale, Shards, Variant,
};

/// The problem scale a harness configuration selects (`Full` under
/// `SHRIMP_FULL=1`, `Reduced` otherwise; [`Scale::Smoke`] is only reachable
/// programmatically).
pub fn scale_of(cfg: &HarnessConfig) -> Scale {
    if cfg.full_scale {
        Scale::Full
    } else {
        Scale::Reduced
    }
}

/// `true` when the process-global configuration asks for the paper's
/// problem sizes (`SHRIMP_FULL=1`).
pub fn full_scale() -> bool {
    HarnessConfig::global().full_scale
}

/// Cluster size for the headline experiments (paper: 16).
pub fn max_nodes() -> usize {
    HarnessConfig::global().nodes
}

/// The scale selected by the process-global configuration.
pub fn global_scale() -> Scale {
    scale_of(HarnessConfig::global())
}

/// Radix problem size at the global scale (paper: 2 M keys, 3 iters).
pub fn radix_params() -> RadixParams {
    spec::radix_params_at(global_scale(), 1)
}

/// Ocean-SVM problem size at the global scale (paper: 514 x 514).
pub fn ocean_svm_params() -> OceanParams {
    spec::ocean_svm_params_at(global_scale())
}

/// Ocean-NX problem size at the global scale (paper: 258 x 258).
pub fn ocean_nx_params() -> OceanParams {
    spec::ocean_nx_params_at(global_scale())
}

/// Barnes-NX problem size at the global scale (paper: 4 K bodies, 20 iters).
pub fn barnes_nx_params() -> BarnesParams {
    spec::barnes_nx_params_at(global_scale())
}

/// Barnes-SVM problem size at the global scale (paper: 16 K bodies).
pub fn barnes_svm_params() -> BarnesParams {
    spec::barnes_svm_params_at(global_scale())
}

/// DFS workload at the global scale.
pub fn dfs_params() -> DfsParams {
    spec::dfs_params_at(global_scale())
}

/// Render workload at the global scale.
pub fn render_params() -> RenderParams {
    spec::render_params_at(global_scale())
}

/// The applications of Table 1, with their default versions: AURC for the
/// SVM applications and deliberate update for the rest (the configurations
/// the paper's tables characterize).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Barnes-Hut on shared virtual memory.
    BarnesSvm,
    /// Grid solver on shared virtual memory.
    OceanSvm,
    /// Radix sort on shared virtual memory.
    RadixSvm,
    /// Radix sort on the native VMMC API.
    RadixVmmc,
    /// Barnes-Hut on NX message passing.
    BarnesNx,
    /// Grid solver on NX message passing.
    OceanNx,
    /// Distributed file system on stream sockets.
    DfsSockets,
    /// Volume renderer on stream sockets.
    RenderSockets,
    /// The engine-level sharded-executor workload: mesh-coupled compute
    /// nodes driven by `shrimp_core::run_parallel`, used by the
    /// `"parallel"` experiment group and the `--perf` speedup gate. Not a
    /// Table 1 application, so it is absent from [`App::all`] and never
    /// builds a [`Cluster`].
    ParallelNodes,
    /// The distributed-cluster workload: the full SHRIMP stack (VMMC
    /// exports/imports, DMA, notifications) on the shard engine via
    /// `shrimp_core::run_distributed`, used by the `"cluster"` experiment
    /// group and the cluster leg of the `--perf` speedup gate. Not a
    /// Table 1 application, so it is absent from [`App::all`]; it builds
    /// its own sharded cluster per run.
    ClusterNodes,
    /// The warm-start variant of the distributed-cluster workload
    /// (`shrimp_core::warm`): the warmup prefix runs once under the
    /// as-built machine, is checkpointed at the drain barrier, and each
    /// row resumes from the checkpoint under its own knobs. Used by the
    /// `"warm"` experiment group and the harness
    /// `--checkpoint-out`/`--checkpoint-in` flags. Not a Table 1
    /// application, so it is absent from [`App::all`].
    WarmClusterNodes,
    /// The replicated key-value service (`shrimp_apps::kv`): sharded
    /// primary/backup replication groups on the `launch()` path, driven
    /// by a deterministic open-loop Zipf load whose per-request latency
    /// lands in the metrics plane — the `"kv"` experiment group's rows
    /// carry p50/p99/p999 and throughput. Not a Table 1 application, so
    /// it is absent from [`App::all`]; it builds its own sharded cluster
    /// per run.
    KvNodes,
}

impl App {
    /// All eight applications in Table 1 order.
    pub fn all() -> [App; 8] {
        [
            App::BarnesSvm,
            App::OceanSvm,
            App::RadixSvm,
            App::RadixVmmc,
            App::BarnesNx,
            App::OceanNx,
            App::DfsSockets,
            App::RenderSockets,
        ]
    }

    /// Paper row label.
    pub fn name(&self) -> &'static str {
        match self {
            App::BarnesSvm => "Barnes-SVM",
            App::OceanSvm => "Ocean-SVM",
            App::RadixSvm => "Radix-SVM",
            App::RadixVmmc => "Radix-VMMC",
            App::BarnesNx => "Barnes-NX",
            App::OceanNx => "Ocean-NX",
            App::DfsSockets => "DFS-sockets",
            App::RenderSockets => "Render-sockets",
            App::ParallelNodes => "Engine-parallel",
            App::ClusterNodes => "Cluster-distributed",
            App::WarmClusterNodes => "Cluster-warm",
            App::KvNodes => "KV-replicated",
        }
    }

    /// API column of Table 1.
    pub fn api(&self) -> &'static str {
        match self {
            App::BarnesSvm | App::OceanSvm | App::RadixSvm => "SVM",
            App::RadixVmmc => "VMMC",
            App::BarnesNx | App::OceanNx => "NX",
            App::DfsSockets | App::RenderSockets => "Sockets",
            App::ParallelNodes => "Engine",
            App::ClusterNodes | App::WarmClusterNodes | App::KvNodes => "VMMC",
        }
    }

    /// Problem-size column of Table 1 for the current scale.
    pub fn problem_size(&self) -> String {
        match self {
            App::BarnesSvm => format!("{} bodies", barnes_svm_params().bodies),
            App::OceanSvm => {
                let p = ocean_svm_params();
                format!("{0} x {0}", p.n)
            }
            App::RadixSvm | App::RadixVmmc => {
                let p = radix_params();
                format!("{} keys, {} iters", p.total_keys, p.iters)
            }
            App::BarnesNx => {
                let p = barnes_nx_params();
                format!("{} bodies, {} iters", p.bodies, p.steps)
            }
            App::OceanNx => {
                let p = ocean_nx_params();
                format!("{0} x {0}", p.n)
            }
            App::DfsSockets => format!("{} clients", dfs_params().clients),
            App::RenderSockets => {
                let p = render_params();
                format!("{0} x {0} image", p.image)
            }
            App::ParallelNodes => {
                let p = spec::parallel_params_at(global_scale());
                format!("{} nodes x {} steps", p.nodes, p.steps)
            }
            App::ClusterNodes => {
                let p = spec::distributed_params_at(global_scale());
                format!("{} nodes x {} rounds", p.nodes, p.steps)
            }
            App::WarmClusterNodes => {
                let p = spec::warm_params_at(global_scale(), 16, 1);
                format!(
                    "{} nodes x {} rounds ({} warmup)",
                    p.base.nodes, p.base.steps, p.warmup
                )
            }
            App::KvNodes => {
                let p = spec::kv_params_at(global_scale());
                format!(
                    "{}x{} replicas, {} keys, {} reqs/client",
                    p.groups, p.replication, p.keys, p.requests
                )
            }
        }
    }

    /// Runs this application on `nodes` nodes under `cfg`, in its default
    /// version, honouring the process-global [`HarnessConfig`]
    /// (`SHRIMP_TRACE=1` dumps the trace, `SHRIMP_REPORT=1` the machine-wide
    /// utilization report).
    pub fn run(&self, nodes: usize, cfg: DesignConfig) -> RunOutcome {
        self.run_with(nodes, cfg, HarnessConfig::global())
    }

    /// [`App::run`] with an explicit harness configuration — the
    /// programmatic entry the sweep runner's worker threads use (no
    /// process-environment reads).
    pub fn run_with(&self, nodes: usize, cfg: DesignConfig, harness: &HarnessConfig) -> RunOutcome {
        if *self == App::ParallelNodes {
            // The engine workload has no cluster, so none of the
            // trace/report machinery below applies; a single shard is the
            // reference execution and every shard count yields the same
            // outcome anyway.
            let out = shrimp_core::run_parallel(&spec::parallel_params_at(scale_of(harness)), 1);
            return RunOutcome {
                elapsed: out.elapsed,
                checksum: out.checksum,
                messages: out.messages,
                notifications: 0,
                svm: None,
            };
        }
        if *self == App::ClusterNodes {
            // The sharded cluster builds its own machine(s); one shard is
            // the reference execution and every count agrees with it.
            let params = spec::distributed_params_at(scale_of(harness)).scaled_to(nodes);
            let out = shrimp_core::run_distributed(&params, cfg, shrimp_core::Shards::Fixed(1));
            return RunOutcome {
                elapsed: out.elapsed,
                checksum: out
                    .node_results
                    .iter()
                    .fold(0u64, |acc, &r| acc.wrapping_add(r)),
                messages: out.messages,
                notifications: out.notifications,
                svm: None,
            };
        }
        if *self == App::WarmClusterNodes {
            // The cold two-phase pipeline (warmup + checkpoint + resume);
            // one shard is the reference execution here too.
            let params = spec::warm_params_at(scale_of(harness), nodes, 1);
            let (out, _) = shrimp_core::run_cold(&params, cfg, shrimp_core::Shards::Fixed(1));
            return RunOutcome {
                elapsed: out.elapsed,
                checksum: out
                    .node_results
                    .iter()
                    .fold(0u64, |acc, &r| acc.wrapping_add(r)),
                messages: out.messages,
                notifications: out.notifications,
                svm: None,
            };
        }
        if *self == App::KvNodes {
            // The replicated KV service builds its own sharded cluster;
            // one shard is the reference execution and every count agrees.
            let params = spec::kv_params_for(scale_of(harness), nodes, 1);
            let out = shrimp_apps::run_kv(&params, cfg, shrimp_core::Shards::Fixed(1));
            return RunOutcome {
                elapsed: out.elapsed,
                checksum: out
                    .node_results
                    .iter()
                    .fold(0u64, |acc, &r| acc.wrapping_add(r)),
                messages: out.messages,
                notifications: out.notifications,
                svm: None,
            };
        }
        let cluster = Cluster::builder(nodes).config(cfg).build();
        if harness.trace {
            cluster.sim().trace().enable(Some(harness.trace_capacity));
        }
        let spec = RunSpec::new("adhoc", *self, nodes, scale_of(harness));
        let out = spec.run_on(&cluster);
        if harness.trace {
            let events = cluster.sim().trace().take();
            println!(
                "--- {} trace (last {} events, {} dropped) ---\n{}",
                self.name(),
                events.len(),
                cluster.sim().trace().dropped(),
                shrimp_sim::TraceSink::render(&events)
            );
        }
        if harness.report {
            let report = shrimp_core::ClusterReport::capture(&cluster, out.elapsed);
            println!(
                "--- {} on {} nodes ---\n{}",
                self.name(),
                nodes,
                report.render()
            );
        }
        out
    }

    /// Smallest sensible node count for this application (Ocean-NX "does
    /// not run on a uniprocessor"; sockets apps need client + server).
    pub fn min_nodes(&self) -> usize {
        match self {
            App::RenderSockets => 2,
            _ => 1,
        }
    }
}

/// Percentage increase of `new` over `base`.
pub fn pct_increase(base: Time, new: Time) -> f64 {
    assert!(base > 0);
    (new as f64 - base as f64) / base as f64 * 100.0
}

/// Formats a simulated time as seconds with 2 decimals.
pub fn secs(t: Time) -> String {
    format!("{:.2}", time::to_secs(t))
}

/// Prints a fixed-width table with a title line.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Announces the scale of a bench run.
pub fn announce(what: &str) {
    println!(
        "[shrimp-bench] {what} — scale: {} ({} nodes max); SHRIMP_FULL=1 for paper sizes",
        if full_scale() { "PAPER" } else { "reduced" },
        max_nodes()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_runs_at_small_scale() {
        // Smoke: each Table 1 app completes on 2 nodes at smoke scale, via
        // the programmatic (environment-free) entry point.
        let quiet = HarnessConfig::new();
        for app in App::all() {
            let nodes = app.min_nodes().max(2);
            let spec = RunSpec::new("test", app, nodes, Scale::Smoke);
            let cluster = Cluster::builder(nodes).config(spec.design_config()).build();
            let out = spec.run_on(&cluster);
            assert!(out.elapsed > 0, "{} produced no time", app.name());
        }
        let out = App::DfsSockets.run_with(2, DesignConfig::default(), &quiet);
        assert!(out.elapsed > 0);
    }

    #[test]
    fn pct_increase_math() {
        assert_eq!(pct_increase(100, 150), 50.0);
        assert_eq!(pct_increase(200, 200), 0.0);
    }
}
