//! Experiment harness shared by the per-table/figure bench targets.
//!
//! Each bench target (`benches/*.rs`, `harness = false`) regenerates one
//! table or figure of the paper. Problem sizes default to scaled-down
//! instances so `cargo bench` completes quickly; set `SHRIMP_FULL=1` for
//! the paper's sizes (documented in `EXPERIMENTS.md`), and
//! `SHRIMP_NODES=<n>` to override the 16-node default.

#![warn(missing_docs)]

use shrimp_apps::barnes::{run_barnes_nx, run_barnes_svm, BarnesParams};
use shrimp_apps::dfs::{run_dfs, DfsParams};
use shrimp_apps::ocean::{run_ocean_nx, run_ocean_svm, OceanParams};
use shrimp_apps::radix::{run_radix_svm, run_radix_vmmc, RadixParams};
use shrimp_apps::render::{run_render, RenderParams};
use shrimp_apps::{Mechanism, RunOutcome};
use shrimp_core::{Cluster, DesignConfig};
use shrimp_sim::{time, Time};
use shrimp_sockets::SocketConfig;
use shrimp_svm::Protocol;

/// `true` when `SHRIMP_FULL=1`: run the paper's problem sizes.
pub fn full_scale() -> bool {
    std::env::var("SHRIMP_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Cluster size for the headline experiments (paper: 16).
pub fn max_nodes() -> usize {
    std::env::var("SHRIMP_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

/// Radix problem size (paper: 2 M keys, 3 iters).
pub fn radix_params() -> RadixParams {
    if full_scale() {
        RadixParams::paper()
    } else {
        RadixParams {
            total_keys: 128 * 1024,
            iters: 3,
            radix_bits: 10,
            seed: 1,
        }
    }
}

/// Ocean-SVM problem size (paper: 514 x 514).
pub fn ocean_svm_params() -> OceanParams {
    if full_scale() {
        OceanParams::paper_svm()
    } else {
        OceanParams {
            n: 130,
            sweeps: 24,
            reduce_every: 4,
        }
    }
}

/// Ocean-NX problem size (paper: 258 x 258).
pub fn ocean_nx_params() -> OceanParams {
    if full_scale() {
        OceanParams::paper_nx()
    } else {
        OceanParams {
            n: 130,
            sweeps: 24,
            reduce_every: 4,
        }
    }
}

/// Barnes-NX problem size (paper: 4 K bodies, 20 iters).
pub fn barnes_nx_params() -> BarnesParams {
    if full_scale() {
        BarnesParams::paper_nx()
    } else {
        BarnesParams {
            bodies: 1024,
            steps: 4,
            chunk_bodies: 2,
            ..BarnesParams::paper_nx()
        }
    }
}

/// Barnes-SVM problem size (paper: 16 K bodies).
pub fn barnes_svm_params() -> BarnesParams {
    if full_scale() {
        BarnesParams::paper_svm()
    } else {
        BarnesParams {
            bodies: 2048,
            steps: 2,
            ..BarnesParams::paper_svm()
        }
    }
}

/// DFS workload.
pub fn dfs_params() -> DfsParams {
    if full_scale() {
        DfsParams::paper()
    } else {
        DfsParams {
            clients: 4,
            files: 4,
            file_blocks: 48,
            block_bytes: 8192,
            cache_blocks: 24,
            reads_per_client: 8,
        }
    }
}

/// Render workload.
pub fn render_params() -> RenderParams {
    if full_scale() {
        RenderParams::paper()
    } else {
        RenderParams {
            image: 64,
            tile: 8,
            steps: 48,
            fail_worker: None,
        }
    }
}

/// The applications of Table 1, with their default versions: AURC for the
/// SVM applications and deliberate update for the rest (the configurations
/// the paper's tables characterize).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Barnes-Hut on shared virtual memory.
    BarnesSvm,
    /// Grid solver on shared virtual memory.
    OceanSvm,
    /// Radix sort on shared virtual memory.
    RadixSvm,
    /// Radix sort on the native VMMC API.
    RadixVmmc,
    /// Barnes-Hut on NX message passing.
    BarnesNx,
    /// Grid solver on NX message passing.
    OceanNx,
    /// Distributed file system on stream sockets.
    DfsSockets,
    /// Volume renderer on stream sockets.
    RenderSockets,
}

impl App {
    /// All eight applications in Table 1 order.
    pub fn all() -> [App; 8] {
        [
            App::BarnesSvm,
            App::OceanSvm,
            App::RadixSvm,
            App::RadixVmmc,
            App::BarnesNx,
            App::OceanNx,
            App::DfsSockets,
            App::RenderSockets,
        ]
    }

    /// Paper row label.
    pub fn name(&self) -> &'static str {
        match self {
            App::BarnesSvm => "Barnes-SVM",
            App::OceanSvm => "Ocean-SVM",
            App::RadixSvm => "Radix-SVM",
            App::RadixVmmc => "Radix-VMMC",
            App::BarnesNx => "Barnes-NX",
            App::OceanNx => "Ocean-NX",
            App::DfsSockets => "DFS-sockets",
            App::RenderSockets => "Render-sockets",
        }
    }

    /// API column of Table 1.
    pub fn api(&self) -> &'static str {
        match self {
            App::BarnesSvm | App::OceanSvm | App::RadixSvm => "SVM",
            App::RadixVmmc => "VMMC",
            App::BarnesNx | App::OceanNx => "NX",
            App::DfsSockets | App::RenderSockets => "Sockets",
        }
    }

    /// Problem-size column of Table 1 for the current scale.
    pub fn problem_size(&self) -> String {
        match self {
            App::BarnesSvm => format!("{} bodies", barnes_svm_params().bodies),
            App::OceanSvm => {
                let p = ocean_svm_params();
                format!("{0} x {0}", p.n)
            }
            App::RadixSvm | App::RadixVmmc => {
                let p = radix_params();
                format!("{} keys, {} iters", p.total_keys, p.iters)
            }
            App::BarnesNx => {
                let p = barnes_nx_params();
                format!("{} bodies, {} iters", p.bodies, p.steps)
            }
            App::OceanNx => {
                let p = ocean_nx_params();
                format!("{0} x {0}", p.n)
            }
            App::DfsSockets => format!("{} clients", dfs_params().clients),
            App::RenderSockets => {
                let p = render_params();
                format!("{0} x {0} image", p.image)
            }
        }
    }

    /// Runs this application on `nodes` nodes under `cfg`, in its default
    /// version. Set `SHRIMP_REPORT=1` to print the machine-wide
    /// utilization report after the run.
    pub fn run(&self, nodes: usize, cfg: DesignConfig) -> RunOutcome {
        let cluster = Cluster::new(nodes, cfg);
        let tracing = std::env::var("SHRIMP_TRACE")
            .map(|v| v == "1")
            .unwrap_or(false);
        if tracing {
            cluster.sim().trace().enable(Some(512));
        }
        let out = self.run_on(&cluster);
        if tracing {
            let events = cluster.sim().trace().take();
            println!(
                "--- {} trace (last {} events, {} dropped) ---\n{}",
                self.name(),
                events.len(),
                cluster.sim().trace().dropped(),
                shrimp_sim::TraceSink::render(&events)
            );
        }
        if std::env::var("SHRIMP_REPORT")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            let report = shrimp_core::ClusterReport::capture(&cluster, out.elapsed);
            println!(
                "--- {} on {} nodes ---\n{}",
                self.name(),
                nodes,
                report.render()
            );
        }
        out
    }

    fn run_on(&self, cluster: &Cluster) -> RunOutcome {
        match self {
            App::BarnesSvm => run_barnes_svm(cluster, Protocol::Aurc, &barnes_svm_params()),
            App::OceanSvm => run_ocean_svm(cluster, Protocol::Aurc, &ocean_svm_params()),
            App::RadixSvm => run_radix_svm(cluster, Protocol::Aurc, &radix_params()),
            App::RadixVmmc => run_radix_vmmc(cluster, &radix_params(), Mechanism::DeliberateUpdate),
            App::BarnesNx => {
                run_barnes_nx(cluster, &barnes_nx_params(), Mechanism::DeliberateUpdate)
            }
            App::OceanNx => run_ocean_nx(cluster, &ocean_nx_params(), Mechanism::DeliberateUpdate),
            App::DfsSockets => {
                let mut p = dfs_params();
                p.clients = p.clients.min(cluster.num_nodes());
                run_dfs(cluster, &p, SocketConfig::default())
            }
            App::RenderSockets => run_render(cluster, &render_params(), SocketConfig::default()),
        }
    }

    /// Smallest sensible node count for this application (Ocean-NX "does
    /// not run on a uniprocessor"; sockets apps need client + server).
    pub fn min_nodes(&self) -> usize {
        match self {
            App::RenderSockets => 2,
            _ => 1,
        }
    }
}

/// Percentage increase of `new` over `base`.
pub fn pct_increase(base: Time, new: Time) -> f64 {
    assert!(base > 0);
    (new as f64 - base as f64) / base as f64 * 100.0
}

/// Formats a simulated time as seconds with 2 decimals.
pub fn secs(t: Time) -> String {
    format!("{:.2}", time::to_secs(t))
}

/// Prints a fixed-width table with a title line.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Announces the scale of a bench run.
pub fn announce(what: &str) {
    println!(
        "[shrimp-bench] {what} — scale: {} ({} nodes max); SHRIMP_FULL=1 for paper sizes",
        if full_scale() { "PAPER" } else { "reduced" },
        max_nodes()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_runs_at_small_scale() {
        // Smoke: each Table 1 app completes on 2 nodes at reduced scale.
        for app in App::all() {
            let nodes = app.min_nodes().max(2);
            let out = app.run(nodes, DesignConfig::default());
            assert!(out.elapsed > 0, "{} produced no time", app.name());
        }
    }

    #[test]
    fn pct_increase_math() {
        assert_eq!(pct_increase(100, 150), 50.0);
        assert_eq!(pct_increase(200, 200), 0.0);
    }
}
