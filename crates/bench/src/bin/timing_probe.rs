//! Quick probe: runs every Table 1 application once at the current scale
//! and prints wall time, simulated time, and message counters. Useful for
//! calibration work and CI smoke checks.
//!
//! ```text
//! cargo run --release -p shrimp-bench --bin timing_probe
//! SHRIMP_FULL=1 PROBE_APP=radix cargo run --release -p shrimp-bench --bin timing_probe
//! ```

use shrimp_bench::App;
use shrimp_core::DesignConfig;

fn main() {
    let apps: Vec<App> = match std::env::var("PROBE_APP").as_deref() {
        Ok("radix") => vec![App::RadixVmmc, App::RadixSvm],
        Ok("one") => vec![App::RadixVmmc],
        _ => App::all().to_vec(),
    };
    let nodes = shrimp_bench::max_nodes();
    for app in apps {
        let t0 = std::time::Instant::now();
        let out = app.run(nodes.max(app.min_nodes()), DesignConfig::default());
        println!(
            "{:<15} wall {:>6.1}s  sim {:>8.2}s  msgs {:>8}  notif {:>7}",
            app.name(),
            t0.elapsed().as_secs_f64(),
            out.elapsed as f64 / 1e12,
            out.messages,
            out.notifications
        );
    }
}
